"""Setuptools shim.

Kept so that ``pip install -e .`` works in fully offline environments
(where PEP 517 build isolation cannot download setuptools/wheel); all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
