#!/usr/bin/env python3
"""Short-read (Illumina-like) alignment with a single-window configuration.

The paper notes that its CPU and GPU implementations handle *both* short
and long reads; for short reads one GenASM window covers the whole read.
This example simulates Illumina-like reads, maps them, aligns each
candidate with the short-read configuration and verifies the distances
against the Edlib-like optimal aligner — then re-aligns the whole batch
with the vectorized engine, whose multi-word lanes (3 ``uint64`` words
for a 180 bp window) make the short-read configuration lockstep too.

Run with::

    python examples/short_read_alignment.py
"""

from repro import BatchAlignmentEngine, GenASMAligner, GenASMConfig
from repro.baselines import EdlibLikeAligner
from repro.genomics import IlluminaSimulator, SyntheticGenome
from repro.mapping import Mapper


def main() -> None:
    genome = SyntheticGenome.random({"chr1": 80_000}, seed=5, repeat_fraction=0.02)
    reads = IlluminaSimulator(read_length=150, seed=6).simulate(genome, 25)
    mapper = Mapper(genome, min_chain_score=25, min_chain_anchors=2)

    # Window sized with a little slack: the error channel can make a read a
    # few bases longer than the nominal 150 bp.
    config = GenASMConfig.short_read(read_length=180)
    genasm = GenASMAligner(config, name="genasm-short")
    edlib = EdlibLikeAligner("prefix")

    print(f"{'read':<14}{'strand':>7}{'edits':>7}{'optimal':>9}{'identity':>10}")
    mapped = 0
    exact = 0
    pairs = []
    scalar_alignments = []
    for read in reads:
        candidates = mapper.map_read(read)
        if not candidates:
            print(f"{read.name:<14}{'unmapped':>7}")
            continue
        mapped += 1
        best = candidates[0]
        pattern, text = mapper.candidate_region_sequence(best, read.sequence)
        alignment = genasm.align(pattern, text)
        pairs.append((pattern, text))
        scalar_alignments.append(alignment)
        optimum = edlib.align(pattern, text).edit_distance
        exact += int(alignment.edit_distance == optimum)
        print(
            f"{read.name:<14}{best.strand:>7}{alignment.edit_distance:>7}"
            f"{optimum:>9}{alignment.identity:>10.1%}"
        )
        # A single window suffices for short reads.
        assert alignment.metadata["windows"] == 1

    print(f"\nmapped {mapped}/{len(reads)} reads; "
          f"GenASM matched the optimal distance on {exact}/{mapped} of them")

    # The same batch through the vectorized engine: multi-word lanes mean
    # no scalar fallback for window_size > 64, byte-identical results.
    engine = BatchAlignmentEngine(config)
    batched = engine.align_pairs(pairs)
    assert all(
        str(got.cigar) == str(want.cigar)
        and got.edit_distance == want.edit_distance
        for got, want in zip(batched, scalar_alignments)
    )
    assert all(a.metadata["vectorized"] for a in batched)
    print(
        f"vectorized batch path: {len(batched)} candidates in lockstep, "
        f"{engine.words_per_lane} words/lane, identical to the scalar loop"
    )


if __name__ == "__main__":
    main()
