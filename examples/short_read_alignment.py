#!/usr/bin/env python3
"""Short-read (Illumina-like) alignment with a single-window configuration.

The paper notes that its CPU and GPU implementations handle *both* short
and long reads; for short reads one GenASM window covers the whole read.
This example simulates Illumina-like reads, maps them, aligns each
candidate with the short-read configuration and verifies the distances
against the Edlib-like optimal aligner.

Run with::

    python examples/short_read_alignment.py
"""

from repro import GenASMAligner, GenASMConfig
from repro.baselines import EdlibLikeAligner
from repro.genomics import IlluminaSimulator, SyntheticGenome
from repro.mapping import Mapper


def main() -> None:
    genome = SyntheticGenome.random({"chr1": 80_000}, seed=5, repeat_fraction=0.02)
    reads = IlluminaSimulator(read_length=150, seed=6).simulate(genome, 25)
    mapper = Mapper(genome, min_chain_score=25, min_chain_anchors=2)

    # Window sized with a little slack: the error channel can make a read a
    # few bases longer than the nominal 150 bp.
    config = GenASMConfig.short_read(read_length=180)
    genasm = GenASMAligner(config, name="genasm-short")
    edlib = EdlibLikeAligner("prefix")

    print(f"{'read':<14}{'strand':>7}{'edits':>7}{'optimal':>9}{'identity':>10}")
    mapped = 0
    exact = 0
    for read in reads:
        candidates = mapper.map_read(read)
        if not candidates:
            print(f"{read.name:<14}{'unmapped':>7}")
            continue
        mapped += 1
        best = candidates[0]
        pattern, text = mapper.candidate_region_sequence(best, read.sequence)
        alignment = genasm.align(pattern, text)
        optimum = edlib.align(pattern, text).edit_distance
        exact += int(alignment.edit_distance == optimum)
        print(
            f"{read.name:<14}{best.strand:>7}{alignment.edit_distance:>7}"
            f"{optimum:>9}{alignment.identity:>10.1%}"
        )
        # A single window suffices for short reads.
        assert alignment.metadata["windows"] == 1

    print(f"\nmapped {mapped}/{len(reads)} reads; "
          f"GenASM matched the optimal distance on {exact}/{mapped} of them")


if __name__ == "__main__":
    main()
