#!/usr/bin/env python3
"""E1s shared-memory smoke: zero-copy streaming vs offline vectorized.

The CI gate for the shared-memory execution core
(:mod:`repro.parallel.shm` + the executor-backed streaming pipeline).
It runs the E1s workload through both paths and **fails** if:

1. any trial's shared-streaming alignments differ from the offline
   vectorized results (CIGAR, edit distance, consumed span, order);
2. the best-of-``TRIALS`` throughput ratio regresses more than 20%
   against the checked-in baseline in ``BENCH_pipeline.json``;
3. the executor leaks any shared-memory segment after close.

Each run appends its measurement to ``BENCH_pipeline.json``'s history
through :class:`repro.telemetry.bench.BenchRecorder` (schema-validated,
provenance-stamped with the git SHA and config fingerprint) so the
checked-in file doubles as a local trend log.  The shared pipeline
streams in ``max_pending``-sized waves — with descriptor handoffs a wave
costs the same to ship regardless of lane count, while every extra wave
pays a full column-loop dispatch, so the backpressure window is the
natural zero-copy wave.  The executor is warmed outside the timed
region: the warm pool is the operating mode this executor exists for.

Run with::

    python examples/e1s_shared_smoke.py [--trace trace.json]

``--trace`` enables the telemetry tracer on the pipeline and the
shared-memory executor, writes the run's timeline as Chrome-trace JSON
(load in ``chrome://tracing`` / Perfetto), and asserts the span tree
covers every driver stage plus the worker-side wave spans.
"""

import argparse
import time
from pathlib import Path

from repro.core.config import GenASMConfig
from repro.harness.dataset import build_paper_dataset
from repro.mapping.mapper import Mapper
from repro.parallel.executor import BatchExecutor
from repro.parallel.shm import SharedMemoryExecutor
from repro.pipeline import StreamingPipeline
from repro.telemetry import BenchRecorder, Tracer, write_chrome_trace

#: Span names the traced smoke requires on the exported timeline: every
#: driver stage of the pipeline plus the cross-process worker wave spans.
REQUIRED_SPANS = (
    "stage.ingest",
    "stage.map",
    "stage.batch",
    "stage.align",
    "stage.emit",
    "worker.align.wave",
)

READ_COUNT = 256
READ_LENGTH = 300
SEED = 7
TRIALS = 3
WAVE_SIZE = 512  # >= pair count: one merged zero-copy wave per run
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def segment_exists(name: str) -> bool:
    from multiprocessing import resource_tracker, shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    resource_tracker.unregister(shm._name, "shared_memory")
    shm.close()
    return True


def identical(mapped_results, reference) -> bool:
    if len(mapped_results) != len(reference):
        return False
    return all(
        str(mapped.alignment.cigar) == str(want.cigar)
        and mapped.alignment.edit_distance == want.edit_distance
        and mapped.alignment.text_end == want.text_end
        for mapped, want in zip(mapped_results, reference)
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable tracing and write the timeline as Chrome-trace JSON here",
    )
    args = parser.parse_args()
    tracer = Tracer(process_name="e1s-driver") if args.trace else None
    recorder = BenchRecorder(BENCH_PATH)
    config = GenASMConfig()
    workload = build_paper_dataset(
        read_count=READ_COUNT, read_length=READ_LENGTH, seed=SEED, max_pairs=None
    )
    reads = workload.reads
    mapper = Mapper(workload.genome, all_chains=True)
    sequences = {read.name: read.sequence for read in reads}

    def measure_offline():
        """Map everything, then one vectorized mega-batch; returns (s, results)."""
        start = time.perf_counter()
        candidates = mapper.map_reads(reads)
        pairs = [
            mapper.candidate_region_sequence(c, sequences[c.read_name])
            for c in candidates
        ]
        result = BatchExecutor(backend="vectorized").run_alignments(pairs, config)
        return time.perf_counter() - start, result.results

    # Warm-up pass (numpy first-call costs land here, and it yields the
    # reference results the equivalence gate compares against).
    _, reference = measure_offline()
    print(f"reads:                {len(reads)} (~{READ_LENGTH} bp)")
    print(f"candidate pairs:      {len(reference)}")

    # Trials interleave the offline and shared measurements so both see
    # the same background-load profile; the gate takes the best *paired*
    # ratio, which a load spike shifts far less than two independent
    # best-of-N minima measured seconds apart.
    ratios = []
    offline_best = shared_best = float("inf")
    mismatches = 0
    with SharedMemoryExecutor(
        workers=2, config=config, mapper=mapper, tracer=tracer
    ) as executor:
        executor.warm()
        for _ in range(TRIALS):
            offline_seconds, _ = measure_offline()
            pipeline = StreamingPipeline(
                mapper,
                config,
                wave_size=WAVE_SIZE,
                max_pending=WAVE_SIZE,
                executor=executor,
                tracer=tracer,
            )
            start = time.perf_counter()
            mapped_results = pipeline.run_all(reads)
            shared_seconds = time.perf_counter() - start
            if not identical(mapped_results, reference):
                mismatches += 1
            ratios.append(offline_seconds / shared_seconds)
            offline_best = min(offline_best, offline_seconds)
            shared_best = min(shared_best, shared_seconds)
        stats = pipeline.stats
        segment_names = executor.segment_names()
    leaked = [name for name in segment_names if segment_exists(name)]

    ratio = max(ratios)
    check = recorder.check_ratio(ratio)
    print(f"offline vectorized:   {offline_best:.3f}s best of {TRIALS}")
    print(f"shared streaming:     {shared_best:.3f}s best of {TRIALS} "
          f"(waves={stats.waves}, merges={stats.wave_merges})")
    print(f"throughput ratio:     {ratio:.3f}x offline vectorized, best paired of "
          f"{[round(r, 3) for r in ratios]} "
          f"(baseline {check['baseline']:.3f}x, floor {check['floor']:.3f}x)")
    print(f"identical alignments: {mismatches == 0} ({TRIALS} trials)")
    print(f"segments created:     {len(segment_names)}, leaked: {len(leaked)}")

    recorder.append(
        "history",
        {
            "ratio": round(ratio, 4),
            "offline_seconds": round(offline_best, 4),
            "shared_seconds": round(shared_best, 4),
            "reads": len(reads),
            "pairs": len(reference),
            "trials": TRIALS,
        },
        config=config,
    )
    recorder.save()
    trend = recorder.trend("history", "ratio")
    if trend is not None:
        print(f"ratio trend:          {trend['latest']:.3f} vs trailing mean "
              f"{trend['trailing_mean']:.3f} (delta {trend['delta']:+.3f})")

    if tracer is not None:
        trace_path = write_chrome_trace(args.trace, tracer)
        names = {record.name for record in tracer.records()}
        missing = [name for name in REQUIRED_SPANS if name not in names]
        print(f"trace:                {trace_path} "
              f"({len(tracer.records())} events, "
              f"{len(tracer.process_names)} process tracks, "
              f"dropped={tracer.dropped})")
        assert not missing, f"trace is missing required spans: {missing}"

    assert mismatches == 0, "shared streaming disagrees with offline vectorized"
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    assert check["ok"], (
        f"shared streaming regressed >20%: {ratio:.3f}x < {check['floor']:.3f}x "
        f"(baseline {check['baseline']:.3f}x)"
    )


if __name__ == "__main__":
    main()
