#!/usr/bin/env python3
"""E2 smoke: multi-word short-read batches, scalar vs vectorized.

A fast CI gate for the multi-word lane layout: aligns a 160-lane batch of
Illumina-length (150 bp) reads — whose ``GenASMConfig.short_read`` window
occupies **three** ``uint64`` words per lane — with both the serial scalar
loop and the vectorized wave engine, **fails** if any lane disagrees
(CIGAR / edit distance / consumed span), silently falls back to the scalar
path, or reports the wrong word count, and writes the measured throughput
row as a JSON artifact for the bench trajectory.

Run with::

    python examples/e2_smoke.py [output.json]
"""

import json
import math
import sys

from repro.harness.experiments import run_short_read_throughput_experiment

from e1v_smoke import append_traceback_bench_row

#: 128+ lanes is where the lockstep engine's wave amortisation pays off —
#: the regime the ROADMAP's multi-word item targets.
READ_COUNT = 160
READ_LENGTH = 150


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "e2_short_read_throughput.json"
    rows = run_short_read_throughput_experiment(
        read_count=READ_COUNT, read_length=READ_LENGTH, seed=7
    )
    row = rows[0]

    print(f"pairs:                 {row['pairs']} ({READ_LENGTH} bp short reads)")
    print(f"window / words:        {row['window_size']} bp -> {row['words_per_lane']} words/lane")
    print(f"serial:                {row['serial_pairs_per_second']:8.1f} pairs/s")
    print(f"vectorized:            {row['vectorized_pairs_per_second']:8.1f} pairs/s")
    print(f"speedup:               {row['measured']:8.2f}x")
    print(f"identical alignments:  {row['identical_results']} ({row['pairs']} pairs)")
    print(f"all lanes vectorized:  {row['all_lanes_vectorized']}")
    print(f"traceback skip-ahead:  walk_steps={row['tb_walk_steps']} "
          f"saved={row['tb_walk_steps_saved']} runs={row['tb_match_runs']}")

    # Correctness gates the build: equivalence, no silent scalar fallback,
    # the expected 3-word lane width, and the match-run skip-ahead actually
    # saving walk steps on a short-read workload (~4% error rate means long
    # diagonal match runs dominate the traceback).
    assert row["identical_results"], "vectorized backend disagrees with scalar"
    assert row["all_lanes_vectorized"], "short-read batch fell back to scalar"
    assert row["words_per_lane"] == 3, row["words_per_lane"]
    assert row["tb_walk_steps_saved"] > 0, "skip-ahead saved no walk steps"

    # Accurate traceback steps/s needs the engine's own timer (the
    # experiment row only times whole batches), so re-run the same
    # workload through a direct engine and publish the bench row.
    from repro.batch import BatchAlignmentEngine
    from repro.core.config import GenASMConfig
    from repro.harness.experiments import _simulate_short_read_pairs

    engine = BatchAlignmentEngine(GenASMConfig.short_read(READ_LENGTH))
    engine.align_pairs(
        _simulate_short_read_pairs(READ_COUNT, READ_LENGTH, 0.04, 7)
    )
    tb = engine.traceback_stats
    append_traceback_bench_row(
        config=engine.config,
        source="e2_smoke",
        walk_steps=tb["walk_steps"],
        steps_saved=tb["steps_saved"],
        steps_per_second=tb["walk_steps"] / max(1e-9, tb["seconds"]),
        kernel_backend=engine.kernel_backend,
        pairs=READ_COUNT,
    )

    # `paper` is NaN by convention (no corresponding paper number); strict
    # JSON has no NaN literal, so null it in the published artifact.
    artifact = [
        {
            key: (None if isinstance(value, float) and math.isnan(value) else value)
            for key, value in r.items()
        }
        for r in rows
    ]
    with open(output_path, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    print(f"wrote throughput artifact: {output_path}")

    # The timing comparison is advisory on shared CI runners (noisy
    # wall-clock); locally the multi-word engine shows >= 1.5x here.
    if row["measured"] < 1.5:
        print(f"WARNING: vectorized speedup {row['measured']:.2f}x < 1.5x on this run")


if __name__ == "__main__":
    main()
