#!/usr/bin/env python3
"""The paper's long-read pipeline, end to end, at laptop scale.

Simulates a repeat-bearing genome and PacBio-like long reads (the PBSIM2
role), maps the reads with the minimizer mapper reporting all chains (the
minimap2 ``-P`` role), aligns every candidate pair with improved GenASM,
baseline GenASM and the Edlib-like baseline, and prints a per-read summary
plus aggregate speed/traffic statistics.

Run with::

    python examples/long_read_pipeline.py
"""

import time
from collections import defaultdict

from repro import GenASMAligner, GenASMConfig
from repro.baselines import EdlibLikeAligner
from repro.core.metrics import AccessCounter
from repro.genomics import ErrorModel, PacBioSimulator, SyntheticGenome
from repro.mapping import Mapper


def main() -> None:
    print("1. building a synthetic genome with repeats ...")
    genome = SyntheticGenome.random(
        {"chr1": 150_000, "chr2": 80_000},
        seed=7,
        repeat_fraction=0.08,
        repeat_length=1_500,
    )
    print(f"   {len(genome.names())} chromosomes, {genome.total_length:,} bp, "
          f"{len(genome.repeats)} planted repeat copies")

    print("2. simulating PacBio-like long reads (PBSIM2 role) ...")
    simulator = PacBioSimulator(
        mean_length=2_000, std_length=400, error_model=ErrorModel.pacbio_clr(), seed=11
    )
    reads = simulator.simulate(genome, 12)
    mean_error = sum(r.true_edits / r.length for r in reads) / len(reads)
    print(f"   {len(reads)} reads, mean length "
          f"{sum(r.length for r in reads) // len(reads):,} bp, "
          f"mean error rate {mean_error:.1%}")

    print("3. mapping with the all-chains minimizer mapper (minimap2 -P role) ...")
    mapper = Mapper(genome, all_chains=True)
    candidates_by_read = {read.name: mapper.map_read(read) for read in reads}
    total_candidates = sum(len(c) for c in candidates_by_read.values())
    print(f"   {total_candidates} candidate locations "
          f"({total_candidates / len(reads):.1f} per read)")

    print("4. aligning every candidate pair ...")
    improved = GenASMAligner(GenASMConfig(), name="genasm-improved")
    baseline = GenASMAligner(GenASMConfig.baseline(), name="genasm-baseline")
    edlib = EdlibLikeAligner("prefix")

    counters = {"genasm-improved": AccessCounter(), "genasm-baseline": AccessCounter()}
    timings = defaultdict(float)
    rows = []
    for read in reads:
        candidates = candidates_by_read[read.name]
        if not candidates:
            rows.append((read.name, read.length, read.true_edits, "-", "-", 0))
            continue
        best = candidates[0]
        pattern, text = mapper.candidate_region_sequence(best, read.sequence)

        start = time.perf_counter()
        a_imp = improved.align(pattern, text, counter=counters["genasm-improved"])
        timings["genasm-improved"] += time.perf_counter() - start

        start = time.perf_counter()
        baseline.align(pattern, text, counter=counters["genasm-baseline"])
        timings["genasm-baseline"] += time.perf_counter() - start

        start = time.perf_counter()
        a_ed = edlib.align(pattern, text)
        timings["edlib-like"] += time.perf_counter() - start

        rows.append(
            (read.name, read.length, read.true_edits, a_imp.edit_distance,
             a_ed.edit_distance, len(candidates))
        )

    print(f"   {'read':<12}{'len':>6}{'true':>6}{'genasm':>8}{'edlib':>7}{'cands':>7}")
    for name, length, true_edits, genasm_ed, edlib_ed, n_cands in rows:
        print(f"   {name:<12}{length:>6}{true_edits:>6}{genasm_ed:>8}{edlib_ed:>7}{n_cands:>7}")

    print("\n5. aggregate statistics")
    for name, seconds in timings.items():
        print(f"   {name:<18}{seconds * 1e3:8.1f} ms total")
    imp, base = counters["genasm-improved"], counters["genasm-baseline"]
    print(f"   DP-table bytes: baseline {base.total_bytes:,} vs improved {imp.total_bytes:,} "
          f"({base.total_bytes / max(1, imp.total_bytes):.1f}x reduction)")
    print(f"   DP-table accesses: baseline {base.total_accesses:,} vs improved "
          f"{imp.total_accesses:,} ({base.total_accesses / max(1, imp.total_accesses):.1f}x reduction)")


if __name__ == "__main__":
    main()
