#!/usr/bin/env python3
"""E1s smoke: streaming pipeline vs offline map-then-align on 256 reads.

A fast CI gate for the streaming subsystem (:mod:`repro.pipeline`): runs
the E1s experiment on a 256-read simulated workload, **fails** if the
streaming pipeline produces any CIGAR / edit distance / consumed-span or
ordering disagreement with the offline path, or if its end-to-end read
throughput falls below the offline serial harness (mapping included in
both), and prints the per-stage wall times, queue occupancy and wave fill
efficiency from :class:`repro.pipeline.PipelineStats`.

Run with::

    python examples/e1s_smoke.py
"""

from repro.harness.experiments import run_streaming_throughput_experiment
from repro.pipeline.stats import PIPELINE_STAGES

READ_COUNT = 256
READ_LENGTH = 300


def main() -> None:
    rows = run_streaming_throughput_experiment(
        read_count=READ_COUNT, read_length=READ_LENGTH, seed=7
    )
    by_id = {row["id"]: row for row in rows}
    vs_serial = by_id["E1s_streaming_vs_offline_serial"]
    vs_vectorized = by_id["E1s_streaming_vs_offline_vectorized"]

    stages = vs_serial["stage_seconds"]
    stage_line = "  ".join(f"{stage}={stages[stage]:.3f}s" for stage in PIPELINE_STAGES)
    print(f"reads:                  {vs_serial['reads']} (~{READ_LENGTH} bp)")
    print(f"candidate pairs:        {vs_serial['pairs']}")
    print(f"waves:                  {vs_serial['waves']} "
          f"(fill={vs_serial['wave_fill_efficiency']:.3f})")
    print(f"queue occupancy:        max={vs_serial['max_pending']} "
          f"mean={vs_serial['mean_pending']:.1f}")
    print(f"stage wait:             {stage_line}")
    print(f"streaming:              {vs_serial['streaming_reads_per_second']:8.1f} reads/s "
          f"({vs_serial['streaming_pairs_per_second']:.1f} pairs/s)")
    print(f"offline serial:         {vs_serial['offline_serial_reads_per_second']:8.1f} reads/s")
    print(f"offline vectorized:     "
          f"{vs_vectorized['offline_vectorized_reads_per_second']:8.1f} reads/s")
    print(f"vs offline serial:      {vs_serial['measured']:8.2f}x")
    print(f"vs offline vectorized:  {vs_vectorized['measured']:8.2f}x")
    print(f"identical alignments:   {vs_serial['identical_results']} "
          f"({vs_serial['pairs']} pairs, input order)")

    # Correctness gates the build: byte-identical results in input order
    # against both offline backends.
    assert vs_serial["identical_results"], "streaming disagrees with offline serial"
    assert vs_vectorized["identical_results"], "streaming disagrees with offline vectorized"
    # Throughput sanity gates too: overlapped streaming must beat the
    # phase-at-a-time scalar harness end to end (measured margin ~1.6x;
    # failing this means the pipeline overhead regressed badly).
    assert vs_serial["measured"] >= 1.0, (
        f"streaming {vs_serial['measured']:.2f}x slower than the offline serial path"
    )


if __name__ == "__main__":
    main()
