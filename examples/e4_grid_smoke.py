#!/usr/bin/env python3
"""E4g smoke: declarative experiment grid + SAM/PAF emission self-checks.

A CI gate for the two halves of the scenario layer:

* **the grid** — runs a declared backend × window × wave sweep
  (:mod:`repro.harness.grid`) over one simulated long-read workload,
  appends one provenance-stamped row per cell to the checked-in
  ``BENCH_pipeline.json`` trajectory (``grid_history``), and **fails** if
  any cell's alignments differ from the vectorized reference or the
  declared vectorized-vs-serial throughput gate drops below the ``grid``
  section's regression floor;
* **the emitters** — streams the same workload through
  :class:`repro.pipeline.StreamingPipeline` with SAM and PAF sinks and
  **fails** unless the output passes spec-level self-checks (header
  matches the reference, every CIGAR consumes its SEQ exactly, ``NM``
  equals the CIGAR's edit distance, POS is 1-based and in-bounds, PAF
  coordinates are consistent) and is byte-identical to the offline
  ``write_sam``/``write_paf`` path.

Run with::

    python examples/e4_grid_smoke.py [bench_path]
"""

import io
import sys

from repro.core.cigar import Cigar
from repro.harness.grid import ExperimentGrid, GridRunner
from repro.io import PafSink, SamSink, write_paf, write_sam
from repro.mapping.mapper import Mapper
from repro.pipeline import StreamingPipeline

#: The declared sweep (the experiment *is* this config).
GRID_SPEC = {
    "name": "e4_grid_smoke",
    "workloads": {
        "long_read": {"read_count": 96, "read_length": 500, "seed": 7},
    },
    "backends": ["serial", "vectorized", "streaming"],
    "window_sizes": [64],
    "wave_sizes": [64, 256],
    "gate": {
        "metric": "pairs_per_second",
        "cell": {"backend": "vectorized", "wave_size": 256},
        "reference_cell": {"backend": "serial", "wave_size": 256},
    },
}


def _tags(fields):
    out = {}
    for tag in fields:
        name, kind, value = tag.split(":", 2)
        out[name] = int(value) if kind == "i" else value
    return out


def check_sam(text: str, genome) -> int:
    """Spec-level SAM self-checks; returns the alignment-record count."""
    lines = text.splitlines()
    assert lines and lines[0].startswith("@HD\tVN:"), "SAM must open with @HD"
    sq = {}
    for line in lines:
        if line.startswith("@SQ"):
            fields = dict(f.split(":", 1) for f in line.split("\t")[1:])
            sq[fields["SN"]] = int(fields["LN"])
    assert sq == {
        name: genome.chromosome_length(name) for name in genome.names()
    }, "@SQ lines must mirror the reference"
    records = 0
    for line in lines:
        if line.startswith("@"):
            continue
        fields = line.split("\t")
        qname, flag, rname, pos, mapq, cigar_text, _, _, _, seq, _ = fields[:11]
        flag, pos, mapq = int(flag), int(pos), int(mapq)
        if flag & 0x4:
            continue  # unmapped: no placement to check
        cigar = Cigar.from_string(cigar_text)
        assert cigar.pattern_length == len(seq), (
            f"{qname}: CIGAR consumes {cigar.pattern_length} bases, SEQ has {len(seq)}"
        )
        assert 1 <= pos and pos - 1 + cigar.text_length <= sq[rname], (
            f"{qname}: POS {pos} + span {cigar.text_length} leaves {rname}"
        )
        tags = _tags(fields[11:])
        assert tags["NM"] == cigar.edit_distance, (
            f"{qname}: NM {tags['NM']} != CIGAR edit distance {cigar.edit_distance}"
        )
        assert 0 <= mapq <= 60, f"{qname}: MAPQ {mapq} out of range"
        if flag & 0x100:
            assert mapq == 0, f"{qname}: secondary record with MAPQ {mapq}"
        records += 1
    return records


def check_paf(text: str, genome) -> int:
    """Spec-level PAF self-checks; returns the record count."""
    records = 0
    for line in text.splitlines():
        fields = line.split("\t")
        qname = fields[0]
        qlen, qstart, qend = (int(f) for f in fields[1:4])
        tname = fields[5]
        tlen, tstart, tend = (int(f) for f in fields[6:9])
        matches, block, mapq = (int(f) for f in fields[9:12])
        assert 0 <= qstart < qend <= qlen, f"{qname}: bad query interval"
        assert 0 <= tstart < tend <= tlen, f"{qname}: bad target interval"
        assert tlen == genome.chromosome_length(tname)
        assert 0 <= matches <= block, f"{qname}: matches exceed block length"
        assert 0 <= mapq <= 60, f"{qname}: MAPQ {mapq} out of range"
        tags = _tags(fields[12:])
        cigar = Cigar.from_string(tags["cg"])
        assert cigar.text_length == tend - tstart, f"{qname}: cg vs target span"
        assert tags["NM"] == cigar.edit_distance, f"{qname}: NM vs cg edit distance"
        records += 1
    return records


def main() -> None:
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"
    grid = ExperimentGrid.from_dict(GRID_SPEC)
    runner = GridRunner(grid, bench_path)

    rows = runner.run()
    for row in rows:
        print(
            f"{row['workload']:>10s} {row['backend']:>10s} "
            f"wave={row['wave_size']:<4d} {row['pairs']:4d} pairs "
            f"{row['pairs_per_second']:8.1f} pairs/s "
            f"identical={row['identical']}"
        )
    verdict = runner.check(rows)
    gate = verdict["gate"]
    print(
        f"gate: {gate['metric']} {gate['value']:.1f} vs {gate['reference_value']:.1f} "
        f"-> ratio {verdict['ratio']:.2f} (floor {verdict['floor']})"
    )
    trend = runner.recorder.trend(grid.history_key, "pairs_per_second")
    if trend is not None:
        print(
            f"trend: pairs/s latest {trend['latest']:.1f} vs trailing mean "
            f"{trend['trailing_mean']:.1f} (delta {trend['delta']:+.1f})"
        )
    assert verdict["ok"], f"grid gate failed: {verdict}"

    # ---------------------------------------------------------------- #
    # SAM/PAF: stream through the pipeline sink seam, then prove the
    # offline writer produces the same bytes and both pass spec checks.
    workload = runner._workload("long_read")
    qualities = {read.name: read.quality for read in workload.reads}
    mapper = Mapper(workload.genome, all_chains=True)

    sam_stream, paf_stream = io.StringIO(), io.StringIO()
    pipeline = StreamingPipeline(mapper, wave_size=256)
    results = pipeline.run_all(
        workload.reads,
        sink=SamSink(sam_stream, workload.genome, qualities=qualities),
    )
    write_paf(paf_stream, results, workload.genome)

    sam_offline = io.StringIO()
    write_sam(sam_offline, results, workload.genome, qualities=qualities)
    assert sam_stream.getvalue() == sam_offline.getvalue(), (
        "streamed SAM sink output differs from the offline writer"
    )
    paf_sink_stream = io.StringIO()
    StreamingPipeline(mapper, wave_size=256).run_all(
        workload.reads, sink=PafSink(paf_sink_stream, workload.genome)
    )
    assert paf_sink_stream.getvalue() == paf_stream.getvalue(), (
        "streamed PAF sink output differs from the offline writer"
    )

    sam_records = check_sam(sam_stream.getvalue(), workload.genome)
    paf_records = check_paf(paf_stream.getvalue(), workload.genome)
    assert sam_records == paf_records == len(results)
    primaries = sum(
        1
        for line in sam_stream.getvalue().splitlines()
        if not line.startswith("@") and not int(line.split("\t")[1]) & 0x104
    )
    print(
        f"sam/paf: {sam_records} records ({primaries} primary) for "
        f"{len(workload.reads)} reads -- spec checks + offline/streamed parity OK"
    )


if __name__ == "__main__":
    main()
