#!/usr/bin/env python3
"""E3s service smoke: concurrent multi-tenant requests vs offline runs.

The CI gate for the alignment-as-a-service front-end
(:mod:`repro.service`).  ``CLIENTS`` real threads submit mixed-length
workloads concurrently under distinct tenants; the service coalesces
their pairs into shared waves.  The gate **fails** if:

1. any client's service alignments differ from its own independent
   offline ``run_alignments`` call (CIGAR, edit distance, consumed span,
   order) — byte-identical per client, every trial;
2. any tenant exceeds its configured in-flight pair cap;
3. any request's latency goes unrecorded (per-tenant p50/p95/p99 must
   cover every client).

Each run appends the cross-tenant p95 request latency to
``BENCH_pipeline.json``'s ``service_history`` so the checked-in file
doubles as a local trend log (informational — wall-clock latency on a
shared CI box is too noisy for a hard floor; correctness and fairness
are the gates).

Run with::

    python examples/e3_service_smoke.py
"""

import threading
import time
from pathlib import Path

from repro.core.config import GenASMConfig
from repro.harness.experiments import _simulate_short_read_pairs
from repro.parallel.executor import BatchExecutor
from repro.service import AlignmentService
from repro.telemetry import BenchRecorder

CLIENTS = 4
PAIRS_PER_CLIENT = 24
READ_LENGTHS = (120, 250, 400, 700)  # one per client: heterogeneous lanes
ERROR_RATE = 0.05
SEED = 11
TRIALS = 2
WAVE_SIZE = 16
MAX_INFLIGHT = 32
LINGER_SECONDS = 0.002
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def identical(got, reference) -> bool:
    if len(got) != len(reference):
        return False
    return all(
        str(a.cigar) == str(b.cigar)
        and a.edit_distance == b.edit_distance
        and a.text_end == b.text_end
        for a, b in zip(got, reference)
    )


def main() -> None:
    recorder = BenchRecorder(BENCH_PATH)
    config = GenASMConfig()
    workloads = {
        f"tenant-{i}": _simulate_short_read_pairs(
            PAIRS_PER_CLIENT, READ_LENGTHS[i], ERROR_RATE, SEED + i
        )
        for i in range(CLIENTS)
    }
    total_pairs = sum(len(pairs) for pairs in workloads.values())

    # Four independent offline runs — the per-client references the
    # acceptance criterion names (also the numpy warm-up pass).
    reference = {
        tenant: BatchExecutor(backend="vectorized")
        .run_alignments(pairs, config, name=f"offline-{tenant}")
        .results
        for tenant, pairs in workloads.items()
    }
    print(f"clients:              {CLIENTS} ({PAIRS_PER_CLIENT} pairs each, "
          f"read lengths {READ_LENGTHS})")
    print(f"total pairs:          {total_pairs}")

    mismatches = 0
    p95_ms = 0.0
    for trial in range(TRIALS):
        with AlignmentService(
            config,
            wave_size=WAVE_SIZE,
            linger_seconds=LINGER_SECONDS,
            max_inflight_per_tenant=MAX_INFLIGHT,
        ) as service:
            served = {}

            def client(tenant):
                served[tenant] = service.submit(
                    workloads[tenant], tenant=tenant
                ).result(timeout=120)

            threads = [
                threading.Thread(target=client, args=(tenant,))
                for tenant in workloads
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
        stats = service.stats
        for tenant, pairs in workloads.items():
            if not identical(served[tenant], reference[tenant]):
                mismatches += 1
        p95_ms = stats.latency.summary()["p95_ms"]
        print(f"trial {trial}:              {wall:.3f}s wall, "
              f"{total_pairs / wall:.0f} pairs/s, waves={stats.pipeline.waves}, "
              f"fill={stats.pipeline.wave_fill_efficiency:.3f}, "
              f"flushes={stats.pipeline.flushes}")

    over_cap = {
        tenant: peak
        for tenant, peak in stats.max_inflight.items()
        if peak > MAX_INFLIGHT
    }
    latency = stats.latency.as_dict()
    print(f"identical alignments: {mismatches == 0} "
          f"({TRIALS} trials x {CLIENTS} clients)")
    print(f"in-flight caps:       max {dict(stats.max_inflight)} "
          f"(limit {MAX_INFLIGHT})")
    for tenant in sorted(latency):
        s = latency[tenant]
        print(f"latency {tenant:>9}:  p50={s['p50_ms']:.2f}ms "
              f"p95={s['p95_ms']:.2f}ms p99={s['p99_ms']:.2f}ms "
              f"({s['requests']} requests)")

    recorder.append(
        "service_history",
        {
            "p95_ms": round(p95_ms, 3),
            "clients": CLIENTS,
            "pairs": total_pairs,
            "wave_size": WAVE_SIZE,
            "trials": TRIALS,
        },
        config=config,
    )
    recorder.save()
    trend = recorder.trend("service_history", "p95_ms")
    if trend is not None:
        print(f"p95 trend:            {trend['latest']:.3f}ms vs trailing mean "
              f"{trend['trailing_mean']:.3f}ms (delta {trend['delta']:+.3f}ms)")

    assert mismatches == 0, "service results disagree with offline per-client runs"
    assert not over_cap, f"tenants exceeded the in-flight cap: {over_cap}"
    missing = [
        tenant
        for tenant in workloads
        if latency.get(tenant, {}).get("requests", 0) < 1
    ]
    assert not missing, f"latency unrecorded for some tenants: {missing}"


if __name__ == "__main__":
    main()
