#!/usr/bin/env python3
"""E1v smoke: scalar vs vectorized batch backends on a mixed-length workload.

A fast (~5 s) CI gate for the lockstep batch path: aligns a mixed-length
batch with both the serial scalar loop and the vectorized wave engine,
**fails** if the vectorized backend errors or produces any CIGAR / edit
distance / consumed-span disagreement, and prints the measured speedup plus
the wave scheduler's lockstep-efficiency diagnostics.

Run with::

    python examples/e1v_smoke.py
"""

import random
import time
from pathlib import Path

from repro import BatchAlignmentEngine, GenASMAligner, GenASMConfig
from repro.telemetry import BenchRecorder

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

ALPHABET = "ACGT"
#: Mixed window counts are the point: 150 bp reads take 3 windows, 1.2 kb
#: reads take 29 with the default config.
LENGTH_CYCLE = (150, 1200, 300, 900, 600)


def make_mixed_pairs(count: int = 80, seed: int = 7):
    rng = random.Random(seed)
    pairs = []
    for index in range(count):
        length = LENGTH_CYCLE[index % len(LENGTH_CYCLE)]
        pattern = "".join(rng.choice(ALPHABET) for _ in range(length))
        text = list(pattern)
        for _ in range(max(1, length // 12)):
            position = rng.randrange(len(text))
            text[position] = rng.choice(ALPHABET)
        pairs.append((pattern, "".join(text) + "ACGTACGT"))
    return pairs


def main() -> None:
    config = GenASMConfig()
    pairs = make_mixed_pairs()

    scalar = GenASMAligner(config)
    start = time.perf_counter()
    reference = [scalar.align(pattern, text) for pattern, text in pairs]
    scalar_seconds = time.perf_counter() - start

    engine = BatchAlignmentEngine(config)
    start = time.perf_counter()
    vectorized = engine.align_pairs(pairs)
    vectorized_seconds = time.perf_counter() - start

    mismatches = [
        index
        for index, (want, got) in enumerate(zip(reference, vectorized))
        if str(want.cigar) != str(got.cigar)
        or want.edit_distance != got.edit_distance
        or want.text_end != got.text_end
    ]
    assert not mismatches, f"vectorized backend disagrees on pairs {mismatches[:5]}"

    chunked = BatchAlignmentEngine(config, max_lanes=16)
    fifo = BatchAlignmentEngine(config, max_lanes=16, scheduling="fifo")
    sorted_efficiency = chunked.scheduling_stats(pairs)["efficiency"]
    fifo_efficiency = fifo.scheduling_stats(pairs)["efficiency"]

    tb = engine.traceback_stats
    tb_steps_per_second = tb["walk_steps"] / max(1e-9, tb["seconds"])

    speedup = scalar_seconds / max(1e-9, vectorized_seconds)
    print(f"pairs:                 {len(pairs)} (lengths {sorted(set(LENGTH_CYCLE))})")
    print(f"scalar:                {len(pairs) / scalar_seconds:8.1f} pairs/s")
    print(f"vectorized:            {len(pairs) / vectorized_seconds:8.1f} pairs/s")
    print(f"speedup:               {speedup:8.2f}x")
    print(f"lockstep efficiency:   sorted={sorted_efficiency:.3f} fifo={fifo_efficiency:.3f}")
    print(f"traceback:             kernel={engine.kernel_backend} "
          f"walk_steps={tb['walk_steps']} saved={tb['steps_saved']} "
          f"({tb_steps_per_second:,.0f} walk steps/s)")
    print(f"identical alignments:  True ({len(pairs)} pairs)")
    # Correctness gates the build; the timing comparison is advisory only
    # (shared CI runners are too noisy for a hard wall-clock assertion).
    if speedup <= 1.0:
        print(f"WARNING: vectorized speedup {speedup:.2f}x <= 1.0 on this run")
    assert sorted_efficiency >= fifo_efficiency
    # Skip-ahead gate: mutated-copy reads carry long match runs, so the
    # lockstep walk must have skipped per-step iterations.
    assert tb["steps_saved"] > 0, "match-run skip-ahead saved no walk steps"

    append_traceback_bench_row(
        config=config,
        source="e1v_smoke",
        walk_steps=tb["walk_steps"],
        steps_saved=tb["steps_saved"],
        steps_per_second=tb_steps_per_second,
        kernel_backend=engine.kernel_backend,
        pairs=len(pairs),
    )


def append_traceback_bench_row(*, config=None, **row) -> None:
    """Append a traceback-throughput row to ``BENCH_pipeline.json``.

    Informational trend (correctness gates the build); bounded,
    schema-validated, provenance-stamped history via
    :class:`repro.telemetry.bench.BenchRecorder` — same contract as the
    smoke's streaming and service histories.
    """
    recorder = BenchRecorder(BENCH_PATH)
    row["steps_per_second"] = round(row["steps_per_second"], 1)
    recorder.append("traceback_history", row, config=config)
    recorder.save()
    print(f"appended traceback row: {BENCH_PATH.name} "
          f"({row['source']}, {row['steps_per_second']:,.0f} walk steps/s)")


if __name__ == "__main__":
    main()
