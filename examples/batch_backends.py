#!/usr/bin/env python3
"""Batch-align a set of pairs with every BatchExecutor backend.

Demonstrates the three batch backends — the serial loop, the vectorized
lockstep engine (:mod:`repro.batch`) and a 2-worker spawn pool — and checks
they produce identical alignments.

Run with::

    python examples/batch_backends.py

The ``__main__`` guard is required: the process backend uses the
multiprocessing *spawn* start method, whose workers re-import this module.
"""

import random

from repro import BatchExecutor, GenASMConfig

ALPHABET = "ACGT"


def make_pairs(count: int = 24, length: int = 300, seed: int = 0):
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        pattern = "".join(rng.choice(ALPHABET) for _ in range(length))
        text = list(pattern)
        for _ in range(length // 12):
            pos = rng.randrange(len(text))
            text[pos] = rng.choice(ALPHABET)
        pairs.append((pattern, "".join(text) + "ACGTACGT"))
    return pairs


def main() -> None:
    pairs = make_pairs()
    config = GenASMConfig()

    serial = BatchExecutor(backend="serial").run_alignments(
        pairs, config, name="serial-loop"
    )
    vectorized = BatchExecutor(backend="vectorized").run_alignments(
        pairs, config, name="lockstep-soa"
    )
    process = BatchExecutor(workers=2, backend="process").run_alignments(
        pairs, config, name="spawn-pool"
    )

    for batch in (serial, vectorized, process):
        print(
            f"{batch.name:>14} [{batch.backend}]: "
            f"{batch.items} pairs in {batch.elapsed_seconds:.3f}s "
            f"({batch.items_per_second:.1f} pairs/s)"
        )
    for batch in (vectorized, process):
        assert [str(a.cigar) for a in batch.results] == [
            str(a.cigar) for a in serial.results
        ], f"{batch.backend} diverged from serial"
    print("all backends produced identical alignments")
    print(f"vectorized speedup over serial: {vectorized.speedup_over(serial):.2f}x")


if __name__ == "__main__":
    main()
