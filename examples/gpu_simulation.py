#!/usr/bin/env python3
"""GPU execution-model demo: why the improved algorithm is what makes the GPU fast.

Profiles a batch of candidate pairs with the baseline and improved GenASM
kernels, then runs both through the A6000 execution model (and the Xeon CPU
model) at the paper's workload scale.  The output shows the mechanism the
paper describes: the baseline kernel's DP working set spills to global
memory and the kernel becomes bandwidth-bound, while the improved kernel
fits in shared memory and becomes compute-bound.

Run with::

    python examples/gpu_simulation.py
"""

from repro.core.config import GenASMConfig
from repro.gpu import A6000, XEON_GOLD_5118, CpuModel, GenASMKernelSpec, GpuSimulator
from repro.harness.dataset import build_paper_dataset


def describe(result) -> str:
    where = "shared memory" if result.dp_in_shared else "GLOBAL memory"
    return (
        f"{result.kernel:<22} est. {result.estimated_seconds:8.3f} s   "
        f"{result.pairs_per_second:12,.0f} pairs/s   {result.bound}-bound   "
        f"DP state in {where}   occupancy {result.occupancy:.0%}"
    )


def main() -> None:
    print("building a scaled candidate-pair workload ...")
    workload = build_paper_dataset(read_count=8, read_length=1_000, seed=3, max_pairs=8)
    multiplier = workload.scale_to_paper
    print(f"  {workload.pair_count} profiled pairs, extrapolated x{multiplier:,.0f} "
          f"to the paper's 138,929-pair dataset\n")

    improved = GenASMKernelSpec(GenASMConfig(), name="genasm-gpu-improved")
    baseline = GenASMKernelSpec(GenASMConfig.baseline(), name="genasm-gpu-baseline")

    gpu = GpuSimulator(A6000)
    cpu = CpuModel(XEON_GOLD_5118)

    improved_profiles = improved.profile_batch(workload.pairs)
    baseline_profiles = baseline.profile_batch(workload.pairs)

    print(f"simulated on {A6000.name}:")
    gpu_improved = gpu.simulate(
        workload.pairs, improved, profiles=improved_profiles, workload_multiplier=multiplier
    )
    gpu_baseline = gpu.simulate(
        workload.pairs, baseline, profiles=baseline_profiles, workload_multiplier=multiplier
    )
    print(" ", describe(gpu_improved))
    print(" ", describe(gpu_baseline))

    print(f"\nsimulated on {XEON_GOLD_5118.name}:")
    cpu_improved = cpu.simulate(
        workload.pairs, improved, profiles=improved_profiles, workload_multiplier=multiplier
    )
    cpu_baseline = cpu.simulate(
        workload.pairs, baseline, profiles=baseline_profiles, workload_multiplier=multiplier
    )
    print(" ", describe(cpu_improved))
    print(" ", describe(cpu_baseline))

    print("\nspeedups (paper's corresponding numbers in parentheses):")
    print(f"  GPU improved vs GPU baseline : {gpu_improved.speedup_over(gpu_baseline):5.1f}x  (5.9x)")
    print(f"  GPU improved vs CPU improved : {gpu_improved.speedup_over(cpu_improved):5.1f}x  (4.1x)")
    print(f"  CPU improved vs CPU baseline : {cpu_improved.speedup_over(cpu_baseline):5.1f}x  (1.9x)")

    # The functional results are identical regardless of device or variant.
    assert [a.edit_distance for a in gpu_improved.alignments] == [
        a.edit_distance for a in gpu_baseline.alignments
    ]
    print("\nfunctional check: improved and baseline kernels returned identical alignments")


if __name__ == "__main__":
    main()
