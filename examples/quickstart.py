#!/usr/bin/env python3
"""Quickstart: align a read against a reference span with GenASM.

Run with::

    python examples/quickstart.py
"""

from repro import GenASMAligner, GenASMConfig
from repro.core.alignment import pretty_alignment


def main() -> None:
    # A short "read" with a substitution, an insertion and a deletion relative
    # to the reference span it came from.
    reference = "ACGTACGTGGATCCAGTTACGGATTCAGGCATCGAATTGCCAGTACGTACGGTTAACGGTACGT"
    read = "ACGTACGTGGATCAAGTTACGGATTCAGGCTCGAATTGCCAGGTACGTACGGTTAACGGTACGT"

    # The default configuration enables all three algorithmic improvements of
    # the IPPS 2022 paper; GenASMConfig.baseline() is MICRO-2020 GenASM.
    improved = GenASMAligner(GenASMConfig())
    baseline = GenASMAligner(GenASMConfig.baseline())

    alignment = improved.align(read, reference)
    print("CIGAR        :", alignment.cigar)
    print("edit distance:", alignment.edit_distance)
    print("identity     : {:.1%}".format(alignment.identity))
    print("text span    :", alignment.text_span)
    print()
    print(pretty_alignment(alignment))
    print()

    # Both algorithms produce the same alignment; the improved one stores and
    # touches far less DP state (this is the paper's contribution).
    base = baseline.align(read, reference)
    assert base.edit_distance == alignment.edit_distance
    print("DP bytes touched  (baseline):", base.metadata["dp_bytes"])
    print("DP bytes touched  (improved):", alignment.metadata["dp_bytes"])
    print(
        "reduction        : {:.1f}x".format(
            base.metadata["dp_bytes"] / alignment.metadata["dp_bytes"]
        )
    )

    # Distance-only queries (no traceback storage) are even cheaper.
    print("filter distance  :", improved.edit_distance(read, reference))


if __name__ == "__main__":
    main()
