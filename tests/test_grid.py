"""Tests for the declarative experiment-grid runner (repro.harness.grid)."""

import json

import pytest

from repro.harness.grid import GRID_AXES, ExperimentGrid, GridCell, GridRunner
from repro.telemetry.bench import BenchRecorder

TINY_WORKLOAD = {
    "read_count": 6,
    "read_length": 200,
    "genome_length": 20_000,
    "seed": 1,
}


def tiny_spec(**overrides):
    spec = {
        "name": "unit_grid",
        "workloads": {"tiny": dict(TINY_WORKLOAD)},
        "backends": ["serial", "vectorized"],
        "window_sizes": [64],
        "wave_sizes": [32],
        "gate": {
            "metric": "pairs_per_second",
            "cell": {"backend": "vectorized"},
            "reference_cell": {"backend": "serial"},
        },
    }
    spec.update(overrides)
    return spec


@pytest.fixture
def bench_path(tmp_path):
    path = tmp_path / "BENCH_grid.json"
    path.write_text(
        json.dumps(
            {
                "grid": {
                    "benchmark": "unit grid",
                    # Correctness (identical alignments) is the real gate
                    # here; the throughput floor is set far below any
                    # plausible ratio so timing noise cannot flake the test.
                    "regression_threshold": 0.01,
                    "baseline": {"date": "2026-08-07", "ratio": 1.0},
                }
            },
            indent=2,
        )
        + "\n"
    )
    return path


class TestExperimentGridSpec:
    def test_from_dict_roundtrip(self):
        grid = ExperimentGrid.from_dict(tiny_spec())
        assert grid.name == "unit_grid"
        assert grid.backends == ["serial", "vectorized"]
        assert grid.history_key == "grid_history"
        assert grid.section == "grid"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown grid spec keys"):
            ExperimentGrid.from_dict(tiny_spec(typo_axis=[1]))

    def test_name_and_workloads_required(self):
        with pytest.raises(ValueError, match="'name' and 'workloads'"):
            ExperimentGrid.from_dict({"workloads": {"w": {}}})
        with pytest.raises(ValueError):
            ExperimentGrid.from_dict({"name": "x"})

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError, match="at least one workload"):
            ExperimentGrid(name="x", workloads={})

    def test_history_key_must_end_in_history(self):
        with pytest.raises(ValueError, match="must end in 'history'"):
            ExperimentGrid.from_dict(tiny_spec(history_key="grid_rows"))

    def test_gate_keys_validated(self):
        with pytest.raises(ValueError, match="missing"):
            ExperimentGrid.from_dict(
                tiny_spec(gate={"metric": "pairs_per_second"})
            )

    def test_cells_cartesian_product_in_axis_order(self):
        grid = ExperimentGrid.from_dict(
            tiny_spec(backends=["serial", "vectorized"], wave_sizes=[32, 64])
        )
        cells = grid.cells()
        assert len(cells) == 4
        assert cells[0] == GridCell("tiny", "serial", 64, 32)
        assert cells[-1] == GridCell("tiny", "vectorized", 64, 64)

    def test_config_for_clamps_overlap(self):
        grid = ExperimentGrid.from_dict(tiny_spec())
        base_overlap = grid.base_config.window_overlap
        assert grid.config_for(64).window_overlap == min(base_overlap, 63)
        assert grid.config_for(8).window_overlap == min(base_overlap, 7)
        assert grid.config_for(8).window_size == 8

    def test_select_cell(self):
        grid = ExperimentGrid.from_dict(tiny_spec())
        cell = grid.select_cell({"backend": "serial"})
        assert cell.backend == "serial"
        with pytest.raises(ValueError, match="unknown grid axes"):
            grid.select_cell({"lane_count": 32})
        with pytest.raises(ValueError, match="matches 2 cells"):
            grid.select_cell({"window_size": 64})


class TestGridRunner:
    @pytest.fixture(scope="class")
    def run_result(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_grid.json"
        path.write_text(
            json.dumps(
                {
                    "grid": {
                        "regression_threshold": 0.01,
                        "baseline": {"date": "2026-08-07", "ratio": 1.0},
                    }
                }
            )
            + "\n"
        )
        grid = ExperimentGrid.from_dict(tiny_spec())
        runner = GridRunner(grid, path)
        rows = runner.run()
        return grid, runner, rows, path

    def test_one_row_per_cell_with_axis_values(self, run_result):
        grid, _, rows, _ = run_result
        assert len(rows) == len(grid.cells())
        for row, cell in zip(rows, grid.cells()):
            assert all(row[axis] == getattr(cell, axis) for axis in GRID_AXES)
            assert row["pairs"] > 0
            assert row["pairs_per_second"] > 0
            assert row["identical"] is True
            assert 0.0 <= row["mean_identity"] <= 1.0

    def test_rows_persisted_with_provenance(self, run_result):
        grid, _, rows, path = run_result
        data = json.loads(path.read_text())
        stored = data[grid.history_key]
        assert len(stored) == len(rows)
        for row in stored:
            assert row["date"] and row["git_sha"]
            assert row["config_fingerprint"]
            assert row["grid"] == grid.name

    def test_check_passes_gate(self, run_result):
        _, runner, rows, _ = run_result
        verdict = runner.check(rows)
        assert verdict["ok"] is True
        assert verdict["non_identical"] == 0
        gate = verdict["gate"]
        assert gate["metric"] == "pairs_per_second"
        assert gate["value"] > 0 and gate["reference_value"] > 0
        assert verdict["floor"] == pytest.approx(0.01)

    def test_check_fails_on_non_identical_cell(self, run_result):
        _, runner, rows, _ = run_result
        broken = [dict(row) for row in rows]
        broken[0]["identical"] = False
        verdict = runner.check(broken)
        assert verdict["ok"] is False
        assert verdict["non_identical"] == 1

    def test_check_without_gate(self, run_result):
        _, _, rows, path = run_result
        grid = ExperimentGrid.from_dict(tiny_spec(gate=None))
        verdict = GridRunner(grid, path).check(rows)
        assert verdict == {"ok": True, "gate": None, "non_identical": 0}

    def test_run_without_append_leaves_file_untouched(self, bench_path):
        grid = ExperimentGrid.from_dict(
            tiny_spec(backends=["vectorized"], gate=None)
        )
        before = bench_path.read_text()
        rows = GridRunner(grid, bench_path).run(append=False)
        assert len(rows) == 1
        assert bench_path.read_text() == before

    def test_recorder_instance_accepted(self, bench_path):
        recorder = BenchRecorder(bench_path)
        grid = ExperimentGrid.from_dict(tiny_spec(backends=["serial"], gate=None))
        runner = GridRunner(grid, recorder)
        assert runner.recorder is recorder

    def test_section_scoped_floor(self, bench_path):
        recorder = BenchRecorder(bench_path)
        assert recorder.regression_floor() is None  # nothing at the root
        assert recorder.regression_floor(section="grid") == pytest.approx(0.01)
        verdict = recorder.check_ratio(0.005, section="grid")
        assert verdict["ok"] is False
        assert recorder.check_ratio(0.5, section="grid")["ok"] is True
