#!/usr/bin/env python3
"""Regenerate the short-read section of ``golden_corpus.json``.

The long-read ``entries`` section (default ``GenASMConfig``, simulated
600 bp reads plus adversarial extras) is preserved verbatim from the
checked-in file — it pins PR-2 behaviour and must never drift.  This
script (re)builds the ``short_read_entries`` section: Illumina-length
pairs aligned with the scalar reference under
``GenASMConfig.short_read(150)``, whose 150-character windows occupy
three ``uint64`` words per lane in the vectorized engine.  The pair set
deliberately straddles the 64-bit word boundaries (64/65/128/129 bp) and
includes multi-window, all-match and budget-doubling adversarial shapes.

Run from the repository root::

    PYTHONPATH=src python tests/data/regenerate_golden_corpus.py
"""

from __future__ import annotations

import json
import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from tests.conftest import mutate, random_dna

CORPUS_PATH = pathlib.Path(__file__).parent / "golden_corpus.json"
SHORT_READ_LENGTH = 150
SEED = 150


def short_read_pairs():
    """Deterministic short-read (pattern, text) pairs, word-boundary heavy."""
    rng = random.Random(SEED)
    pairs = []
    # Mutated-copy reads across word counts 1, 2 and 3 per lane.
    for length, edits in [
        (150, 7),   # 3 words, nominal Illumina read
        (150, 0),   # 3 words, error-free
        (149, 5),   # 3 words, one under the window
        (151, 6),   # 3 words + a second window
        (128, 6),   # exactly 2 words
        (129, 4),   # first bit of word 2
        (64, 3),    # exactly 1 word
        (65, 3),    # first bit of word 1
        (63, 2),    # 1 word, one under the boundary
        (40, 1),    # short fragment
        (300, 15),  # 2 windows of 150
    ]:
        pattern = random_dna(rng, length)
        pairs.append((pattern, mutate(rng, pattern, edits) + random_dna(rng, 6)))
    # Adversarial shapes: pure match run, heavy-error budget doubling,
    # homopolymer (every tie-break live), text exhausted mid-read.
    pairs.append(("ACGT" * 37 + "AC", "ACGT" * 37 + "ACACGT"))
    pairs.append(("A" * 150, "T" * 50))
    pairs.append(("A" * 130, "A" * 124))
    pairs.append(("ACGT" * 50, "ACGTACGT"))
    return pairs


def main() -> None:
    with open(CORPUS_PATH) as fh:
        corpus = json.load(fh)

    config = GenASMConfig.short_read(SHORT_READ_LENGTH)
    aligner = GenASMAligner(config)
    entries = []
    for pattern, text in short_read_pairs():
        alignment = aligner.align(pattern, text)
        entries.append(
            {
                "pattern": pattern,
                "text": text,
                "cigar": str(alignment.cigar),
                "edit_distance": alignment.edit_distance,
                "text_end": alignment.text_end,
            }
        )

    corpus["short_read_description"] = (
        "Short-read golden corpus: scalar GenASM reference alignments of "
        f"deterministic Illumina-length pairs (seed={SEED}, word-boundary "
        "lengths 40..300) under GenASMConfig.short_read(150) — the "
        "3-words-per-lane configuration of the multi-word vectorized engine."
    )
    corpus["short_read_config"] = f"short_read({SHORT_READ_LENGTH})"
    corpus["short_read_entries"] = entries

    with open(CORPUS_PATH, "w") as fh:
        json.dump(corpus, fh, indent=1)
        fh.write("\n")
    print(f"wrote {len(entries)} short-read entries to {CORPUS_PATH}")


if __name__ == "__main__":
    main()
