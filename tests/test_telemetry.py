"""Tests for the unified telemetry layer (trace, metrics, exporters, bench).

Covers the :class:`~repro.telemetry.trace.Tracer` span/instant/absorb
surface (deterministic under an injected clock) and the no-op
:data:`NULL_TRACER` contract, the :class:`MetricsRegistry` metric types
and their idempotent snapshot-publishing semantics, the Chrome-trace and
Prometheus exporters, the ``BENCH_*.json`` perf-trajectory recorder
(schema validation, provenance stamps, round-trip stability, trends, the
regression gate), the telemetry satellites of this PR — the
``PipelineStats.timer`` stage validation and the per-tenant
``ServiceStats.record_submit`` accounting — plus the ``as_dict()`` ↔
registry-snapshot consistency contract for every published metric and
end-to-end tracing through the streaming pipeline and the service.
"""

from __future__ import annotations

import json

import pytest

from repro.batch.engine import BatchAlignmentEngine
from repro.pipeline import PIPELINE_STAGES, PipelineStats, StreamingPipeline
from repro.pipeline.stats import FLUSH_CAUSES
from repro.service import AlignmentService
from repro.service.stats import ServiceStats
from repro.telemetry import (
    NULL_TRACER,
    BenchRecorder,
    BenchSchemaError,
    MetricsRegistry,
    SpanRecord,
    Tracer,
    chrome_trace,
    config_fingerprint,
    get_tracer,
    metric_key,
    prometheus_text,
    validate_bench,
    write_chrome_trace,
)
from repro.telemetry import summary as registry_summary
from repro.telemetry.bench import main as bench_main


class FakeClock:
    """Deterministic monotonic clock: each call advances by ``step``."""

    def __init__(self, start: float = 100.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# --------------------------------------------------------------------------- #
# Trace layer
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_span_records_interval_with_attrs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("align.wave", wave_id=3, lanes=64):
            pass
        (record,) = tracer.records()
        assert record.name == "align.wave"
        assert record.kind == "span"
        assert record.end - record.start == pytest.approx(1.0)
        assert record.attrs == {"wave_id": 3, "lanes": 64}
        assert record.pid == tracer.pid

    def test_instant_is_a_point_event(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("wave.flush", cause="timeout")
        (record,) = tracer.records()
        assert record.kind == "instant"
        assert record.start == record.end
        assert record.attrs["cause"] == "timeout"

    def test_record_span_uses_explicit_timestamps(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record_span("service.request", start=5.0, end=9.5, tenant="a")
        (record,) = tracer.records()
        assert (record.start, record.end) == (5.0, 9.5)
        assert record.duration == pytest.approx(4.5)

    def test_absorb_merges_foreign_records_and_names_tracks(self):
        driver = Tracer(clock=FakeClock(), process_name="driver")
        worker = SpanRecord(
            name="worker.align.wave", start=1.0, end=2.0, pid=99999, tid=1
        )
        driver.absorb([worker], process_name="shm-worker-99999")
        assert worker in driver.records()
        assert driver.process_names[99999] == "shm-worker-99999"
        assert driver.process_names[driver.pid] == "driver"

    def test_drain_empties_the_buffer(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("one")
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.records() == []
        assert len(tracer) == 0

    def test_buffer_limit_drops_oldest_and_counts(self):
        tracer = Tracer(clock=FakeClock(), buffer_limit=3)
        for index in range(5):
            tracer.instant(f"event-{index}")
        names = [record.name for record in tracer.records()]
        assert names == ["event-2", "event-3", "event-4"]
        assert tracer.dropped == 2

    def test_null_tracer_is_inert_and_allocation_free(self):
        span_a = NULL_TRACER.span("anything", key=1)
        span_b = NULL_TRACER.span("else")
        assert span_a is span_b  # one shared no-op context manager
        with span_a:
            pass
        NULL_TRACER.instant("x")
        NULL_TRACER.record_span("y", start=0.0, end=1.0)
        NULL_TRACER.absorb([])
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.drain() == []
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.enabled

    def test_get_tracer_normalises_none(self):
        assert get_tracer(None) is NULL_TRACER
        tracer = Tracer(clock=FakeClock())
        assert get_tracer(tracer) is tracer


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {}) == "m"
        assert metric_key("m", {"b": 2, "a": 1}) == 'm{a="1",b="2"}'

    def test_counter_inc_and_idempotent_set_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("pairs_total")
        counter.inc()
        counter.inc(4)
        assert registry.get("pairs_total") == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.set_total(42)
        counter.set_total(42)  # re-publishing never double-counts
        assert registry.get("pairs_total") == 42

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3.5)
        gauge.inc(1.5)
        assert registry.get("depth") == 5.0

    def test_histogram_observe_and_load(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lanes", buckets=(2, 8))
        for value in (1, 2, 5, 100):
            histogram.observe(value)
        value = histogram.value()
        assert value["count"] == 4
        assert value["sum"] == 108
        assert value["buckets"] == [(2, 2), (8, 3)]
        histogram.load([4, 4])  # snapshot semantics: replaces, no double count
        assert histogram.value()["count"] == 2

    def test_labelled_metrics_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("flushes_total", cause="size").inc(2)
        registry.counter("flushes_total", cause="final").inc(1)
        assert registry.get("flushes_total", cause="size") == 2
        assert registry.get("flushes_total", cause="final") == 1

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_snapshot_uses_canonical_keys(self):
        registry = MetricsRegistry()
        registry.counter("a_total").set_total(1)
        registry.gauge("b", tenant="x").set(2)
        snapshot = registry.snapshot()
        assert snapshot["a_total"] == 1
        assert snapshot['b{tenant="x"}'] == 2


# --------------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------------- #
class TestExporters:
    def _tracer(self) -> Tracer:
        tracer = Tracer(clock=FakeClock(), process_name="driver")
        with tracer.span("stage.align", waves=1):
            pass
        tracer.instant("wave.flush", cause="final")
        return tracer

    def test_chrome_trace_structure(self):
        tracer = self._tracer()
        document = chrome_trace(tracer)
        events = document["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert meta[0]["args"]["name"] == "driver"
        (span,) = spans
        assert span["name"] == "stage.align"
        assert span["ts"] == pytest.approx(0.0)  # rebased to earliest event
        assert span["dur"] == pytest.approx(1e6)  # 1 fake-clock second in µs
        assert span["args"] == {"waves": 1}
        (instant,) = instants
        assert instant["s"] == "t"

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", self._tracer())
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == 3

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("reads_total", "reads ingested").set_total(7)
        registry.gauge("fill", tenant="a").set(0.5)
        registry.histogram("lanes", buckets=(2,)).observe(1)
        text = prometheus_text(registry)
        assert "# HELP reads_total reads ingested" in text
        assert "# TYPE reads_total counter" in text
        assert "reads_total 7" in text
        assert 'fill{tenant="a"} 0.5' in text
        assert 'lanes_bucket{le="2"} 1' in text
        assert 'lanes_bucket{le="+Inf"} 1' in text
        assert "lanes_count 1" in text

    def test_summary_lists_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("a_total").set_total(3)
        registry.histogram("h", buckets=(1,)).observe(2)
        text = registry_summary(registry)
        assert "a_total  3" in text
        assert "count=1" in text


# --------------------------------------------------------------------------- #
# Bench recorder
# --------------------------------------------------------------------------- #
def _bench_file(tmp_path, data):
    path = tmp_path / "BENCH_test.json"
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


GOOD_BENCH = {
    "benchmark": "unit",
    "regression_threshold": 0.8,
    "baseline": {"date": "2026-01-01", "ratio": 0.9},
    "history": [{"date": "2026-01-02T00:00:00", "ratio": 0.95}],
}


class TestBench:
    def test_validate_accepts_the_real_trajectory(self):
        from pathlib import Path

        real = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
        validate_bench(json.loads(real.read_text()))

    def test_validate_rejects_bad_rows(self):
        with pytest.raises(BenchSchemaError) as err:
            validate_bench({"history": [{"ratio": 1.0}]})  # no date
        assert "date" in str(err.value)
        with pytest.raises(BenchSchemaError):
            validate_bench({"history": [{"date": "2026-01-01", "nested": {}}]})
        with pytest.raises(BenchSchemaError):
            validate_bench({"history": "not-a-list"})
        with pytest.raises(BenchSchemaError):
            validate_bench({"regression_threshold": 1.5})
        with pytest.raises(BenchSchemaError):
            validate_bench([])

    def test_append_stamps_provenance_and_truncates(self, tmp_path):
        recorder = BenchRecorder(_bench_file(tmp_path, GOOD_BENCH))
        stored = recorder.append(
            "history", {"ratio": 1.0}, config={"wave_size": 64}, limit=2
        )
        assert stored["git_sha"]  # "unknown" at worst, never empty
        assert stored["config_fingerprint"] == config_fingerprint({"wave_size": 64})
        assert "date" in stored
        recorder.append("history", {"ratio": 1.1}, limit=2)
        history = recorder.history("history")
        assert len(history) == 2  # truncated to the newest rows
        assert [row["ratio"] for row in history] == [1.0, 1.1]

    def test_round_trip_leaves_existing_histories_unchanged(self, tmp_path):
        path = _bench_file(tmp_path, GOOD_BENCH)
        recorder = BenchRecorder(path)
        recorder.append("history", {"ratio": 1.0})
        recorder.save()
        reloaded = BenchRecorder(path)  # validate → append → re-validate
        assert reloaded.history("history")[0] == GOOD_BENCH["history"][0]
        assert reloaded.data["baseline"] == GOOD_BENCH["baseline"]

    def test_trend_compares_latest_to_trailing_mean(self, tmp_path):
        recorder = BenchRecorder(_bench_file(tmp_path, GOOD_BENCH))
        assert recorder.trend("history", "ratio") is None  # one row: no window
        for ratio in (1.0, 1.1, 1.5):
            recorder.append("history", {"ratio": ratio})
        trend = recorder.trend("history", "ratio", window=3)
        assert trend["latest"] == pytest.approx(1.5)
        assert trend["trailing_mean"] == pytest.approx((0.95 + 1.0 + 1.1) / 3)
        assert trend["delta"] == pytest.approx(1.5 - (0.95 + 1.0 + 1.1) / 3)

    def test_regression_gate(self, tmp_path):
        recorder = BenchRecorder(_bench_file(tmp_path, GOOD_BENCH))
        assert recorder.regression_floor() == pytest.approx(0.72)
        assert recorder.check_ratio(0.73)["ok"]
        failed = recorder.check_ratio(0.71)
        assert not failed["ok"]
        assert failed["floor"] == pytest.approx(0.72)
        assert failed["baseline"] == pytest.approx(0.9)

    def test_save_refuses_invalid_mutation(self, tmp_path):
        recorder = BenchRecorder(_bench_file(tmp_path, GOOD_BENCH))
        recorder.data["history"].append({"ratio": 1.0})  # row without a date
        with pytest.raises(BenchSchemaError):
            recorder.save()

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = _bench_file(tmp_path, GOOD_BENCH)
        assert bench_main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"history": [{"ratio": 1.0}]}))
        assert bench_main([str(bad)]) == 1
        assert bench_main([str(tmp_path / "missing.json")]) == 2

    def test_config_fingerprint_stable_and_sensitive(self):
        from repro.core.config import GenASMConfig

        base = GenASMConfig()
        assert config_fingerprint(base) == config_fingerprint(GenASMConfig())
        assert config_fingerprint(base) != config_fingerprint(
            GenASMConfig(window_size=32)
        )
        assert len(config_fingerprint(base)) == 12


# --------------------------------------------------------------------------- #
# Stats satellites: timer validation, per-tenant submits, summary strings
# --------------------------------------------------------------------------- #
class TestStatsSatellites:
    def test_timer_rejects_unknown_stage(self):
        stats = PipelineStats(wave_size=4)
        with pytest.raises(ValueError, match="unknown pipeline stage"):
            with stats.timer("not-a-stage"):
                pass
        # Known stages accumulate as before.
        with stats.timer("align"):
            pass
        assert stats.stage_seconds["align"] >= 0.0

    def test_record_submit_tracks_per_tenant_counts(self):
        stats = ServiceStats()
        stats.record_submit("alpha", 5)
        stats.record_submit("alpha", 3)
        stats.record_submit("beta", 2)
        assert stats.tenant_requests_submitted == {"alpha": 2, "beta": 1}
        assert stats.tenant_pairs_submitted == {"alpha": 8, "beta": 2}
        assert stats.requests_submitted == 3
        assert stats.pairs_submitted == 10
        view = stats.as_dict()["tenant_submitted"]
        assert view == {
            "alpha": {"requests": 2, "pairs": 8},
            "beta": {"requests": 1, "pairs": 2},
        }

    def test_pipeline_summary_string(self):
        stats = PipelineStats(wave_size=4)
        stats.reads = 10
        stats.candidates = 12
        stats.record_wave(4, "size")
        stats.aligned = 4
        stats.wall_seconds = 2.0
        text = stats.summary()
        assert "reads=10 candidates=12 waves=1 aligned=4" in text
        assert "wall=2.000s" in text
        assert "(5.0 reads/s, 2.0 pairs/s)" in text
        assert "fill=1.000 full=1/1" in text
        for stage in PIPELINE_STAGES:
            assert f"{stage}=" in text

    def test_service_summary_shows_submitted_vs_completed(self):
        stats = ServiceStats(pipeline=PipelineStats(wave_size=4))
        stats.record_submit("alpha", 4)
        stats.record_submit("alpha", 4)
        stats.record_request_done("alpha", 0, 0.010, 4)
        text = stats.summary()
        assert "requests=1/2 pairs=4/8" in text
        # Per-tenant line: completed/submitted so fairness gaps are visible.
        assert "tenant alpha: requests=1/2" in text
        assert "p50=10.00ms" in text
        # The cross-tenant "*" aggregate has no submitted-side breakdown.
        assert "tenant *: requests=1 " in text


# --------------------------------------------------------------------------- #
# as_dict() ↔ registry-snapshot consistency for every published metric
# --------------------------------------------------------------------------- #
def _expected_pipeline_entries(stats: PipelineStats) -> dict:
    d = stats.as_dict()
    expected = {
        "pipeline_reads_total": d["reads"],
        "pipeline_candidates_total": d["candidates"],
        "pipeline_waves_total": d["waves"],
        "pipeline_aligned_total": d["aligned"],
        "pipeline_full_waves_total": d["full_waves"],
        "pipeline_wave_merges_total": d["wave_merges"],
        "pipeline_merged_lanes_total": d["merged_lanes"],
        "pipeline_tb_walk_steps_total": d["tb_walk_steps"],
        "pipeline_tb_walk_steps_saved_total": d["tb_walk_steps_saved"],
        "pipeline_tb_match_runs_total": d["tb_match_runs"],
        "pipeline_tb_match_run_ops_total": d["tb_match_run_ops"],
        "pipeline_wave_size": d["wave_size"],
        "pipeline_wave_fill_efficiency": d["wave_fill_efficiency"],
        "pipeline_wall_seconds": d["wall_seconds"],
        "pipeline_max_pending": d["max_pending"],
        "pipeline_mean_pending": d["mean_pending"],
        "pipeline_max_reorder_buffer": d["max_reorder_buffer"],
        "pipeline_reorder_bound": d["reorder_bound"],
        "pipeline_reads_per_second": d["reads_per_second"],
        "pipeline_pairs_per_second": d["pairs_per_second"],
    }
    for stage, seconds in d["stage_seconds"].items():
        expected[f'pipeline_stage_seconds_total{{stage="{stage}"}}'] = seconds
    for cause, count in d["flushes"].items():
        expected[f'pipeline_flushes_total{{cause="{cause}"}}'] = count
    return expected


class TestPublishConsistency:
    def _run_pipeline(self) -> PipelineStats:
        pipeline = StreamingPipeline(wave_size=4, max_pending=8)
        pipeline.align_pairs([("ACGTACGT", "ACGTTCGT")] * 10)
        return pipeline.stats

    def test_pipeline_as_dict_matches_snapshot_for_every_metric(self):
        stats = self._run_pipeline()
        registry = MetricsRegistry()
        stats.publish(registry)
        snapshot = registry.snapshot()
        expected = _expected_pipeline_entries(stats)
        for key, value in expected.items():
            assert snapshot[key] == pytest.approx(value), key
        # Every published metric is covered: nothing in the snapshot is
        # unaccounted for (the lane histogram is checked separately below).
        unchecked = set(snapshot) - set(expected) - {"pipeline_wave_lanes"}
        assert not unchecked
        lanes = snapshot["pipeline_wave_lanes"]
        assert lanes["count"] == len(stats.wave_lane_counts)
        assert lanes["sum"] == sum(stats.wave_lane_counts)

    def test_publish_is_idempotent(self):
        stats = self._run_pipeline()
        registry = MetricsRegistry()
        stats.publish(registry)
        first = registry.snapshot()
        stats.publish(registry)
        assert registry.snapshot() == first

    def test_service_as_dict_matches_snapshot_for_every_metric(self):
        stats = ServiceStats(pipeline=PipelineStats(wave_size=4))
        stats.record_submit("alpha", 4)
        stats.record_submit("beta", 2)
        stats.record_admitted("alpha", 3)
        stats.record_request_done("alpha", 0, 0.010, 4)
        registry = MetricsRegistry()
        stats.publish(registry)
        snapshot = registry.snapshot()
        d = stats.as_dict()
        expected = {
            "service_requests_submitted_total": d["requests_submitted"],
            "service_requests_completed_total": d["requests_completed"],
            "service_pairs_submitted_total": d["pairs_submitted"],
            "service_pairs_admitted_total": d["pairs_admitted"],
            "service_pairs_completed_total": d["pairs_completed"],
        }
        for tenant, sub in d["tenant_submitted"].items():
            expected[
                f'service_tenant_requests_submitted_total{{tenant="{tenant}"}}'
            ] = sub["requests"]
            expected[
                f'service_tenant_pairs_submitted_total{{tenant="{tenant}"}}'
            ] = sub["pairs"]
        for tenant, peak in d["max_inflight"].items():
            expected[f'service_max_inflight_pairs{{tenant="{tenant}"}}'] = peak
        for tenant, latency in d["latency"].items():
            expected[
                f'service_tenant_requests_completed_total{{tenant="{tenant}"}}'
            ] = latency["requests"]
            for quantile in ("p50", "p95", "p99", "mean", "max"):
                expected[
                    "service_request_latency_ms"
                    f'{{quantile="{quantile}",tenant="{tenant}"}}'
                ] = latency[f"{quantile}_ms"]
        # The "*" aggregate publishes latency but is not a real tenant, so
        # it has no submitted/completed counters of its own.
        expected.pop('service_tenant_requests_completed_total{tenant="*"}')
        for key, value in expected.items():
            assert snapshot[key] == pytest.approx(value), key
        unchecked = {
            key
            for key in set(snapshot) - set(expected)
            if key.startswith("service_")
        }
        assert not unchecked

    def test_engine_publish_metrics(self):
        engine = BatchAlignmentEngine()
        engine.align_pairs([("ACGTACGT", "ACGTTCGT")] * 4)
        registry = MetricsRegistry()
        engine.publish_metrics(registry)
        snapshot = registry.snapshot()
        stats = engine.traceback_stats
        assert snapshot["engine_tb_walk_steps_total"] == stats["walk_steps"]
        assert snapshot["engine_tb_steps_saved_total"] == stats["steps_saved"]
        assert snapshot["engine_tb_match_runs_total"] == stats["match_runs"]
        assert snapshot["engine_tb_match_run_ops_total"] == stats["match_run_ops"]
        assert snapshot["engine_tb_seconds"] == pytest.approx(stats["seconds"])
        backend = engine.kernel_backend
        assert snapshot[f'engine_kernel_backend_info{{backend="{backend}"}}'] == 1


# --------------------------------------------------------------------------- #
# End-to-end tracing through the pipeline and the service
# --------------------------------------------------------------------------- #
class TestTracingIntegration:
    PAIRS = [("ACGTACGT", "ACGTTCGT")] * 10

    def test_pipeline_spans_cover_the_stage_tree(self):
        tracer = Tracer()
        pipeline = StreamingPipeline(wave_size=4, tracer=tracer)
        results = pipeline.align_pairs(self.PAIRS)
        assert len(results) == len(self.PAIRS)
        names = {record.name for record in tracer.records()}
        for required in (
            "stage.batch",
            "stage.align",
            "stage.emit",
            "align.wave",
            "wave.flush",
            "pipeline.run",
        ):
            assert required in names, required
        run = [r for r in tracer.records() if r.name == "pipeline.run"]
        assert run[0].attrs["candidates"] == len(self.PAIRS)
        waves = [r for r in tracer.records() if r.name == "align.wave"]
        assert [w.attrs["wave_id"] for w in waves] == list(range(len(waves)))

    def test_pipeline_traced_results_match_untraced(self):
        traced = StreamingPipeline(wave_size=4, tracer=Tracer())
        plain = StreamingPipeline(wave_size=4)
        got = traced.align_pairs(self.PAIRS)
        want = plain.align_pairs(self.PAIRS)
        assert [str(a.cigar) for a in got] == [str(a.cigar) for a in want]
        assert [a.edit_distance for a in got] == [a.edit_distance for a in want]

    def test_pipeline_without_tracer_records_nothing(self):
        pipeline = StreamingPipeline(wave_size=4)
        pipeline.align_pairs(self.PAIRS)
        assert pipeline.tracer is NULL_TRACER
        assert len(pipeline.tracer) == 0

    def test_service_records_request_spans(self):
        tracer = Tracer()
        service = AlignmentService(
            wave_size=4, autostart=False, linger_seconds=None, tracer=tracer
        )
        future = service.submit(self.PAIRS[:6], tenant="alpha")
        service.drain()
        assert len(future.result()) == 6
        service.close()
        records = tracer.records()
        submits = [r for r in records if r.name == "service.submit"]
        requests = [r for r in records if r.name == "service.request"]
        assert submits and submits[0].attrs["tenant"] == "alpha"
        (request,) = requests
        assert request.attrs == {"tenant": "alpha", "request_id": 0, "pairs": 6}
        assert request.duration >= 0.0

    def test_chrome_export_of_a_pipeline_run(self, tmp_path):
        tracer = Tracer(process_name="test-driver")
        StreamingPipeline(wave_size=4, tracer=tracer).align_pairs(self.PAIRS)
        path = write_chrome_trace(tmp_path / "pipeline.json", tracer)
        document = json.loads(path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "process_name" in names  # metadata track labels
        assert "pipeline.run" in names
