"""Tests for repro.io: MAPQ, record building, SAM/PAF emission, sinks."""

import io
from types import SimpleNamespace

import pytest

from repro.batch.engine import BatchAlignmentEngine
from repro.core.alignment import Alignment
from repro.core.cigar import Cigar
from repro.core.config import GenASMConfig
from repro.genomics.genome import SyntheticGenome
from repro.harness.dataset import build_paper_dataset
from repro.io import (
    FLAG_REVERSE,
    FLAG_SECONDARY,
    GroupingSink,
    MAX_MAPQ,
    PafSink,
    SamSink,
    as_pair,
    build_records,
    compute_mapq,
    group_by_read,
    write_paf,
    write_sam,
)
from repro.mapping.mapper import CandidateMapping, Mapper
from repro.pipeline import StreamingPipeline


def make_candidate(
    name="read1",
    chrom="chr1",
    ref_start=10,
    ref_end=14,
    strand="+",
    chain_score=50.0,
    anchors=10,
    is_primary=True,
):
    return CandidateMapping(name, chrom, ref_start, ref_end, strand, chain_score, anchors, is_primary)


def make_alignment(pattern, text, cigar_text):
    cigar = Cigar.from_string(cigar_text)
    return Alignment(pattern, text, cigar, cigar.edit_distance)


@pytest.fixture(scope="module")
def genome():
    return SyntheticGenome.random({"chr1": 100}, seed=0, repeat_fraction=0.0)


@pytest.fixture(scope="module")
def workload():
    return build_paper_dataset(
        read_count=12, read_length=300, genome_length=30_000, seed=3
    )


@pytest.fixture(scope="module")
def workload_results(workload):
    alignments = BatchAlignmentEngine(GenASMConfig()).align_pairs(workload.pairs)
    return list(zip(workload.candidates, alignments))


class TestComputeMapq:
    def test_unique_perfect_mapping_gets_max(self):
        assert compute_mapq(100.0, 0.0, 1.0, anchors=10) == MAX_MAPQ

    def test_fully_ambiguous_gets_zero(self):
        assert compute_mapq(100.0, 100.0, 1.0) == 0

    def test_nonpositive_primary_gets_zero(self):
        assert compute_mapq(0.0, 0.0) == 0
        assert compute_mapq(-5.0, 0.0) == 0

    def test_monotone_in_chain_score_gap(self):
        qualities = [
            compute_mapq(100.0, secondary, 1.0, anchors=10)
            for secondary in range(0, 101, 5)
        ]
        assert qualities == sorted(qualities, reverse=True)
        assert qualities[0] == MAX_MAPQ and qualities[-1] == 0

    def test_identity_scales_quality(self):
        assert compute_mapq(100.0, 0.0, 0.5) == MAX_MAPQ // 2
        assert compute_mapq(100.0, 0.0, 0.5) < compute_mapq(100.0, 0.0, 0.9)

    def test_few_anchors_downweight(self):
        assert compute_mapq(100.0, 0.0, 1.0, anchors=5) == MAX_MAPQ // 2
        assert compute_mapq(100.0, 0.0, 1.0, anchors=100) == MAX_MAPQ

    def test_secondary_clamped_to_primary(self):
        # A (numerically noisy) secondary above the primary must not go negative.
        assert compute_mapq(100.0, 120.0) == 0


class TestAsPairAndGrouping:
    def test_accepts_tuple_and_attribute_shapes(self):
        candidate = make_candidate()
        alignment = make_alignment("ACGT", "ACGT", "4=")
        assert as_pair((candidate, alignment)) == (candidate, alignment)
        shaped = SimpleNamespace(candidate=candidate, alignment=alignment)
        assert as_pair(shaped) == (candidate, alignment)

    def test_rejects_unknown_shape(self):
        with pytest.raises(TypeError):
            as_pair("not a result")

    def test_rejects_missing_candidate(self):
        shaped = SimpleNamespace(
            candidate=None, alignment=make_alignment("AC", "AC", "2=")
        )
        with pytest.raises(ValueError, match="no CandidateMapping"):
            as_pair(shaped)

    def test_groups_contiguous_reads(self):
        alignment = make_alignment("AC", "AC", "2=")
        items = [
            (make_candidate(name="r1"), alignment),
            (make_candidate(name="r1", chain_score=20.0, is_primary=False), alignment),
            (make_candidate(name="r2"), alignment),
        ]
        groups = list(group_by_read(items))
        assert [(name, len(group)) for name, group in groups] == [("r1", 2), ("r2", 1)]


class TestBuildRecords:
    def test_primary_election_and_mapq(self):
        alignment = make_alignment("ACGT", "ACGT", "4=")
        group = [
            (make_candidate(chain_score=50.0, is_primary=True), alignment),
            (
                make_candidate(ref_start=60, chain_score=25.0, is_primary=False),
                alignment,
            ),
        ]
        records = build_records(group)
        assert [r.is_primary for r in records] == [True, False]
        # gap = 1 - 25/50 = 0.5 at full identity and >=10 anchors -> 30.
        assert records[0].mapq == 30
        assert records[1].mapq == 0

    def test_reference_placement(self):
        record, = build_records([(make_candidate(ref_start=10), make_alignment("ACGT", "ACGT", "4="))])
        assert (record.ref_start, record.ref_end) == (10, 14)
        assert str(record.cigar) == "4="
        assert record.edit_distance == 0 and record.matches == 4

    def test_terminal_deletions_fold_into_coordinates(self):
        alignment = make_alignment("ACGT", "GGACGTC", "2D4=1D")
        record, = build_records([(make_candidate(ref_start=10), alignment)])
        assert str(record.cigar) == "4="
        assert (record.ref_start, record.ref_end) == (12, 16)
        assert record.edit_distance == 0

    def test_m_runs_resolved_before_emission(self):
        # Classic-M input: one mismatch hides inside the M run.
        alignment = make_alignment("ACGT", "ACTT", "4M")
        record, = build_records([(make_candidate(), alignment)])
        assert str(record.cigar) == "2=1X1="
        assert record.edit_distance == 1 and record.matches == 3

    def test_quality_reversed_on_minus_strand(self):
        alignment = make_alignment("ACGT", "ACGT", "4=")
        group = [(make_candidate(strand="-"), alignment)]
        record, = build_records(group, qualities={"read1": "IABC"})
        assert record.quality == "CBAI"

    def test_empty_group(self):
        assert build_records([]) == []


class TestGoldenSam:
    def test_exact_lines(self, genome):
        handle = io.StringIO()
        results = [
            (make_candidate(), make_alignment("ACGT", "ACGT", "4=")),
        ]
        count = write_sam(handle, results, genome, qualities={"read1": "IIII"})
        assert count == 1
        assert handle.getvalue().splitlines() == [
            "@HD\tVN:1.6\tSO:unknown",
            "@SQ\tSN:chr1\tLN:100",
            "@PG\tID:repro-genasm\tPN:repro-genasm",
            "read1\t0\tchr1\t11\t60\t4=\t*\t0\t0\tACGT\tIIII\tNM:i:0\tAS:i:8\ts1:i:50",
        ]

    def test_flags_for_strand_and_secondary(self, genome):
        handle = io.StringIO()
        alignment = make_alignment("ACGT", "ACGT", "4=")
        write_sam(
            handle,
            [
                (make_candidate(strand="-"), alignment),
                (
                    make_candidate(
                        ref_start=60, strand="-", chain_score=25.0, is_primary=False
                    ),
                    alignment,
                ),
            ],
            genome,
        )
        body = [l for l in handle.getvalue().splitlines() if not l.startswith("@")]
        flags = [int(line.split("\t")[1]) for line in body]
        assert flags[0] == FLAG_REVERSE
        assert flags[1] == FLAG_REVERSE | FLAG_SECONDARY

    def test_pos_is_one_based(self, genome):
        handle = io.StringIO()
        write_sam(
            handle,
            [(make_candidate(ref_start=0), make_alignment("ACGT", "ACGT", "4="))],
            genome,
        )
        body = [l for l in handle.getvalue().splitlines() if not l.startswith("@")]
        assert body[0].split("\t")[3] == "1"


class TestGoldenPaf:
    def test_exact_line(self, genome):
        handle = io.StringIO()
        count = write_paf(
            handle, [(make_candidate(), make_alignment("ACGT", "ACGT", "4="))], genome
        )
        assert count == 1
        assert handle.getvalue().splitlines() == [
            "read1\t4\t0\t4\t+\tchr1\t100\t10\t14\t4\t4\t60"
            "\tNM:i:0\tAS:i:8\ttp:A:P\tcg:Z:4=",
        ]

    def test_secondary_marker_and_mapq_zero(self, genome):
        handle = io.StringIO()
        alignment = make_alignment("ACGT", "ACGT", "4=")
        write_paf(
            handle,
            [
                (make_candidate(), alignment),
                (
                    make_candidate(
                        ref_start=60, chain_score=25.0, is_primary=False
                    ),
                    alignment,
                ),
            ],
            genome,
        )
        lines = handle.getvalue().splitlines()
        assert "\ttp:A:P\t" in lines[0] and "\ttp:A:S\t" in lines[1]
        assert lines[1].split("\t")[11] == "0"


class RecordingEmitter:
    def __init__(self):
        self.groups = []

    def emit_group(self, group):
        self.groups.append([candidate.read_name for candidate, _ in group])
        return list(group)


class TestGroupingSink:
    def _item(self, name, score=50.0, primary=True):
        return (
            make_candidate(name=name, chain_score=score, is_primary=primary),
            make_alignment("AC", "AC", "2="),
        )

    def test_eager_flushes_on_read_boundary(self):
        emitter = RecordingEmitter()
        sink = GroupingSink(emitter)
        sink.write(self._item("r1"))
        sink.write(self._item("r1", score=20.0, primary=False))
        assert emitter.groups == []  # r1 may still grow
        sink.write(self._item("r2"))
        assert emitter.groups == [["r1", "r1"]]
        sink.finish()
        assert emitter.groups == [["r1", "r1"], ["r2"]]
        assert sink.records == 3

    def test_reappearing_read_raises(self):
        sink = GroupingSink(RecordingEmitter())
        sink.write(self._item("r1"))
        sink.write(self._item("r2"))  # flushes r1
        with pytest.raises(ValueError, match="reappeared"):
            sink.write(self._item("r1"))

    def test_buffered_mode_tolerates_out_of_order(self):
        emitter = RecordingEmitter()
        sink = GroupingSink(emitter, eager=False)
        for name in ["r1", "r2", "r1"]:
            sink.write(self._item(name))
        assert emitter.groups == []
        sink.finish()
        assert emitter.groups == [["r1", "r1"], ["r2"]]


class TestWorkloadEmission:
    """Spec-level checks over a real mapped+aligned workload."""

    def test_sam_spec_level(self, workload, workload_results):
        handle = io.StringIO()
        count = write_sam(handle, workload_results, workload.genome)
        assert count == len(workload_results)
        lengths = {
            name: workload.genome.chromosome_length(name)
            for name in workload.genome.names()
        }
        primaries = []
        for line in handle.getvalue().splitlines():
            if line.startswith("@"):
                continue
            fields = line.split("\t")
            flag, pos = int(fields[1]), int(fields[3])
            cigar = Cigar.from_string(fields[5])
            assert cigar.pattern_length == len(fields[9])
            assert 1 <= pos and pos - 1 + cigar.text_length <= lengths[fields[2]]
            tags = dict(
                (tag.split(":", 2)[0], tag.split(":", 2)[2]) for tag in fields[11:]
            )
            assert int(tags["NM"]) == cigar.edit_distance
            if not flag & FLAG_SECONDARY:
                primaries.append(fields[0])
        # Exactly one primary per mapped read.
        assert sorted(primaries) == sorted(
            {candidate.read_name for candidate, _ in workload_results}
        )

    def test_paf_spec_level(self, workload, workload_results):
        handle = io.StringIO()
        write_paf(handle, workload_results, workload.genome)
        for line in handle.getvalue().splitlines():
            fields = line.split("\t")
            qlen, qstart, qend = (int(f) for f in fields[1:4])
            tlen, tstart, tend = (int(f) for f in fields[6:9])
            matches, block = int(fields[9]), int(fields[10])
            assert 0 <= qstart < qend <= qlen
            assert 0 <= tstart < tend <= tlen
            assert tlen == workload.genome.chromosome_length(fields[5])
            assert 0 <= matches <= block

    def test_streamed_sink_matches_offline_bytes(self, workload):
        mapper = Mapper(workload.genome)
        streamed = io.StringIO()
        pipeline = StreamingPipeline(mapper, wave_size=64)
        results = pipeline.run_all(
            workload.reads, sink=SamSink(streamed, workload.genome)
        )
        offline = io.StringIO()
        write_sam(offline, results, workload.genome)
        assert streamed.getvalue() == offline.getvalue()

        paf_streamed = io.StringIO()
        StreamingPipeline(mapper, wave_size=64).run_all(
            workload.reads, sink=PafSink(paf_streamed, workload.genome)
        )
        paf_offline = io.StringIO()
        write_paf(paf_offline, results, workload.genome)
        assert paf_streamed.getvalue() == paf_offline.getvalue()

    def test_abandoned_run_does_not_finish_sink(self, workload):
        mapper = Mapper(workload.genome)
        handle = io.StringIO()
        sink = SamSink(handle, workload.genome)
        stream = StreamingPipeline(mapper, wave_size=8).run(workload.reads, sink=sink)
        next(stream)
        stream.close()
        # The sink must not have been finished: at most the groups already
        # completed by eager flushing may be present, and the last buffered
        # group must still be pending.
        assert sink._groups or sink.records < len(workload.candidates)
