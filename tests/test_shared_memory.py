"""Lifecycle, equivalence and leak tests for the shared-memory layer.

Covers the zero-copy execution core end to end:

* descriptor / pair-block round trips (:mod:`repro.parallel.shm`,
  :class:`repro.batch.soa.SoAWave` export/attach);
* the hosted genome and minimizer index matching their dict-based
  originals hit for hit;
* :class:`SharedMemoryExecutor` segment hygiene — every segment the
  executor ever creates is gone from the system after a normal close,
  after a worker crash mid-stream, and after a cancellation close;
* the streaming pipeline's bounded-reorder and out-of-order emission
  modes staying byte-identical to the offline vectorized path under a
  work-sorted stress mix.

The executor tests spawn real worker processes; they are kept small
(single-worker pools, short pair lists) so the whole module stays in
tier-1 time budgets.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.batch.engine import BatchAlignmentEngine, run_dc_wave
from repro.batch.soa import LaneJob, SoAWave
from repro.core.config import GenASMConfig
from repro.genomics.genome import SyntheticGenome
from repro.genomics.read_simulator import PacBioSimulator
from repro.mapping.mapper import Mapper
from repro.parallel.shm import (
    SegmentLayout,
    SharedGenome,
    SharedMemoryExecutor,
    SharedMinimizerIndex,
    SharedSegment,
    host_genome,
    host_index,
    pack_arrays,
    pack_pairs,
    unpack_pairs,
)
from repro.pipeline import StreamingPipeline
from tests.conftest import mutate, random_dna


def segment_exists(name: str) -> bool:
    """True if the named shared-memory segment still exists system-wide."""
    from multiprocessing import resource_tracker, shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    # Probing attached us; undo the tracker registration and detach so the
    # probe itself neither leaks nor double-unlinks.
    resource_tracker.unregister(shm._name, "shared_memory")
    shm.close()
    return True


def assert_same_alignments(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert (str(a.cigar), a.edit_distance, a.text_end) == (
            str(b.cigar),
            b.edit_distance,
            b.text_end,
        )


@pytest.fixture(scope="module")
def corpus():
    """A small genome + mapper + reads + materialised candidate pairs."""
    genome = SyntheticGenome.random({"chr1": 40_000, "chr2": 20_000}, seed=7)
    mapper = Mapper(genome)
    reads = PacBioSimulator(mean_length=250, std_length=40, seed=11).simulate(
        genome, 12
    )
    sequences = {read.name: read.sequence for read in reads}
    candidates = mapper.map_reads(reads)
    pairs = [
        mapper.candidate_region_sequence(c, sequences[c.read_name])
        for c in candidates
    ]
    return genome, mapper, reads, pairs


# --------------------------------------------------------------------------- #
# Segments and layouts
# --------------------------------------------------------------------------- #
class TestSegmentsAndLayouts:
    def test_pack_arrays_round_trip(self):
        arrays = {
            "a": np.arange(17, dtype=np.uint64),
            "b": np.array([[1, -2], [3, -4]], dtype=np.int32),
            "c": np.array([1], dtype=np.int8),
            "d": np.arange(5, dtype=np.float64),
        }
        segment, layout = pack_arrays(arrays, meta={"tag": "x"})
        try:
            assert layout.segment == segment.name
            assert layout.meta == {"tag": "x"}
            views = layout.views(segment.buf)
            for name, array in arrays.items():
                np.testing.assert_array_equal(views[name], array)
            # Every offset is 8-byte aligned regardless of dtype mix.
            assert all(offset % 8 == 0 for _, _, _, offset in layout.arrays)
            del views
        finally:
            segment.unlink()
        segment.unlink()  # idempotent
        assert not segment_exists(layout.segment)

    def test_layout_attach_round_trip(self):
        data = {"values": np.arange(100, dtype=np.int64)}
        segment, layout = pack_arrays(data)
        shm, views = layout.attach()
        np.testing.assert_array_equal(views["values"], data["values"])
        del views
        shm.close()
        segment.unlink()
        assert not segment_exists(layout.segment)

    def test_layout_without_segment_rejects_attach(self):
        layout = SegmentLayout(nbytes=8, arrays=(("x", "<i8", (1,), 0),))
        with pytest.raises(ValueError):
            layout.attach()

    def test_pair_block_round_trip(self, rng):
        pairs = [
            (random_dna(rng, length), random_dna(rng, length + 9))
            for length in (1, 3, 64, 65, 200)
        ]
        segment, layout = pack_pairs(pairs)
        assert layout.meta["count"] == len(pairs)
        assert unpack_pairs(layout) == pairs
        segment.unlink()
        assert not segment_exists(layout.segment)

    def test_empty_pair_block(self):
        segment, layout = pack_pairs([])
        assert unpack_pairs(layout) == []
        segment.unlink()

    def test_segment_context_manager_unlinks(self):
        with SharedSegment(64) as segment:
            name = segment.name
            segment.buf[:4] = b"ping"
        assert not segment_exists(name)


# --------------------------------------------------------------------------- #
# Wave descriptors
# --------------------------------------------------------------------------- #
def _make_wave(rng, lengths=(12, 40, 64, 65, 100)):
    jobs = []
    for length in lengths:
        pattern = random_dna(rng, length)
        text = mutate(rng, pattern, max(1, length // 8)) + random_dna(rng, 4)
        jobs.append(LaneJob(pattern=pattern, text=text, max_errors=max(1, length // 10)))
    return SoAWave(jobs, traceback_band=True)


class TestWaveDescriptor:
    def test_plain_buffer_round_trip(self, rng):
        wave = _make_wave(rng)
        descriptor = wave.descriptor()
        buffer = bytearray(descriptor.nbytes)
        wave.pack_into(buffer, descriptor)
        rebuilt = SoAWave.from_buffer(descriptor, buffer)
        assert [(j.pattern, j.text, j.max_errors) for j in rebuilt.jobs] == [
            (j.pattern, j.text, j.max_errors) for j in wave.jobs
        ]
        # Reference tables come from a fresh wave (same seed) in case the
        # first run mutated wave state in place.
        want = run_dc_wave(_make_wave(random.Random(1234)))
        got = run_dc_wave(rebuilt)
        for a, b in zip(got, want):
            assert a.min_errors == b.min_errors
            assert a.final_column == b.final_column

    def test_shared_export_attach_unlink(self, rng):
        wave = _make_wave(rng)
        reference = run_dc_wave(_make_wave(random.Random(1234)))
        shared = wave.to_shared()
        name = shared.descriptor.segment
        assert name is not None
        attached = SoAWave.from_shared(shared.descriptor)
        try:
            got = run_dc_wave(attached)
            for a, b in zip(got, reference):
                assert a.min_errors == b.min_errors
                assert a.stored_bytes() == b.stored_bytes()
        finally:
            attached.close()
            shared.unlink()
        shared.unlink()  # idempotent
        assert not segment_exists(name)


# --------------------------------------------------------------------------- #
# Hosted genome and index
# --------------------------------------------------------------------------- #
class TestSharedResources:
    def test_shared_genome_matches_original(self, corpus):
        genome, _, _, _ = corpus
        segment, layout = host_genome(genome)
        shared = SharedGenome.attach(layout)
        try:
            assert shared.names() == genome.names()
            for chrom in genome.names():
                assert shared.sequence(chrom) == genome.sequence(chrom)
                assert shared.chromosome_length(chrom) == genome.chromosome_length(chrom)
                assert shared.fetch(chrom, 100, 250) == genome.fetch(chrom, 100, 250)
                assert shared.fetch(chrom, -5, 10) == genome.fetch(chrom, -5, 10)
                assert shared.fetch(chrom, 10, 5) == ""
        finally:
            shared.close()
            segment.unlink()
        assert not segment_exists(layout.segment)

    def test_shared_index_matches_original(self, corpus):
        _, mapper, _, _ = corpus
        segment, layout = host_index(mapper.index)
        shared = SharedMinimizerIndex.attach(layout)
        try:
            assert len(shared) == len(mapper.index)
            assert shared.k == mapper.index.k and shared.w == mapper.index.w
            for minimizer_hash, hits in list(mapper.index._table.items())[:100]:
                assert shared.lookup(minimizer_hash) == hits
                assert minimizer_hash in shared
            assert shared.lookup(0xDEADBEEF_DEADBEEF) == []
        finally:
            shared.close()
            segment.unlink()

    def test_mapper_over_shared_resources_is_identical(self, corpus):
        genome, mapper, reads, _ = corpus
        genome_segment, genome_layout = host_genome(genome)
        index_segment, index_layout = host_index(mapper.index)
        shared_genome = SharedGenome.attach(genome_layout)
        shared_index = SharedMinimizerIndex.attach(index_layout)
        try:
            shared_mapper = Mapper(shared_genome, index=shared_index)
            for read in reads[:6]:
                want = mapper.map_sequence(read.name, read.sequence)
                got = shared_mapper.map_sequence(read.name, read.sequence)
                assert got == want
                for a, b in zip(want, got):
                    assert mapper.candidate_region_sequence(
                        a, read.sequence
                    ) == shared_mapper.candidate_region_sequence(b, read.sequence)
        finally:
            shared_index.close()
            shared_genome.close()
            genome_segment.unlink()
            index_segment.unlink()


# --------------------------------------------------------------------------- #
# Executor lifecycle: normal exit, worker crash, cancellation
# --------------------------------------------------------------------------- #
class TestExecutorLifecycle:
    def test_normal_exit_unlinks_every_segment(self, corpus):
        _, mapper, reads, pairs = corpus
        config = GenASMConfig()
        expected = BatchAlignmentEngine(config).align_pairs(pairs)
        with SharedMemoryExecutor(workers=1, config=config, mapper=mapper) as ex:
            ex.warm(delay=0.0)
            assert_same_alignments(ex.run_alignments(pairs), expected)
            read = reads[0]
            mapped = ex.submit_map(read.name, read.sequence).result()
            local = [
                (c,) + mapper.candidate_region_sequence(c, read.sequence)
                for c in mapper.map_sequence(read.name, read.sequence)
            ]
            assert mapped == local
            names = ex.segment_names()
            assert len(names) >= 3  # genome + index + at least one wave
        assert ex.outstanding_waves() == 0
        leaked = [name for name in names if segment_exists(name)]
        assert not leaked

    def test_worker_crash_releases_wave_segments(self, corpus):
        _, _, _, pairs = corpus
        ex = SharedMemoryExecutor(workers=1, config=GenASMConfig())
        try:
            ex.warm(delay=0.0)
            # Kill the pool's only worker, then queue a wave behind the
            # crash.  Depending on when the pool notices the dead process,
            # the submission itself may raise (broken pool) or the wave's
            # future may fail; the wave segment must be unlinked either way.
            ex._pool.submit(os._exit, 1)
            try:
                future = ex.submit_wave(pairs[:4])
            except Exception:
                pass  # pool already marked broken at submit time
            else:
                with pytest.raises(Exception):
                    future.result(timeout=60)
        finally:
            ex.close()
        leaked = [name for name in ex.segment_names() if segment_exists(name)]
        assert not leaked

    def test_midstream_cancellation_releases_segments(self, corpus):
        _, _, _, pairs = corpus
        ex = SharedMemoryExecutor(workers=1, config=GenASMConfig())
        futures = []
        try:
            ex.start()
            # Queue more waves than the single worker can start; close with
            # cancel=True drops the queued ones mid-stream.
            for start in range(0, len(pairs), 4):
                futures.append(ex.submit_wave(pairs[start : start + 4]))
        finally:
            ex.close(cancel=True)
        assert ex.outstanding_waves() == 0
        leaked = [name for name in ex.segment_names() if segment_exists(name)]
        assert not leaked
        assert any(f.cancelled() or f.done() for f in futures)

    def test_executor_rejects_reuse_after_close(self):
        ex = SharedMemoryExecutor(workers=1, config=GenASMConfig())
        ex.close()
        with pytest.raises(RuntimeError):
            ex.start()

    def test_executor_validates_workers(self):
        with pytest.raises(ValueError):
            SharedMemoryExecutor(workers=0)

    def test_submit_map_requires_mapper(self):
        ex = SharedMemoryExecutor(workers=1, config=GenASMConfig())
        try:
            with pytest.raises(RuntimeError):
                ex.submit_map("r", "ACGT")
        finally:
            ex.close()


# --------------------------------------------------------------------------- #
# Accumulator tail merging
# --------------------------------------------------------------------------- #
class _Item:
    def __init__(self, order):
        self.order = order


class TestTailMerge:
    def test_final_flush_merges_small_tail(self):
        from repro.pipeline.batcher import WaveAccumulator

        acc = WaveAccumulator(wave_size=8, max_pending=64)
        for i in range(18):  # 8 + 8 + tail of 2 (< merge_below=4)
            assert acc.push(_Item(i)) == []
        waves = acc.flush()
        assert [len(w) for w in waves] == [8, 10]
        assert acc.scheduling_stats == {"merged_waves": 1, "merged_lanes": 2}

    def test_tail_at_or_above_threshold_not_merged(self):
        from repro.pipeline.batcher import WaveAccumulator

        acc = WaveAccumulator(wave_size=8, max_pending=64)
        for i in range(12):  # tail of 4 == merge_below stays its own wave
            acc.push(_Item(i))
        assert [len(w) for w in acc.flush()] == [8, 4]
        assert acc.scheduling_stats["merged_waves"] == 0

    def test_merge_disabled_with_zero_threshold(self):
        from repro.pipeline.batcher import WaveAccumulator

        acc = WaveAccumulator(wave_size=8, max_pending=64, merge_below=0)
        for i in range(17):
            acc.push(_Item(i))
        assert [len(w) for w in acc.flush()] == [8, 8, 1]
        assert acc.scheduling_stats["merged_waves"] == 0

    def test_single_partial_wave_never_merges(self):
        from repro.pipeline.batcher import WaveAccumulator

        acc = WaveAccumulator(wave_size=8, max_pending=64)
        for i in range(3):
            acc.push(_Item(i))
        assert [len(w) for w in acc.flush()] == [3]
        assert acc.scheduling_stats["merged_waves"] == 0

    def test_negative_merge_below_rejected(self):
        from repro.pipeline.batcher import WaveAccumulator

        with pytest.raises(ValueError):
            WaveAccumulator(wave_size=8, max_pending=64, merge_below=-1)


# --------------------------------------------------------------------------- #
# Bounded reorder and out-of-order emission under stress
# --------------------------------------------------------------------------- #
class TestEmissionModes:
    @pytest.fixture(scope="class")
    def stress_pairs(self):
        rng = random.Random(99)
        pairs = []
        for _ in range(120):
            length = rng.randint(20, 220)
            pattern = random_dna(rng, length)
            text = mutate(rng, pattern, max(1, length // 10)) + random_dna(rng, 6)
            pairs.append((pattern, text))
        return pairs

    @pytest.fixture(scope="class")
    def reference(self, stress_pairs):
        return BatchAlignmentEngine(GenASMConfig()).align_pairs(stress_pairs)

    def test_bounded_reorder_stays_identical(self, stress_pairs, reference):
        pipeline = StreamingPipeline(
            config=GenASMConfig(), wave_size=8, max_pending=32, max_reorder=2
        )
        assert_same_alignments(pipeline.align_pairs(stress_pairs), reference)
        stats = pipeline.stats
        assert stats.reorder_bound == 2
        assert stats.aligned == len(stress_pairs)
        # After every forced drain the buffer is empty, so the *retained*
        # backlog high-water can never run away past the bound by more than
        # the sweep that detected it.
        assert stats.max_reorder_buffer <= 2 + max(stats.wave_lane_counts)

    def test_unordered_emission_is_a_permutation(self, stress_pairs, reference):
        pipeline = StreamingPipeline(
            config=GenASMConfig(), wave_size=8, max_pending=32, ordered=False
        )
        # align_pairs re-sorts by ordinal, so the caller still sees input
        # order even though emission was completion-ordered.
        assert_same_alignments(pipeline.align_pairs(stress_pairs), reference)
        assert pipeline.stats.max_reorder_buffer == 0

    def test_unordered_run_emits_every_ordinal_once(self, corpus):
        _, mapper, reads, pairs = corpus
        pipeline = StreamingPipeline(
            mapper, GenASMConfig(), wave_size=8, max_pending=16, ordered=False
        )
        emitted = [mapped.order for mapped in pipeline.run(reads)]
        assert sorted(emitted) == list(range(len(pairs)))

    def test_invalid_max_reorder_rejected(self):
        with pytest.raises(ValueError):
            StreamingPipeline(config=GenASMConfig(), max_reorder=0)
