"""Tests for the alignment-as-a-service front-end and the PR-7 bugfixes.

Covers the three streaming-stats/warning bugfixes (seeded flush causes in
sync with the docs, bounded wave-lane window with exact aggregates,
module-level fallback-warning dedupe), the accumulator's push-free timeout
poll, and the service itself: byte-identical results versus offline runs,
round-robin fairness and per-tenant in-flight caps, deterministic
linger-timeout flushes under an injected clock, per-tenant latency
percentiles, the cached reference registry, and the ``service`` backend on
the unified execution seam.
"""

from __future__ import annotations

import re
import threading
import warnings

import pytest

from repro.core.config import GenASMConfig
from repro.harness.experiments import _simulate_short_read_pairs
from repro.parallel.executor import BatchExecutor
from repro.pipeline import FLUSH_CAUSES, PipelineStats, WaveAccumulator
from repro.service import (
    AlignmentService,
    LatencyStats,
    ReferenceRegistry,
    genome_key,
    percentile,
)

CONFIG = GenASMConfig()


def offline_alignments(pairs, config=CONFIG):
    """The per-client reference: one independent vectorized offline run."""
    return BatchExecutor(backend="vectorized").run_alignments(pairs, config).results


def assert_same_alignments(reference, got, context=""):
    assert len(reference) == len(got), context
    for want, have in zip(reference, got):
        assert str(want.cigar) == str(have.cigar), context
        assert want.edit_distance == have.edit_distance, context
        assert want.text_end == have.text_end, context


def run_sync(service, *futures):
    """Pump an ``autostart=False`` service until the given futures resolve."""
    for _ in range(10_000):
        if all(future.done() for future in futures):
            return
        service.pump(block=True)
    raise AssertionError("service made no progress")


# --------------------------------------------------------------------------- #
# Satellite bugfixes
# --------------------------------------------------------------------------- #
class TestStatsBugfixes:
    def test_flushes_seeded_with_every_documented_cause(self):
        stats = PipelineStats()
        assert set(stats.flushes) == set(FLUSH_CAUSES)
        # The original bug: reading a documented-but-untriggered cause
        # (e.g. "reorder" on a run without forced drains) raised KeyError.
        for cause in FLUSH_CAUSES:
            assert stats.flushes[cause] == 0

    def test_flushes_docstring_and_default_stay_in_sync(self):
        # Extract the causes named in the ``flushes`` attribute docs:
        # every ``cause`` token between "flushes:" and the next attribute.
        doc = PipelineStats.__doc__
        match = re.search(r"\n    flushes:\n(.*?)(?:\n    \S|\Z)", doc, re.DOTALL)
        assert match, "PipelineStats docstring lost its flushes section"
        documented = set(re.findall(r"``(\w+)``", match.group(1)))
        documented.discard("KeyError")
        assert documented == set(FLUSH_CAUSES)

    def test_wave_lane_counts_window_is_bounded(self):
        stats = PipelineStats(wave_size=4, wave_window=8)
        for _ in range(100):
            stats.record_wave(4, "size")
        for _ in range(50):
            stats.record_wave(2, "timeout")
        assert len(stats.wave_lane_counts) == 8
        # Running aggregates stay exact over the whole run regardless of
        # the window: 100 full waves of 4 lanes + 50 partial waves of 2.
        assert stats.waves == 150
        assert stats.full_waves == 100
        assert stats.wave_fill_efficiency == pytest.approx(
            (100 * 4 + 50 * 2) / (150 * 4)
        )

    def test_wave_window_validation_and_seeding(self):
        with pytest.raises(ValueError, match="wave_window"):
            PipelineStats(wave_window=0)
        # Seeding wave_lane_counts at construction aggregates the seeds.
        stats = PipelineStats(wave_size=2, wave_lane_counts=[2, 1])
        assert stats.full_waves == 1
        assert stats.lanes_total == 3

    def test_merged_wave_counts_as_full_capacity(self):
        stats = PipelineStats(wave_size=4)
        stats.record_wave(6, "final")  # tail-merged wave, wider than wave_size
        assert stats.wave_fill_efficiency == 1.0


class TestFallbackWarningDedupe:
    def test_fresh_engines_share_one_warning_per_reason(self):
        from repro.batch import engine as engine_module
        from repro.batch.engine import BatchAlignmentEngine

        engine_module._FALLBACK_WARNED.clear()
        pairs = [("ACGTACGT", "ACGAACGT")]
        with pytest.warns(RuntimeWarning, match="word_bits=32"):
            BatchAlignmentEngine(GenASMConfig(word_bits=32)).align_pairs(pairs)
        # The service pattern: a new engine per request, same config — the
        # per-instance flag re-warned here before the module-level dedupe.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            BatchAlignmentEngine(GenASMConfig(word_bits=32)).align_pairs(pairs)
        # A *different* fallback reason still warns.
        with pytest.warns(RuntimeWarning, match="word_bits=16"):
            BatchAlignmentEngine(GenASMConfig(word_bits=16)).align_pairs(pairs)
        engine_module._FALLBACK_WARNED.clear()


class TestAccumulatorPoll:
    def _accumulator(self, linger, now):
        return WaveAccumulator(
            wave_size=4, max_pending=64, linger_seconds=linger, clock=lambda: now[0]
        )

    def test_poll_flushes_expired_linger_without_a_push(self):
        now = [0.0]
        accumulator = self._accumulator(0.5, now)
        accumulator.push("a")
        accumulator.push("b")
        assert accumulator.poll() == []  # not yet expired
        assert accumulator.oldest_age() == pytest.approx(0.0)
        now[0] = 0.6
        assert accumulator.oldest_age() == pytest.approx(0.6)
        waves = accumulator.poll()
        assert waves == [["a", "b"]]
        assert len(accumulator) == 0
        assert accumulator.oldest_age() is None

    def test_poll_is_a_noop_without_linger_or_items(self):
        now = [0.0]
        assert self._accumulator(None, now).poll() == []
        accumulator = self._accumulator(None, now)
        accumulator.push("a")
        now[0] = 1e9
        assert accumulator.poll() == []  # no linger configured: never expires
        empty = self._accumulator(0.1, now)
        assert empty.poll() == []

    def test_poll_records_timeout_flush_cause(self):
        now = [0.0]
        stats = PipelineStats(wave_size=4)
        accumulator = WaveAccumulator(
            wave_size=4, linger_seconds=0.5, clock=lambda: now[0], stats=stats
        )
        accumulator.push("a")
        now[0] = 1.0
        accumulator.poll()
        assert stats.flushes["timeout"] == 1


# --------------------------------------------------------------------------- #
# The service front-end
# --------------------------------------------------------------------------- #
class TestAlignmentService:
    def test_single_request_matches_offline(self):
        pairs = _simulate_short_read_pairs(10, 180, 0.05, 1)
        with AlignmentService(
            CONFIG, wave_size=4, linger_seconds=None, autostart=False
        ) as service:
            future = service.submit(pairs, tenant="solo")
            run_sync(service, future)
            assert_same_alignments(offline_alignments(pairs), future.result())
        assert service.stats.requests_completed == 1
        assert service.stats.pairs_completed == len(pairs)

    def test_four_tenants_coalesce_and_stay_byte_identical(self):
        workloads = {
            f"tenant-{i}": _simulate_short_read_pairs(5 + i, 100 + 60 * i, 0.05, i)
            for i in range(4)
        }
        with AlignmentService(
            CONFIG, wave_size=8, linger_seconds=None, autostart=False
        ) as service:
            futures = {
                tenant: service.submit(pairs, tenant=tenant)
                for tenant, pairs in workloads.items()
            }
            run_sync(service, *futures.values())
            for tenant, pairs in workloads.items():
                assert_same_alignments(
                    offline_alignments(pairs), futures[tenant].result(), tenant
                )
        # The waves really were shared: fewer waves than requests' worth of
        # per-tenant partial waves (26 pairs / wave_size 8 → ~4 waves).
        assert service.stats.pipeline.waves < sum(
            -(-len(p) // 8) * 2 for p in workloads.values()
        )
        assert set(service.stats.latency.tenants()) == set(workloads)

    def test_round_robin_admission_prevents_starvation(self):
        # Tenant "big" queues 32 pairs before "small" queues 4; with fair
        # one-pair-per-tenant sweeps and a tight in-flight cap, the small
        # request must complete strictly before the big one.
        big = _simulate_short_read_pairs(32, 80, 0.05, 7)
        small = _simulate_short_read_pairs(4, 80, 0.05, 8)
        with AlignmentService(
            CONFIG,
            wave_size=4,
            linger_seconds=None,
            max_inflight_per_tenant=4,
            autostart=False,
        ) as service:
            big_future = service.submit(big, tenant="big")
            small_future = service.submit(small, tenant="small")
            run_sync(service, big_future, small_future)
            assert_same_alignments(offline_alignments(big), big_future.result())
            assert_same_alignments(offline_alignments(small), small_future.result())
        order = list(service.stats.completion_order)
        assert order.index(("small", 1)) < order.index(("big", 0))

    def test_per_tenant_inflight_cap_is_honored(self):
        pairs = _simulate_short_read_pairs(24, 90, 0.05, 3)
        with AlignmentService(
            CONFIG,
            wave_size=4,
            linger_seconds=None,
            max_inflight_per_tenant=6,
            autostart=False,
        ) as service:
            future = service.submit(pairs, tenant="capped")
            run_sync(service, future)
        assert service.stats.max_inflight["capped"] <= 6
        assert service.stats.pairs_admitted == len(pairs)

    def test_linger_timeout_flush_is_deterministic_with_injected_clock(self):
        now = [0.0]
        pairs = _simulate_short_read_pairs(2, 100, 0.05, 4)
        with AlignmentService(
            CONFIG,
            wave_size=64,
            linger_seconds=5.0,
            clock=lambda: now[0],
            autostart=False,
        ) as service:
            future = service.submit(pairs, tenant="slow")
            service.pump()  # admits both pairs; wave far from full, linger live
            assert not future.done()
            assert service.stats.pipeline.waves == 0
            now[0] = 5.0  # linger expires with no new arrivals
            service.pump()
            assert future.done()
            assert service.stats.pipeline.flushes["timeout"] == 1
            assert_same_alignments(offline_alignments(pairs), future.result())
            # Latency was measured on the injected clock: exactly 5s.
            assert service.stats.latency.summary("slow")["p50_ms"] == pytest.approx(
                5000.0
            )

    def test_latency_percentiles_recorded_per_tenant(self):
        with AlignmentService(
            CONFIG, wave_size=4, linger_seconds=None, autostart=False
        ) as service:
            futures = [
                service.submit(_simulate_short_read_pairs(3, 80, 0.05, i), tenant="t")
                for i in range(5)
            ]
            run_sync(service, *futures)
        summary = service.stats.latency.summary("t")
        assert summary["requests"] == 5
        for key in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"):
            assert summary[key] >= 0.0
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        assert "t" in service.stats.latency.as_dict()
        assert "*" in service.stats.latency.as_dict()

    def test_empty_request_resolves_immediately(self):
        with AlignmentService(CONFIG, autostart=False) as service:
            future = service.submit([], tenant="empty")
            assert future.done()
            assert future.result() == []
        assert service.stats.requests_completed == 1

    def test_submit_after_close_raises(self):
        service = AlignmentService(CONFIG, autostart=False)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit([("ACGT", "ACGT")])

    def test_threaded_dispatch_end_to_end(self):
        # The autostart daemon loop: concurrent client threads, real clock.
        workloads = [
            _simulate_short_read_pairs(6, 120 + 80 * i, 0.05, 20 + i) for i in range(3)
        ]
        results = [None] * len(workloads)
        with AlignmentService(CONFIG, wave_size=8, linger_seconds=0.005) as service:

            def client(slot):
                results[slot] = service.submit(
                    workloads[slot], tenant=f"client-{slot}"
                ).result(timeout=60)

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(len(workloads))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for slot, pairs in enumerate(workloads):
            assert_same_alignments(offline_alignments(pairs), results[slot], str(slot))

    def test_validation(self):
        with pytest.raises(ValueError, match="max_inflight_per_tenant"):
            AlignmentService(CONFIG, max_inflight_per_tenant=-1, autostart=False)


class TestServiceBackend:
    def test_registered_and_byte_identical(self):
        from repro.execution import available_backends, get_backend

        assert "service" in available_backends()
        pairs = _simulate_short_read_pairs(6, 150, 0.05, 9)
        got = get_backend("service").align_pairs(pairs, CONFIG)
        assert_same_alignments(offline_alignments(pairs), got)

    def test_capability_row_present(self):
        from repro.execution import capability_matrix

        rows = {caps.name: caps for caps in capability_matrix()}
        assert rows["service"].multiprocess is True
        assert "request" in rows["service"].ordering


# --------------------------------------------------------------------------- #
# Reference registry
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workload():
    from repro.harness.dataset import build_paper_dataset

    return build_paper_dataset(read_count=6, read_length=400, seed=3, max_pairs=None)


class TestReferenceRegistry:
    def test_genome_key_is_content_identity(self, workload):
        class Clone:
            chromosomes = dict(workload.genome.chromosomes)

        assert genome_key(workload.genome) == genome_key(Clone())

        class Other:
            chromosomes = {"chrX": "ACGT"}

        assert genome_key(workload.genome) != genome_key(Other())

    def test_mapper_cached_by_genome_identity(self, workload):
        with ReferenceRegistry() as registry:
            first = registry.mapper(workload.genome, all_chains=True)

            class Clone:
                chromosomes = dict(workload.genome.chromosomes)

            assert registry.mapper(Clone(), all_chains=True) is first
            # Different mapper parameters are a different cache entry.
            assert registry.mapper(workload.genome, all_chains=False) is not first
            assert registry.stats["mapper_builds"] == 2
            assert registry.stats["mapper_hits"] == 1

    def test_hosted_layouts_cached_and_unlinked_on_close(self, workload):
        from multiprocessing import shared_memory

        registry = ReferenceRegistry()
        genome_layout, index_layout = registry.hosted_layouts(
            workload.genome, all_chains=True
        )
        again = registry.hosted_layouts(workload.genome, all_chains=True)
        assert again == (genome_layout, index_layout)
        assert registry.stats["host_builds"] == 1
        assert registry.stats["host_hits"] == 1
        names = registry.hosted_segment_names()
        assert len(names) == 2
        registry.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        with pytest.raises(RuntimeError, match="closed"):
            registry.mapper(workload.genome)

    def test_shared_layouts_requires_mapper(self, workload):
        from repro.parallel.shm import SharedMemoryExecutor

        with ReferenceRegistry() as registry:
            layouts = registry.hosted_layouts(workload.genome, all_chains=True)
            with pytest.raises(ValueError, match="mapper"):
                SharedMemoryExecutor(1, shared_layouts=layouts)

    def test_executor_borrows_registry_segments(self, workload):
        from multiprocessing import shared_memory

        with ReferenceRegistry() as registry:
            executor = registry.executor(
                workload.genome, workers=1, config=CONFIG, all_chains=True
            )
            assert (
                registry.executor(
                    workload.genome, workers=1, config=CONFIG, all_chains=True
                )
                is executor
            )
            pairs = _simulate_short_read_pairs(4, 120, 0.05, 11)
            assert_same_alignments(
                offline_alignments(pairs), executor.run_alignments(pairs)
            )
            names = registry.hosted_segment_names()
            executor.close()
            # The registry's segments survive the borrowing executor.
            for name in names:
                segment = shared_memory.SharedMemory(name=name)
                segment.close()
            # The executor never hosted its own genome/index copies.
            assert not any(name in executor.segment_names() for name in names)


# --------------------------------------------------------------------------- #
# Latency stats primitives and the E3s experiment
# --------------------------------------------------------------------------- #
class TestLatencyPrimitives:
    def test_percentile_nearest_rank(self):
        samples = [0.01, 0.02, 0.03, 0.04, 0.05]
        assert percentile(samples, 50) == 0.03
        assert percentile(samples, 95) == 0.05
        assert percentile(samples, 0) == 0.01
        assert percentile([], 95) == 0.0
        with pytest.raises(ValueError):
            percentile(samples, 101)

    def test_percentile_range_checked_even_on_empty_input(self):
        # Regression: the empty-input early return used to skip the q
        # validation entirely, so a caller bug like percentile([], 200)
        # silently returned 0.0 instead of raising.
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([], 200)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([], -1)

    def test_latency_window_bounded_with_exact_aggregates(self):
        stats = LatencyStats(window=4)
        for i in range(10):
            stats.record("t", float(i))
        assert stats.count("t") == 10
        summary = stats.summary("t")
        assert summary["requests"] == 10
        assert summary["max_ms"] == pytest.approx(9000.0)
        assert summary["mean_ms"] == pytest.approx(4500.0)
        # Percentiles describe the bounded recent window (6..9).
        assert summary["p50_ms"] == pytest.approx(7000.0)


class TestServiceExperiment:
    def test_e3s_mixed_workload_row(self):
        from repro.harness.experiments import run_service_mixed_workload_experiment

        rows = run_service_mixed_workload_experiment(
            clients=3, pairs_per_client=4, wave_size=8, linger_seconds=0.002
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["id"] == "E3s_service_mixed_workload"
        assert row["identical_results"] is True
        assert row["paper"] != row["paper"]  # NaN
        assert row["clients"] == 3
        latency = row["latency"]
        assert set(latency) == {"tenant-0", "tenant-1", "tenant-2", "*"}
        for summary in latency.values():
            assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
