"""Tests for the report CLI and the quickstart example."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.harness.report import main as report_main

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestReportCli:
    def test_write_flag_creates_file(self, tmp_path):
        output = tmp_path / "EXP.md"
        code = report_main(
            [
                "--write",
                "--output",
                str(output),
                "--reads",
                "3",
                "--read-length",
                "400",
                "--max-pairs",
                "3",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        content = output.read_text()
        assert "E1a_cpu_vs_ksw2" in content
        assert "Known reproduction limitations" in content

    def test_print_mode(self, capsys):
        code = report_main(
            ["--reads", "3", "--read-length", "400", "--max-pairs", "3", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPERIMENTS" in out


class TestExamples:
    def test_quickstart_runs(self, capsys):
        script = REPO_ROOT / "examples" / "quickstart.py"
        runpy.run_path(str(script), run_name="__main__")
        out = capsys.readouterr().out
        assert "edit distance" in out
        assert "reduction" in out

    def test_examples_are_present_and_importable_as_scripts(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        names = {p.name for p in examples}
        assert {"quickstart.py", "long_read_pipeline.py", "short_read_alignment.py", "gpu_simulation.py"} <= names
        for path in examples:
            source = path.read_text()
            assert '__main__' in source  # every example is runnable
