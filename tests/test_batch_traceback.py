"""Differential test harness for the lockstep decision-word traceback.

The PR-2 contract: the vectorized batch path (lockstep DC wave + lockstep
decision-word traceback + wave scheduling) is **byte-identical** to the
scalar ``align_windowed`` reference — CIGARs, edit distances, consumed text
spans, per-pair metadata and every :class:`AccessCounter` field — across
every improvement-toggle combination, every ``match_priority`` tie-break
order, randomized inputs and adversarial shapes (all-match, all-mismatch,
homopolymer, empty-window).  The decision words themselves are checked bit
by bit against the scalar predicates exposed by
:func:`repro.core.genasm_tb.traceback_conditions`, and a golden
simulated-read corpus pins both paths to checked-in expected output.
"""

from __future__ import annotations

import itertools
import json
import pathlib

import pytest

from repro.batch import (
    BatchAlignmentEngine,
    LaneJob,
    SoAWave,
    build_wave_decisions,
    run_dc_wave_state,
)
from repro.batch.kernels import (
    FALLBACK_WARNED,
    HAVE_NUMBA,
    get_kernels,
    resolve_kernel_backend,
)
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.core.genasm_tb import traceback_conditions
from repro.core.metrics import AccessCounter
from repro.gpu.device import A6000
from repro.gpu.kernel import GenASMKernelSpec
from repro.gpu.simulator import GpuSimulator
from tests.conftest import mutate, random_dna

DATA_DIR = pathlib.Path(__file__).parent / "data"

#: All eight combinations of the paper's three improvement toggles.
TOGGLE_COMBOS = list(itertools.product([False, True], repeat=3))
#: A representative set of traceback tie-break orders (permutations of MSDI).
PRIORITIES = ["MSDI", "MDIS", "DIMS", "ISDM"]
#: Window widths spanning 1, 2 and 3 uint64 words per lane, including the
#: exact single-word boundary (64) and the first multi-word width (65).
WINDOW_SIZES = [32, 64, 65, 96, 128, 150]


def window_config(window_size: int, **overrides) -> GenASMConfig:
    """A window_size-parametrized config (short-read style above one word)."""
    if window_size <= 64:
        return GenASMConfig(
            window_size=window_size,
            window_overlap=min(24, window_size - 1),
            **overrides,
        )
    return GenASMConfig.short_read(window_size, **overrides)


def adversarial_pairs():
    """Input shapes that stress distinct traceback branches.

    All-match (pure diagonal runs), all-mismatch with starved text (budget
    doubling to the full window plus trailing insertions), homopolymer
    (every tie-break order is live at every step), empty-window shapes
    (text exhausted mid-alignment, empty pattern, empty text), and a
    single-character window.
    """
    return [
        ("ACGT" * 32, "ACGT" * 32 + "ACGT"),
        ("A" * 80, "T" * 30),
        ("A" * 120, "A" * 115),
        ("ACGT" * 30, "ACGTA"),
        ("", "ACGT"),
        ("ACGT" * 20, ""),
        ("A", "A"),
    ]


def random_pairs(rng):
    """Mutated-copy pairs spanning the single/multi-word boundary lengths."""
    specs = [(5, 1), (63, 6), (64, 5), (65, 7), (130, 12), (200, 20)]
    pairs = []
    for length, edits in specs:
        pattern = random_dna(rng, length)
        pairs.append((pattern, mutate(rng, pattern, edits) + random_dna(rng, 8)))
    return pairs


def assert_pairwise_identical(scalar_alignments, batch_alignments, context=""):
    assert len(scalar_alignments) == len(batch_alignments)
    for want, got in zip(scalar_alignments, batch_alignments):
        assert str(got.cigar) == str(want.cigar), context
        assert got.edit_distance == want.edit_distance, context
        assert got.text_end == want.text_end, context
        for key in (
            "windows",
            "rows_computed",
            "peak_window_bytes",
            "total_stored_bytes",
            "dp_accesses",
            "dp_bytes",
        ):
            assert got.metadata[key] == want.metadata[key], f"{context}: {key}"


class TestDifferentialEquivalence:
    """Vectorized path ≡ scalar path per field, over the full toggle sweep."""

    @pytest.mark.parametrize("priority", PRIORITIES)
    @pytest.mark.parametrize(
        "entry_compression,early_termination,traceback_band", TOGGLE_COMBOS
    )
    def test_toggles_and_priorities(
        self, rng, entry_compression, early_termination, traceback_band, priority
    ):
        config = GenASMConfig(
            entry_compression=entry_compression,
            early_termination=early_termination,
            traceback_band=traceback_band,
            match_priority=priority,
        )
        pairs = random_pairs(rng) + adversarial_pairs()
        context = (
            f"ec={entry_compression} et={early_termination} "
            f"tb={traceback_band} priority={priority}"
        )

        # Per-pair scalar counters (a shared align_batch counter would
        # snapshot running totals into metadata), merged for the
        # whole-batch comparison.
        scalar_counter = AccessCounter()
        aligner = GenASMAligner(config)
        scalar = []
        for pattern, text in pairs:
            pair_counter = AccessCounter()
            scalar.append(aligner.align(pattern, text, counter=pair_counter))
            scalar_counter.merge(pair_counter)
        # threshold 0 forces the lockstep walk for every wave (the default
        # small-wave heuristic would route these few-lane test batches to
        # the scalar traceback and mask lockstep regressions).
        batch_counter = AccessCounter()
        batch = BatchAlignmentEngine(
            config, scalar_traceback_threshold=0
        ).align_pairs(pairs, counter=batch_counter)

        assert_pairwise_identical(scalar, batch, context)
        # Every AccessCounter field over the whole batch, including the
        # traceback-side fields (tb_steps, dp_reads, bytes_read) the
        # lockstep walk replicates via its read-accounting tables.
        assert batch_counter.as_dict() == scalar_counter.as_dict(), context

    def test_alignments_validate_against_sequences(self, rng):
        pairs = random_pairs(rng) + adversarial_pairs()
        for alignment in BatchAlignmentEngine(GenASMConfig()).align_pairs(pairs):
            alignment.validate()


def window_boundary_pairs(rng, window_size):
    """Pairs that straddle the window width and the 64-bit word boundaries."""
    specs = [
        (window_size, max(2, window_size // 10)),
        (max(1, window_size - 1), 2),
        (window_size + 1, 3),
        (2 * window_size + 10, max(4, window_size // 8)),
        (40, 2),
        (64, 4),
        (65, 4),
    ]
    pairs = []
    for length, edits in specs:
        pattern = random_dna(rng, length)
        pairs.append((pattern, mutate(rng, pattern, edits) + random_dna(rng, 6)))
    # Adversarial shapes per window width: pure matches, budget doubling to
    # the full window, homopolymer ties, text exhausted mid-alignment.
    pairs.append(("ACGT" * (window_size // 2), "ACGT" * (window_size // 2) + "AC"))
    pairs.append(("A" * window_size, "T" * max(1, window_size // 3)))
    pairs.append(("A" * (window_size + 9), "A" * (window_size + 4)))
    pairs.append(("ACGT" * window_size, "ACGTACGT"))
    return pairs


class TestMultiWordDifferential:
    """Windows spanning 1-3 words/lane, pinned byte-identical to scalar.

    The multi-word satellite of the PR-2 harness: the same per-field
    equivalence contract (CIGARs, edit distances, spans, metadata, every
    AccessCounter field), parametrized over ``window_size`` so word counts
    1, 2 and 3 — including the exact 64/65 boundary pair — are all
    exercised, across the improvement toggles, the tie-break orders and
    the wave-scheduling policies.
    """

    def _scalar_reference(self, config, pairs):
        counter = AccessCounter()
        aligner = GenASMAligner(config)
        alignments = []
        for pattern, text in pairs:
            pair_counter = AccessCounter()
            alignments.append(aligner.align(pattern, text, counter=pair_counter))
            counter.merge(pair_counter)
        return alignments, counter

    @pytest.mark.parametrize("window_size", WINDOW_SIZES)
    @pytest.mark.parametrize(
        "entry_compression,early_termination,traceback_band", TOGGLE_COMBOS
    )
    def test_window_widths_across_toggles(
        self, rng, window_size, entry_compression, early_termination, traceback_band
    ):
        config = window_config(
            window_size,
            entry_compression=entry_compression,
            early_termination=early_termination,
            traceback_band=traceback_band,
        )
        pairs = window_boundary_pairs(rng, window_size)
        context = (
            f"window={window_size} ec={entry_compression} "
            f"et={early_termination} tb={traceback_band}"
        )
        scalar, scalar_counter = self._scalar_reference(config, pairs)
        batch_counter = AccessCounter()
        engine = BatchAlignmentEngine(config, scalar_traceback_threshold=0)
        batch = engine.align_pairs(pairs, counter=batch_counter)
        assert_pairwise_identical(scalar, batch, context)
        assert batch_counter.as_dict() == scalar_counter.as_dict(), context
        expected_words = -(-window_size // 64)
        for alignment in batch:
            assert alignment.metadata["vectorized"] is True, context
            assert alignment.metadata["words_per_lane"] == expected_words, context

    @pytest.mark.parametrize("window_size", WINDOW_SIZES)
    @pytest.mark.parametrize("priority", PRIORITIES)
    def test_window_widths_across_priorities(self, rng, window_size, priority):
        config = window_config(window_size, match_priority=priority)
        pairs = window_boundary_pairs(rng, window_size)
        context = f"window={window_size} priority={priority}"
        scalar, scalar_counter = self._scalar_reference(config, pairs)
        for threshold in (0, 10**9):  # both traceback paths of the heuristic
            batch_counter = AccessCounter()
            batch = BatchAlignmentEngine(
                config, scalar_traceback_threshold=threshold
            ).align_pairs(pairs, counter=batch_counter)
            assert_pairwise_identical(scalar, batch, f"{context} thr={threshold}")
            assert batch_counter.as_dict() == scalar_counter.as_dict(), context

    @pytest.mark.parametrize("window_size", [65, 96, 150])
    @pytest.mark.parametrize("scheduling", ["sorted", "fifo"])
    def test_window_widths_across_scheduling(self, rng, window_size, scheduling):
        config = window_config(window_size)
        pairs = window_boundary_pairs(rng, window_size)
        context = f"window={window_size} scheduling={scheduling}"
        scalar, scalar_counter = self._scalar_reference(config, pairs)
        batch_counter = AccessCounter()
        chunked = BatchAlignmentEngine(
            config, max_lanes=3, scheduling=scheduling, scalar_traceback_threshold=0
        ).align_pairs(pairs, counter=batch_counter)
        assert_pairwise_identical(scalar, chunked, context)
        assert batch_counter.as_dict() == scalar_counter.as_dict(), context

    def test_short_read_config_takes_vectorized_path(self, rng):
        # The acceptance criterion of the multi-word PR: short_read(150)
        # batches run 3-word lanes with no scalar fallback.
        config = GenASMConfig.short_read(150)
        engine = BatchAlignmentEngine(config, scalar_traceback_threshold=0)
        assert engine.vectorizable
        assert engine.words_per_lane == 3
        pattern = random_dna(rng, 150)
        pairs = [(pattern, mutate(rng, pattern, 7) + "ACGTAC")] * 4
        for alignment in engine.align_pairs(pairs):
            assert alignment.metadata["vectorized"] is True
            assert alignment.metadata["words_per_lane"] == 3
            assert alignment.metadata["traceback_path"] == "lockstep"


class TestDecisionWords:
    """Decision planes ≡ the scalar predicates, bit by bit."""

    @pytest.mark.parametrize("entry_compression", [False, True])
    @pytest.mark.parametrize("traceback_band", [False, True])
    def test_planes_match_scalar_predicates(
        self, rng, entry_compression, traceback_band
    ):
        jobs = []
        for length, k in [(6, 2), (9, 3), (1, 1)]:
            pattern = random_dna(rng, length)
            text = mutate(rng, pattern, 1) + random_dna(rng, 3)
            jobs.append(LaneJob(pattern=pattern, text=text, max_errors=k))
        wave = SoAWave(jobs, traceback_band=traceback_band)
        self._assert_planes_match(wave, entry_compression, traceback_band)

    @pytest.mark.parametrize("entry_compression", [False, True])
    @pytest.mark.parametrize("traceback_band", [False, True])
    def test_multi_word_planes_match_scalar_predicates(
        self, rng, entry_compression, traceback_band
    ):
        # 2- and 3-word lanes mixed with a 1-word lane in the same wave:
        # every decision bit — in particular the i % 64 == 0 stitches at
        # bits 64 and 128 — must equal the scalar predicate verdicts.
        jobs = []
        for length, k in [(70, 3), (65, 2), (130, 3), (20, 2)]:
            pattern = random_dna(rng, length)
            text = mutate(rng, pattern, 2)[: length // 10 + 8]
            jobs.append(LaneJob(pattern=pattern, text=text, max_errors=k))
        wave = SoAWave(jobs, traceback_band=traceback_band)
        assert wave.words == 3
        self._assert_planes_match(wave, entry_compression, traceback_band)

    def _assert_planes_match(self, wave, entry_compression, traceback_band):
        state = run_dc_wave_state(wave, entry_compression=entry_compression)
        decisions = build_wave_decisions(
            wave, state.stored_rows, entry_compression=entry_compression
        )
        tables = state.tables()

        for lane, (job, table) in enumerate(zip(wave.jobs, tables)):
            conditions = traceback_conditions(table)
            m, n = len(job.pattern), len(job.text)
            for d in range(table.rows_computed):
                for j in range(1, n + 1):
                    for i in range(m):
                        for letter in "MSID":
                            assert decisions.bit(letter, lane, d, j, i) == conditions[
                                letter
                            ](j, d, i), (
                                f"lane={lane} letter={letter} d={d} j={j} i={i} "
                                f"ec={entry_compression} band={traceback_band}"
                            )


class TestGoldenCorpus:
    """Both backends reproduce the checked-in simulated-read corpus exactly."""

    @pytest.fixture(scope="class")
    def corpus(self):
        with open(DATA_DIR / "golden_corpus.json") as fh:
            return json.load(fh)

    def test_scalar_reproduces_golden(self, corpus):
        aligner = GenASMAligner(GenASMConfig())
        for entry in corpus["entries"]:
            alignment = aligner.align(entry["pattern"], entry["text"])
            assert str(alignment.cigar) == entry["cigar"]
            assert alignment.edit_distance == entry["edit_distance"]
            assert alignment.text_end == entry["text_end"]

    @pytest.mark.parametrize("threshold", [0, 10**9])
    def test_vectorized_reproduces_golden(self, corpus, threshold):
        # Both traceback paths of the dispatch heuristic reproduce the
        # corpus: 0 forces the lockstep walk, the huge threshold forces
        # the scalar per-lane walk.
        pairs = [(e["pattern"], e["text"]) for e in corpus["entries"]]
        engine = BatchAlignmentEngine(
            GenASMConfig(), scalar_traceback_threshold=threshold
        )
        for entry, alignment in zip(corpus["entries"], engine.align_pairs(pairs)):
            assert str(alignment.cigar) == entry["cigar"]
            assert alignment.edit_distance == entry["edit_distance"]
            assert alignment.text_end == entry["text_end"]

    def test_corpus_exercises_multi_window_and_adversarial_shapes(self, corpus):
        lengths = [len(e["pattern"]) for e in corpus["entries"]]
        window = GenASMConfig().window_size
        assert max(lengths) > 4 * window, "corpus lost its multi-window reads"
        assert any(e["edit_distance"] == 0 for e in corpus["entries"])
        assert any(
            e["edit_distance"] >= len(e["pattern"]) // 2 for e in corpus["entries"]
        )


class TestShortReadGoldenCorpus:
    """Scalar, vectorized and streaming paths all reproduce the 3-word corpus.

    The short-read section of ``golden_corpus.json`` pins the multi-word
    engine: Illumina-length pairs under ``GenASMConfig.short_read(150)``
    (150-character windows, 3 ``uint64`` words per lane; regenerate with
    ``tests/data/regenerate_golden_corpus.py``).
    """

    @pytest.fixture(scope="class")
    def corpus(self):
        with open(DATA_DIR / "golden_corpus.json") as fh:
            return json.load(fh)

    @pytest.fixture(scope="class")
    def config(self):
        return GenASMConfig.short_read(150)

    def _assert_reproduces(self, entries, alignments):
        for entry, alignment in zip(entries, alignments):
            assert str(alignment.cigar) == entry["cigar"]
            assert alignment.edit_distance == entry["edit_distance"]
            assert alignment.text_end == entry["text_end"]

    def test_scalar_reproduces_short_read_golden(self, corpus, config):
        aligner = GenASMAligner(config)
        entries = corpus["short_read_entries"]
        self._assert_reproduces(
            entries, [aligner.align(e["pattern"], e["text"]) for e in entries]
        )

    @pytest.mark.parametrize("threshold", [0, 10**9])
    def test_vectorized_reproduces_short_read_golden(self, corpus, config, threshold):
        entries = corpus["short_read_entries"]
        pairs = [(e["pattern"], e["text"]) for e in entries]
        engine = BatchAlignmentEngine(config, scalar_traceback_threshold=threshold)
        alignments = engine.align_pairs(pairs)
        self._assert_reproduces(entries, alignments)
        # No silent scalar fallback: every alignment went through the
        # 3-word lockstep engine.
        for alignment in alignments:
            assert alignment.metadata["vectorized"] is True
            assert alignment.metadata["words_per_lane"] == 3

    def test_streaming_reproduces_short_read_golden(self, corpus, config):
        from repro.pipeline import StreamingPipeline

        entries = corpus["short_read_entries"]
        pairs = [(e["pattern"], e["text"]) for e in entries]
        pipeline = StreamingPipeline(config=config, wave_size=4)
        self._assert_reproduces(entries, pipeline.align_pairs(pairs))

    def test_short_read_corpus_exercises_word_boundaries(self, corpus):
        lengths = {len(e["pattern"]) for e in corpus["short_read_entries"]}
        # Word counts 1, 2 and 3 including the exact 64/65 boundary pair.
        for boundary in (63, 64, 65, 128, 129, 150):
            assert boundary in lengths, f"corpus lost its {boundary} bp entry"
        entries = corpus["short_read_entries"]
        assert any(e["edit_distance"] == 0 for e in entries)
        assert any(
            e["edit_distance"] >= len(e["pattern"]) // 2 for e in entries
        )
        assert any(len(e["pattern"]) > 150 for e in entries), "multi-window short reads"


class TestWaveScheduling:
    """Sorted wave scheduling: identical results, input order, better lockstep."""

    def _mixed_pairs(self, rng):
        pairs = []
        for index in range(16):
            length = 40 if index % 2 == 0 else 400
            pattern = random_dna(rng, length)
            pairs.append((pattern, mutate(rng, pattern, length // 10) + "ACGT"))
        return pairs

    def test_sorted_chunking_preserves_input_order_and_results(self, rng):
        pairs = self._mixed_pairs(rng)
        config = GenASMConfig()
        reference = BatchAlignmentEngine(config).align_pairs(pairs)
        for scheduling in ("sorted", "fifo"):
            chunked = BatchAlignmentEngine(
                config, max_lanes=4, scheduling=scheduling
            ).align_pairs(pairs)
            assert_pairwise_identical(reference, chunked, scheduling)
            for (pattern, text), alignment in zip(pairs, chunked):
                assert alignment.pattern == pattern
                assert alignment.text == text

    def test_sorted_schedule_improves_lockstep_efficiency(self, rng):
        pairs = self._mixed_pairs(rng)
        config = GenASMConfig()
        sorted_engine = BatchAlignmentEngine(config, max_lanes=4)
        fifo_engine = BatchAlignmentEngine(config, max_lanes=4, scheduling="fifo")
        sorted_stats = sorted_engine.scheduling_stats(pairs)
        fifo_stats = fifo_engine.scheduling_stats(pairs)
        assert sorted_stats["useful_work"] == fifo_stats["useful_work"]
        assert sorted_stats["efficiency"] > fifo_stats["efficiency"]
        assert sorted_stats["efficiency"] > 0.9  # homogeneous chunks
        assert fifo_stats["efficiency"] < 0.7  # alternating 1- and 10-window lanes

    def test_schedule_orders_by_expected_windows(self):
        engine = BatchAlignmentEngine(GenASMConfig(), max_lanes=2)
        pairs = [("A" * 300, "T"), ("A" * 10, "T"), ("A" * 700, "T"), ("A" * 64, "T")]
        order = engine.schedule(pairs)
        windows = [engine.expected_windows(len(pairs[i][0])) for i in order]
        assert windows == sorted(windows)
        fifo = BatchAlignmentEngine(GenASMConfig(), scheduling="fifo")
        assert fifo.schedule(pairs) == [0, 1, 2, 3]

    def test_expected_windows_matches_measured_window_metadata(self, rng):
        engine = BatchAlignmentEngine(GenASMConfig())
        pairs = self._mixed_pairs(rng) + [("", "ACGT")]
        for (pattern, _), alignment in zip(pairs, engine.align_pairs(pairs)):
            assert engine.expected_windows(len(pattern)) == alignment.metadata["windows"]

    def test_invalid_scheduling_rejected(self):
        with pytest.raises(ValueError):
            BatchAlignmentEngine(GenASMConfig(), scheduling="random")

    def test_warp_divergence_sorted_schedule(self, rng):
        pairs = self._mixed_pairs(rng)
        kernel = GenASMKernelSpec(GenASMConfig())
        profiles = kernel.profile_batch(pairs)
        simulator = GpuSimulator(A6000)
        fifo = simulator.warp_divergence(profiles, warp_size=4)
        swept = simulator.warp_divergence(profiles, warp_size=4, schedule="sorted")
        assert swept["useful_work"] == pytest.approx(fifo["useful_work"])
        assert swept["efficiency"] >= fifo["efficiency"]
        with pytest.raises(ValueError):
            simulator.warp_divergence(profiles, schedule="random")


class TestWindowAccounting:
    """Window accounting lives in one spot and survives retry sub-waves."""

    @pytest.mark.parametrize("threshold", [0, 10**9])
    def test_retry_subwave_metrics_match_scalar(self, rng, threshold):
        # k = 1 forces budget-doubling retries on any window with >= 2
        # edits; the engine must still count each window once and charge
        # exactly the scalar path's retry DP traffic — under either
        # traceback path of the dispatch heuristic.
        config = GenASMConfig(max_errors=1)
        pairs = []
        for length in (60, 96, 130):
            pattern = random_dna(rng, length)
            pairs.append((pattern, mutate(rng, pattern, length // 6) + "ACGT"))

        scalar_counter = AccessCounter()
        aligner = GenASMAligner(config)
        scalar = []
        for pattern, text in pairs:
            pair_counter = AccessCounter()
            scalar.append(aligner.align(pattern, text, counter=pair_counter))
            scalar_counter.merge(pair_counter)
        batch_counter = AccessCounter()
        batch = BatchAlignmentEngine(
            config, scalar_traceback_threshold=threshold
        ).align_pairs(pairs, counter=batch_counter)

        assert_pairwise_identical(scalar, batch, "retry sub-waves")
        assert batch_counter.as_dict() == scalar_counter.as_dict()
        # The workload actually exercised retries (more rows than a single
        # k=1 attempt could compute over the counted windows).
        assert batch_counter.rows_computed > 2 * batch_counter.windows

    def test_heuristic_threshold_never_changes_results_or_accounting(self, rng):
        # The small-wave dispatch heuristic moves only the crossover
        # between the two byte-identical traceback implementations:
        # results AND counters are invariant to the threshold.
        pairs = random_pairs(rng) + adversarial_pairs()
        config = GenASMConfig()
        reference_counter = AccessCounter()
        reference = BatchAlignmentEngine(
            config, scalar_traceback_threshold=0
        ).align_pairs(pairs, counter=reference_counter)
        for threshold in (1, 4, 10**9):
            counter = AccessCounter()
            engine = BatchAlignmentEngine(
                config, scalar_traceback_threshold=threshold
            )
            got = engine.align_pairs(pairs, counter=counter)
            assert_pairwise_identical(reference, got, f"threshold={threshold}")
            assert counter.as_dict() == reference_counter.as_dict(), threshold

    def test_traceback_path_recorded_in_metadata(self, rng):
        pattern = random_dna(rng, 200)
        pairs = [(pattern, mutate(rng, pattern, 12) + "ACGT")] * 4
        lockstep = BatchAlignmentEngine(GenASMConfig(), scalar_traceback_threshold=0)
        for alignment in lockstep.align_pairs(pairs):
            assert alignment.metadata["traceback_path"] == "lockstep"
        scalar = BatchAlignmentEngine(GenASMConfig(), scalar_traceback_threshold=10**9)
        for alignment in scalar.align_pairs(pairs):
            assert alignment.metadata["traceback_path"] == "scalar"
        # Below the default threshold a small batch routes to the scalar
        # walk; a pair with no DP windows at all reports "none".
        default = BatchAlignmentEngine(GenASMConfig())
        assert default.scalar_traceback_threshold > len(pairs)
        for alignment in default.align_pairs(pairs):
            assert alignment.metadata["traceback_path"] == "scalar"
        empty = default.align_pairs([("", "ACGT")])[0]
        assert empty.metadata["traceback_path"] == "none"

    def test_mixed_traceback_path_on_shrinking_waves(self, rng):
        # A wide wave of short pairs plus a few long pairs: early windows
        # trace >= threshold lanes in lockstep, and once the short lanes
        # finish, the surviving long lanes drop below the threshold and
        # switch to the scalar walk — the long pairs record "mixed".
        short_pattern = random_dna(rng, 40)
        long_pattern = random_dna(rng, 400)
        pairs = [(short_pattern, mutate(rng, short_pattern, 3) + "ACGT")] * 8
        pairs += [(long_pattern, mutate(rng, long_pattern, 30) + "ACGT")] * 2
        engine = BatchAlignmentEngine(GenASMConfig(), scalar_traceback_threshold=6)
        alignments = engine.align_pairs(pairs)
        assert all(a.metadata["traceback_path"] == "lockstep" for a in alignments[:8])
        assert all(a.metadata["traceback_path"] == "mixed" for a in alignments[8:])

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            BatchAlignmentEngine(GenASMConfig(), scalar_traceback_threshold=-1)

    def test_windows_counted_once_per_window(self):
        # One multi-window pair with the text exhausted halfway: both the
        # DP windows and the empty-text insertion windows must be counted
        # exactly once, in metadata and counter alike.
        pattern = "ACGT" * 40
        pair = (pattern, "ACGT" * 12)
        counter = AccessCounter()
        engine = BatchAlignmentEngine(GenASMConfig())
        alignment = engine.align_pairs([pair], counter=counter)[0]
        assert counter.windows == alignment.metadata["windows"]

        scalar_counter = AccessCounter()
        scalar = GenASMAligner(GenASMConfig()).align(*pair, counter=scalar_counter)
        assert alignment.metadata["windows"] == scalar.metadata["windows"]
        assert counter.windows == scalar_counter.windows


# --------------------------------------------------------------------------- #
# Match-run skip-ahead and the compiled-kernel seam (kernel speed pack)
# --------------------------------------------------------------------------- #
class TestSkipAheadTraceback:
    """Skip-ahead consumes whole match runs yet stays byte-identical."""

    @pytest.mark.parametrize("window_size", [64, 96, 150])
    @pytest.mark.parametrize("skip_ahead", [False, True])
    def test_counter_parity_with_scalar(self, rng, window_size, skip_ahead):
        # tb_steps / dp_reads / bytes_read parity with the scalar walk,
        # with skip-ahead enabled AND disabled: skipping steps must still
        # charge the per-step reads the scalar walk would have issued.
        config = window_config(window_size, traceback_skip_ahead=skip_ahead)
        pairs = random_pairs(rng) + adversarial_pairs()
        context = f"window={window_size} skip={skip_ahead}"

        scalar_counter = AccessCounter()
        aligner = GenASMAligner(config)
        scalar = []
        for pattern, text in pairs:
            pair_counter = AccessCounter()
            scalar.append(aligner.align(pattern, text, counter=pair_counter))
            scalar_counter.merge(pair_counter)

        batch_counter = AccessCounter()
        batch = BatchAlignmentEngine(
            config, scalar_traceback_threshold=0
        ).align_pairs(pairs, counter=batch_counter)

        assert_pairwise_identical(scalar, batch, context)
        assert batch_counter.as_dict() == scalar_counter.as_dict(), context

    @pytest.mark.parametrize("priority", PRIORITIES)
    def test_toggle_invariant_across_priorities(self, rng, priority):
        # Skip-ahead is only legal when M leads the tie-break order; for
        # every priority the toggle must be a pure no-op on results and
        # accounting (it silently deactivates when another letter leads).
        pairs = random_pairs(rng) + adversarial_pairs()
        outcomes = {}
        for skip in (False, True):
            config = GenASMConfig(
                match_priority=priority, traceback_skip_ahead=skip
            )
            counter = AccessCounter()
            alignments = BatchAlignmentEngine(
                config, scalar_traceback_threshold=0
            ).align_pairs(pairs, counter=counter)
            outcomes[skip] = (alignments, counter.as_dict())
        assert_pairwise_identical(outcomes[False][0], outcomes[True][0], priority)
        assert outcomes[False][1] == outcomes[True][1], priority

    def test_walk_steps_saved_on_matchy_workload(self, rng):
        pattern = random_dna(rng, 120)
        pairs = [(pattern, mutate(rng, pattern, 6) + "ACGT") for _ in range(4)]

        on = BatchAlignmentEngine(GenASMConfig(), scalar_traceback_threshold=0)
        on_alignments = on.align_pairs(pairs)
        saved = sum(a.metadata["tb_walk_steps_saved"] for a in on_alignments)
        assert saved > 0
        assert on.traceback_stats["steps_saved"] == saved
        assert on.traceback_stats["match_runs"] > 0
        assert on.traceback_stats["seconds"] > 0
        for alignment in on_alignments:
            meta = alignment.metadata
            assert meta["tb_match_run_ops"] >= meta["tb_match_runs"]
            assert meta["tb_walk_steps"] > 0

        off = BatchAlignmentEngine(
            GenASMConfig(traceback_skip_ahead=False), scalar_traceback_threshold=0
        )
        off_alignments = off.align_pairs(pairs)
        assert all(
            a.metadata["tb_walk_steps_saved"] == 0 for a in off_alignments
        )
        assert off.traceback_stats["match_runs"] == 0
        assert_pairwise_identical(on_alignments, off_alignments, "skip on vs off")
        # Each emitted op either came from a walk iteration or was skipped.
        for on_a, off_a in zip(on_alignments, off_alignments):
            assert (
                on_a.metadata["tb_walk_steps"]
                + on_a.metadata["tb_walk_steps_saved"]
                == off_a.metadata["tb_walk_steps"]
            )

    def test_scheduling_stats_fold_traceback_counters(self, rng):
        pattern = random_dna(rng, 90)
        pairs = [(pattern, mutate(rng, pattern, 4) + "AC")] * 3
        engine = BatchAlignmentEngine(GenASMConfig(), scalar_traceback_threshold=0)
        engine.align_pairs(pairs)
        stats = engine.scheduling_stats(pairs)
        assert stats["tb_walk_steps"] > 0
        assert stats["tb_steps_saved"] >= 0
        assert stats["tb_seconds"] >= 0

    def test_dispatch_threshold_halved_when_skip_active(self):
        engine = BatchAlignmentEngine(GenASMConfig(), scalar_traceback_threshold=24)
        assert engine.effective_scalar_threshold() == 12
        no_skip = BatchAlignmentEngine(
            GenASMConfig(traceback_skip_ahead=False), scalar_traceback_threshold=24
        )
        assert no_skip.effective_scalar_threshold() == 24
        # A non-M-first priority never takes runs, so the lockstep step
        # cost is unchanged and the threshold must not shift.
        non_m_first = BatchAlignmentEngine(
            GenASMConfig(match_priority="SMDI"), scalar_traceback_threshold=24
        )
        assert non_m_first.effective_scalar_threshold() == 24


class TestKernelBackendSeam:
    """Backend resolution, fallback warning dedupe, and equivalence."""

    def test_resolve_backends(self):
        assert resolve_kernel_backend("numpy") == "numpy"
        assert resolve_kernel_backend("auto", warn=False) in ("numpy", "numba")
        with pytest.raises(ValueError, match="kernel_backend"):
            resolve_kernel_backend("cython")

    def test_config_validates_backend(self):
        assert GenASMConfig().kernel_backend == "auto"
        assert GenASMConfig(kernel_backend="numpy").kernel_backend == "numpy"
        with pytest.raises(ValueError):
            GenASMConfig(kernel_backend="cython")

    def test_kernel_set_shape(self):
        kernels = get_kernels("numpy")
        assert kernels.name == "numpy"
        assert callable(kernels.dc_scan)
        assert callable(kernels.tb_gather)

    def test_numba_absent_fallback_warns_once(self):
        if HAVE_NUMBA:
            pytest.skip("numba installed; fallback path not reachable")
        FALLBACK_WARNED.discard("kernel_backend=numba")
        with pytest.warns(RuntimeWarning, match="numba"):
            assert resolve_kernel_backend("numba") == "numpy"
        # Deduped on the second request: no warning at all.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel_backend("numba") == "numpy"

    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    def test_backend_differential(self, rng, backend):
        if backend == "numba" and not HAVE_NUMBA:
            pytest.skip("numba not installed")
        pairs = random_pairs(rng) + adversarial_pairs()
        config = GenASMConfig(kernel_backend=backend)
        scalar = [GenASMAligner(config).align(p, t) for p, t in pairs]
        batch = BatchAlignmentEngine(
            config, scalar_traceback_threshold=0
        ).align_pairs(pairs)
        assert_pairwise_identical(scalar, batch, f"backend={backend}")

    def test_alignment_metadata_reports_backend(self, rng):
        pattern = random_dna(rng, 80)
        pairs = [(pattern, mutate(rng, pattern, 4))]
        engine = BatchAlignmentEngine(GenASMConfig(kernel_backend="numpy"))
        alignment = engine.align_pairs(pairs)[0]
        assert alignment.metadata["kernel_backend"] == "numpy"
        resolved = BatchAlignmentEngine(GenASMConfig()).align_pairs(pairs)[0]
        assert resolved.metadata["kernel_backend"] in ("numpy", "numba")

    def test_run_alignments_metadata_reports_backend(self):
        from repro.parallel.executor import BatchExecutor

        result = BatchExecutor(backend="vectorized").run_alignments(
            [("ACGTACGT", "ACGTACGT")]
        )
        backend = result.metadata["kernel_backend"]
        assert backend in ("numpy", "numba")
        if not HAVE_NUMBA:
            assert backend == "numpy"
