"""Tests for the experiment harness (dataset, experiments, report)."""

import math

import pytest

from repro.harness.dataset import AlignmentWorkload, build_paper_dataset
from repro.harness.experiments import (
    PAPER_CLAIMS,
    run_ablation_experiment,
    run_accuracy_experiment,
    run_cpu_speed_experiment,
    run_gpu_speed_experiment,
    run_memory_access_experiment,
    run_memory_footprint_experiment,
)
from repro.harness.report import format_table, generate_experiments_markdown


@pytest.fixture(scope="module")
def workload() -> AlignmentWorkload:
    return build_paper_dataset(read_count=6, read_length=600, seed=3, max_pairs=6)


class TestDataset:
    def test_pipeline_produces_pairs(self, workload):
        assert workload.pair_count >= 4
        assert workload.total_pattern_bases > 1_000
        for pattern, text in workload.pairs:
            assert set(pattern) <= set("ACGT")
            assert len(text) > 0

    def test_candidates_reference_known_reads(self, workload):
        read_names = {read.name for read in workload.reads}
        assert all(c.read_name in read_names for c in workload.candidates)

    def test_scale_to_paper_positive(self, workload):
        assert workload.scale_to_paper > 1
        summary = workload.summary()
        assert summary["pairs"] == workload.pair_count

    def test_max_pairs_cap(self):
        capped = build_paper_dataset(read_count=6, read_length=600, seed=3, max_pairs=2)
        assert capped.pair_count <= 2

    def test_deterministic_for_seed(self):
        a = build_paper_dataset(read_count=3, read_length=500, seed=11, max_pairs=3)
        b = build_paper_dataset(read_count=3, read_length=500, seed=11, max_pairs=3)
        assert a.pairs == b.pairs


class TestExperiments:
    def test_paper_claims_registry(self):
        assert PAPER_CLAIMS["E1a_cpu_vs_ksw2"] == 15.2
        assert PAPER_CLAIMS["E3_footprint_reduction"] == 24.0

    def test_cpu_experiment_rows(self, workload):
        rows = run_cpu_speed_experiment(workload)
        assert {row["id"] for row in rows} == {
            "E1a_cpu_vs_ksw2",
            "E1b_cpu_vs_edlib",
            "E1c_cpu_vs_baseline_genasm",
        }
        for row in rows:
            assert row["measured"] > 0
        ksw2_row = next(r for r in rows if r["id"] == "E1a_cpu_vs_ksw2")
        assert ksw2_row["measured"] > 1.0  # GenASM beats the DP baseline

    def test_gpu_experiment_rows(self, workload):
        cpu_rows = run_cpu_speed_experiment(workload)
        rows = run_gpu_speed_experiment(workload, cpu_rows=cpu_rows)
        by_id = {row["id"]: row for row in rows}
        assert by_id["E2a_gpu_vs_cpu"]["measured"] > 1.0
        assert by_id["E2d_gpu_vs_baseline_gpu"]["measured"] > 1.0
        details = by_id["E2a_gpu_vs_cpu"]["details"]
        assert details["improved_dp_in_shared"] is True
        assert details["baseline_dp_in_shared"] is False

    def test_footprint_experiment(self, workload):
        row = run_memory_footprint_experiment(workload)[0]
        assert row["measured"] > 3.0
        assert row["model_reduction"] > 3.0
        assert row["baseline_bytes_per_window"] > row["improved_bytes_per_window"]

    def test_access_experiment(self, workload):
        row = run_memory_access_experiment(workload)[0]
        assert row["measured"] > 3.0
        assert row["baseline_accesses"] > row["improved_accesses"]

    def test_accuracy_experiment(self, workload):
        row = run_accuracy_experiment(workload)[0]
        assert row["measured"] == pytest.approx(1.0)
        assert row["optimal_fraction"] >= 0.9

    def test_ablation_rows_cover_all_variants(self, workload):
        rows = run_ablation_experiment(workload)
        ids = {row["id"] for row in rows}
        assert "A1_baseline" in ids and "A1_all_improvements" in ids
        all_row = next(r for r in rows if r["id"] == "A1_all_improvements")
        assert all_row["measured"] > 3.0


class TestReport:
    def test_format_table(self):
        table = format_table(
            [{"a": 1.234, "b": "x"}, {"a": float("nan"), "b": "y"}], ["a", "b"]
        )
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert "1.23" in lines[2]
        assert "—" in lines[3]

    def test_generate_experiments_markdown_smoke(self):
        content = generate_experiments_markdown(
            read_count=4, read_length=500, max_pairs=4, seed=5
        )
        assert "# EXPERIMENTS" in content
        assert "E1a_cpu_vs_ksw2" in content
        assert "Ablation" in content
