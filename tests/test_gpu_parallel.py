"""Tests for the GPU execution model and the batch executor."""

import pytest

from repro.core.config import GenASMConfig
from repro.gpu.device import A6000, RTX_3090, XEON_GOLD_5118
from repro.gpu.kernel import GenASMKernelSpec, KernelCost
from repro.gpu.simulator import CpuModel, GpuSimulator
from repro.parallel.executor import BatchExecutor, Stopwatch, chunk_items
from tests.conftest import mutate, random_dna


def _make_pairs(rng, count=4, length=400):
    pairs = []
    for _ in range(count):
        pattern = random_dna(rng, length)
        text = mutate(rng, pattern, length // 10) + random_dna(rng, 8)
        pairs.append((pattern, text))
    return pairs


class TestDeviceSpecs:
    def test_a6000_peak_throughput(self):
        assert A6000.peak_word_ops_per_second > 5e12
        assert A6000.concurrent_threads == 84 * 1536

    def test_cpu_threads(self):
        assert XEON_GOLD_5118.hardware_threads == 48
        assert XEON_GOLD_5118.physical_cores == 24

    def test_gpu_specs_distinct(self):
        assert RTX_3090.global_bandwidth > A6000.global_bandwidth


class TestKernelSpec:
    def test_profile_pair_returns_functional_alignment(self, rng):
        spec = GenASMKernelSpec(GenASMConfig())
        pattern = random_dna(rng, 300)
        text = mutate(rng, pattern, 20) + "ACGT"
        profile = spec.profile_pair(pattern, text)
        profile.alignment.validate()
        assert profile.cost.compute_ops > 0
        assert profile.cost.working_set_bytes > 0

    def test_baseline_working_set_larger(self, rng):
        pairs = _make_pairs(rng, count=2)
        improved = GenASMKernelSpec(GenASMConfig(), name="improved").profile_batch(pairs)
        baseline = GenASMKernelSpec(GenASMConfig.baseline(), name="baseline").profile_batch(pairs)
        assert baseline[0].cost.working_set_bytes > improved[0].cost.working_set_bytes
        assert baseline[0].cost.dp_bytes > improved[0].cost.dp_bytes

    def test_fits_in_shared_decision(self):
        spec = GenASMKernelSpec(GenASMConfig())
        assert spec.fits_in_shared(A6000, 4_000)
        assert not spec.fits_in_shared(A6000, 80_000)
        assert not spec.fits_in_shared(A6000, 200_000)

    def test_kernel_cost_merge(self):
        a = KernelCost(compute_ops=10, dp_bytes=5, io_bytes=2, working_set_bytes=100)
        b = KernelCost(compute_ops=20, dp_bytes=5, io_bytes=3, working_set_bytes=50)
        a.merge(b)
        assert a.compute_ops == 30
        assert a.working_set_bytes == 100


class TestSimulator:
    @pytest.fixture(scope="class")
    def profiles(self):
        import random

        rng = random.Random(77)
        pairs = _make_pairs(rng, count=3, length=600)
        improved = GenASMKernelSpec(GenASMConfig(), name="genasm-gpu-improved")
        baseline = GenASMKernelSpec(GenASMConfig.baseline(), name="genasm-gpu-baseline")
        return (
            pairs,
            improved,
            baseline,
            improved.profile_batch(pairs),
            baseline.profile_batch(pairs),
        )

    def test_improved_kernel_fits_shared_and_is_compute_bound(self, profiles):
        pairs, improved, _, improved_profiles, _ = profiles
        result = GpuSimulator(A6000).simulate(
            pairs, improved, profiles=improved_profiles, workload_multiplier=10_000
        )
        assert result.dp_in_shared
        assert result.bound == "compute"

    def test_baseline_kernel_spills_to_global_and_is_memory_bound(self, profiles):
        pairs, _, baseline, _, baseline_profiles = profiles
        result = GpuSimulator(A6000).simulate(
            pairs, baseline, profiles=baseline_profiles, workload_multiplier=10_000
        )
        assert not result.dp_in_shared
        assert result.bound == "memory"

    def test_improved_gpu_faster_than_baseline_gpu(self, profiles):
        pairs, improved, baseline, improved_profiles, baseline_profiles = profiles
        gpu = GpuSimulator(A6000)
        fast = gpu.simulate(pairs, improved, profiles=improved_profiles, workload_multiplier=10_000)
        slow = gpu.simulate(pairs, baseline, profiles=baseline_profiles, workload_multiplier=10_000)
        assert fast.speedup_over(slow) > 2.0

    def test_gpu_faster_than_cpu_at_scale(self, profiles):
        pairs, improved, _, improved_profiles, _ = profiles
        gpu = GpuSimulator(A6000).simulate(
            pairs, improved, profiles=improved_profiles, workload_multiplier=50_000
        )
        cpu = CpuModel(XEON_GOLD_5118).simulate(
            pairs, improved, profiles=improved_profiles, workload_multiplier=50_000
        )
        speedup = gpu.speedup_over(cpu)
        assert 1.5 < speedup < 20.0

    def test_simulated_alignments_match_cpu_library(self, profiles):
        pairs, improved, baseline, improved_profiles, baseline_profiles = profiles
        for a, b in zip(improved_profiles, baseline_profiles):
            assert a.alignment.edit_distance == b.alignment.edit_distance

    def test_summary_and_throughput(self, profiles):
        pairs, improved, _, improved_profiles, _ = profiles
        result = GpuSimulator(A6000).simulate(pairs, improved, profiles=improved_profiles)
        summary = result.summary()
        assert summary["device"] == A6000.name
        assert result.pairs_per_second > 0

    def test_cpu_thread_scaling(self, profiles):
        pairs, improved, _, improved_profiles, _ = profiles
        full = CpuModel(XEON_GOLD_5118, threads=48).simulate(
            pairs, improved, profiles=improved_profiles, workload_multiplier=1_000
        )
        half = CpuModel(XEON_GOLD_5118, threads=24).simulate(
            pairs, improved, profiles=improved_profiles, workload_multiplier=1_000
        )
        assert half.estimated_seconds > full.estimated_seconds


class TestParallel:
    def test_stopwatch_measures_elapsed(self):
        with Stopwatch() as watch:
            sum(range(10_000))
        assert watch.elapsed > 0

    def test_stopwatch_requires_start(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            watch.stop()

    def test_chunk_items(self):
        assert chunk_items(list(range(10)), 4) == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        with pytest.raises(ValueError):
            chunk_items([1], 0)

    def test_batch_executor_serial(self):
        executor = BatchExecutor(workers=1)
        result = executor.run(lambda x: x * 2, list(range(50)), name="double")
        assert result.results == [x * 2 for x in range(50)]
        assert result.items == 50
        assert result.items_per_second > 0

    def test_batch_executor_pairs(self):
        executor = BatchExecutor(workers=1)
        result = executor.run_pairs(lambda a, b: a + b, [("A", "B"), ("C", "D")])
        assert result.results == ["AB", "CD"]

    def test_invalid_workers_raise(self):
        with pytest.raises(ValueError):
            BatchExecutor(workers=0)

    def test_speedup_over(self):
        from repro.parallel.executor import BatchResult

        fast = BatchResult(results=[], elapsed_seconds=1.0, items=100)
        slow = BatchResult(results=[], elapsed_seconds=2.0, items=100)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_over_degenerate_timings_stay_finite_or_directional(self):
        # Regression: two zero-elapsed runs used to produce inf / inf = nan.
        from repro.parallel.executor import BatchResult

        instant_a = BatchResult(results=[], elapsed_seconds=0.0, items=100)
        instant_b = BatchResult(results=[], elapsed_seconds=0.0, items=100)
        timed = BatchResult(results=[], elapsed_seconds=1.0, items=100)
        assert instant_a.speedup_over(instant_b) == 1.0
        assert instant_a.speedup_over(instant_a) == 1.0
        assert instant_a.speedup_over(timed) == float("inf")
        assert timed.speedup_over(instant_a) == 0.0
        # Empty batches time out at 0 items / ~0 seconds too.
        empty_a = BatchResult(results=[], elapsed_seconds=0.0, items=0)
        empty_b = BatchResult(results=[], elapsed_seconds=0.0, items=0)
        assert empty_a.speedup_over(empty_b) == 1.0
        # Real empty batches: 0 items over a measurable elapsed time used
        # to raise ZeroDivisionError (0.0 / 0.0 throughputs).
        empty_timed_a = BatchResult(results=[], elapsed_seconds=0.002, items=0)
        empty_timed_b = BatchResult(results=[], elapsed_seconds=0.003, items=0)
        assert empty_timed_a.speedup_over(empty_timed_b) == 1.0
        assert timed.speedup_over(empty_timed_a) == float("inf")
        assert empty_timed_a.speedup_over(timed) == 0.0
        # Mixed pairing follows throughput (inf for instantaneous runs,
        # 0.0 for zero-item timed runs), not item counts.
        assert empty_a.speedup_over(empty_timed_a) == float("inf")
        assert empty_timed_a.speedup_over(empty_a) == 0.0
