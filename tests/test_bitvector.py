"""Unit tests for the bitvector substrate."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitvector import (
    WORD_BITS,
    all_ones,
    bit_is_one,
    bit_is_zero,
    count_zero_bits,
    from_words,
    highest_zero_bit,
    lowest_zero_bit,
    pattern_bitmask_words,
    pattern_bitmasks,
    pattern_bitmasks_zero_match,
    popcount,
    shift_left_one,
    shift_left_one_words,
    to_words,
    words_needed,
)


class TestAllOnes:
    def test_zero_length(self):
        assert all_ones(0) == 0

    def test_small(self):
        assert all_ones(3) == 0b111

    def test_word_boundary(self):
        assert all_ones(64) == (1 << 64) - 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            all_ones(-1)


class TestBitPredicates:
    def test_bit_is_zero(self):
        assert bit_is_zero(0b101, 1)
        assert not bit_is_zero(0b101, 0)

    def test_bit_is_one(self):
        assert bit_is_one(0b101, 2)
        assert not bit_is_one(0b101, 1)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b10110) == 3

    def test_count_zero_bits(self):
        assert count_zero_bits(0b101, 3) == 1
        assert count_zero_bits(0, 8) == 8

    def test_lowest_and_highest_zero_bit(self):
        value = 0b11011010
        assert lowest_zero_bit(value, 8) == 0
        assert highest_zero_bit(value, 8) == 5

    def test_zero_bit_queries_on_all_ones(self):
        assert lowest_zero_bit(all_ones(6), 6) == -1
        assert highest_zero_bit(all_ones(6), 6) == -1


class TestShift:
    def test_shift_left_keeps_length(self):
        assert shift_left_one(0b1000, 4) == 0  # top bit shifted out

    def test_shift_left_inserts_zero(self):
        assert shift_left_one(0b0110, 4) == 0b1100


class TestPatternMasks:
    def test_one_active_polarity(self):
        masks = pattern_bitmasks("ACGA")
        assert masks["A"] == 0b1001
        assert masks["C"] == 0b0010
        assert masks["G"] == 0b0100
        assert masks["T"] == 0

    def test_zero_active_polarity_is_complement(self):
        pattern = "ACGTAC"
        ones = all_ones(len(pattern))
        one_active = pattern_bitmasks(pattern)
        zero_active = pattern_bitmasks_zero_match(pattern)
        for c in "ACGT":
            assert zero_active[c] == (ones & ~one_active[c])

    def test_unknown_characters_never_match(self):
        masks = pattern_bitmasks_zero_match("ANA")
        # Position 1 holds 'N', which is outside the alphabet: no zero bit
        # anywhere for it.
        for c in "ACGT":
            assert bit_is_one(masks[c], 1)


class TestWordConversion:
    def test_words_needed(self):
        assert words_needed(1) == 1
        assert words_needed(64) == 1
        assert words_needed(65) == 2
        assert words_needed(0) == 1

    def test_roundtrip_small(self):
        value = 0b101101
        assert from_words(to_words(value, 6), 6) == value

    def test_roundtrip_multiword(self):
        value = (1 << 100) | 0xABCDEF
        words = to_words(value, 101)
        assert len(words) == 2
        assert from_words(words, 101) == value

    @given(st.integers(min_value=1, max_value=200), st.data())
    def test_roundtrip_property(self, length, data):
        value = data.draw(st.integers(min_value=0, max_value=all_ones(length)))
        assert from_words(to_words(value, length), length) == value

    @given(st.integers(min_value=1, max_value=200), st.data())
    def test_word_shift_matches_int_shift(self, length, data):
        value = data.draw(st.integers(min_value=0, max_value=all_ones(length)))
        words = to_words(value, length)
        shifted = shift_left_one_words(words, length)
        assert from_words(shifted, length) == shift_left_one(value, length)

    def test_pattern_bitmask_words_match_int_masks(self):
        pattern = "ACGT" * 20  # 80 bases -> 2 words
        int_masks = pattern_bitmasks_zero_match(pattern)
        word_masks = pattern_bitmask_words(pattern)
        for c in "ACGT":
            assert from_words(word_masks[c], len(pattern)) == int_masks[c]
