"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import GenASMConfig

ALPHABET = "ACGT"


def random_dna(rng: random.Random, length: int) -> str:
    """Random DNA string from a seeded ``random.Random``."""
    return "".join(rng.choice(ALPHABET) for _ in range(length))


def mutate(rng: random.Random, sequence: str, edits: int) -> str:
    """Apply ``edits`` random substitutions/insertions/deletions."""
    out = list(sequence)
    for _ in range(edits):
        if not out:
            out.append(rng.choice(ALPHABET))
            continue
        op = rng.choice("sid")
        pos = rng.randrange(len(out))
        if op == "s":
            out[pos] = rng.choice(ALPHABET)
        elif op == "i":
            out.insert(pos, rng.choice(ALPHABET))
        else:
            del out[pos]
    return "".join(out)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for test data."""
    return random.Random(1234)


@pytest.fixture
def improved_config() -> GenASMConfig:
    """Default (all improvements on) configuration."""
    return GenASMConfig()


@pytest.fixture
def baseline_config() -> GenASMConfig:
    """MICRO-2020 baseline configuration."""
    return GenASMConfig.baseline()


def related_pair(rng: random.Random, length: int, error_rate: float = 0.1):
    """A (pattern, text) pair where text is a mutated copy of pattern plus slack."""
    pattern = random_dna(rng, length)
    edits = max(1, int(length * error_rate))
    text = mutate(rng, pattern, rng.randint(0, edits)) + random_dna(rng, 8)
    return pattern, text
