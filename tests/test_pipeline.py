"""Differential tests for the streaming pipeline (:mod:`repro.pipeline`).

The subsystem contract: :class:`StreamingPipeline` produces **byte-identical
alignments in identical order** to the offline path — candidate pairs
materialised by :meth:`Mapper.map_reads` and aligned by
:meth:`BatchExecutor.run_alignments` — regardless of wave size, chunk
boundaries, worker pools, or flush policy.  Wave grouping and concurrency
may only move throughput and latency, never a single CIGAR byte.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.config import GenASMConfig
from repro.genomics.fasta import write_fasta, write_fastq
from repro.harness.dataset import build_paper_dataset
from repro.mapping.mapper import Mapper
from repro.parallel.executor import BatchExecutor
from repro.pipeline import (
    MapStage,
    ReadRecord,
    StreamingPipeline,
    WaveAccumulator,
    stream_reads,
)
from tests.conftest import mutate, random_dna

DATA_DIR = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def workload():
    return build_paper_dataset(read_count=10, read_length=500, seed=5, max_pairs=None)


@pytest.fixture(scope="module")
def mapper(workload):
    return Mapper(workload.genome, all_chains=True)


@pytest.fixture(scope="module")
def offline(workload, mapper):
    """Offline reference: materialised candidates + vectorized batch run."""
    candidates = mapper.map_reads(workload.reads)
    sequences = {read.name: read.sequence for read in workload.reads}
    pairs = [
        mapper.candidate_region_sequence(c, sequences[c.read_name])
        for c in candidates
    ]
    results = BatchExecutor(backend="vectorized").run_alignments(pairs).results
    return candidates, pairs, results


def assert_same_alignments(reference, got, context=""):
    assert len(reference) == len(got), context
    for want, have in zip(reference, got):
        assert str(have.cigar) == str(want.cigar), context
        assert have.edit_distance == want.edit_distance, context
        assert have.text_end == want.text_end, context


class TestIngest:
    def test_simulated_reads_and_tuples_and_strings(self, workload):
        reads = workload.reads[:3]
        from_objects = list(stream_reads(reads))
        from_tuples = list(stream_reads([(r.name, r.sequence) for r in reads]))
        from_strings = list(stream_reads([r.sequence for r in reads]))
        assert [r.name for r in from_objects] == [r.name for r in reads]
        assert [r.sequence for r in from_objects] == [r.sequence for r in reads]
        assert from_tuples == from_objects
        assert [r.sequence for r in from_strings] == [r.sequence for r in reads]
        assert [r.index for r in from_objects] == [0, 1, 2]

    def test_fasta_and_fastq_paths_stream(self, tmp_path, workload):
        reads = workload.reads[:4]
        fasta = tmp_path / "reads.fasta"
        fastq = tmp_path / "reads.fastq"
        write_fasta(fasta, [(r.name, r.sequence) for r in reads])
        write_fastq(fastq, [(r.name, r.sequence, r.quality) for r in reads])
        for path in (fasta, fastq):
            records = list(stream_reads(str(path)))
            assert [r.name for r in records] == [r.name for r in reads]
            assert [r.sequence for r in records] == [r.sequence for r in reads]

    def test_lazy_iteration(self):
        def infinite():
            index = 0
            while True:
                yield f"ACGT{'A' * (index % 3)}"
                index += 1

        stream = stream_reads(infinite())
        first = [next(stream) for _ in range(5)]
        assert [r.index for r in first] == list(range(5))

    def test_unsupported_item_type(self):
        with pytest.raises(TypeError):
            list(stream_reads([42]))


class TestWaveAccumulator:
    def _items(self, lengths):
        return [
            ReadRecord(index, f"r{index}", "A" * length)
            for index, length in enumerate(lengths)
        ]

    def test_flush_on_size_emits_full_waves_and_keeps_remainder(self):
        acc = WaveAccumulator(wave_size=3, max_pending=5, work_key=lambda i: i.length)
        waves = []
        for item in self._items([10, 20, 30, 40]):
            waves.extend(acc.push(item))
        assert waves == []
        waves.extend(acc.push(self._items([5])[0]))  # 5th item hits the bound
        assert len(waves) == 1  # one full wave of 3 lanes
        assert len(waves[0]) == 3
        # Sorted policy: the wave carries the three smallest work items.
        assert sorted(i.length for i in waves[0]) == [5, 10, 20]
        assert [i.length for i in acc.pending] == [30, 40]
        final = acc.flush()
        assert [len(w) for w in final] == [2]

    def test_backpressure_tighter_than_wave_size_drains_partial(self):
        acc = WaveAccumulator(wave_size=10, max_pending=2)
        assert acc.push(1) == []
        waves = acc.push(2)
        assert [len(w) for w in waves] == [2]
        assert len(acc) == 0

    def test_flush_on_timeout(self):
        now = [0.0]
        acc = WaveAccumulator(
            wave_size=8, max_pending=100, linger_seconds=2.0, clock=lambda: now[0]
        )
        assert acc.push("a") == []
        now[0] = 1.0
        assert acc.push("b") == []
        now[0] = 2.5  # oldest item is now older than the linger bound
        waves = acc.push("c")
        assert [len(w) for w in waves] == [3]
        assert len(acc) == 0
        # The clock resets with the buffer: a fresh item does not flush.
        assert acc.push("d") == []

    def test_cut_refreshes_oldest_arrival(self):
        # Regression: a size-cut that dispatches the oldest item must not
        # keep its arrival time — otherwise poll() immediately fires a
        # spurious "timeout" flush on the fresh remainder, collapsing wave
        # fill on sorted streams.
        now = [0.0]
        acc = WaveAccumulator(
            wave_size=2,
            max_pending=3,
            linger_seconds=2.0,
            scheduling="fifo",
            clock=lambda: now[0],
        )
        assert acc.push("a") == []
        now[0] = 1.9
        assert acc.push("b") == []
        waves = acc.push("c")  # hits max_pending: cuts ["a", "b"], keeps "c"
        assert waves == [["a", "b"]]
        # "c" arrived just now — its age is 0, not item "a"'s 1.9 s.
        assert acc.oldest_age() == pytest.approx(0.0)
        now[0] = 2.5  # "a" would be 2.5 s old, but "c" is only 0.6 s old
        assert acc.poll() == []
        now[0] = 4.0  # now "c" genuinely exceeds the linger bound
        assert acc.poll() == [["c"]]
        assert acc.oldest_age() is None

    def test_sorted_cut_keeps_per_item_ages(self):
        # A sorted cut can dispatch *newer* items and leave the oldest one
        # pending; its original arrival time must survive the cut.
        now = [0.0]
        acc = WaveAccumulator(
            wave_size=2,
            max_pending=3,
            linger_seconds=5.0,
            work_key=lambda item: item,
            clock=lambda: now[0],
        )
        acc.push(9)  # oldest, but largest work — stays pending
        now[0] = 1.0
        acc.push(1)
        now[0] = 2.0
        waves = acc.push(2)
        assert waves == [[1, 2]]
        assert [i for i in acc.pending] == [9]
        assert acc.oldest_age() == pytest.approx(2.0)

    def test_fifo_scheduling_keeps_arrival_order(self):
        acc = WaveAccumulator(
            wave_size=2, max_pending=4, scheduling="fifo", work_key=lambda i: -i
        )
        flushed = []
        for item in (5, 4, 3, 2):
            flushed.extend(acc.push(item))
        assert flushed == [[5, 4], [3, 2]]

    def test_validation(self):
        with pytest.raises(ValueError):
            WaveAccumulator(wave_size=0)
        with pytest.raises(ValueError):
            WaveAccumulator(max_pending=0)
        with pytest.raises(ValueError):
            WaveAccumulator(linger_seconds=-1.0)
        with pytest.raises(ValueError):
            WaveAccumulator(scheduling="random")


class TestMapStage:
    def test_threaded_mapping_matches_inline_in_order(self, workload, mapper):
        records = list(stream_reads(workload.reads))
        inline = MapStage(mapper, workers=1)
        threaded = MapStage(mapper, workers=3, prefetch=2)
        try:
            for record in records:
                inline.submit(record)
                threaded.submit(record)
            a = inline.drain()
            b = threaded.drain()
        finally:
            inline.close()
            threaded.close()
        assert [record.name for record, _ in a] == [r.name for r in records]
        assert [record.name for record, _ in b] == [r.name for r in records]
        for (_, items_a), (_, items_b) in zip(a, b):
            assert [c.ref_start for c, _, _ in items_a] == [
                c.ref_start for c, _, _ in items_b
            ]
            assert [(p, t) for _, p, t in items_a] == [(p, t) for _, p, t in items_b]


class TestStreamingEquivalence:
    """StreamingPipeline ≡ offline map-then-align, byte for byte, in order."""

    def test_run_matches_offline_path(self, workload, mapper, offline):
        candidates, _pairs, reference = offline
        pipeline = StreamingPipeline(mapper, wave_size=8, max_pending=16)
        results = pipeline.run_all(workload.reads)
        assert [m.order for m in results] == list(range(len(candidates)))
        assert [m.candidate.ref_start for m in results] == [
            c.ref_start for c in candidates
        ]
        assert [m.read_name for m in results] == [c.read_name for c in candidates]
        assert_same_alignments(reference, [m.alignment for m in results])
        stats = pipeline.stats
        assert stats.reads == len(workload.reads)
        assert stats.candidates == len(candidates)
        assert stats.aligned == len(candidates)

    @pytest.mark.parametrize("wave_size", [1, 3, 7, 1000])
    def test_chunk_boundaries_never_change_results(
        self, workload, mapper, offline, wave_size
    ):
        # Wave sizes that do not divide the candidate count, a single-lane
        # pipeline, and one wave holding everything: identical output.
        _candidates, _pairs, reference = offline
        pipeline = StreamingPipeline(mapper, wave_size=wave_size, max_pending=wave_size)
        results = pipeline.run_all(workload.reads)
        assert_same_alignments(
            reference, [m.alignment for m in results], f"wave_size={wave_size}"
        )

    def test_align_pairs_matches_run_alignments(self, offline):
        _candidates, pairs, reference = offline
        streamed = StreamingPipeline(wave_size=4, max_pending=8).align_pairs(pairs)
        assert_same_alignments(reference, streamed)
        serial = BatchExecutor(backend="serial").run_alignments(pairs).results
        assert_same_alignments(serial, streamed)

    def test_empty_stream_and_empty_pairs(self, mapper):
        pipeline = StreamingPipeline(mapper)
        assert pipeline.run_all([]) == []
        assert pipeline.stats.reads == 0
        assert pipeline.stats.aligned == 0
        assert pipeline.stats.wall_seconds >= 0
        assert StreamingPipeline(wave_size=2).align_pairs([]) == []

    def test_degenerate_pairs_stream_like_offline(self):
        # Empty patterns/texts and single characters cross the pipeline
        # exactly as they cross run_alignments (no filtering, no reorder).
        pairs = [("", "ACGT"), ("ACGT", ""), ("A", "A"), ("", ""), ("ACGT" * 30, "ACG")]
        reference = BatchExecutor(backend="vectorized").run_alignments(pairs).results
        streamed = StreamingPipeline(wave_size=2, max_pending=2).align_pairs(pairs)
        assert_same_alignments(reference, streamed)

    def test_streaming_emission_is_in_order_and_incremental(self, workload, mapper):
        pipeline = StreamingPipeline(mapper, wave_size=4, max_pending=4)
        seen = []
        for mapped in pipeline.run(workload.reads):
            seen.append(mapped.order)
        assert seen == sorted(seen)
        assert pipeline.stats.waves >= 2  # the bound actually chunked the stream

    def test_worker_pools_do_not_change_results(self, workload, mapper, offline):
        _candidates, _pairs, reference = offline
        pipeline = StreamingPipeline(
            mapper, wave_size=8, max_pending=16, map_workers=2, align_workers=2
        )
        results = pipeline.run_all(workload.reads)
        assert_same_alignments(reference, [m.alignment for m in results])

    def test_mapper_align_candidates_streaming_backend(self, workload, mapper, offline):
        candidates, _pairs, reference = offline
        sequences = {read.name: read.sequence for read in workload.reads}
        streamed = mapper.align_candidates(candidates, sequences, backend="streaming")
        assert_same_alignments(reference, streamed)

    def test_run_without_mapper_raises(self):
        with pytest.raises(ValueError):
            list(StreamingPipeline().run(["ACGT"]))

    def test_max_pending_tighter_than_wave_size_is_honored(self, offline):
        # The constructor passes the caller's backpressure bound through
        # unclamped: with max_pending < wave_size the accumulator drains
        # partial waves at the bound instead of buffering a full wave.
        _candidates, pairs, reference = offline
        pipeline = StreamingPipeline(wave_size=64, max_pending=4)
        assert pipeline.max_pending == 4
        streamed = pipeline.align_pairs(pairs)
        assert_same_alignments(reference, streamed)
        assert pipeline.stats.max_pending <= 4
        assert max(pipeline.stats.wave_lane_counts) <= 4
        with pytest.raises(ValueError):
            StreamingPipeline(max_pending=0)


class TestGoldenCorpusStreaming:
    def test_streaming_reproduces_golden_corpus(self):
        with open(DATA_DIR / "golden_corpus.json") as fh:
            corpus = json.load(fh)
        pairs = [(e["pattern"], e["text"]) for e in corpus["entries"]]
        streamed = StreamingPipeline(wave_size=3, max_pending=5).align_pairs(pairs)
        for entry, alignment in zip(corpus["entries"], streamed):
            assert str(alignment.cigar) == entry["cigar"]
            assert alignment.edit_distance == entry["edit_distance"]
            assert alignment.text_end == entry["text_end"]


class TestPipelineStats:
    def test_stage_times_and_wave_fill(self, workload, mapper):
        pipeline = StreamingPipeline(mapper, wave_size=4, max_pending=8)
        pipeline.run_all(workload.reads)
        stats = pipeline.stats
        assert set(stats.stage_seconds) == {"ingest", "map", "batch", "align", "emit"}
        assert stats.wall_seconds > 0
        assert stats.stage_seconds["align"] > 0
        assert 0 < stats.wave_fill_efficiency <= 1.0
        assert stats.max_pending <= 8
        assert sum(stats.flushes.values()) == stats.waves
        as_dict = stats.as_dict()
        assert as_dict["aligned"] == stats.aligned
        assert "stage_seconds" in as_dict
        assert "reads/s" in stats.summary()

    def test_wave_fill_uses_dispatch_time_lane_counts(self):
        # Fill efficiency is a property of the dispatched waves alone: when
        # results lag dispatch (waves still in flight on a sharded align
        # stage, or a caller abandoning the result generator early leaves
        # stats.aligned behind), the ratio must not deflate.
        from repro.pipeline import PipelineStats

        stats = PipelineStats(wave_size=4)
        stats.record_wave(4, "size")
        stats.record_wave(2, "final")
        assert stats.aligned == 0  # nothing absorbed yet
        assert stats.wave_fill_efficiency == pytest.approx(6 / 8)

    def test_merged_wave_counts_as_full_in_stats(self):
        # Regression: a tail-merged wave carries *more* lanes than
        # wave_size; the old `lanes == wave_size` check counted it as
        # partial, deflating full_waves on exactly the drains where the
        # merge policy did its job.
        from repro.pipeline import PipelineStats

        stats = PipelineStats(wave_size=4)
        acc = WaveAccumulator(wave_size=4, merge_below=2, stats=stats)
        for item in range(5):
            acc.push(item)
        waves = acc.flush()
        assert waves == [[0, 1, 2, 3, 4]]  # fifo-equivalent: work_key constant
        assert stats.wave_merges == 1
        assert stats.full_waves == 1
        assert stats.wave_fill_efficiency == 1.0

    def test_unknown_flush_cause_rejected(self):
        # The FLUSH_CAUSES contract used to break silently: an unlisted
        # reason landed in the flushes Counter but as_dict()/summary()
        # views built from FLUSH_CAUSES dropped it.
        from repro.pipeline import PipelineStats

        stats = PipelineStats(wave_size=4)
        with pytest.raises(ValueError, match="unknown flush cause"):
            stats.record_wave(4, "oops")
        assert stats.waves == 0  # rejected before any mutation
        assert sum(stats.flushes.values()) == 0

    def test_record_traceback_folds_alignment_metadata(self):
        from repro.pipeline import PipelineStats

        stats = PipelineStats(wave_size=4)
        stats.record_traceback(
            {
                "tb_walk_steps": 7,
                "tb_walk_steps_saved": 3,
                "tb_match_runs": 2,
                "tb_match_run_ops": 5,
            }
        )
        # Scalar-fallback alignments carry no tb_* keys; folding them must
        # be a no-op rather than a KeyError.
        stats.record_traceback({"windows": 1})
        assert stats.tb_walk_steps == 7
        assert stats.tb_walk_steps_saved == 3
        assert stats.tb_match_runs == 2
        assert stats.tb_match_run_ops == 5
        as_dict = stats.as_dict()
        assert as_dict["tb_walk_steps_saved"] == 3
        assert "walk_steps=7" in stats.summary()

    def test_random_work_stream_with_backpressure(self, rng):
        # A synthetic mixed-length pair stream under a tight bound: every
        # flush cause can fire and the output still matches offline.
        pairs = []
        for _ in range(40):
            length = rng.choice([10, 50, 120, 300])
            pattern = random_dna(rng, length)
            pairs.append((pattern, mutate(rng, pattern, max(1, length // 10)) + "AC"))
        reference = BatchExecutor(backend="vectorized").run_alignments(pairs).results
        pipeline = StreamingPipeline(wave_size=8, max_pending=8)
        streamed = pipeline.align_pairs(pairs)
        assert_same_alignments(reference, streamed)
        assert pipeline.stats.flushes["size"] > 0


class TestStreamingExperiment:
    def test_e1s_rows(self):
        from repro.harness.experiments import run_streaming_throughput_experiment

        rows = run_streaming_throughput_experiment(
            read_count=6, read_length=400, seed=3
        )
        assert {row["id"] for row in rows} == {
            "E1s_streaming_vs_offline_serial",
            "E1s_streaming_vs_offline_vectorized",
        }
        for row in rows:
            assert row["identical_results"] is True
            assert row["measured"] > 0
            assert set(row["stage_seconds"]) == {
                "ingest",
                "map",
                "batch",
                "align",
                "emit",
            }
            assert row["pipeline_stats"]["aligned"] == row["pairs"]
