"""Tests for minimizer extraction, indexing, chaining and the mapper."""

import numpy as np
import pytest

from repro.genomics.genome import SyntheticGenome
from repro.genomics.read_simulator import PacBioSimulator
from repro.genomics.sequences import random_dna, reverse_complement
from repro.mapping.chaining import Anchor, chain_anchors
from repro.mapping.index import MinimizerIndex
from repro.mapping.mapper import Mapper
from repro.mapping.minimizers import extract_minimizers, kmer_hashes


class TestMinimizers:
    def test_extraction_positions_in_range(self):
        seq = random_dna(2_000, np.random.default_rng(0))
        minimizers = extract_minimizers(seq, k=15, w=10)
        assert minimizers
        assert all(0 <= m.position <= len(seq) - 15 for m in minimizers)

    def test_density_roughly_two_over_w_plus_one(self):
        seq = random_dna(50_000, np.random.default_rng(1))
        w = 10
        minimizers = extract_minimizers(seq, k=15, w=w)
        density = len(minimizers) / (len(seq) - 15 + 1)
        assert 1.0 / (w + 1) < density < 4.0 / (w + 1)

    def test_canonical_hashes_strand_invariant(self):
        seq = random_dna(300, np.random.default_rng(2))
        fwd = set(int(h) for h in kmer_hashes(seq, 15))
        rev = set(int(h) for h in kmer_hashes(reverse_complement(seq), 15))
        assert fwd == rev

    def test_shared_minimizers_between_overlapping_sequences(self):
        seq = random_dna(3_000, np.random.default_rng(3))
        a = set(m.hash for m in extract_minimizers(seq[:2_000]))
        b = set(m.hash for m in extract_minimizers(seq[1_000:]))
        assert len(a & b) > 10

    def test_short_sequence_returns_empty(self):
        assert extract_minimizers("ACGT", k=15, w=10) == []

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            extract_minimizers("ACGT" * 10, k=0)
        with pytest.raises(ValueError):
            extract_minimizers("ACGT" * 10, k=15, w=0)
        with pytest.raises(ValueError):
            kmer_hashes("ACGT" * 10, 40)


class TestIndex:
    def test_lookup_finds_own_minimizers(self):
        genome = SyntheticGenome.random({"a": 20_000}, seed=5, repeat_fraction=0.0)
        index = MinimizerIndex.build(genome)
        minimizers = extract_minimizers(genome.sequence("a"))
        hits = sum(1 for m in minimizers[:50] if index.lookup(m.hash))
        assert hits >= 45

    def test_frequency_filter_drops_repetitive_seeds(self):
        genome = SyntheticGenome(chromosomes={"a": "ACGTACGTAC" * 2_000})
        index = MinimizerIndex.build(genome, max_occurrences=4)
        assert index.dropped_minimizers > 0

    def test_add_after_finalise_raises(self):
        genome = SyntheticGenome.random({"a": 5_000}, seed=5, repeat_fraction=0.0)
        index = MinimizerIndex.build(genome)
        with pytest.raises(RuntimeError):
            index.add_sequence("b", "ACGT" * 100)

    def test_contains_and_len(self):
        genome = SyntheticGenome.random({"a": 5_000}, seed=5, repeat_fraction=0.0)
        index = MinimizerIndex.build(genome)
        assert len(index) > 0
        some_hash = next(iter(extract_minimizers(genome.sequence("a")))).hash
        assert some_hash in index


class TestChaining:
    def test_colinear_anchors_form_one_chain(self):
        anchors = [Anchor(query_pos=i * 50, ref_pos=1_000 + i * 50, strand=1) for i in range(10)]
        chains = chain_anchors(anchors, min_chain_score=30)
        assert len(chains) == 1
        assert len(chains[0]) == 10

    def test_off_diagonal_anchors_are_split(self):
        near = [Anchor(query_pos=i * 50, ref_pos=i * 50, strand=1) for i in range(8)]
        far = [Anchor(query_pos=i * 50, ref_pos=500_000 + i * 50, strand=1) for i in range(8)]
        chains = chain_anchors(near + far, min_chain_score=30)
        assert len(chains) == 2

    def test_low_scoring_chains_filtered(self):
        anchors = [Anchor(query_pos=0, ref_pos=0, strand=1)]
        assert chain_anchors(anchors, min_chain_score=40) == []

    def test_empty_input(self):
        assert chain_anchors([]) == []

    def test_chain_span_properties(self):
        anchors = [Anchor(query_pos=i * 20, ref_pos=100 + i * 20, strand=1) for i in range(5)]
        chain = chain_anchors(anchors, min_chain_score=10, min_chain_anchors=2)[0]
        assert chain.query_start == 0
        assert chain.ref_start == 100
        assert chain.ref_end == 100 + 4 * 20 + 15


class TestMapper:
    @pytest.fixture(scope="class")
    def pipeline(self):
        genome = SyntheticGenome.random(
            {"chr1": 80_000, "chr2": 40_000}, seed=6, repeat_fraction=0.05, repeat_length=1_000
        )
        reads = PacBioSimulator(mean_length=1_500, std_length=200, seed=8).simulate(genome, 12)
        mapper = Mapper(genome)
        return genome, reads, mapper

    def test_primary_candidates_hit_true_location(self, pipeline):
        genome, reads, mapper = pipeline
        correct = 0
        for read in reads:
            candidates = mapper.map_read(read)
            if not candidates:
                continue
            best = candidates[0]
            if (
                best.chrom == read.chrom
                and best.strand == read.strand
                and abs(best.ref_start - read.start) < 300
            ):
                correct += 1
        assert correct >= len(reads) - 2

    def test_candidate_regions_cover_read_length(self, pipeline):
        genome, reads, mapper = pipeline
        for read in reads[:5]:
            for candidate in mapper.map_read(read):
                assert candidate.span >= 0.8 * read.length

    def test_candidate_region_sequence_orientation(self, pipeline):
        genome, reads, mapper = pipeline
        read = reads[0]
        candidates = mapper.map_read(read)
        assert candidates
        pattern, text = mapper.candidate_region_sequence(candidates[0], read.sequence)
        assert len(text) == candidates[0].span
        if candidates[0].strand == "+":
            assert pattern == read.sequence
        else:
            assert pattern == reverse_complement(read.sequence)

    def test_all_chains_reports_at_least_primary(self, pipeline):
        genome, reads, mapper = pipeline
        total = mapper.map_reads(reads)
        assert len(total) >= sum(1 for r in reads if mapper.map_read(r))

    def test_unmappable_read_returns_empty(self, pipeline):
        genome, _, mapper = pipeline
        random_read = random_dna(500, np.random.default_rng(99))
        # A random sequence should rarely chain anywhere on this small genome.
        assert len(mapper.map_sequence("random", random_read)) <= 1


class TestChainGuards:
    def test_empty_chain_coordinates_raise_clearly(self):
        from repro.mapping.chaining import Chain

        chain = Chain()
        for prop in ("query_start", "query_end", "ref_start", "ref_end"):
            with pytest.raises(ValueError, match="no anchors"):
                getattr(chain, prop)

    def test_chain_anchors_never_emits_empty_chains(self):
        anchors = [Anchor(q, q + 50, 1) for q in range(0, 600, 30)]
        chains = chain_anchors(anchors)
        assert chains
        for chain in chains:
            assert len(chain) > 0
            assert chain.query_start <= chain.query_end  # coordinates usable


class TestMappingConfidence:
    def _candidate(self, score, primary=False):
        from repro.mapping.mapper import CandidateMapping

        return CandidateMapping("r", "a", 0, 100, "+", score, 10, primary)

    def test_unique_candidate(self):
        from repro.mapping.mapper import mapping_confidence

        index, primary, secondary = mapping_confidence([self._candidate(80.0, True)])
        assert (index, primary, secondary) == (0, 80.0, 0.0)

    def test_gap_between_best_and_second_best(self):
        from repro.mapping.mapper import mapping_confidence

        candidates = [
            self._candidate(90.0, True),
            self._candidate(60.0),
            self._candidate(30.0),
        ]
        assert mapping_confidence(candidates) == (0, 90.0, 60.0)

    def test_primary_flag_beats_raw_score(self):
        from repro.mapping.mapper import mapping_confidence

        # The mapper's election is authoritative even if a later rescoring
        # left a secondary with the numerically larger chain score.
        candidates = [self._candidate(50.0, True), self._candidate(70.0)]
        index, primary, secondary = mapping_confidence(candidates)
        assert index == 0 and primary == 50.0 and secondary == 70.0

    def test_empty_group_raises(self):
        from repro.mapping.mapper import mapping_confidence

        with pytest.raises(ValueError, match="at least one candidate"):
            mapping_confidence([])
