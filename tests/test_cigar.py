"""Unit tests for CIGAR handling."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cigar import Cigar, CigarOp


class TestParsing:
    def test_roundtrip(self):
        c = Cigar.from_string("10=1X3I2D")
        assert str(c) == "10=1X3I2D"

    def test_empty(self):
        assert str(Cigar.from_string("")) == "*"
        assert str(Cigar.from_string("*")) == "*"
        assert len(Cigar(())) == 0

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Cigar.from_string("10=abc")

    def test_unsupported_op_raises(self):
        with pytest.raises(ValueError):
            Cigar.from_string("5N")

    def test_merges_adjacent_runs(self):
        c = Cigar.from_runs([(2, CigarOp.MATCH), (3, CigarOp.MATCH), (1, CigarOp.DELETION)])
        assert str(c) == "5=1D"

    def test_drops_zero_runs(self):
        c = Cigar.from_runs([(0, CigarOp.MATCH), (2, CigarOp.MISMATCH)])
        assert str(c) == "2X"

    def test_negative_run_raises(self):
        with pytest.raises(ValueError):
            Cigar.from_runs([(-1, CigarOp.MATCH)])


class TestDerivedQuantities:
    def test_lengths(self):
        c = Cigar.from_string("5=2X3I4D")
        assert c.pattern_length == 10
        assert c.text_length == 11
        assert len(c) == 14

    def test_edit_distance(self):
        c = Cigar.from_string("5=2X3I4D")
        assert c.edit_distance == 9

    def test_matches_and_counts(self):
        c = Cigar.from_string("5=2X1=")
        assert c.matches == 6
        assert c.counts() == {"=": 6, "X": 2}

    def test_soft_clip_consumes_pattern_only(self):
        c = Cigar.from_string("3S5=")
        assert c.pattern_length == 8
        assert c.aligned_pattern_length == 5
        assert c.text_length == 5


class TestAlgebra:
    def test_concatenation_merges(self):
        a = Cigar.from_string("3=")
        b = Cigar.from_string("2=1X")
        assert str(a + b) == "5=1X"

    def test_reversed(self):
        c = Cigar.from_string("3=1D2X")
        assert str(c.reversed()) == "2X1D3="

    def test_collapse_to_m(self):
        c = Cigar.from_string("3=1X2I")
        assert str(c.collapse_to_M()) == "4M2I"


class TestValidation:
    def test_valid_alignment(self):
        Cigar.from_string("3=1X").validate("ACGT", "ACGA")

    def test_wrong_pattern_length(self):
        with pytest.raises(ValueError):
            Cigar.from_string("3=").validate("ACGT", "ACG")

    def test_match_run_over_mismatch_raises(self):
        with pytest.raises(ValueError):
            Cigar.from_string("4=").validate("ACGT", "ACGA")

    def test_mismatch_run_over_match_raises(self):
        with pytest.raises(ValueError):
            Cigar.from_string("3=1X").validate("ACGT", "ACGT")

    def test_partial_text_allowed(self):
        Cigar.from_string("4=").validate("ACGT", "ACGTAAA", partial_text=True)

    def test_partial_text_disallowed(self):
        with pytest.raises(ValueError):
            Cigar.from_string("4=").validate("ACGT", "ACGTAAA", partial_text=False)


class TestScoring:
    def test_unit_cost_score_equals_edit_distance(self):
        c = Cigar.from_string("5=2X3I4D")
        assert c.score() == c.edit_distance

    def test_affine_score(self):
        c = Cigar.from_string("2=1X3I")
        # 2*2 + (-4) + (-4 + 2*(-2)) = 4 - 4 - 8 = -8
        assert c.affine_score(2, -4, -4, -2) == -8


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),
            st.sampled_from(list(CigarOp)),
        ),
        max_size=20,
    )
)
def test_string_roundtrip_property(runs):
    cigar = Cigar.from_runs(runs)
    assert Cigar.from_string(str(cigar)) == cigar


@given(
    st.lists(st.sampled_from([CigarOp.MATCH, CigarOp.MISMATCH, CigarOp.INSERTION, CigarOp.DELETION]), max_size=30)
)
def test_edit_distance_counts_non_matches(ops):
    cigar = Cigar.from_ops(ops)
    expected = sum(1 for op in ops if op is not CigarOp.MATCH)
    assert cigar.edit_distance == expected


class TestResolveAlignAndClips:
    def test_resolves_m_runs_against_sequences(self):
        cigar = Cigar.from_string("4M")
        resolved = cigar.resolve_align("ACGT", "ACTT")
        assert str(resolved) == "2=1X1="
        assert resolved.matches == 3 and resolved.edit_distance == 1

    def test_no_m_returns_same_object(self):
        cigar = Cigar.from_string("3=1X")
        assert cigar.resolve_align("ACGA", "ACGT") is cigar

    def test_mixed_ops_track_both_cursors(self):
        cigar = Cigar.from_string("2M1I2M")
        resolved = cigar.resolve_align("ACGTT", "ACTA")
        assert str(resolved) == "2=1I1=1X"

    def test_m_run_overrunning_sequences_raises(self):
        with pytest.raises(ValueError, match="overruns"):
            Cigar.from_string("5M").resolve_align("ACGT", "ACGT")

    def test_has_align_ops(self):
        assert Cigar.from_string("3M").has_align_ops
        assert not Cigar.from_string("3=1X1I").has_align_ops

    def test_clip_lengths(self):
        cigar = Cigar.from_string("2S3=1S")
        assert cigar.leading_clip == 2
        assert cigar.trailing_clip == 1
        assert Cigar.from_string("3=").leading_clip == 0
        assert Cigar.from_string("3=").trailing_clip == 0
