"""End-to-end integration tests: genome → reads → mapper → aligners → report."""

import pytest

from repro.baselines.edlib_like import EdlibLikeAligner
from repro.baselines.ksw2 import Ksw2Aligner
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.genomics.errors import ErrorModel
from repro.genomics.genome import SyntheticGenome
from repro.genomics.read_simulator import IlluminaSimulator, PacBioSimulator
from repro.gpu.kernel import GenASMKernelSpec
from repro.gpu.simulator import GpuSimulator
from repro.mapping.mapper import Mapper


@pytest.fixture(scope="module")
def pipeline():
    genome = SyntheticGenome.random(
        {"chr1": 60_000, "chr2": 30_000}, seed=21, repeat_fraction=0.05, repeat_length=800
    )
    reads = PacBioSimulator(mean_length=900, std_length=150, seed=22).simulate(genome, 8)
    mapper = Mapper(genome)
    return genome, reads, mapper


class TestLongReadPipeline:
    def test_candidates_align_consistently_across_aligners(self, pipeline):
        genome, reads, mapper = pipeline
        genasm = GenASMAligner()
        edlib = EdlibLikeAligner("prefix")
        checked = 0
        for read in reads:
            candidates = mapper.map_read(read)
            if not candidates:
                continue
            pattern, text = mapper.candidate_region_sequence(candidates[0], read.sequence)
            a = genasm.align(pattern, text)
            b = edlib.align(pattern, text)
            a.validate()
            # The windowed heuristic must stay within a small margin of the
            # optimal prefix alignment that Edlib computes.
            assert a.edit_distance >= b.edit_distance
            assert a.edit_distance <= b.edit_distance + max(3, b.edit_distance // 10)
            checked += 1
        assert checked >= 5

    def test_true_location_candidate_has_low_distance(self, pipeline):
        genome, reads, mapper = pipeline
        genasm = GenASMAligner()
        for read in reads[:4]:
            candidates = mapper.map_read(read)
            if not candidates:
                continue
            best = candidates[0]
            pattern, text = mapper.candidate_region_sequence(best, read.sequence)
            alignment = genasm.align(pattern, text)
            # The best candidate should align with an error rate comparable to
            # the simulated error rate (never wildly higher).
            assert alignment.edit_distance <= 2.0 * max(20, read.true_edits)

    def test_gpu_simulation_of_pipeline_batch(self, pipeline):
        genome, reads, mapper = pipeline
        pairs = []
        for read in reads[:4]:
            candidates = mapper.map_read(read)
            if candidates:
                pairs.append(mapper.candidate_region_sequence(candidates[0], read.sequence))
        assert pairs
        improved = GenASMKernelSpec(GenASMConfig(), name="improved")
        baseline = GenASMKernelSpec(GenASMConfig.baseline(), name="baseline")
        gpu = GpuSimulator()
        fast = gpu.simulate(pairs, improved, workload_multiplier=5_000)
        slow = gpu.simulate(pairs, baseline, workload_multiplier=5_000)
        assert fast.speedup_over(slow) > 1.5
        assert [a.edit_distance for a in fast.alignments] == [
            a.edit_distance for a in slow.alignments
        ]


class TestShortReadPipeline:
    def test_short_reads_align_in_single_window(self):
        genome = SyntheticGenome.random({"chr1": 40_000}, seed=31, repeat_fraction=0.0)
        reads = IlluminaSimulator(read_length=120, seed=32).simulate(genome, 10)
        mapper = Mapper(genome, min_chain_score=25, min_chain_anchors=2)
        config = GenASMConfig.short_read(150)
        genasm = GenASMAligner(config)
        edlib = EdlibLikeAligner("prefix")
        aligned = 0
        for read in reads:
            candidates = mapper.map_read(read)
            if not candidates:
                continue
            pattern, text = mapper.candidate_region_sequence(candidates[0], read.sequence)
            alignment = genasm.align(pattern, text)
            alignment.validate()
            assert alignment.metadata["windows"] == 1
            assert alignment.edit_distance == edlib.align(pattern, text).edit_distance
            aligned += 1
        assert aligned >= 6

    def test_affine_scoring_of_genasm_alignment(self):
        genome = SyntheticGenome.random({"chr1": 20_000}, seed=41, repeat_fraction=0.0)
        reads = PacBioSimulator(
            mean_length=400, std_length=50, seed=42, error_model=ErrorModel.pacbio_hifi()
        ).simulate(genome, 3)
        mapper = Mapper(genome)
        genasm = GenASMAligner()
        ksw2 = Ksw2Aligner()
        for read in reads:
            candidates = mapper.map_read(read)
            if not candidates:
                continue
            pattern, text = mapper.candidate_region_sequence(candidates[0], read.sequence)
            alignment = genasm.align(pattern, text)
            # Re-scoring the GenASM CIGAR with affine penalties gives a score
            # no better than the optimal affine aligner on the same span.
            consumed = text[: alignment.text_end]
            optimal = ksw2.align(pattern, consumed)
            assert alignment.affine_score() <= optimal.score
