"""Tests for the baseline aligners (NW oracle, Gotoh, Edlib-like, KSW2-like)."""

import pytest

from repro.baselines.edlib_like import EdlibLikeAligner, myers_edit_distance
from repro.baselines.gotoh import ScoringScheme, gotoh_align, gotoh_score
from repro.baselines.ksw2 import Ksw2Aligner, ksw2_diff_score, ksw2_global_score
from repro.baselines.needleman_wunsch import (
    edit_distance,
    needleman_wunsch,
    prefix_edit_distance,
    semiglobal_edit_distance,
)
from tests.conftest import mutate, random_dna


class TestNeedlemanWunsch:
    def test_known_distances(self):
        assert edit_distance("kitten".upper(), "sitting".upper()) == 3
        assert edit_distance("", "ACGT") == 4
        assert edit_distance("ACGT", "ACGT") == 0

    def test_prefix_distance_ignores_text_suffix(self):
        assert prefix_edit_distance("ACGT", "ACGTTTTT") == 0

    def test_semiglobal_ignores_both_ends(self):
        assert semiglobal_edit_distance("CGT", "AAACGTAAA") == 0

    @pytest.mark.parametrize("mode", ["global", "prefix", "infix"])
    def test_alignment_cigar_is_consistent(self, rng, mode):
        for _ in range(20):
            pattern = random_dna(rng, rng.randint(1, 25))
            text = random_dna(rng, rng.randint(1, 30))
            alignment = needleman_wunsch(pattern, text, mode)
            consumed = text[alignment.text_start : alignment.text_end]
            alignment.cigar.validate(pattern, consumed, partial_text=False)
            assert alignment.cigar.edit_distance == alignment.edit_distance

    def test_global_alignment_consumes_whole_text(self):
        alignment = needleman_wunsch("ACGT", "AGGTC", "global")
        assert alignment.text_start == 0
        assert alignment.text_end == 5

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            needleman_wunsch("A", "A", "banana")


class TestGotoh:
    def test_scoring_scheme_validation(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=-1)
        with pytest.raises(ValueError):
            ScoringScheme(mismatch=1)
        with pytest.raises(ValueError):
            ScoringScheme(gap_open=-1, gap_extend=-2)

    def test_perfect_match_score(self):
        assert gotoh_score("ACGT", "ACGT") == 8

    def test_single_gap_cheaper_than_two(self):
        scheme = ScoringScheme()
        # One 2-base gap: go + ge = -6; two separate 1-base gaps would be -8.
        alignment = gotoh_align("ACGTACGT", "ACACGT"[:6], scheme)
        assert alignment.score == alignment.cigar.affine_score(
            scheme.match, scheme.mismatch, scheme.gap_open, scheme.gap_extend
        )

    def test_alignment_score_matches_cigar_score(self, rng):
        scheme = ScoringScheme()
        for _ in range(25):
            a = random_dna(rng, rng.randint(1, 20))
            b = random_dna(rng, rng.randint(1, 20))
            alignment = gotoh_align(a, b, scheme)
            assert alignment.score == alignment.cigar.affine_score(
                scheme.match, scheme.mismatch, scheme.gap_open, scheme.gap_extend
            )

    def test_empty_inputs(self):
        assert gotoh_score("", "") == 0


class TestEdlibLike:
    def test_distance_modes_match_oracle(self, rng):
        for _ in range(40):
            a = random_dna(rng, rng.randint(1, 40))
            b = random_dna(rng, rng.randint(1, 45))
            assert myers_edit_distance(a, b, "global") == edit_distance(a, b)
            assert myers_edit_distance(a, b, "prefix") == prefix_edit_distance(a, b)
            assert myers_edit_distance(a, b, "infix") == semiglobal_edit_distance(a, b)

    def test_max_distance_cutoff(self):
        assert myers_edit_distance("AAAA", "TTTT", "global", max_distance=2) is None
        assert myers_edit_distance("AAAA", "AAAT", "global", max_distance=2) == 1

    def test_empty_inputs(self):
        assert myers_edit_distance("", "ACG", "global") == 3
        assert myers_edit_distance("ACG", "", "global") == 3
        assert myers_edit_distance("", "ACG", "infix") == 0

    def test_long_pattern_multiword(self, rng):
        # Patterns longer than 64 exercise the multi-word (big integer) path.
        a = random_dna(rng, 200)
        b = mutate(rng, a, 12)
        assert myers_edit_distance(a, b, "global") == edit_distance(a, b)

    @pytest.mark.parametrize("mode", ["global", "prefix", "infix"])
    def test_alignment_is_optimal_and_valid(self, rng, mode):
        aligner = EdlibLikeAligner(mode)
        for _ in range(20):
            a = random_dna(rng, rng.randint(1, 40))
            b = random_dna(rng, rng.randint(1, 45))
            alignment = aligner.align(a, b)
            consumed = b[alignment.text_start : alignment.text_end]
            alignment.cigar.validate(a, consumed, partial_text=False)
            assert alignment.edit_distance == needleman_wunsch(a, b, mode).edit_distance

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            EdlibLikeAligner("bogus")


class TestKsw2:
    def test_score_matches_gotoh(self, rng):
        scheme = ScoringScheme()
        aligner = Ksw2Aligner(scheme)
        for _ in range(30):
            a = random_dna(rng, rng.randint(1, 30))
            b = random_dna(rng, rng.randint(1, 30))
            assert aligner.score(a, b) == gotoh_score(a, b, scheme)

    def test_difference_recurrence_matches_direct(self, rng):
        scheme = ScoringScheme()
        for _ in range(20):
            a = random_dna(rng, rng.randint(1, 25))
            b = random_dna(rng, rng.randint(1, 25))
            assert ksw2_diff_score(a, b, scheme) == gotoh_score(a, b, scheme)

    def test_alignment_cigar_scores_back_to_dp_score(self, rng):
        scheme = ScoringScheme()
        aligner = Ksw2Aligner(scheme)
        for _ in range(20):
            a = random_dna(rng, rng.randint(1, 30))
            b = random_dna(rng, rng.randint(1, 30))
            alignment = aligner.align(a, b)
            alignment.cigar.validate(a, b, partial_text=False)
            assert alignment.score == alignment.cigar.affine_score(
                scheme.match, scheme.mismatch, scheme.gap_open, scheme.gap_extend
            )

    def test_banded_alignment_on_similar_sequences(self, rng):
        scheme = ScoringScheme()
        banded = Ksw2Aligner(scheme, band_width=32)
        for _ in range(10):
            a = random_dna(rng, rng.randint(80, 160))
            b = mutate(rng, a, rng.randint(0, 8))
            assert banded.score(a, b) == gotoh_score(a, b, scheme)

    def test_empty_inputs(self):
        aligner = Ksw2Aligner()
        assert aligner.score("", "") == 0
        assert aligner.align("", "ACG").cigar.text_length == 3
        assert aligner.align("ACG", "").cigar.pattern_length == 3

    def test_convenience_wrapper(self):
        assert ksw2_global_score("ACGT", "ACGT") == 8

    def test_invalid_band_raises(self):
        with pytest.raises(ValueError):
            Ksw2Aligner(band_width=0)
