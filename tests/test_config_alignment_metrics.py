"""Unit tests for GenASMConfig, Alignment and the memory metrics."""

import pytest

from repro.core.alignment import Alignment, pretty_alignment
from repro.core.cigar import Cigar
from repro.core.config import GenASMConfig
from repro.core.metrics import AccessCounter, MemoryFootprint, footprint_report


class TestConfig:
    def test_defaults_enable_all_improvements(self):
        cfg = GenASMConfig()
        assert cfg.entry_compression and cfg.early_termination and cfg.traceback_band
        assert cfg.improved

    def test_baseline_disables_all_improvements(self):
        cfg = GenASMConfig.baseline()
        assert not cfg.improved

    def test_derived_error_budget(self):
        cfg = GenASMConfig(window_size=64, error_rate=0.15, max_errors=None)
        assert cfg.k == 10  # ceil(64 * 0.15)

    def test_explicit_error_budget_clamped(self):
        cfg = GenASMConfig(window_size=32, max_errors=100)
        assert cfg.k == 32

    def test_window_step(self):
        cfg = GenASMConfig(window_size=64, window_overlap=24)
        assert cfg.window_step == 40

    def test_short_read_preset_single_window(self):
        cfg = GenASMConfig.short_read(150)
        assert cfg.window_size == 150
        assert cfg.window_overlap == 0

    def test_with_improvements_override(self):
        cfg = GenASMConfig.baseline().with_improvements(entry_compression=True)
        assert cfg.entry_compression
        assert not cfg.early_termination

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_size": 0},
            {"window_overlap": 64},
            {"window_overlap": -1},
            {"error_rate": 1.5},
            {"max_errors": -1},
            {"text_slack": -1},
            {"match_priority": "MMMM"},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            GenASMConfig(**kwargs)


class TestAlignment:
    def test_text_end_defaults_to_cigar_span(self):
        aln = Alignment("ACGT", "ACGTTT", Cigar.from_string("4="), 0)
        assert aln.text_span == (0, 4)

    def test_identity(self):
        aln = Alignment("ACGT", "ACGA", Cigar.from_string("3=1X"), 1)
        assert aln.identity == pytest.approx(0.75)

    def test_validate_accepts_consistent_alignment(self):
        aln = Alignment("ACGT", "ACGAC", Cigar.from_string("3=1X"), 1)
        aln.validate()

    def test_validate_rejects_wrong_distance(self):
        aln = Alignment("ACGT", "ACGA", Cigar.from_string("3=1X"), 2)
        with pytest.raises(ValueError):
            aln.validate()

    def test_pretty_alignment_renders_rows(self):
        aln = Alignment("ACGT", "ACAT", Cigar.from_string("2=1X1="), 1)
        text = pretty_alignment(aln)
        assert "ACGT" in text.replace(" ", "") or "|" in text

    def test_to_dict_contains_metadata(self):
        aln = Alignment("AC", "AC", Cigar.from_string("2="), 0, metadata={"windows": 1})
        d = aln.to_dict()
        assert d["windows"] == 1
        assert d["edit_distance"] == 0


class TestAccessCounter:
    def test_record_and_totals(self):
        c = AccessCounter()
        c.record_write(3, 8)
        c.record_read(2, 4)
        assert c.total_accesses == 5
        assert c.total_bytes == 32

    def test_merge(self):
        a, b = AccessCounter(), AccessCounter()
        a.record_write(1, 8)
        b.record_write(2, 8)
        b.tb_steps = 5
        a.merge(b)
        assert a.dp_writes == 3
        assert a.tb_steps == 5

    def test_as_dict_keys(self):
        d = AccessCounter().as_dict()
        assert {"dp_writes", "dp_reads", "total_bytes", "tb_steps"} <= set(d)


class TestMemoryFootprint:
    def test_baseline_formula(self):
        fp = MemoryFootprint(pattern_window=64, text_window=72, max_errors=10)
        # 72 columns x 11 rows x 4 vectors x 8 bytes
        assert fp.baseline_bytes == 72 * 11 * 4 * 8

    def test_improvements_shrink_footprint(self):
        fp = MemoryFootprint(
            pattern_window=64, text_window=72, max_errors=10, rows_used=8, committed_columns=40
        )
        assert fp.improved_bytes < fp.baseline_bytes
        assert fp.reduction_factor > 4

    def test_each_improvement_individually_helps(self):
        fp = MemoryFootprint(
            pattern_window=64, text_window=72, max_errors=10, rows_used=6, committed_columns=40
        )
        breakdown = fp.breakdown()
        assert breakdown["entry_compression_reduction"] == pytest.approx(4.0)
        assert breakdown["early_termination_reduction"] > 1.5
        assert breakdown["traceback_band_reduction"] > 1.5
        assert breakdown["all_reduction"] == pytest.approx(fp.reduction_factor)

    def test_from_config_uses_window_parameters(self):
        cfg = GenASMConfig(window_size=64, window_overlap=24, text_slack=8)
        fp = MemoryFootprint.from_config(cfg, rows_used=7)
        assert fp.pattern_window == 64
        assert fp.text_window == 72
        assert fp.committed_columns == 40

    def test_footprint_report_keys(self):
        report = footprint_report(GenASMConfig(), rows_used=8)
        assert report["reduction_factor"] > 1
        assert report["baseline_kib"] > report["improved_kib"]


class TestIdentityWithClassicM:
    def test_identity_resolves_m_runs(self):
        # A classic-M CIGAR must not report zero identity just because no
        # column is literally '='. Three of four M columns match here.
        alignment = Alignment("ACGT", "ACTT", Cigar.from_string("4M"), 1)
        assert alignment.matches == 3
        assert alignment.identity == pytest.approx(0.75)

    def test_identity_unchanged_for_eqx_cigars(self):
        alignment = Alignment("ACGT", "ACTT", Cigar.from_string("2=1X1="), 1)
        assert alignment.identity == pytest.approx(0.75)
        assert alignment.resolved_cigar is alignment.cigar

    def test_reference_coordinates_offsets_by_region(self):
        alignment = Alignment("ACGT", "GGACGT", Cigar.from_string("4="), 0, text_start=2)
        assert alignment.reference_coordinates() == (2, 6)
        assert alignment.reference_coordinates(100) == (102, 106)
