"""Property-based tests (hypothesis) for the core alignment invariants."""

from hypothesis import given, settings, strategies as st

from repro.baselines.edlib_like import myers_edit_distance
from repro.baselines.needleman_wunsch import (
    edit_distance,
    prefix_edit_distance,
    semiglobal_edit_distance,
)
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.core.genasm_dc import genasm_distance_only

dna = st.text(alphabet="ACGT", min_size=0, max_size=48)
dna_nonempty = st.text(alphabet="ACGT", min_size=1, max_size=48)

_improved = GenASMAligner()
_baseline = GenASMAligner(GenASMConfig.baseline())


@settings(max_examples=60, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_genasm_distance_matches_dp_oracle(pattern, text):
    assert genasm_distance_only(pattern, text) == semiglobal_edit_distance(pattern, text)


@settings(max_examples=60, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_myers_matches_dp_oracle_all_modes(pattern, text):
    assert myers_edit_distance(pattern, text, "global") == edit_distance(pattern, text)
    assert myers_edit_distance(pattern, text, "prefix") == prefix_edit_distance(pattern, text)
    assert myers_edit_distance(pattern, text, "infix") == semiglobal_edit_distance(pattern, text)


@settings(max_examples=50, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_single_window_alignment_is_optimal(pattern, text):
    alignment = _improved.align(pattern, text)
    alignment.validate()
    assert alignment.edit_distance == prefix_edit_distance(pattern, text)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_improved_equals_baseline(pattern, text):
    assert (
        _improved.align(pattern, text).edit_distance
        == _baseline.align(pattern, text).edit_distance
    )


@settings(max_examples=40, deadline=None)
@given(dna_nonempty)
def test_self_alignment_is_exact(pattern):
    alignment = _improved.align(pattern, pattern)
    assert alignment.edit_distance == 0
    assert alignment.cigar.matches == len(pattern)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_distance_symmetry_upper_bound(pattern, text):
    # Semi-global distance is at most the global distance, which is symmetric.
    semi = genasm_distance_only(pattern, text)
    assert semi <= edit_distance(pattern, text)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, dna_nonempty, dna_nonempty)
def test_triangle_inequality_on_global_distance(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, st.text(alphabet="ACGT", min_size=0, max_size=16))
def test_appending_text_never_increases_prefix_distance(pattern, extra):
    base = pattern
    assert prefix_edit_distance(pattern, base + extra) <= prefix_edit_distance(pattern, base)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_cigar_consumes_whole_pattern(pattern, text):
    alignment = _improved.align(pattern, text)
    assert alignment.cigar.pattern_length == len(pattern)
    assert alignment.cigar.text_length <= len(text)
