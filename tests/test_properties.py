"""Property-based tests (hypothesis) for the core alignment invariants,
plus the multi-word lane invariants of the vectorized batch engine (the
cross-word carry at pattern bits ``i % 64 == 0``)."""

from hypothesis import given, settings, strategies as st

from repro.baselines.edlib_like import myers_edit_distance
from repro.baselines.needleman_wunsch import (
    edit_distance,
    prefix_edit_distance,
    semiglobal_edit_distance,
)
from repro.batch import (
    BatchAlignmentEngine,
    LaneJob,
    SoAWave,
    build_wave_decisions,
    run_dc_wave_state,
)
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.core.genasm_dc import genasm_distance_only
from repro.core.genasm_tb import traceback_conditions

dna = st.text(alphabet="ACGT", min_size=0, max_size=48)
dna_nonempty = st.text(alphabet="ACGT", min_size=1, max_size=48)
#: Patterns wide enough to straddle the 64-bit word boundary (2-3 words).
dna_straddling = st.text(alphabet="ACGT", min_size=60, max_size=140)

_improved = GenASMAligner()
_baseline = GenASMAligner(GenASMConfig.baseline())


@settings(max_examples=60, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_genasm_distance_matches_dp_oracle(pattern, text):
    assert genasm_distance_only(pattern, text) == semiglobal_edit_distance(pattern, text)


@settings(max_examples=60, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_myers_matches_dp_oracle_all_modes(pattern, text):
    assert myers_edit_distance(pattern, text, "global") == edit_distance(pattern, text)
    assert myers_edit_distance(pattern, text, "prefix") == prefix_edit_distance(pattern, text)
    assert myers_edit_distance(pattern, text, "infix") == semiglobal_edit_distance(pattern, text)


@settings(max_examples=50, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_single_window_alignment_is_optimal(pattern, text):
    alignment = _improved.align(pattern, text)
    alignment.validate()
    assert alignment.edit_distance == prefix_edit_distance(pattern, text)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_improved_equals_baseline(pattern, text):
    assert (
        _improved.align(pattern, text).edit_distance
        == _baseline.align(pattern, text).edit_distance
    )


@settings(max_examples=40, deadline=None)
@given(dna_nonempty)
def test_self_alignment_is_exact(pattern):
    alignment = _improved.align(pattern, pattern)
    assert alignment.edit_distance == 0
    assert alignment.cigar.matches == len(pattern)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_distance_symmetry_upper_bound(pattern, text):
    # Semi-global distance is at most the global distance, which is symmetric.
    semi = genasm_distance_only(pattern, text)
    assert semi <= edit_distance(pattern, text)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, dna_nonempty, dna_nonempty)
def test_triangle_inequality_on_global_distance(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, st.text(alphabet="ACGT", min_size=0, max_size=16))
def test_appending_text_never_increases_prefix_distance(pattern, extra):
    base = pattern
    assert prefix_edit_distance(pattern, base + extra) <= prefix_edit_distance(pattern, base)


@settings(max_examples=40, deadline=None)
@given(dna_nonempty, dna_nonempty)
def test_cigar_consumes_whole_pattern(pattern, text):
    alignment = _improved.align(pattern, text)
    assert alignment.cigar.pattern_length == len(pattern)
    assert alignment.cigar.text_length <= len(text)


# --------------------------------------------------------------------------- #
# Multi-word lane invariants (repro.batch): the cross-word carry of the
# lockstep DC recurrence and decision planes must agree bit for bit with
# the scalar predicates, in particular at pattern bits i with i % 64 == 0
# (the stitch where bit 63 of word w carries into bit 0 of word w + 1).
# --------------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    dna_straddling,
    st.text(alphabet="ACGT", min_size=0, max_size=20),
    st.integers(min_value=1, max_value=4),
    st.booleans(),
    st.booleans(),
)
def test_multi_word_decision_planes_equal_scalar_predicates(
    pattern, noise, k, entry_compression, traceback_band
):
    # Text derived from the pattern so the DP has real match structure;
    # the pair straddles word boundaries by construction (m in 60..140).
    text = pattern[: len(pattern) // 2] + noise
    wave = SoAWave(
        [LaneJob(pattern=pattern, text=text, max_errors=k)],
        traceback_band=traceback_band,
    )
    state = run_dc_wave_state(wave, entry_compression=entry_compression)
    decisions = build_wave_decisions(
        wave, state.stored_rows, entry_compression=entry_compression
    )
    table = state.table(0)
    conditions = traceback_conditions(table)
    m, n = len(pattern), len(text)
    # Every word-boundary bit plus the edges and a mid-word control.
    probe_bits = {0, 1, 31, m - 1} | {
        b for b in (62, 63, 64, 65, 126, 127, 128, 129) if b < m
    }
    for d in range(table.rows_computed):
        for j in range(1, n + 1):
            for i in sorted(probe_bits):
                for letter in "MSID":
                    assert decisions.bit(letter, 0, d, j, i) == conditions[letter](
                        j, d, i
                    ), (
                        f"letter={letter} d={d} j={j} i={i} "
                        f"ec={entry_compression} band={traceback_band}"
                    )


@settings(max_examples=20, deadline=None)
@given(dna_straddling, st.integers(min_value=0, max_value=10))
def test_multi_word_vectorized_alignment_equals_scalar(pattern, edits):
    # End-to-end: the multi-word lockstep engine reproduces the scalar
    # windowed aligner on single-window short-read configs.
    text = (pattern[:edits] + pattern[edits:][::-1])[: len(pattern)] + "ACGT"
    config = GenASMConfig.short_read(len(pattern))
    want = GenASMAligner(config).align(pattern, text)
    engine = BatchAlignmentEngine(config, scalar_traceback_threshold=0)
    got = engine.align_pairs([(pattern, text)])[0]
    assert str(got.cigar) == str(want.cigar)
    assert got.edit_distance == want.edit_distance
    assert got.text_end == want.text_end
    assert got.metadata["vectorized"] is True
    assert got.metadata["words_per_lane"] == -(-len(pattern) // 64)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=32),
    st.integers(min_value=1, max_value=16),
)
def test_lockstep_scheduling_invariants_hold_for_multi_word_lanes(lengths, group):
    # scheduling_stats must stay a valid lockstep model when lanes cost
    # words × windows: conserved useful work, efficiency in (0, 1], and
    # the lockstep (padded) work never below the useful work.
    config = GenASMConfig.short_read(150)
    engine = BatchAlignmentEngine(config, max_lanes=group)
    pairs = [("A" * length, "A" * length) for length in lengths]
    stats = engine.scheduling_stats(pairs)
    assert stats["useful_work"] == sum(
        engine.expected_work(length) for length in lengths
    )
    assert 0.0 < stats["efficiency"] <= 1.0
    assert stats["lockstep_work"] >= stats["useful_work"]
    # A full 150 bp lane costs three word-steps per window; fragments of
    # at most 64 bp cost one.
    assert engine.expected_work(150) == 3 * engine.expected_windows(150)
    assert engine.expected_work(64) == engine.expected_windows(64)
    # With full groups, sorted chunking minimises the sum of group maxima
    # (rearrangement argument), so it never does worse than fifo.  An
    # underfull trailing chunk breaks that guarantee: ascending order puts
    # the *largest* lanes in the full final group (e.g. work [2, 2, 1] in
    # groups of 2: sorted chunks [1, 2] + [2] cost 6, fifo [2, 2] + [1]
    # costs 5), so only assert it when the group size divides the batch.
    if len(lengths) % group == 0:
        fifo = BatchAlignmentEngine(
            config, max_lanes=group, scheduling="fifo"
        ).scheduling_stats(pairs)
        assert stats["efficiency"] >= fifo["efficiency"] - 1e-12


@settings(max_examples=25, deadline=None)
@given(
    dna_straddling,
    st.text(alphabet="ACGT", min_size=0, max_size=20),
    st.integers(min_value=1, max_value=4),
    st.booleans(),
)
def test_match_run_length_equals_bitwise_walk(pattern, noise, k, entry_compression):
    # The skip-ahead countdown over the diagonal-packed match plane must
    # count exactly the consecutive legal-match bits the per-step walk
    # would consume: run(j, d, i) == number of t >= 0 with M legal at
    # (j - t, d, i - t).  Patterns straddle 64-bit words by construction,
    # so runs crossing the i % 64 == 0 stitch are exercised.
    text = pattern[: len(pattern) // 2] + noise
    wave = SoAWave(
        [LaneJob(pattern=pattern, text=text, max_errors=k)], traceback_band=False
    )
    state = run_dc_wave_state(wave, entry_compression=entry_compression)
    decisions = build_wave_decisions(
        wave, state.stored_rows, entry_compression=entry_compression
    )
    m, n = len(pattern), len(text)
    rows = state.table(0).rows_computed
    probe_bits = sorted(
        {0, 1, m - 1} | {b for b in (62, 63, 64, 65, 127, 128, 129) if b < m}
    )
    for d in range(rows):
        for j in range(1, n + 1):
            for i in probe_bits:
                brute = 0
                while (
                    i - brute >= 0
                    and j - brute >= 1
                    and decisions.bit("M", 0, d, j - brute, i - brute)
                ):
                    brute += 1
                assert decisions.match_run_length(0, d, j, i) == brute, (
                    f"d={d} j={j} i={i} ec={entry_compression}"
                )
