"""Tests for windowed alignment and the public GenASMAligner API."""

import pytest

from repro.baselines.needleman_wunsch import prefix_edit_distance
from repro.core.aligner import GenASMAligner, align_pair
from repro.core.cigar import CigarOp
from repro.core.config import GenASMConfig
from repro.core.metrics import AccessCounter
from repro.core.windowing import align_window, align_windowed
from tests.conftest import mutate, random_dna


class TestAlignWindow:
    def test_identical_window(self):
        result = align_window("ACGTACGT", "ACGTACGT", GenASMConfig())
        assert result.errors == 0
        assert result.text_consumed == 8
        assert result.pattern_consumed == 8

    def test_empty_pattern(self):
        result = align_window("", "ACGT", GenASMConfig())
        assert result.ops == []

    def test_empty_text_becomes_insertions(self):
        result = align_window("ACGT", "", GenASMConfig())
        assert all(op is CigarOp.INSERTION for op in result.ops)
        assert result.errors == 4

    def test_budget_retry_eventually_succeeds(self):
        # Completely unrelated sequences force the budget-doubling path.
        config = GenASMConfig(max_errors=1)
        result = align_window("AAAAAAAA", "TTTTTTTT", config)
        assert result.errors == 8
        assert result.retries >= 1

    def test_commit_columns_limits_pattern_consumption(self):
        result = align_window("ACGTACGTACGT", "ACGTACGTACGT", GenASMConfig(), commit_columns=5)
        assert result.pattern_consumed == 5


class TestAlignWindowed:
    def test_matches_oracle_on_single_window(self, rng):
        config = GenASMConfig()
        for _ in range(30):
            pattern = random_dna(rng, rng.randint(1, 64))
            text = mutate(rng, pattern, rng.randint(0, 6)) + random_dna(rng, 6)
            result = align_windowed(pattern, text, config)
            assert result.cigar.edit_distance == prefix_edit_distance(pattern, text)

    def test_multi_window_is_close_to_oracle(self, rng):
        config = GenASMConfig()
        for _ in range(8):
            pattern = random_dna(rng, rng.randint(150, 300))
            text = mutate(rng, pattern, rng.randint(5, 25)) + random_dna(rng, 10)
            result = align_windowed(pattern, text, config)
            optimum = prefix_edit_distance(pattern, text)
            assert result.cigar.edit_distance >= optimum
            # The windowed heuristic should stay very close to optimal.
            assert result.cigar.edit_distance <= optimum + max(3, optimum // 5)

    def test_window_count(self):
        config = GenASMConfig(window_size=64, window_overlap=24)
        pattern = "ACGT" * 64  # 256 bases
        result = align_windowed(pattern, pattern, config)
        # ceil((256 - 64) / 40) + 1 windows
        assert result.windows == 6

    def test_counter_accumulates_across_windows(self):
        counter = AccessCounter()
        pattern = "ACGT" * 50
        align_windowed(pattern, pattern, GenASMConfig(), counter=counter)
        assert counter.windows > 1
        assert counter.dp_writes > 0

    def test_empty_inputs(self):
        result = align_windowed("", "ACGT", GenASMConfig())
        assert len(result.cigar) == 0
        result = align_windowed("ACGT", "", GenASMConfig())
        assert result.cigar.edit_distance == 4


class TestGenASMAligner:
    def test_align_returns_valid_alignment(self, rng):
        aligner = GenASMAligner()
        pattern = random_dna(rng, 200)
        text = mutate(rng, pattern, 20) + random_dna(rng, 10)
        alignment = aligner.align(pattern, text)
        alignment.validate()
        assert alignment.aligner == "genasm-improved"
        assert alignment.metadata["windows"] >= 1

    def test_baseline_and_improved_agree(self, rng):
        improved = GenASMAligner()
        baseline = GenASMAligner(GenASMConfig.baseline())
        for _ in range(10):
            pattern = random_dna(rng, rng.randint(30, 200))
            text = mutate(rng, pattern, rng.randint(0, 20)) + random_dna(rng, 8)
            a = improved.align(pattern, text)
            b = baseline.align(pattern, text)
            assert a.edit_distance == b.edit_distance

    def test_improved_touches_fewer_bytes(self, rng):
        improved = GenASMAligner()
        baseline = GenASMAligner(GenASMConfig.baseline())
        pattern = random_dna(rng, 500)
        text = mutate(rng, pattern, 50) + random_dna(rng, 10)
        a = improved.align(pattern, text)
        b = baseline.align(pattern, text)
        assert a.metadata["dp_bytes"] < b.metadata["dp_bytes"]
        assert a.metadata["peak_window_bytes"] < b.metadata["peak_window_bytes"]

    def test_edit_distance_shortcut(self):
        aligner = GenASMAligner()
        assert aligner.edit_distance("ACGT", "TTACGTTT") == 0
        assert aligner.edit_distance("AAAA", "TTTT", max_errors=2) is None

    def test_align_batch_shares_counter(self):
        aligner = GenASMAligner()
        counter = AccessCounter()
        pairs = [("ACGTACGT", "ACGTACGT"), ("AAAA", "AAAT")]
        results = aligner.align_batch(pairs, counter=counter)
        assert len(results) == 2
        assert counter.windows == 2

    def test_align_pair_convenience(self):
        alignment = align_pair("ACGT", "ACGT")
        assert alignment.edit_distance == 0

    def test_window_footprint_model(self):
        aligner = GenASMAligner()
        footprint = aligner.window_footprint()
        assert footprint.baseline_bytes > footprint.improved_bytes

    def test_default_name_reflects_configuration(self):
        assert GenASMAligner().name == "genasm-improved"
        assert GenASMAligner(GenASMConfig.baseline()).name == "genasm-baseline"
