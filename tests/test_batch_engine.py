"""Tests for the vectorized batch engine, the repaired batch executor and
the degenerate-input windowing paths.

The central contract (the PR's acceptance criterion): the vectorized
lockstep engine produces byte-identical CIGARs and edit distances to the
scalar path on the simulated-read corpus, and a 2-worker
``BatchExecutor.run_pairs`` call completes without error.
"""

from __future__ import annotations

import itertools
import warnings

import pytest

from repro.batch import (
    BatchAlignmentEngine,
    LaneJob,
    SoAWave,
    align_pairs_vectorized,
    lockstep_stats,
    run_dc_wave,
)
from repro.core.aligner import GenASMAligner, align_pair
from repro.core.cigar import CigarOp
from repro.core.config import GenASMConfig
from repro.core.genasm_dc import genasm_dc
from repro.core.metrics import AccessCounter
from repro.core.windowing import align_window, align_windowed
from repro.gpu.device import A6000
from repro.gpu.kernel import GenASMKernelSpec
from repro.gpu.simulator import GpuSimulator
from repro.harness.dataset import build_paper_dataset
from repro.harness.experiments import run_batched_throughput_experiment
from repro.parallel.executor import BatchExecutor, BatchResult, Stopwatch
from tests.conftest import mutate, random_dna


def _random_pairs(rng, specs):
    """(pattern, text) pairs: mutated copies plus trailing slack."""
    pairs = []
    for length, edits in specs:
        pattern = random_dna(rng, length)
        text = mutate(rng, pattern, edits) + random_dna(rng, 8)
        pairs.append((pattern, text))
    return pairs


def _assert_identical(scalar_alignments, batch_alignments):
    assert len(scalar_alignments) == len(batch_alignments)
    for a, b in zip(scalar_alignments, batch_alignments):
        assert str(a.cigar) == str(b.cigar)
        assert a.edit_distance == b.edit_distance
        assert a.text_end == b.text_end
        for key in (
            "windows",
            "rows_computed",
            "peak_window_bytes",
            "total_stored_bytes",
            "dp_accesses",
            "dp_bytes",
        ):
            assert a.metadata[key] == b.metadata[key], key


class TestVectorizedEquivalence:
    """Vectorized engine ≡ scalar aligner, bit for bit."""

    def test_identical_on_simulated_read_corpus(self):
        workload = build_paper_dataset(
            read_count=4, read_length=600, seed=11, max_pairs=8
        )
        config = GenASMConfig()
        scalar = GenASMAligner(config)
        batch = BatchAlignmentEngine(config)
        _assert_identical(
            [scalar.align(p, t) for p, t in workload.pairs],
            batch.align_pairs(workload.pairs),
        )

    @pytest.mark.parametrize(
        "entry_compression,early_termination,traceback_band",
        list(itertools.product([False, True], repeat=3)),
    )
    def test_identical_across_improvement_toggles(
        self, rng, entry_compression, early_termination, traceback_band
    ):
        config = GenASMConfig(
            entry_compression=entry_compression,
            early_termination=early_termination,
            traceback_band=traceback_band,
        )
        pairs = _random_pairs(rng, [(5, 1), (63, 6), (64, 5), (65, 4), (150, 15)])
        pairs += [("", "ACGT"), ("ACGT", ""), ("ACGTACGT", "TTTT")]
        scalar = GenASMAligner(config)
        _assert_identical(
            [scalar.align(p, t) for p, t in pairs],
            BatchAlignmentEngine(config).align_pairs(pairs),
        )

    def test_shared_counter_accumulates_like_align_batch(self, rng):
        pairs = _random_pairs(rng, [(100, 8), (70, 5)])
        config = GenASMConfig()
        scalar_counter = AccessCounter()
        GenASMAligner(config).align_batch(pairs, counter=scalar_counter)
        batch_counter = AccessCounter()
        align_pairs_vectorized(pairs, config, counter=batch_counter)
        assert batch_counter.as_dict() == scalar_counter.as_dict()

    def test_wide_window_config_vectorizes_multi_word(self, rng):
        # Pre-PR the short-read config silently fell back to the scalar
        # aligner; now it takes the multi-word lockstep path (3 uint64
        # words per 150-character lane) and must still be byte-identical.
        config = GenASMConfig.short_read(read_length=150)
        engine = BatchAlignmentEngine(config)
        assert engine.vectorizable
        assert engine.words_per_lane == 3
        pairs = _random_pairs(rng, [(150, 4), (150, 2), (40, 1)])
        _assert_identical(
            [GenASMAligner(config).align(p, t) for p, t in pairs],
            engine.align_pairs(pairs),
        )
        for alignment in engine.align_pairs(pairs):
            assert alignment.metadata["vectorized"] is True
            assert alignment.metadata["words_per_lane"] == 3

    def test_word_bits_config_falls_back_with_one_warning(self, rng):
        # The only remaining scalar fallback is word_bits != 64; it must be
        # observable (metadata + a RuntimeWarning deduped per process per
        # reason), and still produce the scalar path's exact results.
        from repro.batch import engine as engine_module

        engine_module._FALLBACK_WARNED.clear()  # re-arm: other tests may have fired it
        config = GenASMConfig(word_bits=32)
        engine = BatchAlignmentEngine(config)
        assert not engine.vectorizable
        pairs = _random_pairs(rng, [(90, 6), (40, 2)])
        with pytest.warns(RuntimeWarning, match="falling back"):
            batch = engine.align_pairs(pairs)
        _assert_identical(
            [GenASMAligner(config).align(p, t) for p, t in pairs], batch
        )
        for alignment in batch:
            assert alignment.metadata["vectorized"] is False
            assert alignment.metadata["words_per_lane"] == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Second batch through the same engine: no further warning.
            engine.align_pairs(pairs)
            # A *fresh* engine with the same fallback reason must not
            # re-warn either: services build engines per worker/request,
            # and one config problem should warn once per process.
            BatchAlignmentEngine(GenASMConfig(word_bits=32)).align_pairs(pairs)

    def test_vectorized_metadata_recorded_on_vectorized_path(self, rng):
        pairs = _random_pairs(rng, [(70, 5)])
        for alignment in BatchAlignmentEngine(GenASMConfig()).align_pairs(pairs):
            assert alignment.metadata["vectorized"] is True
            assert alignment.metadata["words_per_lane"] == 1

    def test_max_lanes_chunking_preserves_results(self, rng):
        pairs = _random_pairs(rng, [(90, 8), (120, 10), (40, 3), (64, 6)])
        config = GenASMConfig()
        whole = BatchAlignmentEngine(config).align_pairs(pairs)
        chunked = BatchAlignmentEngine(config, max_lanes=2).align_pairs(pairs)
        _assert_identical(whole, chunked)


class TestDCWave:
    """The lockstep DC kernel against the scalar genasm_dc, state for state."""

    @pytest.mark.parametrize("entry_compression", [False, True])
    @pytest.mark.parametrize("traceback_band", [False, True])
    def test_stored_state_matches_scalar(self, rng, entry_compression, traceback_band):
        jobs = []
        scalar_tables = []
        for length, k in [(12, 3), (40, 7), (64, 9), (1, 1), (65, 6), (100, 11), (150, 9)]:
            pattern = random_dna(rng, length)
            text = mutate(rng, pattern, max(1, length // 8)) + random_dna(rng, 4)
            store_from = 2 if traceback_band and length > 4 else 0
            jobs.append(
                LaneJob(pattern=pattern, text=text, max_errors=k, store_from=store_from)
            )
            scalar_tables.append(
                genasm_dc(
                    pattern,
                    text,
                    k,
                    entry_compression=entry_compression,
                    early_termination=True,
                    traceback_band=traceback_band,
                    store_from_column=store_from,
                )
            )
        wave = SoAWave(jobs, traceback_band=traceback_band)
        tables = run_dc_wave(
            wave, entry_compression=entry_compression, early_termination=True
        )
        for got, want in zip(tables, scalar_tables):
            assert got.min_errors == want.min_errors
            assert got.rows_computed == want.rows_computed
            assert got.final_column == want.final_column
            assert got.stored_r == want.stored_r
            assert got.stored_quad == want.stored_quad
            assert got.stored_bytes() == want.stored_bytes()
            assert got.counter.as_dict() == want.counter.as_dict()

    def test_lane_job_validation(self):
        with pytest.raises(ValueError):
            LaneJob(pattern="", text="ACGT", max_errors=1)
        with pytest.raises(ValueError):
            LaneJob(pattern="ACGT", text="", max_errors=1)
        with pytest.raises(ValueError):
            SoAWave([], traceback_band=True)
        # Patterns wider than one word are valid multi-word lanes now.
        wave = SoAWave(
            [LaneJob(pattern="A" * 65, text="ACGT", max_errors=1)],
            traceback_band=True,
        )
        assert wave.words == 2


class TestDegenerateWindowing:
    """Degenerate inputs through align_window / align_windowed."""

    def test_empty_text_window_counts_window(self):
        counter = AccessCounter()
        result = align_window("ACGT", "", GenASMConfig(), counter=counter)
        assert [op for op in result.ops] == [CigarOp.INSERTION] * 4
        assert result.pattern_consumed == 4
        assert counter.windows == 1

    def test_empty_pattern_window_counts_window(self):
        counter = AccessCounter()
        result = align_window("", "ACGT", GenASMConfig(), counter=counter)
        assert result.ops == []
        assert counter.windows == 1

    def test_window_size_larger_than_pattern(self):
        config = GenASMConfig(window_size=64, window_overlap=16)
        result = align_windowed("ACGTAC", "ACGTAC", config)
        assert result.edit_distance == 0
        assert result.windows == 1
        assert result.counter.windows == 1

    def test_zero_length_read_through_align_windowed(self):
        result = align_windowed("", "ACGTACGT", GenASMConfig())
        assert result.edit_distance == 0
        assert result.windows == 0
        assert len(result.cigar.runs) == 0
        assert result.text_consumed == 0

    def test_empty_pattern_dc_table_respects_storage_config(self):
        compressed = genasm_dc("", "ACG", 2, entry_compression=True)
        assert compressed.stored_r == [[0, 0, 0, 0]]
        assert compressed.stored_quad == []
        quad = genasm_dc("", "ACG", 2, entry_compression=False)
        assert quad.stored_r == []
        assert quad.stored_quad == [[(0, 0, 0, 0)] * 3]
        assert quad.min_errors == 0


class TestBatchExecutor:
    def test_run_pairs_with_two_workers(self):
        """Regression: the lambda-based implementation was unpicklable under spawn."""
        pairs = [("ACGT", "ACGTA"), ("ACCT", "ACGTT"), ("TTTT", "TTAT")]
        executor = BatchExecutor(workers=2, chunk_size=1)
        result = executor.run_pairs(align_pair, pairs)
        assert result.items == 3
        assert result.workers == 2
        serial = BatchExecutor(workers=1).run_pairs(align_pair, pairs)
        for got, want in zip(result.results, serial.results):
            assert str(got.cigar) == str(want.cigar)
            assert got.edit_distance == want.edit_distance

    def test_run_alignments_backends_identical(self, rng):
        pairs = _random_pairs(rng, [(60, 4), (90, 7)])
        serial = BatchExecutor(backend="serial").run_alignments(pairs)
        vectorized = BatchExecutor(backend="vectorized").run_alignments(pairs)
        process = BatchExecutor(workers=2, backend="process").run_alignments(pairs)
        assert serial.backend == "serial"
        assert vectorized.backend == "vectorized"
        assert process.backend == "process" and process.workers == 2
        for batch in (vectorized, process):
            for got, want in zip(batch.results, serial.results):
                assert str(got.cigar) == str(want.cigar)
                assert got.edit_distance == want.edit_distance

    def test_process_backend_with_one_worker_reports_serial(self):
        result = BatchExecutor(backend="process").run_alignments([("ACG", "ACG")])
        assert result.backend == "serial"
        assert result.workers == 1

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor(backend="gpu")
        with pytest.raises(ValueError):
            BatchExecutor().run_alignments([("A", "A")], backend="gpu")

    def test_batch_result_speedup_over(self):
        fast = BatchResult(results=[], elapsed_seconds=0.5, items=100)
        slow = BatchResult(results=[], elapsed_seconds=2.0, items=100)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        assert slow.speedup_over(fast) == pytest.approx(0.25)
        instant = BatchResult(results=[], elapsed_seconds=0.0, items=1)
        assert instant.items_per_second == float("inf")

    def test_stopwatch_reuse_accumulates(self):
        watch = Stopwatch()
        with watch:
            sum(range(1000))
        first = watch.elapsed
        with watch:
            sum(range(1000))
        assert watch.elapsed > first
        watch.reset()
        assert watch.elapsed == 0.0
        with pytest.raises(RuntimeError):
            watch.stop()


class TestWarpModel:
    def test_lockstep_stats(self):
        stats = lockstep_stats([4.0, 1.0, 4.0, 4.0], 2)
        assert stats["groups"] == 2
        assert stats["useful_work"] == pytest.approx(13.0)
        assert stats["lockstep_work"] == pytest.approx(16.0)
        assert stats["efficiency"] == pytest.approx(13.0 / 16.0)
        assert lockstep_stats([], 32)["efficiency"] == 1.0
        with pytest.raises(ValueError):
            lockstep_stats([1.0], 0)

    def test_warp_divergence_and_lockstep_simulation(self, rng):
        pairs = _random_pairs(rng, [(200, 16), (80, 4), (300, 24), (120, 8)])
        kernel = GenASMKernelSpec(GenASMConfig())
        profiles = kernel.profile_batch(pairs)
        simulator = GpuSimulator(A6000)
        stats = simulator.warp_divergence(profiles, warp_size=2)
        assert 0.0 < stats["efficiency"] <= 1.0
        uniform = simulator.simulate(pairs, kernel, profiles=profiles)
        diverged = simulator.simulate(
            pairs, kernel, profiles=profiles, warp_lockstep=True
        )
        assert uniform.lane_efficiency == 1.0
        assert 0.0 < diverged.lane_efficiency <= 1.0
        assert diverged.compute_seconds >= uniform.compute_seconds
        assert "lane_efficiency" in diverged.summary()


class TestHarnessBatchedExperiment:
    def test_batched_throughput_rows(self):
        workload = build_paper_dataset(
            read_count=3, read_length=400, seed=5, max_pairs=4
        )
        rows = run_batched_throughput_experiment(
            workload, workers=2, include_process=True
        )
        by_id = {row["id"]: row for row in rows}
        assert set(by_id) == {"E1v_vectorized_vs_serial", "E1v_process_vs_serial"}
        for row in rows:
            assert row["identical_results"] is True
            assert row["measured"] > 0
            assert row["pairs"] == workload.pair_count


class TestMapperBatch:
    def test_align_candidates_matches_serial(self):
        workload = build_paper_dataset(
            read_count=3, read_length=400, seed=9, max_pairs=4
        )
        from repro.mapping.mapper import Mapper

        mapper = Mapper(workload.genome)
        read_sequences = {r.name: r.sequence for r in workload.reads}
        candidates = [
            c for c in workload.candidates if c.read_name in read_sequences
        ][:4]
        assert candidates, "workload produced no candidates"
        vectorized = mapper.align_candidates(candidates, read_sequences)
        serial = mapper.align_candidates(candidates, read_sequences, backend="serial")
        assert len(vectorized) == len(candidates)
        for got, want in zip(vectorized, serial):
            assert str(got.cigar) == str(want.cigar)
            assert got.edit_distance == want.edit_distance
