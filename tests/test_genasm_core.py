"""Unit tests for GenASM-DC, GenASM-TB and the improvement helpers."""

import random

import pytest

from repro.baselines.needleman_wunsch import (
    prefix_edit_distance,
    semiglobal_edit_distance,
)
from repro.core.bitvector import all_ones
from repro.core.cigar import Cigar, CigarOp
from repro.core.genasm_dc import DCTable, genasm_dc, genasm_distance_only
from repro.core.genasm_tb import TracebackError, genasm_traceback
from repro.core.improvements import (
    band_bit,
    band_bounds,
    band_width,
    entry_bytes,
    pack_band,
    reachable_column_start,
    solution_found,
    vectors_per_entry,
)
from tests.conftest import mutate, random_dna


class TestImprovementHelpers:
    def test_band_bounds_at_final_column(self):
        lo, hi = band_bounds(j=72, n=72, m=64, k=10)
        assert lo == 53 and hi == 63

    def test_band_bounds_clamped(self):
        lo, hi = band_bounds(j=0, n=72, m=64, k=10)
        assert lo == 0

    def test_band_width(self):
        assert band_width(64, 10) == 22
        assert band_width(16, 10) == 16  # never wider than the pattern

    def test_pack_and_read_band(self):
        value = 0b101100 << 10
        stored = pack_band(value, lo=10, width=6)
        assert stored == 0b101100
        assert band_bit(stored, bit=11, lo=10, width=6)  # logical bit 11 is 0? -> value bit 1
        assert not band_bit(stored, bit=12, lo=10, width=6)

    def test_band_bit_outside_band_is_inactive(self):
        assert not band_bit(0, bit=100, lo=10, width=6)

    def test_vectors_per_entry(self):
        assert vectors_per_entry(True) == 1
        assert vectors_per_entry(False) == 4

    def test_solution_found_checks_msb(self):
        assert solution_found(0, m=4)
        assert not solution_found(0b1000, m=4)

    def test_reachable_column_start(self):
        assert reachable_column_start(n=72, committed_columns=40, k=10) == 21
        assert reachable_column_start(n=10, committed_columns=40, k=10) == 0

    def test_entry_bytes_band_vs_full(self):
        assert entry_bytes(64, 10, 64, traceback_band=False) == 8
        assert entry_bytes(64, 10, 64, traceback_band=True) == 4  # 22 bits -> uint32


class TestDistanceOnly:
    def test_exact_match_is_zero(self):
        assert genasm_distance_only("ACGT", "TTACGTTT") == 0

    def test_single_substitution(self):
        assert genasm_distance_only("ACGT", "ACAT") == 1

    def test_empty_pattern(self):
        assert genasm_distance_only("", "ACGT") == 0

    def test_bounded_search_returns_none(self):
        assert genasm_distance_only("AAAA", "TTTT", max_errors=2) is None

    def test_matches_dp_oracle_randomised(self, rng):
        for _ in range(60):
            pattern = random_dna(rng, rng.randint(1, 30))
            text = random_dna(rng, rng.randint(1, 40))
            assert genasm_distance_only(pattern, text) == semiglobal_edit_distance(
                pattern, text
            )

    def test_early_termination_flag_does_not_change_result(self, rng):
        for _ in range(20):
            pattern = random_dna(rng, rng.randint(1, 20))
            text = random_dna(rng, rng.randint(1, 25))
            assert genasm_distance_only(pattern, text, early_termination=True) == (
                genasm_distance_only(pattern, text, early_termination=False)
            )


def _window_distance(pattern: str, text: str, **toggles) -> int:
    """Distance of pattern vs. a prefix of text through one reversed window."""
    table = genasm_dc(pattern[::-1], text[::-1], max(1, len(pattern)), **toggles)
    assert table.min_errors is not None
    return table.min_errors


class TestGenasmDC:
    def test_min_errors_is_end_anchored_distance(self, rng):
        for _ in range(40):
            pattern = random_dna(rng, rng.randint(1, 24))
            text = mutate(rng, pattern, rng.randint(0, 4)) + random_dna(rng, 4)
            expected = prefix_edit_distance(pattern, text)
            assert _window_distance(pattern, text) == expected

    def test_empty_pattern_table(self):
        table = genasm_dc("", "ACGT", 2)
        assert table.min_errors == 0

    def test_early_termination_reduces_rows(self):
        pattern = "ACGTACGTAC"
        text = pattern  # distance 0
        with_et = genasm_dc(pattern, text, 8, early_termination=True)
        without_et = genasm_dc(pattern, text, 8, early_termination=False)
        assert with_et.rows_computed == 1
        assert without_et.rows_computed == 9
        assert with_et.min_errors == without_et.min_errors == 0

    def test_entry_compression_stores_single_vectors(self):
        pattern, text = "ACGTACGT", "ACGAACGT"
        compressed = genasm_dc(pattern, text, 4, entry_compression=True)
        quad = genasm_dc(pattern, text, 4, entry_compression=False)
        assert compressed.stored_r and not compressed.stored_quad
        assert quad.stored_quad and not quad.stored_r
        assert compressed.min_errors == quad.min_errors

    def test_write_counts_reflect_entry_compression(self):
        pattern, text = "ACGTACGTACGT", "ACGTACGAACGT"
        compressed = genasm_dc(
            pattern, text, 4, entry_compression=True, early_termination=False, traceback_band=False
        )
        quad = genasm_dc(
            pattern, text, 4, entry_compression=False, early_termination=False, traceback_band=False
        )
        assert quad.counter.dp_writes > 3 * compressed.counter.dp_writes

    def test_stored_bytes_smaller_with_improvements(self):
        pattern = "ACGT" * 16
        text = "ACGT" * 16 + "ACGTACGT"
        improved = genasm_dc(pattern, text, 10)
        baseline = genasm_dc(
            pattern,
            text,
            10,
            entry_compression=False,
            early_termination=False,
            traceback_band=False,
        )
        assert improved.stored_bytes() < baseline.stored_bytes()

    def test_max_errors_clamped_to_pattern_length(self):
        table = genasm_dc("ACG", "TTT", 100)
        assert table.max_errors == 3
        assert table.min_errors == 3  # replace every character


class TestGenasmTB:
    @pytest.mark.parametrize("entry_compression", [True, False])
    @pytest.mark.parametrize("traceback_band", [True, False])
    def test_traceback_reproduces_distance(self, rng, entry_compression, traceback_band):
        for _ in range(25):
            pattern = random_dna(rng, rng.randint(1, 24))
            text = mutate(rng, pattern, rng.randint(0, 4)) + random_dna(rng, 3)
            table = genasm_dc(
                pattern[::-1],
                text[::-1],
                len(pattern),
                entry_compression=entry_compression,
                traceback_band=traceback_band,
            )
            ops, stop = genasm_traceback(table)
            cigar = Cigar.from_ops(ops)
            assert cigar.edit_distance == table.min_errors
            assert cigar.pattern_length == len(pattern)
            # The emitted ops are in forward order for the reversed window.
            cigar.validate(pattern, text[: cigar.text_length], partial_text=False)

    def test_compressed_and_quad_traceback_agree(self, rng):
        for _ in range(25):
            pattern = random_dna(rng, rng.randint(4, 32))
            text = mutate(rng, pattern, rng.randint(0, 5)) + random_dna(rng, 4)
            kwargs = dict(early_termination=False, traceback_band=False)
            compressed = genasm_dc(
                pattern[::-1], text[::-1], len(pattern), entry_compression=True, **kwargs
            )
            quad = genasm_dc(
                pattern[::-1], text[::-1], len(pattern), entry_compression=False, **kwargs
            )
            ops_a, _ = genasm_traceback(compressed)
            ops_b, _ = genasm_traceback(quad)
            assert ops_a == ops_b

    def test_priority_changes_cigar_not_distance(self):
        pattern, text = "ACGTACGTA", "ACGACGTAA"
        distances = set()
        for priority in ("MSDI", "MDSI", "MISD"):
            table = genasm_dc(pattern[::-1], text[::-1], len(pattern))
            ops, _ = genasm_traceback(table, priority=priority)
            distances.add(Cigar.from_ops(ops).edit_distance)
        assert len(distances) == 1

    def test_traceback_without_solution_raises(self):
        table = genasm_dc("AAAA", "TTTT", 1)
        assert table.min_errors is None
        with pytest.raises(TracebackError):
            genasm_traceback(table)

    def test_max_pattern_columns_truncates(self):
        pattern = "ACGTACGTACGT"
        text = pattern
        table = genasm_dc(pattern[::-1], text[::-1], 4)
        ops, _ = genasm_traceback(table, max_pattern_columns=5)
        assert Cigar.from_ops(ops).pattern_length == 5

    def test_traceback_counts_reads(self):
        pattern, text = "ACGTACGT", "ACGTACGT"
        table = genasm_dc(pattern[::-1], text[::-1], 4)
        before = table.counter.dp_reads
        genasm_traceback(table)
        assert table.counter.dp_reads > before
