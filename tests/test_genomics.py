"""Tests for the genomics substrate (sequences, errors, genome, reads, I/O)."""

import numpy as np
import pytest

from repro.core.cigar import CigarOp
from repro.genomics.errors import ErrorModel, mutate_sequence
from repro.genomics.fasta import read_fasta, read_fastq, write_fasta, write_fastq
from repro.genomics.genome import SyntheticGenome
from repro.genomics.read_simulator import IlluminaSimulator, PacBioSimulator
from repro.genomics.sequences import (
    decode_sequence,
    encode_sequence,
    gc_content,
    hamming_distance,
    kmers,
    random_dna,
    reverse_complement,
)


class TestSequences:
    def test_random_dna_alphabet_and_length(self):
        seq = random_dna(500, np.random.default_rng(0))
        assert len(seq) == 500
        assert set(seq) <= set("ACGT")

    def test_random_dna_deterministic_with_seed(self):
        a = random_dna(100, np.random.default_rng(7))
        b = random_dna(100, np.random.default_rng(7))
        assert a == b

    def test_reverse_complement(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AACG") == "CGTT"
        assert reverse_complement("ANT") == "ANT"

    def test_reverse_complement_involution(self):
        seq = random_dna(200, np.random.default_rng(1))
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_encode_decode_roundtrip(self):
        seq = "ACGTACGTTTGCA"
        assert decode_sequence(encode_sequence(seq)) == seq

    def test_gc_content(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0
        assert gc_content("") == 0.0

    def test_kmers(self):
        assert list(kmers("ACGT", 2)) == [(0, "AC"), (1, "CG"), (2, "GT")]
        with pytest.raises(ValueError):
            list(kmers("ACGT", 0))

    def test_hamming(self):
        assert hamming_distance("ACGT", "ACGA") == 1
        with pytest.raises(ValueError):
            hamming_distance("AC", "ACG")


class TestErrorModel:
    def test_total_rate_and_accuracy(self):
        model = ErrorModel(0.01, 0.02, 0.03)
        assert model.total_rate == pytest.approx(0.06)
        assert model.accuracy == pytest.approx(0.94)

    def test_invalid_rates_raise(self):
        with pytest.raises(ValueError):
            ErrorModel(substitution_rate=-0.1)
        with pytest.raises(ValueError):
            ErrorModel(0.5, 0.4, 0.3)

    def test_exact_model_introduces_no_errors(self):
        rng = np.random.default_rng(0)
        seq = random_dna(300, rng)
        mutated, cigar = mutate_sequence(seq, ErrorModel.exact(), rng)
        assert mutated == seq
        assert cigar.edit_distance == 0

    def test_mutation_rate_roughly_matches_model(self):
        rng = np.random.default_rng(3)
        seq = random_dna(20_000, rng)
        model = ErrorModel.pacbio_clr()
        mutated, cigar = mutate_sequence(seq, model, rng)
        observed = cigar.edit_distance / len(seq)
        assert 0.6 * model.total_rate < observed < 1.5 * model.total_rate

    def test_cigar_consistent_with_sequences(self):
        rng = np.random.default_rng(5)
        seq = random_dna(500, rng)
        mutated, cigar = mutate_sequence(seq, ErrorModel.pacbio_clr(), rng)
        cigar.validate(mutated, seq, partial_text=False)


class TestSyntheticGenome:
    def test_lengths_and_names(self):
        genome = SyntheticGenome.random({"a": 5_000, "b": 3_000}, seed=1, repeat_fraction=0.0)
        assert genome.names() == ["a", "b"]
        assert genome.total_length == 8_000

    def test_deterministic_for_seed(self):
        g1 = SyntheticGenome.random({"a": 2_000}, seed=9, repeat_fraction=0.0)
        g2 = SyntheticGenome.random({"a": 2_000}, seed=9, repeat_fraction=0.0)
        assert g1.sequence("a") == g2.sequence("a")

    def test_repeats_are_annotated(self):
        genome = SyntheticGenome.random(
            {"a": 30_000}, seed=2, repeat_fraction=0.2, repeat_length=1_000
        )
        assert len(genome.repeats) >= 3
        for repeat in genome.repeats:
            assert repeat.length == 1_000

    def test_fetch_clamps(self):
        genome = SyntheticGenome.random({"a": 1_000}, seed=0, repeat_fraction=0.0)
        assert genome.fetch("a", -10, 5) == genome.sequence("a")[:5]
        assert genome.fetch("a", 990, 2_000) == genome.sequence("a")[990:]
        assert genome.fetch("a", 500, 400) == ""

    def test_random_location_fits(self):
        genome = SyntheticGenome.random({"a": 2_000, "b": 500}, seed=0, repeat_fraction=0.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            chrom, start = genome.random_location(600, rng)
            assert chrom == "a"
            assert 0 <= start <= 1_400

    def test_random_location_too_long_raises(self):
        genome = SyntheticGenome.random({"a": 100}, seed=0, repeat_fraction=0.0)
        with pytest.raises(ValueError):
            genome.random_location(500)

    def test_iter_windows(self):
        genome = SyntheticGenome.random({"a": 1_000}, seed=0, repeat_fraction=0.0)
        windows = list(genome.iter_windows(200, 200))
        assert len(windows) == 5
        assert all(len(seq) == 200 for _, _, seq in windows[:-1])


class TestReadSimulators:
    def test_pacbio_reads_have_ground_truth(self):
        genome = SyntheticGenome.random({"a": 50_000}, seed=4, repeat_fraction=0.0)
        reads = PacBioSimulator(mean_length=2_000, std_length=300, seed=11).simulate(genome, 10)
        assert len(reads) == 10
        for read in reads:
            assert len(read.sequence) == len(read.quality)
            assert read.chrom == "a"
            assert 0 <= read.start < read.end <= 50_000
            assert read.true_edits >= 0
            # Read should resemble its origin: edit rate bounded by ~3x model.
            assert read.true_edits < 0.35 * len(read.sequence)

    def test_pacbio_length_distribution(self):
        genome = SyntheticGenome.random({"a": 200_000}, seed=4, repeat_fraction=0.0)
        reads = PacBioSimulator(mean_length=3_000, std_length=500, seed=2).simulate(genome, 30)
        mean_len = sum(r.length for r in reads) / len(reads)
        assert 2_000 < mean_len < 4_500

    def test_reverse_strand_reads_marked(self):
        genome = SyntheticGenome.random({"a": 100_000}, seed=4, repeat_fraction=0.0)
        reads = PacBioSimulator(mean_length=1_000, seed=5).simulate(genome, 40)
        strands = {read.strand for read in reads}
        assert strands == {"+", "-"}

    def test_illumina_reads_fixed_length_low_error(self):
        genome = SyntheticGenome.random({"a": 50_000}, seed=4, repeat_fraction=0.0)
        reads = IlluminaSimulator(read_length=150, seed=3).simulate(genome, 20)
        assert all(abs(r.length - 150) <= 5 for r in reads)
        assert sum(r.true_edits for r in reads) / (20 * 150) < 0.05

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            PacBioSimulator(mean_length=0)
        with pytest.raises(ValueError):
            IlluminaSimulator(read_length=0)


class TestFastaFastq:
    def test_fasta_roundtrip(self, tmp_path):
        records = {"seq1": "ACGT" * 30, "seq2": "TTTT"}
        path = tmp_path / "test.fa"
        write_fasta(path, records, width=50)
        assert read_fasta(path) == records

    def test_fasta_parses_wrapped_and_headers_with_descriptions(self, tmp_path):
        path = tmp_path / "wrapped.fa"
        path.write_text(">chr1 some description\nACGT\nACGT\n>chr2\nTTTT\n")
        records = read_fasta(path)
        assert records == {"chr1": "ACGTACGT", "chr2": "TTTT"}

    def test_fasta_without_header_raises(self, tmp_path):
        path = tmp_path / "bad.fa"
        path.write_text("ACGT\n")
        with pytest.raises(ValueError):
            read_fasta(path)

    def test_fastq_roundtrip(self, tmp_path):
        records = [("r1", "ACGT", "IIII"), ("r2", "GG", "##")]
        path = tmp_path / "test.fq"
        write_fastq(path, records)
        assert read_fastq(path) == records

    def test_fastq_length_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.fq"
        with pytest.raises(ValueError):
            write_fastq(path, [("r1", "ACGT", "II")])

    def test_fasta_duplicate_name_raises(self, tmp_path):
        path = tmp_path / "dup.fa"
        path.write_text(">chr1\nACGT\n>chr2\nGGGG\n>chr1\nTTTT\n")
        with pytest.raises(ValueError, match="duplicate sequence name 'chr1'"):
            read_fasta(path)

    def test_fastq_mid_file_blank_line_raises(self, tmp_path):
        path = tmp_path / "blank.fq"
        path.write_text("@r1\nACGT\n+\nIIII\n\n@r2\nGGGG\n+\nIIII\n")
        with pytest.raises(ValueError, match="blank line"):
            read_fastq(path)

    def test_fastq_trailing_blank_lines_are_eof(self, tmp_path):
        path = tmp_path / "trail.fq"
        path.write_text("@r1\nACGT\n+\nIIII\n\n\n")
        assert read_fastq(path) == [("r1", "ACGT", "IIII")]

    def test_simulated_reads_roundtrip_through_fastq(self, tmp_path):
        genome = SyntheticGenome.random({"a": 20_000}, seed=4, repeat_fraction=0.0)
        reads = PacBioSimulator(mean_length=500, seed=1).simulate(genome, 5)
        path = tmp_path / "reads.fq"
        write_fastq(path, [(r.name, r.sequence, r.quality) for r in reads])
        loaded = read_fastq(path)
        assert [name for name, _, _ in loaded] == [r.name for r in reads]
        assert all(seq == r.sequence for (_, seq, _), r in zip(loaded, reads))
