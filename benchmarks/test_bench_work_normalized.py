"""E1 supplement — work-normalised aligner comparison.

The wall-clock E1 comparison in pure Python is dominated by interpreter
overhead per loop iteration (see EXPERIMENTS.md, "Known reproduction
limitations").  This bench compares the aligners on the quantity the
hardware actually executes — 64-bit word operations (or DP cells) per
aligned read base — which is what the paper's compiled implementations are
bound by.  On this metric the improved GenASM performs several times less
work than the Edlib-like Myers aligner and orders of magnitude less than
the KSW2-like DP, consistent with the paper's 1.7× / 15.2× speedups.
"""

from __future__ import annotations

import pytest

from repro.baselines.edlib_like import EdlibLikeAligner
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.core.metrics import AccessCounter

from conftest import report_rows

#: 64-bit ALU operations per unit of work in each aligner's inner loop.
GENASM_OPS_PER_ENTRY = 8.0       # shift, OR mask, 3x AND, store, bookkeeping
MYERS_OPS_PER_WORD_COLUMN = 15.0  # Hyyrö's recurrence per word per text char
KSW2_OPS_PER_CELL = 6.0           # three maxima + add + compare per DP cell


@pytest.mark.bench
def test_bench_word_operations_per_base(benchmark, workload):
    pairs = workload.pairs
    total_bases = sum(len(p) for p, _ in pairs)

    def run():
        # Improved and baseline GenASM: DP entries actually computed.
        rows = []
        for name, config in (
            ("genasm-improved", GenASMConfig()),
            ("genasm-baseline", GenASMConfig.baseline()),
        ):
            counter = AccessCounter()
            aligner = GenASMAligner(config, name=name)
            for pattern, text in pairs:
                aligner.align(pattern, text, counter=counter)
            rows.append(
                {
                    "id": f"work_{name}",
                    "metric": f"word ops per base, {name}",
                    "paper": float("nan"),
                    "measured": counter.entries_computed * GENASM_OPS_PER_ENTRY / total_bases,
                }
            )
        # Edlib-like: one Myers recurrence per word per text character.
        edlib = EdlibLikeAligner("prefix")
        myers_ops = 0.0
        for pattern, text in pairs:
            alignment = edlib.align(pattern, text)
            myers_ops += (
                alignment.metadata["columns"]
                * alignment.metadata["words_per_column"]
                * MYERS_OPS_PER_WORD_COLUMN
            )
        rows.append(
            {
                "id": "work_edlib-like",
                "metric": "word ops per base, edlib-like",
                "paper": float("nan"),
                "measured": myers_ops / total_bases,
            }
        )
        # KSW2-like: banded DP cells (band 128 wide, as used in E1).
        band = 128
        ksw2_cells = sum(min(len(t), 2 * band + abs(len(p) - len(t))) * len(p) for p, t in pairs)
        rows.append(
            {
                "id": "work_ksw2-like",
                "metric": "word ops per base, ksw2-like (banded cells)",
                "paper": float("nan"),
                "measured": ksw2_cells * KSW2_OPS_PER_CELL / total_bases,
            }
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_rows(benchmark, rows, keys=("id", "measured"))
    by_id = {row["id"]: row["measured"] for row in rows}
    # The paper's ordering holds on the work-normalised metric:
    # improved GenASM < Edlib < KSW2, and improved < baseline GenASM.
    assert by_id["work_genasm-improved"] < by_id["work_genasm-baseline"]
    assert by_id["work_genasm-improved"] < by_id["work_edlib-like"]
    assert by_id["work_edlib-like"] < by_id["work_ksw2-like"]
    ratio_vs_edlib = by_id["work_edlib-like"] / by_id["work_genasm-improved"]
    benchmark.extra_info["edlib_over_genasm_work_ratio"] = round(ratio_vs_edlib, 2)
    assert ratio_vs_edlib > 1.3  # the paper reports a 1.7x runtime advantage
