"""E3 — memory-footprint reduction (paper: 24×).

Measures the per-window DP-table working set of baseline vs. improved
GenASM (both the analytic model and the bytes actually retained by the
implementation), and sweeps the window configuration to show how the factor
depends on the error budget relative to the realised per-window distance.
"""

from __future__ import annotations

import pytest

from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.core.metrics import MemoryFootprint
from repro.harness.experiments import run_memory_footprint_experiment

from conftest import report_rows


@pytest.mark.bench
def test_bench_e3_footprint_table(benchmark, workload):
    rows = benchmark.pedantic(
        run_memory_footprint_experiment, args=(workload,), rounds=1, iterations=1
    )
    report_rows(
        benchmark,
        rows,
        keys=("id", "paper", "measured", "model_reduction", "avg_rows_used"),
    )
    assert rows[0]["measured"] > 4.0


@pytest.mark.bench
def test_bench_footprint_configuration_sweep(benchmark, workload):
    """Footprint reduction across error-budget configurations.

    The paper's 24× corresponds to a generous error budget (rows allocated)
    combined with low realised per-window error (rows actually needed); the
    sweep shows the measured factor for tight through generous budgets.
    """
    pairs = workload.pairs[:4]
    budgets = [8, 16, 24, 32]

    def sweep():
        rows = []
        for k in budgets:
            config = GenASMConfig(max_errors=k)
            improved = GenASMAligner(config)
            baseline = GenASMAligner(GenASMConfig.baseline(max_errors=k))
            imp_peak = []
            base_peak = []
            rows_used = []
            for pattern, text in pairs:
                a = improved.align(pattern, text)
                b = baseline.align(pattern, text)
                imp_peak.append(a.metadata["peak_window_bytes"])
                base_peak.append(b.metadata["peak_window_bytes"])
                rows_used.append(a.metadata["rows_computed"] / max(1, a.metadata["windows"]))
            model = MemoryFootprint.from_config(
                config, rows_used=int(round(sum(rows_used) / len(rows_used)))
            )
            rows.append(
                {
                    "id": f"E3_sweep_k{k}",
                    "metric": f"footprint reduction, error budget k={k}",
                    "paper": 24.0,
                    "measured": sum(base_peak) / max(1.0, sum(imp_peak)),
                    "model_reduction": model.reduction_factor,
                    "baseline_kib": model.baseline_bytes / 1024.0,
                    "improved_kib": model.improved_bytes / 1024.0,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_rows(
        benchmark,
        rows,
        keys=("id", "measured", "model_reduction", "baseline_kib", "improved_kib"),
    )
    # The reduction factor grows with the error budget (more rows skipped by
    # early termination), reaching the paper's order of magnitude.
    measured = [row["measured"] for row in rows]
    models = [row["model_reduction"] for row in rows]
    assert measured[-1] > measured[0]
    assert max(measured) > 8.0
    assert max(models) > 10.0
