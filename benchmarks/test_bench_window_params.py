"""A2 — sensitivity to the window size W and overlap O.

GenASM's windowing is a heuristic: larger windows and overlaps improve
alignment quality (distance closer to optimal) at higher cost.  This sweep
reproduces that trade-off and checks that the default configuration
(W = 64, O = 24) sits at a sensible point.
"""

from __future__ import annotations

import pytest

from repro.baselines.edlib_like import EdlibLikeAligner
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig

from conftest import report_rows


@pytest.mark.bench
def test_bench_a2_window_sweep(benchmark, workload):
    pairs = workload.pairs[:6]
    edlib = EdlibLikeAligner("prefix")
    optima = [edlib.align(p, t).edit_distance for p, t in pairs]
    configs = [
        ("W32_O8", GenASMConfig(window_size=32, window_overlap=8)),
        ("W64_O12", GenASMConfig(window_size=64, window_overlap=12)),
        ("W64_O24", GenASMConfig(window_size=64, window_overlap=24)),
        ("W96_O32", GenASMConfig(window_size=96, window_overlap=32)),
        ("W128_O48", GenASMConfig(window_size=128, window_overlap=48)),
    ]

    def sweep():
        rows = []
        for name, config in configs:
            aligner = GenASMAligner(config)
            excess = 0
            entries = 0
            for (pattern, text), optimum in zip(pairs, optima):
                alignment = aligner.align(pattern, text)
                excess += alignment.edit_distance - optimum
                entries += alignment.metadata["dp_accesses"]
            rows.append(
                {
                    "id": f"A2_{name}",
                    "metric": f"window sweep {name}",
                    "paper": float("nan"),
                    "measured": excess / len(pairs),
                    "mean_excess_edits": excess / len(pairs),
                    "dp_accesses": entries,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_rows(benchmark, rows, keys=("id", "mean_excess_edits", "dp_accesses"))
    by_id = {row["id"]: row for row in rows}
    # Bigger windows/overlaps never hurt accuracy; the default is near-optimal.
    assert by_id["A2_W64_O24"]["mean_excess_edits"] <= by_id["A2_W32_O8"]["mean_excess_edits"] + 1e-9
    assert by_id["A2_W64_O24"]["mean_excess_edits"] <= 2.0
    assert by_id["A2_W128_O48"]["mean_excess_edits"] <= by_id["A2_W64_O24"]["mean_excess_edits"] + 1e-9
