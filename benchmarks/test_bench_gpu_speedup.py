"""E2 — GPU speedups (paper: 4.1× vs CPU, 62× vs KSW2, 7.2× vs Edlib, 5.9× vs baseline GPU).

Runs the GenASM GPU kernels (baseline and improved) through the A6000
execution model at the paper's workload scale and reports the four E2
speedup rows.  Functional results are produced by the same CPU library, so
this benchmark also asserts result equivalence.
"""

from __future__ import annotations

import pytest

from repro.core.config import GenASMConfig
from repro.gpu.device import A6000
from repro.gpu.kernel import GenASMKernelSpec
from repro.gpu.simulator import CpuModel, GpuSimulator
from repro.harness.experiments import run_gpu_speed_experiment

from conftest import report_rows


@pytest.mark.bench
def test_bench_gpu_kernel_profile_improved(benchmark, workload):
    """Cost-profile the improved kernel (functional alignment included)."""
    kernel = GenASMKernelSpec(GenASMConfig(), name="genasm-gpu-improved")
    profiles = benchmark.pedantic(
        kernel.profile_batch, args=(workload.pairs,), rounds=1, iterations=1
    )
    assert all(p.cost.compute_ops > 0 for p in profiles)


@pytest.mark.bench
def test_bench_gpu_kernel_profile_baseline(benchmark, workload):
    kernel = GenASMKernelSpec(GenASMConfig.baseline(), name="genasm-gpu-baseline")
    profiles = benchmark.pedantic(
        kernel.profile_batch, args=(workload.pairs,), rounds=1, iterations=1
    )
    assert all(p.cost.dp_bytes > 0 for p in profiles)


@pytest.mark.bench
def test_bench_gpu_simulation_mechanism(benchmark, workload):
    """The mechanism: improved fits in shared memory, baseline does not."""
    improved = GenASMKernelSpec(GenASMConfig(), name="genasm-gpu-improved")
    baseline = GenASMKernelSpec(GenASMConfig.baseline(), name="genasm-gpu-baseline")
    gpu = GpuSimulator(A6000)
    multiplier = workload.scale_to_paper

    def run():
        fast = gpu.simulate(workload.pairs, improved, workload_multiplier=multiplier)
        slow = gpu.simulate(workload.pairs, baseline, workload_multiplier=multiplier)
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["improved"] = fast.summary()
    benchmark.extra_info["baseline"] = slow.summary()
    assert fast.dp_in_shared and not slow.dp_in_shared
    assert fast.bound == "compute" and slow.bound == "memory"
    assert fast.speedup_over(slow) > 2.0
    assert [a.edit_distance for a in fast.alignments] == [
        a.edit_distance for a in slow.alignments
    ]


@pytest.mark.bench
def test_bench_e2_speedup_table(benchmark, small_workload):
    """The four E2 rows (paper vs measured)."""
    rows = benchmark.pedantic(
        run_gpu_speed_experiment, args=(small_workload,), rounds=1, iterations=1
    )
    report_rows(benchmark, rows)
    by_id = {row["id"]: row for row in rows}
    assert by_id["E2a_gpu_vs_cpu"]["measured"] > 1.0
    assert by_id["E2d_gpu_vs_baseline_gpu"]["measured"] > 2.0
    assert by_id["E2b_gpu_vs_ksw2"]["measured"] > by_id["E2a_gpu_vs_cpu"]["measured"]
