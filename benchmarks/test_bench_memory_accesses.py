"""E4 — memory-access reduction (paper: 12×).

Counts DP-table accesses (and byte traffic) of instrumented baseline vs.
improved GenASM runs over the workload.
"""

from __future__ import annotations

import pytest

from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.core.metrics import AccessCounter
from repro.harness.experiments import run_memory_access_experiment

from conftest import report_rows


@pytest.mark.bench
def test_bench_e4_access_table(benchmark, workload):
    rows = benchmark.pedantic(
        run_memory_access_experiment, args=(workload,), rounds=1, iterations=1
    )
    report_rows(
        benchmark,
        rows,
        keys=("id", "paper", "measured", "access_count_reduction"),
    )
    assert rows[0]["measured"] > 4.0


@pytest.mark.bench
def test_bench_access_breakdown_by_phase(benchmark, workload):
    """DC writes vs TB reads, baseline vs improved."""
    pairs = workload.pairs[:6]

    def run():
        out = {}
        for name, config in (
            ("improved", GenASMConfig()),
            ("baseline", GenASMConfig.baseline()),
        ):
            counter = AccessCounter()
            aligner = GenASMAligner(config)
            for pattern, text in pairs:
                aligner.align(pattern, text, counter=counter)
            out[name] = counter.as_dict()
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    improved, baseline = result["improved"], result["baseline"]
    print("\nphase breakdown:", result)
    # Stores dominate the reduction (4x from entry compression), reads shrink
    # because early termination skips rows and the traceback is unchanged.
    assert baseline["dp_writes"] > 3 * improved["dp_writes"]
    assert baseline["total_bytes"] > 4 * improved["total_bytes"]
    assert baseline["rows_computed"] > improved["rows_computed"]
