"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's reported results (see
DESIGN.md §4).  The workload is the scaled-down equivalent of the paper's
dataset produced by the same pipeline; its size is chosen so the whole
benchmark suite completes in a few minutes of pure-Python execution while
still containing multi-window long-read alignments.
"""

from __future__ import annotations

import pytest

from repro.harness.dataset import AlignmentWorkload, build_paper_dataset


def pytest_configure(config):
    config.addinivalue_line("markers", "bench: benchmark reproducing a paper result")


@pytest.fixture(scope="session")
def workload() -> AlignmentWorkload:
    """Candidate (read, reference) pairs from the scaled paper pipeline."""
    return build_paper_dataset(read_count=10, read_length=1_000, seed=0, max_pairs=10)


@pytest.fixture(scope="session")
def small_workload() -> AlignmentWorkload:
    """A smaller slice for the quadratic-time KSW2 baseline benchmarks."""
    return build_paper_dataset(read_count=6, read_length=700, seed=1, max_pairs=6)


def report_rows(benchmark, rows, keys=("id", "metric", "paper", "measured")):
    """Attach experiment rows to the benchmark record and echo them."""
    for row in rows:
        label = row.get("id", "row")
        benchmark.extra_info[label] = {
            k: (round(v, 3) if isinstance(v, float) else v)
            for k, v in row.items()
            if k in keys or k in ("paper", "measured")
        }
    header = " | ".join(str(k) for k in keys)
    print("\n" + header)
    for row in rows:
        print(" | ".join(str(round(row[k], 3) if isinstance(row.get(k), float) else row.get(k, "")) for k in keys))
