"""A1 — ablation of the three algorithmic improvements.

DESIGN.md calls out the three improvements as separable design choices;
this benchmark measures DP-traffic, footprint and runtime with each one
enabled in isolation and with all three combined.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import run_ablation_experiment

from conftest import report_rows


@pytest.mark.bench
def test_bench_a1_ablation_table(benchmark, small_workload):
    rows = benchmark.pedantic(
        run_ablation_experiment, args=(small_workload,), rounds=1, iterations=1
    )
    report_rows(
        benchmark,
        rows,
        keys=(
            "id",
            "measured",
            "access_reduction",
            "footprint_reduction",
            "speedup_vs_baseline",
        ),
    )
    by_id = {row["id"]: row for row in rows}
    # Entry compression alone cuts DP traffic by ~4x (it stores one vector
    # instead of four); the combination beats every single improvement.
    assert by_id["A1_entry_compression_only"]["measured"] > 3.0
    assert by_id["A1_all_improvements"]["measured"] >= max(
        by_id["A1_entry_compression_only"]["measured"],
        by_id["A1_early_termination_only"]["measured"],
        by_id["A1_traceback_band_only"]["measured"],
    )
