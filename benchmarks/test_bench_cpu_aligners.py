"""E1 — CPU aligner comparison (paper: 15.2× vs KSW2, 1.7× vs Edlib, 1.9× vs baseline GenASM).

Benchmarks the per-pair alignment throughput of the improved GenASM CPU
implementation against the three CPU baselines on the same candidate pairs,
and reports the speedup rows of experiment E1.  The E1v benchmarks compare
the batch backends (serial loop vs the vectorized lockstep engine vs a
multiprocess pool) on the same pairs.
"""

from __future__ import annotations

import pytest

from repro.baselines.edlib_like import EdlibLikeAligner
from repro.baselines.ksw2 import Ksw2Aligner
from repro.batch import BatchAlignmentEngine
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.harness.experiments import (
    run_batched_throughput_experiment,
    run_cpu_speed_experiment,
)

from conftest import report_rows


def _align_all(aligner_align, pairs):
    return [aligner_align(p, t) for p, t in pairs]


@pytest.mark.bench
def test_bench_genasm_improved_cpu(benchmark, workload):
    aligner = GenASMAligner(GenASMConfig(), name="genasm-improved")
    result = benchmark.pedantic(
        _align_all, args=(aligner.align, workload.pairs), rounds=2, iterations=1
    )
    assert len(result) == workload.pair_count
    benchmark.extra_info["pairs"] = workload.pair_count


@pytest.mark.bench
def test_bench_genasm_baseline_cpu(benchmark, workload):
    aligner = GenASMAligner(GenASMConfig.baseline(), name="genasm-baseline")
    result = benchmark.pedantic(
        _align_all, args=(aligner.align, workload.pairs), rounds=2, iterations=1
    )
    assert len(result) == workload.pair_count


@pytest.mark.bench
def test_bench_edlib_like_cpu(benchmark, workload):
    aligner = EdlibLikeAligner("prefix")
    result = benchmark.pedantic(
        _align_all, args=(aligner.align, workload.pairs), rounds=2, iterations=1
    )
    assert len(result) == workload.pair_count


@pytest.mark.bench
def test_bench_ksw2_like_cpu(benchmark, small_workload):
    aligner = Ksw2Aligner(band_width=128)
    result = benchmark.pedantic(
        _align_all, args=(aligner.align, small_workload.pairs), rounds=1, iterations=1
    )
    assert len(result) == small_workload.pair_count


@pytest.mark.bench
def test_bench_genasm_vectorized_cpu(benchmark, workload):
    """The lockstep SoA engine over the same pairs as the scalar benchmark."""
    engine = BatchAlignmentEngine(GenASMConfig())
    result = benchmark.pedantic(
        engine.align_pairs, args=(workload.pairs,), rounds=2, iterations=1
    )
    assert len(result) == workload.pair_count
    # Correctness contract: identical alignments to the scalar path.
    scalar = GenASMAligner(GenASMConfig(), name="genasm-improved")
    for (pattern, text), alignment in zip(workload.pairs, result):
        reference = scalar.align(pattern, text)
        assert str(alignment.cigar) == str(reference.cigar)
        assert alignment.edit_distance == reference.edit_distance
    benchmark.extra_info["pairs"] = workload.pair_count


@pytest.mark.bench
def test_bench_genasm_vectorized_mixed_lengths(benchmark):
    """Chunked waves over a mixed-length batch with sorted scheduling.

    This is the workload shape the wave scheduler targets: lanes of very
    different window counts, chunked into ``max_lanes``-wide waves.  The
    benchmark reports the lockstep efficiency of the sorted schedule
    against fifo chunking and spot-checks equivalence against the scalar
    aligner.
    """
    import random

    rng = random.Random(42)
    alphabet = "ACGT"
    pairs = []
    for index in range(64):
        length = (150, 1200, 300, 900)[index % 4]
        pattern = "".join(rng.choice(alphabet) for _ in range(length))
        text = list(pattern)
        for _ in range(length // 12):
            text[rng.randrange(len(text))] = rng.choice(alphabet)
        pairs.append((pattern, "".join(text) + "ACGTACGT"))

    engine = BatchAlignmentEngine(GenASMConfig(), max_lanes=16)
    result = benchmark.pedantic(engine.align_pairs, args=(pairs,), rounds=2, iterations=1)
    assert len(result) == len(pairs)

    fifo = BatchAlignmentEngine(GenASMConfig(), max_lanes=16, scheduling="fifo")
    benchmark.extra_info["lockstep_efficiency_sorted"] = round(
        engine.scheduling_stats(pairs)["efficiency"], 3
    )
    benchmark.extra_info["lockstep_efficiency_fifo"] = round(
        fifo.scheduling_stats(pairs)["efficiency"], 3
    )
    scalar = GenASMAligner(GenASMConfig(), name="genasm-improved")
    for index, (pattern, text) in enumerate(pairs[:6]):
        reference = scalar.align(pattern, text)
        assert str(result[index].cigar) == str(reference.cigar)
        assert result[index].edit_distance == reference.edit_distance


@pytest.mark.bench
def test_bench_e1v_batch_backends_table(benchmark, small_workload):
    """E1v: serial vs vectorized vs 2-process backend throughput rows."""
    rows = benchmark.pedantic(
        run_batched_throughput_experiment,
        args=(small_workload,),
        kwargs={"workers": 2},
        rounds=1,
        iterations=1,
    )
    report_rows(benchmark, rows, keys=("id", "metric", "measured", "identical_results"))
    assert all(row["identical_results"] for row in rows)


@pytest.mark.bench
def test_bench_e1_speedup_table(benchmark, small_workload):
    """The E1 speedup rows themselves (paper vs measured)."""
    rows = benchmark.pedantic(
        run_cpu_speed_experiment, args=(small_workload,), rounds=1, iterations=1
    )
    report_rows(benchmark, rows)
    by_id = {row["id"]: row for row in rows}
    # The paper's headline ordering: GenASM (improved) decisively beats the
    # DP-based KSW2 baseline.  (The Edlib relation is interpreter-bound in
    # pure Python; see EXPERIMENTS.md.)
    assert by_id["E1a_cpu_vs_ksw2"]["measured"] > 1.5
    assert by_id["E1c_cpu_vs_baseline_genasm"]["measured"] > 1.0
