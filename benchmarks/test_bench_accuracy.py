"""E5 — result equivalence and alignment accuracy.

The paper's speedups are only meaningful because the improved algorithm
produces the same alignments as baseline GenASM; this benchmark checks that
equivalence on the workload and additionally measures how often the
windowed heuristic attains the full-DP optimum.
"""

from __future__ import annotations

import pytest

from repro.baselines.edlib_like import EdlibLikeAligner
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.harness.experiments import run_accuracy_experiment

from conftest import report_rows


@pytest.mark.bench
def test_bench_e5_accuracy_table(benchmark, workload):
    rows = benchmark.pedantic(
        run_accuracy_experiment, args=(workload,), rounds=1, iterations=1
    )
    report_rows(benchmark, rows, keys=("id", "paper", "measured", "optimal_fraction"))
    assert rows[0]["measured"] == 1.0
    assert rows[0]["optimal_fraction"] >= 0.9


@pytest.mark.bench
def test_bench_distance_gap_to_optimum(benchmark, workload):
    """Distribution of (GenASM distance − optimal distance) over the workload."""
    genasm = GenASMAligner(GenASMConfig())
    edlib = EdlibLikeAligner("prefix")
    pairs = workload.pairs

    def run():
        gaps = []
        for pattern, text in pairs:
            heuristic = genasm.align(pattern, text).edit_distance
            optimum = edlib.align(pattern, text).edit_distance
            gaps.append(heuristic - optimum)
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["gaps"] = gaps
    print("\ndistance gaps (heuristic - optimal):", gaps)
    assert all(g >= 0 for g in gaps)
    assert sum(gaps) / len(gaps) <= 2.0
