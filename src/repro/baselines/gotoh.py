"""Affine-gap global alignment oracle (Smith–Waterman–Gotoh recurrences).

This is the *reference* implementation of affine-gap alignment used to
validate the KSW2-like banded aligner: full matrices, plain Python loops,
no shortcuts.  It is intentionally simple and is only run on short
sequences by the test suite; the production-path affine aligner is
:mod:`repro.baselines.ksw2`.

Scoring convention (maximisation): a gap of length ``L`` scores
``gap_open + gap_extend * (L - 1)`` with both values negative, matching
:meth:`repro.core.cigar.Cigar.affine_score`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.alignment import Alignment
from repro.core.cigar import Cigar, CigarOp

__all__ = ["gotoh_score", "gotoh_align", "ScoringScheme"]

NEG_INF = -(10**9)


class ScoringScheme:
    """Affine-gap scoring parameters shared by Gotoh and the KSW2-like aligner."""

    def __init__(
        self,
        match: int = 2,
        mismatch: int = -4,
        gap_open: int = -4,
        gap_extend: int = -2,
    ) -> None:
        if match <= 0:
            raise ValueError("match score must be positive")
        if mismatch >= 0 or gap_open >= 0 or gap_extend >= 0:
            raise ValueError("mismatch and gap penalties must be negative")
        if gap_open > gap_extend:
            raise ValueError(
                "gap_open must be at most gap_extend (opening may not be cheaper "
                "than extending); the lazy-F evaluation in the KSW2-like aligner "
                "relies on this"
            )
        self.match = match
        self.mismatch = mismatch
        self.gap_open = gap_open
        self.gap_extend = gap_extend

    def substitution(self, a: str, b: str) -> int:
        """Score of aligning characters ``a`` and ``b``."""
        return self.match if a == b else self.mismatch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoringScheme(match={self.match}, mismatch={self.mismatch}, "
            f"gap_open={self.gap_open}, gap_extend={self.gap_extend})"
        )


def _fill(
    pattern: str, text: str, scheme: ScoringScheme
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill the three Gotoh matrices (H, E, F) for global alignment.

    ``E`` holds states ending in a gap that consumes text (deletion runs),
    ``F`` states ending in a gap that consumes pattern (insertion runs).
    """
    m, n = len(pattern), len(text)
    H = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    go, ge = scheme.gap_open, scheme.gap_extend

    H[0, 0] = 0
    for j in range(1, n + 1):
        E[0, j] = go + ge * (j - 1)
        H[0, j] = E[0, j]
    for i in range(1, m + 1):
        F[i, 0] = go + ge * (i - 1)
        H[i, 0] = F[i, 0]

    for i in range(1, m + 1):
        pc = pattern[i - 1]
        for j in range(1, n + 1):
            E[i, j] = max(H[i, j - 1] + go, E[i, j - 1] + ge)
            F[i, j] = max(H[i - 1, j] + go, F[i - 1, j] + ge)
            diag = H[i - 1, j - 1] + scheme.substitution(pc, text[j - 1])
            H[i, j] = max(diag, E[i, j], F[i, j])
    return H, E, F


def gotoh_score(
    pattern: str, text: str, scheme: ScoringScheme | None = None
) -> int:
    """Optimal affine-gap global alignment score."""
    scheme = scheme or ScoringScheme()
    if not pattern and not text:
        return 0
    H, _, _ = _fill(pattern, text, scheme)
    return int(H[len(pattern), len(text)])


def gotoh_align(
    pattern: str, text: str, scheme: ScoringScheme | None = None
) -> Alignment:
    """Optimal affine-gap global alignment with full traceback."""
    scheme = scheme or ScoringScheme()
    m, n = len(pattern), len(text)
    if m == 0 and n == 0:
        return Alignment(pattern, text, Cigar(()), 0, score=0, aligner="gotoh")
    H, E, F = _fill(pattern, text, scheme)
    go, ge = scheme.gap_open, scheme.gap_extend

    ops = []
    i, j = m, n
    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            if i == 0:
                state = "E"
                continue
            if j == 0:
                state = "F"
                continue
            diag = H[i - 1, j - 1] + scheme.substitution(pattern[i - 1], text[j - 1])
            if H[i, j] == diag:
                same = pattern[i - 1] == text[j - 1]
                ops.append(CigarOp.MATCH if same else CigarOp.MISMATCH)
                i, j = i - 1, j - 1
            elif H[i, j] == E[i, j]:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            ops.append(CigarOp.DELETION)
            if E[i, j] == E[i, j - 1] + ge and j > 1:
                j -= 1
            else:
                j -= 1
                state = "H"
        else:  # state == "F"
            ops.append(CigarOp.INSERTION)
            if F[i, j] == F[i - 1, j] + ge and i > 1:
                i -= 1
            else:
                i -= 1
                state = "H"
    ops.reverse()
    cigar = Cigar.from_ops(ops)
    return Alignment(
        pattern=pattern,
        text=text,
        cigar=cigar,
        edit_distance=cigar.edit_distance,
        score=int(H[m, n]),
        aligner="gotoh",
        metadata={"dp_cells": float((m + 1) * (n + 1))},
    )
