"""Baseline aligners used in the paper's evaluation plus DP ground truths.

* :mod:`repro.baselines.needleman_wunsch` — full-matrix unit-cost edit
  distance / alignment (the correctness oracle for every other aligner).
* :mod:`repro.baselines.gotoh` — full-matrix affine-gap alignment
  (Smith–Waterman–Gotoh style, global mode), the oracle for KSW2.
* :mod:`repro.baselines.edlib_like` — Myers' bit-vector edit-distance
  algorithm with traceback, standing in for Edlib.
* :mod:`repro.baselines.ksw2` — banded affine-gap global alignment with the
  Suzuki–Kasahara difference recurrence, standing in for KSW2.
"""

from repro.baselines.needleman_wunsch import (
    edit_distance,
    needleman_wunsch,
    semiglobal_edit_distance,
)
from repro.baselines.gotoh import gotoh_align, gotoh_score
from repro.baselines.edlib_like import EdlibLikeAligner, myers_edit_distance
from repro.baselines.ksw2 import Ksw2Aligner, ksw2_global_score

__all__ = [
    "edit_distance",
    "semiglobal_edit_distance",
    "needleman_wunsch",
    "gotoh_align",
    "gotoh_score",
    "EdlibLikeAligner",
    "myers_edit_distance",
    "Ksw2Aligner",
    "ksw2_global_score",
]
