"""Full-matrix unit-cost edit distance and alignment (the ground-truth oracle).

This module implements the textbook dynamic program with three anchoring
modes that cover every semantics used elsewhere in the library:

``global``
    the whole pattern against the whole text (Needleman–Wunsch / Levenshtein);
``prefix``
    the whole pattern against the best *prefix* of the text — this is the
    semantics of windowed GenASM and of candidate-region alignment, where
    the mapper anchors the region start;
``infix``
    the whole pattern against the best *substring* of the text (free text
    prefix and suffix) — the semantics of GenASM-DC used as a filter and of
    Myers/Edlib in search mode.

The row recurrence is vectorised with NumPy: the only intra-row dependency
(the insertion ``dp[i][j-1] + 1`` term) is resolved with a prefix-minimum
scan, so each row costs a handful of NumPy operations instead of a Python
loop over columns.  The full matrix is retained for traceback.
"""

from __future__ import annotations

from typing import Literal, Optional, Tuple

import numpy as np

from repro.core.alignment import Alignment
from repro.core.cigar import Cigar, CigarOp

__all__ = [
    "edit_distance_matrix",
    "edit_distance",
    "prefix_edit_distance",
    "semiglobal_edit_distance",
    "needleman_wunsch",
]

Mode = Literal["global", "prefix", "infix"]


def _encode(seq: str) -> np.ndarray:
    """Encode a string as an int array (codepoints) for vectorised compares."""
    return np.frombuffer(seq.encode("latin-1"), dtype=np.uint8).astype(np.int16)


def edit_distance_matrix(pattern: str, text: str, *, free_text_prefix: bool) -> np.ndarray:
    """Return the full (m+1) × (n+1) unit-cost DP matrix.

    ``dp[i][j]`` is the minimum number of edits aligning ``pattern[:i]``
    against ``text[:j]`` (``free_text_prefix`` makes row 0 all zeros, i.e.
    the alignment may start at any text position).
    """
    m, n = len(pattern), len(text)
    dp = np.zeros((m + 1, n + 1), dtype=np.int32)
    dp[0, :] = 0 if free_text_prefix else np.arange(n + 1)
    dp[:, 0] = np.arange(m + 1)
    if m == 0 or n == 0:
        return dp

    p = _encode(pattern)
    t = _encode(text)
    cols = np.arange(1, n + 1, dtype=np.int32)
    for i in range(1, m + 1):
        prev = dp[i - 1]
        sub = prev[:-1] + (t != p[i - 1])          # diagonal + substitution cost
        dele = prev[1:] + 1                         # from above (text char deleted)
        cand = np.minimum(sub, dele).astype(np.int32)
        # Resolve the left-dependency dp[i][j-1] + 1 with a prefix-min scan:
        # dp[i][j] = min_{j' <= j} (cand[j'] + (j - j')) for j' >= 1, and the
        # seed dp[i][0] + j for j' = 0.
        shifted = np.empty(n + 1, dtype=np.int32)
        shifted[0] = dp[i, 0]
        shifted[1:] = cand - cols
        running = np.minimum.accumulate(shifted)
        dp[i, 1:] = running[1:] + cols
        dp[i, 0] = i
    return dp


def edit_distance(a: str, b: str) -> int:
    """Global (Levenshtein) edit distance between two strings."""
    dp = edit_distance_matrix(a, b, free_text_prefix=False)
    return int(dp[len(a), len(b)])


def prefix_edit_distance(pattern: str, text: str) -> int:
    """Edit distance of ``pattern`` against the best prefix of ``text``."""
    dp = edit_distance_matrix(pattern, text, free_text_prefix=False)
    return int(dp[len(pattern), :].min())


def semiglobal_edit_distance(pattern: str, text: str) -> int:
    """Edit distance of ``pattern`` against the best substring of ``text``."""
    dp = edit_distance_matrix(pattern, text, free_text_prefix=True)
    return int(dp[len(pattern), :].min())


def _traceback(
    dp: np.ndarray, pattern: str, text: str, end_j: int, *, free_text_prefix: bool
) -> Tuple[Cigar, int]:
    """Walk the DP matrix back from ``(m, end_j)`` and return (CIGAR, start_j)."""
    ops = []
    i, j = len(pattern), end_j
    while i > 0 or (j > 0 and not free_text_prefix):
        here = dp[i, j]
        if i > 0 and j > 0:
            diag = dp[i - 1, j - 1]
            same = pattern[i - 1] == text[j - 1]
            if here == diag + (0 if same else 1):
                ops.append(CigarOp.MATCH if same else CigarOp.MISMATCH)
                i, j = i - 1, j - 1
                continue
        if i > 0 and here == dp[i - 1, j] + 1:
            ops.append(CigarOp.INSERTION)
            i -= 1
            continue
        if j > 0 and here == dp[i, j - 1] + 1:
            ops.append(CigarOp.DELETION)
            j -= 1
            continue
        if i == 0 and free_text_prefix:
            break
        raise AssertionError("DP traceback failed (internal error)")
    ops.reverse()
    return Cigar.from_ops(ops), j


def needleman_wunsch(
    pattern: str,
    text: str,
    mode: Mode = "global",
    *,
    name: str = "needleman-wunsch",
) -> Alignment:
    """Optimal unit-cost alignment of ``pattern`` against ``text``.

    ``mode`` selects the anchoring (see the module docstring).  The returned
    :class:`Alignment` carries the exact optimal edit distance and an
    ``=``/``X``/``I``/``D`` CIGAR, making it the reference result the test
    suite compares every other aligner against.
    """
    if mode not in ("global", "prefix", "infix"):
        raise ValueError(f"unknown mode {mode!r}")
    free_prefix = mode == "infix"
    dp = edit_distance_matrix(pattern, text, free_text_prefix=free_prefix)
    m, n = len(pattern), len(text)
    if mode == "global":
        end_j = n
    else:
        end_j = int(dp[m, :].argmin())
    cigar, start_j = _traceback(dp, pattern, text, end_j, free_text_prefix=free_prefix)
    return Alignment(
        pattern=pattern,
        text=text,
        cigar=cigar,
        edit_distance=int(dp[m, end_j]),
        text_start=start_j,
        text_end=end_j,
        aligner=name,
        metadata={"dp_cells": float((m + 1) * (n + 1))},
    )
