"""KSW2-like aligner: affine-gap global alignment with column vectorisation.

KSW2 (Suzuki & Kasahara 2018, as shipped inside minimap2) computes
affine-gap alignment with a *difference recurrence*: instead of absolute DP
scores it propagates bounded score differences, which fit small integer
lanes and vectorise well.  This module plays KSW2's role in the paper's
evaluation (the DP-based affine-gap baseline that GenASM is compared
against) with two implementations:

* :class:`Ksw2Aligner` — the production path: Gotoh recurrences evaluated
  column by column with NumPy, using the "lazy-F" prefix-scan to resolve
  the in-column gap dependency, an optional static band, and a packed
  direction matrix for traceback.
* :func:`ksw2_diff_score` — a score-only evaluation of the actual
  Suzuki–Kasahara difference recurrence (differences stored in ``int8``),
  used by the test suite to demonstrate equivalence with the direct
  recurrence.  Python integers cannot overflow, so the difference form
  brings no speed benefit here; it exists to document the algorithm.

Both produce scores identical to the Gotoh oracle
(:mod:`repro.baselines.gotoh`), which the tests verify.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.alignment import Alignment
from repro.core.cigar import Cigar, CigarOp
from repro.baselines.gotoh import ScoringScheme

__all__ = ["Ksw2Aligner", "ksw2_global_score", "ksw2_diff_score"]

NEG_INF = np.int32(-(10**8))

# Direction-matrix bit layout (one byte per cell).
_H_FROM_DIAG = 0
_H_FROM_E = 1
_H_FROM_F = 2
_H_SOURCE_MASK = 0x03
_E_EXTEND = 0x04
_F_EXTEND = 0x08


def _encode(seq: str) -> np.ndarray:
    return np.frombuffer(seq.encode("latin-1"), dtype=np.uint8).astype(np.int16)


class Ksw2Aligner:
    """Banded affine-gap global aligner (the paper's KSW2 baseline).

    Parameters
    ----------
    scheme:
        Affine scoring parameters (defaults follow minimap2's short preset
        shape: match +2, mismatch −4, gap open −4, gap extend −2).
    band_width:
        Optional static band half-width around the main diagonal; cells
        outside the band are never reached.  ``None`` disables banding.
    """

    def __init__(
        self,
        scheme: Optional[ScoringScheme] = None,
        *,
        band_width: Optional[int] = None,
        name: str = "ksw2-like",
    ) -> None:
        self.scheme = scheme or ScoringScheme()
        if band_width is not None and band_width < 1:
            raise ValueError("band_width must be positive or None")
        self.band_width = band_width
        self.name = name

    # ------------------------------------------------------------------ #
    def _column_pass(
        self, pattern: str, text: str, keep_directions: bool
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Run the column-major DP; return final H column, F column, directions."""
        m, n = len(pattern), len(text)
        go = np.int32(self.scheme.gap_open)
        ge = np.int32(self.scheme.gap_extend)
        match = np.int32(self.scheme.match)
        mismatch = np.int32(self.scheme.mismatch)

        p = _encode(pattern)
        rows = np.arange(m + 1, dtype=np.int64)

        # Column j = 0.
        H = np.empty(m + 1, dtype=np.int32)
        H[0] = 0
        if m:
            H[1:] = go + ge * np.arange(m, dtype=np.int32)
        E = np.full(m + 1, NEG_INF, dtype=np.int32)

        directions = (
            np.zeros((n + 1, m + 1), dtype=np.uint8) if keep_directions else None
        )
        if keep_directions and m:
            directions[0, 1:] = _H_FROM_F | _F_EXTEND
            directions[0, 1] = _H_FROM_F

        band = self.band_width
        for j in range(1, n + 1):
            tc = np.int16(ord(text[j - 1]))
            sub = np.where(p == tc, match, mismatch).astype(np.int32)

            # E: gap consuming text (previous column, no in-column dependency).
            e_open = H + go
            e_extend = E + ge
            E_new = np.maximum(e_open, e_extend)
            e_ext_flag = e_extend >= e_open

            # H ignoring F.
            H_new = np.empty(m + 1, dtype=np.int32)
            H_new[0] = go + ge * (j - 1)
            diag = H[:-1] + sub if m else np.empty(0, dtype=np.int32)
            H_new[1:] = np.maximum(diag, E_new[1:])
            from_e = E_new[1:] > diag

            # F: gap consuming pattern (in-column dependency), resolved with a
            # prefix-max scan; re-opening after a close never helps because
            # gap_open <= gap_extend (enforced by ScoringScheme).
            seed = H_new.astype(np.int64) + go - ge * rows
            best = np.maximum.accumulate(seed[:-1]) if m else seed[:0]
            F_new = np.full(m + 1, np.int64(NEG_INF), dtype=np.int64)
            if m:
                F_new[1:] = best + ge * (rows[1:] - 1)
            F_new = F_new.astype(np.int32)
            f_beats_h = F_new > H_new
            H_final = np.where(f_beats_h, F_new, H_new)

            if band is not None and m:
                # Mask cells outside the diagonal band (plus the length skew).
                centre = j * m / max(1, n)
                dist = np.abs(rows - centre)
                outside = dist > (band + abs(m - n))
                outside[0] = False
                H_final = np.where(outside, NEG_INF, H_final)
                E_new = np.where(outside, NEG_INF, E_new)

            if keep_directions:
                col = directions[j]
                col[1:] = np.where(from_e, _H_FROM_E, _H_FROM_DIAG)
                col[1:] = np.where(f_beats_h[1:], _H_FROM_F, col[1:])
                col |= np.where(e_ext_flag, _E_EXTEND, 0).astype(np.uint8)
                # F extension flag: F came from extending iff the seeding row
                # is not the immediately preceding one.
                if m:
                    opened_here = H_new[:-1].astype(np.int64) + go == F_new[1:]
                    col[1:] |= np.where(opened_here, 0, _F_EXTEND).astype(np.uint8)
            H, E = H_final, E_new
        return H, E, directions

    # ------------------------------------------------------------------ #
    def score(self, pattern: str, text: str) -> int:
        """Global affine-gap alignment score (no traceback)."""
        if not pattern and not text:
            return 0
        if not pattern:
            return self.scheme.gap_open + self.scheme.gap_extend * (len(text) - 1)
        if not text:
            return self.scheme.gap_open + self.scheme.gap_extend * (len(pattern) - 1)
        H, _, _ = self._column_pass(pattern, text, keep_directions=False)
        return int(H[len(pattern)])

    def align(self, pattern: str, text: str) -> Alignment:
        """Global affine-gap alignment with CIGAR traceback."""
        m, n = len(pattern), len(text)
        if m == 0:
            cigar = Cigar.from_runs([(n, CigarOp.DELETION)])
            return Alignment(pattern, text, cigar, n, score=self.score(pattern, text), aligner=self.name)
        if n == 0:
            cigar = Cigar.from_runs([(m, CigarOp.INSERTION)])
            return Alignment(pattern, text, cigar, m, score=self.score(pattern, text), aligner=self.name)

        H, _, directions = self._column_pass(pattern, text, keep_directions=True)
        assert directions is not None

        ops = []
        i, j = m, n
        state = "H"
        guard = 2 * (m + n) + 4
        while (i > 0 or j > 0) and guard > 0:
            guard -= 1
            cell = directions[j, i]
            if state == "H":
                if i == 0:
                    state = "E"
                    continue
                if j == 0:
                    state = "F"
                    continue
                source = cell & _H_SOURCE_MASK
                if source == _H_FROM_DIAG:
                    same = pattern[i - 1] == text[j - 1]
                    ops.append(CigarOp.MATCH if same else CigarOp.MISMATCH)
                    i, j = i - 1, j - 1
                elif source == _H_FROM_E:
                    state = "E"
                else:
                    state = "F"
            elif state == "E":
                ops.append(CigarOp.DELETION)
                extending = bool(cell & _E_EXTEND) and j > 1
                j -= 1
                if not extending:
                    state = "H"
            else:  # state == "F"
                ops.append(CigarOp.INSERTION)
                extending = bool(cell & _F_EXTEND) and i > 1
                i -= 1
                if not extending:
                    state = "H"
        if i != 0 or j != 0:
            raise AssertionError("KSW2 traceback failed (internal error)")
        ops.reverse()
        cigar = Cigar.from_ops(ops)
        return Alignment(
            pattern=pattern,
            text=text,
            cigar=cigar,
            edit_distance=cigar.edit_distance,
            score=int(H[m]),
            aligner=self.name,
            metadata={"dp_cells": float((m + 1) * (n + 1))},
        )


def ksw2_global_score(
    pattern: str,
    text: str,
    scheme: Optional[ScoringScheme] = None,
    band_width: Optional[int] = None,
) -> int:
    """Convenience wrapper: global affine-gap score via :class:`Ksw2Aligner`."""
    return Ksw2Aligner(scheme, band_width=band_width).score(pattern, text)


def ksw2_diff_score(
    pattern: str, text: str, scheme: Optional[ScoringScheme] = None
) -> int:
    """Suzuki–Kasahara difference-recurrence evaluation (score only).

    The DP is expressed in terms of the column-to-column differences
    ``ΔH[i][j] = H[i][j] − H[i][j-1]`` and the gap-state differences, which
    are bounded by the scoring parameters and therefore fit ``int8`` lanes
    in the original SIMD implementation.  Here the differences are stored
    in an ``int8`` NumPy array to demonstrate the bounded-range property;
    the final score is recovered by summing the last row's differences.
    """
    scheme = scheme or ScoringScheme()
    m, n = len(pattern), len(text)
    if m == 0 or n == 0:
        if m == 0 and n == 0:
            return 0
        length = max(m, n)
        return scheme.gap_open + scheme.gap_extend * (length - 1)

    go, ge = scheme.gap_open, scheme.gap_extend
    # Absolute values for column 0.
    H_prev = np.empty(m + 1, dtype=np.int64)
    H_prev[0] = 0
    H_prev[1:] = go + ge * np.arange(m, dtype=np.int64)
    E_prev = np.full(m + 1, np.int64(NEG_INF), dtype=np.int64)

    p = _encode(pattern)
    last_row_score = int(H_prev[m])
    for j in range(1, n + 1):
        tc = np.int16(ord(text[j - 1]))
        sub = np.where(p == tc, scheme.match, scheme.mismatch).astype(np.int64)
        E = np.maximum(H_prev + go, E_prev + ge)
        H = np.empty(m + 1, dtype=np.int64)
        H[0] = go + ge * (j - 1)
        H[1:] = np.maximum(H_prev[:-1] + sub, E[1:])
        # In-column gap via prefix-max (same lazy-F argument as the aligner).
        rows = np.arange(m + 1, dtype=np.int64)
        seed = H + go - ge * rows
        best = np.maximum.accumulate(seed[:-1])
        F = np.full(m + 1, np.int64(NEG_INF))
        F[1:] = best + ge * (rows[1:] - 1)
        H = np.maximum(H, F)

        # The quantity KSW2 stores: per-row horizontal differences, which are
        # bounded by [gap_open + gap_extend, match] and hence fit int8.
        diff = (H - H_prev).astype(np.int8)
        last_row_score += int(diff[m])
        H_prev, E_prev = H, E
    return last_row_score
