"""Edlib-like aligner: Myers' bit-vector edit-distance algorithm.

Edlib (Šošić & Šikić, 2017) computes unit-cost edit distance with Myers'
1999 bit-parallel algorithm: the vertical score differences of each DP
column are packed into two bitvectors (``VP`` = +1 deltas, ``VN`` = −1
deltas) and a whole column is advanced with a constant number of word
operations.  This module reimplements that algorithm on Python's
arbitrary-precision integers (one "word" spans the whole pattern), which
keeps the word-parallel character of the method while staying pure Python.

Three alignment modes mirror Edlib's tasks:

``global``  (Edlib *NW*)   — whole pattern vs. whole text;
``prefix``  (Edlib *SHW*)  — whole pattern vs. best text prefix;
``infix``   (Edlib *HW*)   — whole pattern vs. best text substring.

For traceback the per-column ``VP``/``VN`` vectors and the running last-row
score are retained; any DP cell can then be reconstructed as

``dp[i][j] = dp[m][j] − popcount(VP[j] >> i) + popcount(VN[j] >> i)``

which the traceback uses to walk the optimal path without having stored the
quadratic DP matrix of scores explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Literal, Optional

from repro.core.alignment import Alignment
from repro.core.bitvector import all_ones, pattern_bitmasks, popcount
from repro.core.cigar import Cigar, CigarOp

__all__ = ["myers_edit_distance", "EdlibLikeAligner"]

Mode = Literal["global", "prefix", "infix"]


def _column_masks(pattern: str) -> Dict[str, int]:
    """One-active match masks (bit i set iff pattern[i] == c)."""
    return pattern_bitmasks(pattern)


def _advance(
    eq: int, vp: int, vn: int, score: int, top_bit: int, ones: int, horizontal_in: int
):
    """Advance one text character (Hyyrö's formulation of Myers' recurrence).

    ``horizontal_in`` is the score delta entering the column at row 0:
    +1 for global/prefix modes (the text prefix must be consumed), 0 for
    infix mode (free text prefix).  Returns the updated (vp, vn, score).
    """
    xv = eq | vn
    xh = (((eq & vp) + vp) ^ vp) | eq | vn
    ph = vn | (~(xh | vp) & ones)
    mh = vp & xh
    if ph & top_bit:
        score += 1
    elif mh & top_bit:
        score -= 1
    ph = ((ph << 1) | horizontal_in) & ones | horizontal_in
    mh = (mh << 1) & ones
    vp = mh | (~(xv | ph) & ones)
    vn = ph & xv
    return vp, vn, score


def myers_edit_distance(
    pattern: str,
    text: str,
    mode: Mode = "global",
    *,
    max_distance: Optional[int] = None,
) -> Optional[int]:
    """Edit distance by Myers' bit-vector algorithm (no traceback).

    Returns ``None`` when ``max_distance`` is given and the distance
    provably exceeds it (checked against the running best, Ukkonen-style
    cutoff on the reported score).
    """
    m = len(pattern)
    n = len(text)
    if m == 0:
        return 0 if mode != "global" else n
    if n == 0:
        return m

    ones = all_ones(m)
    top_bit = 1 << (m - 1)
    masks = _column_masks(pattern)
    horizontal_in = 0 if mode == "infix" else 1

    vp, vn = ones, 0
    score = m
    best = score if mode != "global" else None
    for ch in text:
        eq = masks.get(ch, 0)
        vp, vn, score = _advance(eq, vp, vn, score, top_bit, ones, horizontal_in)
        if mode != "global" and (best is None or score < best):
            best = score
    result = score if mode == "global" else best
    if max_distance is not None and result is not None and result > max_distance:
        return None
    return int(result)


class EdlibLikeAligner:
    """Myers bit-vector aligner with traceback (the paper's Edlib baseline).

    Parameters
    ----------
    mode:
        Alignment task; candidate-region alignment in the evaluation uses
        ``"prefix"`` (the region start is anchored by the mapper, the end
        floats), mirroring how Edlib's SHW task is used.
    """

    def __init__(self, mode: Mode = "prefix", *, name: str = "edlib-like") -> None:
        if mode not in ("global", "prefix", "infix"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.name = name

    # ------------------------------------------------------------------ #
    def distance(self, pattern: str, text: str, max_distance: Optional[int] = None):
        """Edit distance only (no CIGAR)."""
        return myers_edit_distance(pattern, text, self.mode, max_distance=max_distance)

    def align(self, pattern: str, text: str) -> Alignment:
        """Align and return an :class:`Alignment` with an ``=/X/I/D`` CIGAR."""
        m, n = len(pattern), len(text)
        if m == 0:
            cigar = Cigar.from_runs([(n if self.mode == "global" else 0, CigarOp.DELETION)])
            return Alignment(pattern, text, cigar, cigar.edit_distance, aligner=self.name)
        if n == 0:
            cigar = Cigar.from_runs([(m, CigarOp.INSERTION)])
            return Alignment(pattern, text, cigar, m, aligner=self.name)

        ones = all_ones(m)
        top_bit = 1 << (m - 1)
        masks = _column_masks(pattern)
        horizontal_in = 0 if self.mode == "infix" else 1

        vp, vn = ones, 0
        score = m
        vps: List[int] = [vp]
        vns: List[int] = [vn]
        scores: List[int] = [score]
        for ch in text:
            eq = masks.get(ch, 0)
            vp, vn, score = _advance(eq, vp, vn, score, top_bit, ones, horizontal_in)
            vps.append(vp)
            vns.append(vn)
            scores.append(score)

        if self.mode == "global":
            end_j = n
        else:
            end_j = min(range(n + 1), key=lambda j: scores[j])
        distance = scores[end_j]

        def cell(i: int, j: int) -> int:
            """dp[i][j] reconstructed from the stored column deltas."""
            if i == 0:
                return 0 if self.mode == "infix" else j
            return scores[j] - popcount(vps[j] >> i) + popcount(vns[j] >> i)

        ops: List[CigarOp] = []
        i, j = m, end_j
        free_prefix = self.mode == "infix"
        while i > 0 or (j > 0 and not free_prefix):
            here = cell(i, j)
            if i > 0 and j > 0:
                same = pattern[i - 1] == text[j - 1]
                if here == cell(i - 1, j - 1) + (0 if same else 1):
                    ops.append(CigarOp.MATCH if same else CigarOp.MISMATCH)
                    i, j = i - 1, j - 1
                    continue
            if i > 0 and here == cell(i - 1, j) + 1:
                ops.append(CigarOp.INSERTION)
                i -= 1
                continue
            if j > 0 and here == cell(i, j - 1) + 1:
                ops.append(CigarOp.DELETION)
                j -= 1
                continue
            if i == 0 and free_prefix:
                break
            raise AssertionError("Myers traceback failed (internal error)")
        ops.reverse()
        cigar = Cigar.from_ops(ops)
        start_j = end_j - cigar.text_length
        return Alignment(
            pattern=pattern,
            text=text,
            cigar=cigar,
            edit_distance=int(distance),
            text_start=start_j,
            text_end=end_j,
            aligner=self.name,
            metadata={"columns": float(n), "words_per_column": float(max(1, (m + 63) // 64))},
        )
