"""SAM emission (SAM spec v1.6, minimap2 ``--eqx`` style CIGARs).

Renders :class:`~repro.io.records.AlignmentRecord` values as SAM lines:
``@HD``/``@SQ``/``@PG`` header from the reference genome, 1-based POS,
``0x10``/``0x100`` flags for strand and secondaries, the ``=``/``X``
resolved CIGAR (spec-valid and unambiguous; ``collapse_to_M`` the record's
CIGAR first if a classic-``M`` consumer insists), and ``NM``/``AS``/``s1``
tags.  SEQ is stored in alignment orientation (reverse complement for
``-`` strand mappings) per the spec, so the CIGAR always consumes SEQ
exactly.

Two front-ends share the rendering:

* :func:`write_sam` — offline: any iterable of pipeline results or
  ``(candidate, alignment)`` pairs, grouped per read internally;
* :class:`SamSink` — streaming: pass to
  :meth:`repro.pipeline.StreamingPipeline.run` (``sink=``) and records are
  written while the pipeline runs, byte-identical to the offline path.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.genomics.genome import SyntheticGenome
from repro.io.records import (
    AlignmentRecord,
    GroupingSink,
    build_records,
    group_by_read,
)

__all__ = [
    "FLAG_REVERSE",
    "FLAG_SECONDARY",
    "FLAG_UNMAPPED",
    "SamEmitter",
    "SamSink",
    "sam_header_lines",
    "sam_record_line",
    "write_sam",
]

SAM_VERSION = "1.6"

FLAG_UNMAPPED = 0x4
FLAG_REVERSE = 0x10
FLAG_SECONDARY = 0x100


def sam_header_lines(
    genome: SyntheticGenome,
    *,
    sort_order: str = "unknown",
    program: str = "repro-genasm",
    command_line: Optional[str] = None,
) -> List[str]:
    """``@HD`` + one ``@SQ`` per chromosome + ``@PG`` (without newlines)."""
    lines = [f"@HD\tVN:{SAM_VERSION}\tSO:{sort_order}"]
    for name in genome.names():
        lines.append(f"@SQ\tSN:{name}\tLN:{genome.chromosome_length(name)}")
    pg = f"@PG\tID:{program}\tPN:{program}"
    if command_line:
        pg += f"\tCL:{command_line}"
    lines.append(pg)
    return lines


def sam_record_line(record: AlignmentRecord) -> str:
    """One SAM alignment line (no newline) for an emission record."""
    flag = 0
    if record.strand == "-":
        flag |= FLAG_REVERSE
    if not record.is_primary:
        flag |= FLAG_SECONDARY
    fields = [
        record.read_name,
        str(flag),
        record.chrom,
        str(record.ref_start + 1),  # SAM POS is 1-based
        str(record.mapq),
        str(record.cigar),
        "*",  # RNEXT (unpaired)
        "0",  # PNEXT
        "0",  # TLEN
        record.sequence or "*",
        record.quality or "*",
        f"NM:i:{record.edit_distance}",
        f"AS:i:{record.alignment_score}",
        f"s1:i:{int(round(record.chain_score))}",
    ]
    return "\t".join(fields)


class SamEmitter:
    """Write SAM to an open text handle, one read group at a time.

    The header is written at construction; :meth:`emit_group` builds
    records for one read's candidate alignments (primary election + MAPQ,
    see :func:`repro.io.records.build_records`) and writes their lines.
    ``qualities`` maps read names to FASTQ quality strings for the QUAL
    column (``*`` when absent).
    """

    def __init__(
        self,
        handle: IO[str],
        genome: SyntheticGenome,
        *,
        qualities: Optional[Mapping[str, str]] = None,
        sort_order: str = "unknown",
        program: str = "repro-genasm",
        command_line: Optional[str] = None,
    ) -> None:
        self.handle = handle
        self.qualities = qualities
        for line in sam_header_lines(
            genome, sort_order=sort_order, program=program, command_line=command_line
        ):
            handle.write(line + "\n")

    def emit_group(self, group: Sequence[Tuple]) -> List[AlignmentRecord]:
        records = build_records(group, qualities=self.qualities)
        for record in records:
            self.handle.write(sam_record_line(record) + "\n")
        return records

    def emit_unmapped(self, name: str, sequence: str, quality: str = "") -> None:
        """Emit a flag-4 record for a read with no candidate mappings."""
        fields = [
            name,
            str(FLAG_UNMAPPED),
            "*",
            "0",
            "0",
            "*",
            "*",
            "0",
            "0",
            sequence or "*",
            quality or "*",
        ]
        self.handle.write("\t".join(fields) + "\n")


class SamSink(GroupingSink):
    """Streaming SAM sink for ``StreamingPipeline.run(reads, sink=...)``."""

    def __init__(
        self,
        handle: IO[str],
        genome: SyntheticGenome,
        *,
        qualities: Optional[Mapping[str, str]] = None,
        eager: bool = True,
        **emitter_kwargs,
    ) -> None:
        super().__init__(
            SamEmitter(handle, genome, qualities=qualities, **emitter_kwargs),
            eager=eager,
        )


def write_sam(
    destination: Union[str, Path, IO[str]],
    results: Iterable[object],
    genome: SyntheticGenome,
    *,
    qualities: Optional[Mapping[str, str]] = None,
    **emitter_kwargs,
) -> int:
    """Write an offline result list as SAM; returns the record count.

    ``results`` is any iterable of pipeline results
    (:class:`~repro.pipeline.pipeline.MappedAlignment`) or
    ``(candidate, alignment)`` pairs, grouped per read internally (reads
    must be contiguous, as the mapper and the ordered pipeline emit them).
    ``destination`` may be a path or an open text handle.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            return write_sam(
                handle, results, genome, qualities=qualities, **emitter_kwargs
            )
    emitter = SamEmitter(destination, genome, qualities=qualities, **emitter_kwargs)
    count = 0
    for _, group in group_by_read(results):
        count += len(emitter.emit_group(group))
    return count
