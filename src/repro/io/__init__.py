"""Standard alignment output: SAM and PAF emission with MAPQ.

The repro's compute path ends in :class:`~repro.core.alignment.Alignment`
objects; this package turns them into formats the rest of the genomics
toolchain consumes.  :mod:`repro.io.records` joins alignments with their
mapping provenance (reference placement, primary/secondary election, a
minimap2-style MAPQ from the chain-score gap and identity);
:mod:`repro.io.sam` and :mod:`repro.io.paf` render the records.  Both
formats have an offline writer (``write_sam``/``write_paf``) and a
streaming sink (``SamSink``/``PafSink``) for
:meth:`repro.pipeline.StreamingPipeline.run`'s ``sink=`` seam — the two
paths are byte-identical on the same results.
"""

from repro.io.paf import PafEmitter, PafSink, paf_record_line, write_paf
from repro.io.records import (
    MAX_MAPQ,
    AlignmentRecord,
    GroupingSink,
    as_pair,
    build_records,
    compute_mapq,
    group_by_read,
)
from repro.io.sam import (
    FLAG_REVERSE,
    FLAG_SECONDARY,
    FLAG_UNMAPPED,
    SamEmitter,
    SamSink,
    sam_header_lines,
    sam_record_line,
    write_sam,
)

__all__ = [
    "FLAG_REVERSE",
    "FLAG_SECONDARY",
    "FLAG_UNMAPPED",
    "MAX_MAPQ",
    "AlignmentRecord",
    "GroupingSink",
    "as_pair",
    "PafEmitter",
    "PafSink",
    "SamEmitter",
    "SamSink",
    "build_records",
    "compute_mapq",
    "group_by_read",
    "paf_record_line",
    "sam_header_lines",
    "sam_record_line",
    "write_paf",
    "write_sam",
]
