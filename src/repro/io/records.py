"""Alignment records ready for standard-format emission (SAM/PAF).

The aligners report :class:`~repro.core.alignment.Alignment` objects in
*candidate-region* coordinates; the mapper reports
:class:`~repro.mapping.mapper.CandidateMapping` objects that place those
regions on the reference.  This module joins the two into
:class:`AlignmentRecord` — absolute reference coordinates, an ``=``/``X``
resolved CIGAR, a primary/secondary election and a minimap2-style mapping
quality — which :mod:`repro.io.sam` and :mod:`repro.io.paf` then render.

Grouping matters: MAPQ is a property of one read's *set* of candidate
alignments (the score gap between the primary chain and the best
secondary), so records are built per read group (:func:`build_records`)
rather than per alignment.  :func:`group_by_read` batches the offline
result lists; :class:`GroupingSink` does the same for streamed results so
:meth:`repro.pipeline.StreamingPipeline.run` can write straight to a
SAM/PAF handle.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from itertools import groupby
from typing import Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.alignment import Alignment
from repro.core.cigar import Cigar, CigarOp
from repro.mapping.mapper import CandidateMapping, mapping_confidence

__all__ = [
    "MAX_MAPQ",
    "AlignmentRecord",
    "GroupingSink",
    "as_pair",
    "build_records",
    "compute_mapq",
    "group_by_read",
]

#: Cap on reported mapping quality (minimap2's ceiling).
MAX_MAPQ = 60


def compute_mapq(
    primary_score: float,
    secondary_score: float,
    identity: float = 1.0,
    *,
    anchors: int = 10,
) -> int:
    """Minimap2-style mapping quality in ``[0, MAX_MAPQ]``.

    The dominant term is the relative chain-score gap between the primary
    chain and the best secondary chain — a read whose second-best mapping
    scores nearly as well as its best is ambiguous no matter how clean the
    alignment looks.  The gap is scaled by the alignment identity and by
    an anchor-count confidence term (chains supported by fewer than 10
    anchors are down-weighted, as in minimap2's ``min(1, m/10)`` factor):

    ``mapq = 60 · (1 − s₂/s₁) · min(1, anchors/10) · identity``

    Monotone in the score gap and in identity; ``0`` when the mapping is
    fully ambiguous (``s₂ = s₁``) or the primary score is non-positive.
    """
    if primary_score <= 0:
        return 0
    secondary = min(max(secondary_score, 0.0), primary_score)
    gap = 1.0 - secondary / primary_score
    weight = min(1.0, anchors / 10.0)
    quality = MAX_MAPQ * gap * weight * max(0.0, min(1.0, identity))
    return int(max(0, min(MAX_MAPQ, math.floor(quality + 0.5))))


@dataclass(frozen=True)
class AlignmentRecord:
    """One alignment placed on the reference, ready to render.

    Coordinates are absolute and 0-based half-open (``ref_start`` /
    ``ref_end`` on ``chrom``); emitters apply their format's conventions
    (SAM's 1-based POS, PAF's BED-like columns).  ``sequence`` is the read
    in alignment orientation — for ``-`` strand mappings the reverse
    complement, exactly what SAM stores — and ``cigar`` is ``=``/``X``
    resolved and read-oriented, so it consumes ``sequence`` exactly.
    """

    read_name: str
    read_length: int
    chrom: str
    ref_start: int
    ref_end: int
    strand: str
    mapq: int
    cigar: Cigar
    sequence: str
    quality: str
    edit_distance: int
    alignment_score: int
    matches: int
    is_primary: bool
    chain_score: float

    @property
    def query_start(self) -> int:
        """0-based start of the aligned part on the *original* read."""
        lead, trail = self.cigar.leading_clip, self.cigar.trailing_clip
        return lead if self.strand == "+" else trail

    @property
    def query_end(self) -> int:
        """0-based end of the aligned part on the *original* read."""
        lead, trail = self.cigar.leading_clip, self.cigar.trailing_clip
        return self.read_length - (trail if self.strand == "+" else lead)

    @property
    def block_length(self) -> int:
        """Aligned columns (matches + mismatches + indels, clips excluded)."""
        return sum(
            length for length, op in self.cigar if op is not CigarOp.SOFT_CLIP
        )


def as_pair(item: object) -> Tuple[CandidateMapping, Alignment]:
    """Normalise a result item to a ``(candidate, alignment)`` pair.

    Accepts ``(CandidateMapping, Alignment)`` tuples and objects exposing
    ``candidate``/``alignment`` attributes (the pipeline's
    :class:`~repro.pipeline.pipeline.MappedAlignment`).  Raises
    ``ValueError`` for results without mapping provenance (bare
    ``align_pairs`` output) — without a candidate there is no reference
    placement to emit.
    """
    if isinstance(item, tuple) and len(item) == 2:
        candidate, alignment = item
    elif hasattr(item, "candidate") and hasattr(item, "alignment"):
        candidate, alignment = item.candidate, item.alignment
    else:
        raise TypeError(
            "expected a (CandidateMapping, Alignment) pair or an object with "
            f".candidate/.alignment, got {type(item).__name__}"
        )
    if candidate is None:
        raise ValueError(
            "result has no CandidateMapping (bare pair alignment?); SAM/PAF "
            "emission needs mapping provenance to place the read"
        )
    return candidate, alignment


def group_by_read(
    items: Iterable[object],
) -> Iterator[Tuple[str, List[Tuple[CandidateMapping, Alignment]]]]:
    """Batch a result stream into contiguous per-read groups.

    The mapper emits each read's candidates contiguously (and the ordered
    pipeline preserves that), so plain :func:`itertools.groupby` on the
    candidate's ``read_name`` recovers the per-read group MAPQ needs.
    """
    pairs = (as_pair(item) for item in items)
    for name, group in groupby(pairs, key=lambda pair: pair[0].read_name):
        yield name, list(group)


def _trim_terminal_deletions(cigar: Cigar) -> Tuple[Cigar, int, int]:
    """Fold deletion runs at either end into reference coordinates.

    Semi-global alignment can report a CIGAR that opens or closes with
    ``D`` runs (reference consumed before the first / after the last read
    base).  SAM/PAF consumers reject those; the spec-conforming rendering
    advances POS past a leading deletion and shortens the reference span
    by a trailing one.  Returns ``(trimmed, leading, trailing)`` deleted
    reference bases.
    """
    runs = list(cigar.runs)
    leading = 0
    trailing = 0
    while runs and runs[0][1] is CigarOp.DELETION:
        leading += runs[0][0]
        runs.pop(0)
    while runs and runs[-1][1] is CigarOp.DELETION:
        trailing += runs[-1][0]
        runs.pop()
    if not leading and not trailing:
        return cigar, 0, 0
    return Cigar(tuple(runs)), leading, trailing


def build_records(
    group: Sequence[Tuple[CandidateMapping, Alignment]],
    *,
    qualities: Optional[Mapping[str, str]] = None,
) -> List[AlignmentRecord]:
    """Build emission records for one read's candidate alignments.

    Elects the primary (:func:`repro.mapping.mapper.mapping_confidence`),
    derives the primary's MAPQ from the chain-score gap and its alignment
    identity, resolves every CIGAR against its sequences and folds
    terminal deletion runs into the reference coordinates (SAM/PAF forbid
    an alignment opening or closing on ``D``).  Secondary records carry
    MAPQ 0 (their placement is by definition not unique).  ``qualities``
    maps read names to FASTQ quality strings; strings are reversed for
    ``-`` strand records to stay parallel to the emitted sequence.
    """
    if not group:
        return []
    candidates = [candidate for candidate, _ in group]
    primary_index, primary_score, secondary_score = mapping_confidence(candidates)

    records: List[AlignmentRecord] = []
    for index, (candidate, alignment) in enumerate(group):
        resolved, lead_del, trail_del = _trim_terminal_deletions(
            alignment.resolved_cigar
        )
        ref_start, ref_end = alignment.reference_coordinates(candidate.ref_start)
        ref_start += lead_del
        ref_end -= trail_del
        is_primary = index == primary_index
        mapq = (
            compute_mapq(
                primary_score,
                secondary_score,
                alignment.identity,
                anchors=candidate.anchors,
            )
            if is_primary
            else 0
        )
        quality = (qualities or {}).get(candidate.read_name, "")
        if quality and candidate.strand == "-":
            quality = quality[::-1]
        records.append(
            AlignmentRecord(
                read_name=candidate.read_name,
                read_length=len(alignment.pattern),
                chrom=candidate.chrom,
                ref_start=ref_start,
                ref_end=ref_end,
                strand=candidate.strand,
                mapq=mapq,
                cigar=resolved,
                sequence=alignment.pattern,
                quality=quality,
                edit_distance=resolved.edit_distance,
                alignment_score=resolved.affine_score(),
                matches=resolved.matches,
                is_primary=is_primary,
                chain_score=float(candidate.chain_score),
            )
        )
    return records


class GroupingSink:
    """Stream adapter: buffer per-read groups, emit each exactly once.

    Wraps an emitter (anything with ``emit_group``) behind the pipeline's
    emit-sink seam: :meth:`write` accepts results one at a time in any of
    the shapes :func:`as_pair` takes, buffers them per read, and hands
    complete groups to the emitter.

    With ``eager=True`` (default, for in-order streams) a group is
    emitted as soon as a result for a *different* read arrives — records
    hit the output handle while the pipeline is still running.  A read
    reappearing after its group was emitted raises ``ValueError`` (the
    stream was not grouped); pass ``eager=False`` for out-of-order
    pipelines (``ordered=False``), which buffers everything until
    :meth:`finish`.
    """

    def __init__(self, emitter, *, eager: bool = True) -> None:
        self.emitter = emitter
        self.eager = eager
        self._groups: "OrderedDict[str, List[Tuple[CandidateMapping, Alignment]]]" = (
            OrderedDict()
        )
        self._emitted: set = set()
        #: Records written so far (updated as groups flush).
        self.records = 0

    def write(self, item: object) -> None:
        candidate, alignment = as_pair(item)
        name = candidate.read_name
        if name in self._emitted:
            raise ValueError(
                f"read {name!r} reappeared after its group was emitted; "
                "pass eager=False to buffer out-of-order streams"
            )
        if self.eager and self._groups and name not in self._groups:
            self.flush()
        self._groups.setdefault(name, []).append((candidate, alignment))

    def flush(self) -> None:
        """Emit every buffered group (in arrival order)."""
        for name in list(self._groups):
            group = self._groups.pop(name)
            self.emitter.emit_group(group)
            self._emitted.add(name)
            self.records += len(group)

    def finish(self) -> None:
        """Emit remaining groups; the pipeline calls this at end of stream."""
        self.flush()
