"""PAF emission (minimap2's pairwise mapping format).

Renders :class:`~repro.io.records.AlignmentRecord` values as PAF lines:
the 12 mandatory columns (query name/length/start/end, strand, target
name/length/start/end, residue matches, alignment block length, MAPQ —
all coordinates 0-based, BED-like) plus ``NM:i``/``AS:i`` tags, the
``tp:A:P``/``tp:A:S`` primary/secondary marker and the ``cg:Z`` CIGAR
tag minimap2 emits under ``-c``.

Same two front-ends as :mod:`repro.io.sam`: :func:`write_paf` offline,
:class:`PafSink` streaming through the pipeline's ``sink=`` seam.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, List, Sequence, Tuple, Union

from repro.genomics.genome import SyntheticGenome
from repro.io.records import AlignmentRecord, GroupingSink, build_records, group_by_read

__all__ = ["PafEmitter", "PafSink", "paf_record_line", "write_paf"]


def paf_record_line(record: AlignmentRecord, target_length: int) -> str:
    """One PAF line (no newline) for an emission record."""
    fields = [
        record.read_name,
        str(record.read_length),
        str(record.query_start),
        str(record.query_end),
        record.strand,
        record.chrom,
        str(target_length),
        str(record.ref_start),
        str(record.ref_end),
        str(record.matches),
        str(record.block_length),
        str(record.mapq),
        f"NM:i:{record.edit_distance}",
        f"AS:i:{record.alignment_score}",
        f"tp:A:{'P' if record.is_primary else 'S'}",
        f"cg:Z:{record.cigar}",
    ]
    return "\t".join(fields)


class PafEmitter:
    """Write PAF to an open text handle, one read group at a time.

    PAF has no header; the genome supplies target (chromosome) lengths
    for column 7.
    """

    def __init__(self, handle: IO[str], genome: SyntheticGenome) -> None:
        self.handle = handle
        self.genome = genome

    def emit_group(self, group: Sequence[Tuple]) -> List[AlignmentRecord]:
        records = build_records(group)
        for record in records:
            target_length = self.genome.chromosome_length(record.chrom)
            self.handle.write(paf_record_line(record, target_length) + "\n")
        return records


class PafSink(GroupingSink):
    """Streaming PAF sink for ``StreamingPipeline.run(reads, sink=...)``."""

    def __init__(
        self, handle: IO[str], genome: SyntheticGenome, *, eager: bool = True
    ) -> None:
        super().__init__(PafEmitter(handle, genome), eager=eager)


def write_paf(
    destination: Union[str, Path, IO[str]],
    results: Iterable[object],
    genome: SyntheticGenome,
) -> int:
    """Write an offline result list as PAF; returns the record count.

    Accepts the same result shapes as :func:`repro.io.sam.write_sam`.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            return write_paf(handle, results, genome)
    emitter = PafEmitter(destination, genome)
    count = 0
    for _, group in group_by_read(results):
        count += len(emitter.emit_group(group))
    return count
