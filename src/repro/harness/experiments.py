"""Experiment registry reproducing every result reported in the paper.

Each ``run_*_experiment`` function returns a list of row dictionaries with
at least the keys ``metric``, ``paper`` and ``measured`` so the report
generator and the benchmark suite can consume them uniformly.  See
DESIGN.md §4 for the mapping from experiment id to paper claim.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.edlib_like import EdlibLikeAligner
from repro.baselines.ksw2 import Ksw2Aligner
from repro.baselines.needleman_wunsch import needleman_wunsch
from repro.core.aligner import GenASMAligner
from repro.core.config import GenASMConfig
from repro.core.metrics import AccessCounter, MemoryFootprint
from repro.gpu.device import A6000, XEON_GOLD_5118
from repro.gpu.kernel import GenASMKernelSpec
from repro.gpu.simulator import CpuModel, GpuSimulator
from repro.harness.dataset import AlignmentWorkload, build_paper_dataset
from repro.parallel.executor import BatchExecutor

__all__ = [
    "PAPER_CLAIMS",
    "default_workload",
    "run_cpu_speed_experiment",
    "run_batched_throughput_experiment",
    "run_streaming_throughput_experiment",
    "run_short_read_throughput_experiment",
    "run_service_mixed_workload_experiment",
    "run_gpu_speed_experiment",
    "run_memory_footprint_experiment",
    "run_memory_access_experiment",
    "run_accuracy_experiment",
    "run_ablation_experiment",
]

#: The paper's reported numbers, keyed by experiment row id.
PAPER_CLAIMS: Dict[str, float] = {
    "E1a_cpu_vs_ksw2": 15.2,
    "E1b_cpu_vs_edlib": 1.7,
    "E1c_cpu_vs_baseline_genasm": 1.9,
    "E2a_gpu_vs_cpu": 4.1,
    "E2b_gpu_vs_ksw2": 62.0,
    "E2c_gpu_vs_edlib": 7.2,
    "E2d_gpu_vs_baseline_gpu": 5.9,
    "E3_footprint_reduction": 24.0,
    "E4_access_reduction": 12.0,
    "E5_accuracy": 1.0,
}


def default_workload(
    *, read_count: int = 12, read_length: int = 1_200, seed: int = 0, max_pairs: int = 16
) -> AlignmentWorkload:
    """A small but representative workload for interactive runs and benches."""
    return build_paper_dataset(
        read_count=read_count,
        read_length=read_length,
        seed=seed,
        max_pairs=max_pairs,
    )


def _time_batch(align: Callable[[str, str], object], pairs: Sequence[Tuple[str, str]]) -> float:
    """Wall-clock seconds to align all pairs with ``align``."""
    start = time.perf_counter()
    for pattern, text in pairs:
        align(pattern, text)
    return time.perf_counter() - start


# --------------------------------------------------------------------------- #
# E1 — CPU aligner comparison (measured relative throughput)
# --------------------------------------------------------------------------- #
def run_cpu_speed_experiment(
    workload: Optional[AlignmentWorkload] = None,
    *,
    config: Optional[GenASMConfig] = None,
) -> List[Dict[str, object]]:
    """E1: improved-GenASM CPU vs KSW2-like, Edlib-like and baseline GenASM.

    The measured values are relative per-pair throughput of the Python
    implementations on the same candidate pairs; the paper's values are
    relative throughput of the C/C++/CUDA implementations.  The quantity
    being compared — "how many times faster is improved GenASM" — is the
    same; absolute runtimes are not comparable and not reported as such.
    """
    workload = workload or default_workload()
    config = config or GenASMConfig()
    pairs = workload.pairs

    improved = GenASMAligner(config, name="genasm-improved")
    baseline = GenASMAligner(GenASMConfig.baseline(), name="genasm-baseline")
    edlib = EdlibLikeAligner("prefix")
    ksw2 = Ksw2Aligner(band_width=max(64, int(0.2 * max(len(p) for p, _ in pairs))))

    timings = {
        "genasm-improved": _time_batch(improved.align, pairs),
        "genasm-baseline": _time_batch(baseline.align, pairs),
        "edlib-like": _time_batch(edlib.align, pairs),
        "ksw2-like": _time_batch(ksw2.align, pairs),
    }
    improved_time = timings["genasm-improved"]

    rows = [
        {
            "id": "E1a_cpu_vs_ksw2",
            "metric": "improved GenASM (CPU) speedup over KSW2",
            "paper": PAPER_CLAIMS["E1a_cpu_vs_ksw2"],
            "measured": timings["ksw2-like"] / improved_time,
        },
        {
            "id": "E1b_cpu_vs_edlib",
            "metric": "improved GenASM (CPU) speedup over Edlib",
            "paper": PAPER_CLAIMS["E1b_cpu_vs_edlib"],
            "measured": timings["edlib-like"] / improved_time,
        },
        {
            "id": "E1c_cpu_vs_baseline_genasm",
            "metric": "improved GenASM (CPU) speedup over baseline GenASM (CPU)",
            "paper": PAPER_CLAIMS["E1c_cpu_vs_baseline_genasm"],
            "measured": timings["genasm-baseline"] / improved_time,
        },
    ]
    for row in rows:
        row["pairs"] = len(pairs)
        row["timings_seconds"] = dict(timings)
    return rows


# --------------------------------------------------------------------------- #
# E1v — batched CPU throughput: scalar vs vectorized vs multiprocess backends
# --------------------------------------------------------------------------- #
def run_batched_throughput_experiment(
    workload: Optional[AlignmentWorkload] = None,
    *,
    config: Optional[GenASMConfig] = None,
    workers: int = 2,
    include_process: bool = True,
    scheduling_lanes: int = 32,
) -> List[Dict[str, object]]:
    """E1v: batched variant of the CPU-throughput experiment.

    Runs the same candidate pairs through every
    :class:`~repro.parallel.executor.BatchExecutor` backend — the serial
    per-pair loop, the vectorized lockstep engine from :mod:`repro.batch`,
    and (optionally) a ``workers``-process pool — and reports each batched
    backend's speedup over the serial path.  The paper has no corresponding
    number (its batch layer is the 48-thread C++ harness), so ``paper`` is
    NaN; the rows instead carry an ``identical_results`` flag asserting the
    backends produced byte-identical CIGARs and edit distances, which is
    the correctness contract of the vectorized engine.

    The vectorized row also reports the wave-scheduling diagnostics: the
    lockstep efficiency of ``scheduling_lanes``-wide waves over this
    workload under the engine's sorted policy versus fifo chunking (see
    :meth:`repro.batch.BatchAlignmentEngine.scheduling_stats`).
    """
    workload = workload or default_workload()
    config = config or GenASMConfig()
    pairs = workload.pairs

    serial = BatchExecutor(backend="serial").run_alignments(pairs, config, name="serial")
    vectorized = BatchExecutor(backend="vectorized").run_alignments(
        pairs, config, name="vectorized"
    )

    def identical(batch) -> bool:
        return all(
            str(a.cigar) == str(b.cigar) and a.edit_distance == b.edit_distance
            for a, b in zip(serial.results, batch.results)
        )

    from repro.batch import BatchAlignmentEngine

    lanes = max(1, min(scheduling_lanes, len(pairs))) if pairs else 1
    sorted_stats = BatchAlignmentEngine(config, max_lanes=lanes).scheduling_stats(pairs)
    fifo_stats = BatchAlignmentEngine(
        config, max_lanes=lanes, scheduling="fifo"
    ).scheduling_stats(pairs)

    rows = [
        {
            "id": "E1v_vectorized_vs_serial",
            "metric": "vectorized batch engine speedup over serial CPU loop",
            "paper": float("nan"),
            "measured": vectorized.speedup_over(serial),
            "identical_results": identical(vectorized),
            "serial_pairs_per_second": serial.items_per_second,
            "vectorized_pairs_per_second": vectorized.items_per_second,
            "scheduling_lanes": lanes,
            "lockstep_efficiency_sorted": sorted_stats["efficiency"],
            "lockstep_efficiency_fifo": fifo_stats["efficiency"],
        }
    ]
    if include_process and workers > 1:
        process = BatchExecutor(workers=workers, backend="process").run_alignments(
            pairs, config, name="process"
        )
        rows.append(
            {
                "id": "E1v_process_vs_serial",
                "metric": f"{workers}-process pool speedup over serial CPU loop",
                "paper": float("nan"),
                "measured": process.speedup_over(serial),
                "identical_results": identical(process),
                "workers": workers,
                "process_pairs_per_second": process.items_per_second,
            }
        )
    for row in rows:
        row["pairs"] = len(pairs)
    return rows


# --------------------------------------------------------------------------- #
# E1s — streaming pipeline throughput: overlapped ingest/map/align vs the
#       offline phase-at-a-time harness
# --------------------------------------------------------------------------- #
def run_streaming_throughput_experiment(
    workload: Optional["AlignmentWorkload"] = None,
    *,
    config: Optional[GenASMConfig] = None,
    read_count: int = 32,
    read_length: int = 500,
    seed: int = 0,
    wave_size: int = 128,
    max_pending: int = 512,
    map_workers: int = 1,
    align_workers: int = 1,
    shared_workers: Optional[int] = None,
    shared_wave_size: Optional[int] = None,
) -> List[Dict[str, object]]:
    """E1s: end-to-end streaming pipeline vs the offline map-then-align path.

    Both paths run the complete §II pipeline over the same simulated reads
    — mapping included — so the comparison is end-to-end read throughput,
    not just alignment:

    * **offline serial**: materialise every candidate pair with
      :meth:`Mapper.map_reads`, then align the full list with the serial
      scalar loop (the pre-batching harness);
    * **offline vectorized**: same materialised list through the lockstep
      engine (the PR-1/PR-2 harness);
    * **streaming**: :class:`repro.pipeline.StreamingPipeline` over the
      read stream — mapping, wave accumulation and wave execution
      overlapped;
    * **shared streaming** (with ``shared_workers``): the same pipeline
      dispatching through a *pre-warmed*
      :class:`repro.parallel.shm.SharedMemoryExecutor` — mapping on worker
      processes over the shared minimizer index, waves handed off as
      shared-memory descriptors, and independent waves aligning
      concurrently.  The executor is built and warmed outside the timed
      region: the warm pool is the service-style operating mode this
      executor exists for (spawn + imports + segment hosting are paid at
      deploy time, not per batch).  The shared run streams in
      ``shared_wave_size`` waves (default: ``max_pending`` — the
      backpressure window *is* the natural zero-copy wave, since a
      descriptor handoff costs the same regardless of lane count while
      every extra wave pays a full column-loop dispatch).

    The paper has no corresponding number (its pipeline is the 48-thread
    C++ harness), so ``paper`` is NaN; rows carry an ``identical_results``
    flag asserting the streaming results are byte-identical, in order, to
    the offline alignments, plus the pipeline's per-stage timing and
    queue/wave diagnostics (:class:`repro.pipeline.PipelineStats`).

    Pass ``workload=None`` (default) to simulate ``read_count`` reads; an
    explicit workload reuses its genome and reads (its ``max_pairs`` cap is
    ignored — both paths align every candidate).
    """
    config = config or GenASMConfig()
    if workload is None:
        workload = build_paper_dataset(
            read_count=read_count, read_length=read_length, seed=seed, max_pairs=None
        )
    reads = workload.reads
    from repro.mapping.mapper import Mapper
    from repro.pipeline import StreamingPipeline

    mapper = Mapper(workload.genome, all_chains=True)
    sequences = {read.name: read.sequence for read in reads}

    # Offline: map everything, then align the materialised list.
    map_watch = time.perf_counter()
    candidates = mapper.map_reads(reads)
    pairs = [
        mapper.candidate_region_sequence(c, sequences[c.read_name])
        for c in candidates
    ]
    offline_map_seconds = time.perf_counter() - map_watch

    executor = BatchExecutor()
    serial = executor.run_alignments(pairs, config, name="offline-serial", backend="serial")
    vectorized = executor.run_alignments(
        pairs, config, name="offline-vectorized", backend="vectorized"
    )

    # Streaming: the same reads through the overlapped pipeline.
    pipeline = StreamingPipeline(
        mapper,
        config,
        wave_size=wave_size,
        max_pending=max_pending,
        map_workers=map_workers,
        align_workers=align_workers,
    )
    streamed = pipeline.run_all(reads)
    stats = pipeline.stats

    def identical(reference, mapped_results=None) -> bool:
        mapped_results = mapped_results if mapped_results is not None else streamed
        if len(mapped_results) != len(reference.results):
            return False
        return all(
            str(mapped.alignment.cigar) == str(want.cigar)
            and mapped.alignment.edit_distance == want.edit_distance
            and mapped.alignment.text_end == want.text_end
            for mapped, want in zip(mapped_results, reference.results)
        )

    reads_count = max(1, len(reads))
    offline_serial_seconds = offline_map_seconds + serial.elapsed_seconds
    offline_vectorized_seconds = offline_map_seconds + vectorized.elapsed_seconds
    streaming_rps = stats.reads_per_second
    serial_rps = reads_count / max(1e-9, offline_serial_seconds)
    vectorized_rps = reads_count / max(1e-9, offline_vectorized_seconds)

    common = {
        "paper": float("nan"),
        "reads": len(reads),
        "pairs": len(pairs),
        "streaming_reads_per_second": streaming_rps,
        "streaming_pairs_per_second": stats.pairs_per_second,
        "stage_seconds": dict(stats.stage_seconds),
        "wave_fill_efficiency": stats.wave_fill_efficiency,
        "max_pending": stats.max_pending,
        "mean_pending": stats.mean_pending,
        "waves": stats.waves,
        "pipeline_stats": stats.as_dict(),
    }
    rows = [
        {
            "id": "E1s_streaming_vs_offline_serial",
            "metric": "streaming pipeline speedup over offline map-then-serial-align",
            "measured": streaming_rps / serial_rps,
            "identical_results": identical(serial),
            "offline_serial_reads_per_second": serial_rps,
            **common,
        },
        {
            "id": "E1s_streaming_vs_offline_vectorized",
            "metric": "streaming pipeline speedup over offline map-then-vectorized-align",
            "measured": streaming_rps / vectorized_rps,
            "identical_results": identical(vectorized),
            "offline_vectorized_reads_per_second": vectorized_rps,
            **common,
        },
    ]

    if shared_workers is not None:
        from repro.parallel.shm import SharedMemoryExecutor

        with SharedMemoryExecutor(
            workers=shared_workers, config=config, mapper=mapper
        ) as shm_executor:
            shm_executor.warm()  # pool spawn + segment hosting paid up front
            shared_pipeline = StreamingPipeline(
                mapper,
                config,
                wave_size=shared_wave_size or max_pending,
                max_pending=max_pending,
                executor=shm_executor,
            )
            shared_streamed = shared_pipeline.run_all(reads)
        shared_stats = shared_pipeline.stats
        shared_rps = shared_stats.reads_per_second
        rows.append(
            {
                "id": "E1s_shared_streaming_vs_offline_vectorized",
                "metric": (
                    "shared-memory streaming pipeline speedup over offline "
                    "map-then-vectorized-align (warm pool)"
                ),
                "paper": float("nan"),
                "measured": shared_rps / vectorized_rps,
                "identical_results": identical(vectorized, shared_streamed),
                "offline_vectorized_reads_per_second": vectorized_rps,
                "reads": len(reads),
                "pairs": len(pairs),
                "shared_workers": shared_workers,
                "shared_wave_size": shared_wave_size or max_pending,
                "streaming_reads_per_second": shared_rps,
                "streaming_pairs_per_second": shared_stats.pairs_per_second,
                "stage_seconds": dict(shared_stats.stage_seconds),
                "wave_fill_efficiency": shared_stats.wave_fill_efficiency,
                "waves": shared_stats.waves,
                "pipeline_stats": shared_stats.as_dict(),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# E2s — short-read batched throughput: the multi-word vectorized engine on
#       Illumina-length (window_size > 64) configurations
# --------------------------------------------------------------------------- #
def _simulate_short_read_pairs(
    read_count: int, read_length: int, error_rate: float, seed: int
) -> List[Tuple[str, str]]:
    """Deterministic Illumina-like (read, reference-region) pairs."""
    rng = random.Random(seed)
    alphabet = "ACGT"
    pairs: List[Tuple[str, str]] = []
    for _ in range(read_count):
        pattern = "".join(rng.choice(alphabet) for _ in range(read_length))
        text = list(pattern)
        for _ in range(max(1, int(read_length * error_rate))):
            position = rng.randrange(len(text)) if text else 0
            roll = rng.random()
            if not text:
                text.insert(0, rng.choice(alphabet))
            elif roll < 0.6:
                text[position] = rng.choice(alphabet)
            elif roll < 0.8:
                text.insert(position, rng.choice(alphabet))
            else:
                del text[position]
        pairs.append((pattern, "".join(text) + "ACGTAC"))
    return pairs


def run_short_read_throughput_experiment(
    *,
    read_count: int = 160,
    read_length: int = 150,
    error_rate: float = 0.04,
    seed: int = 0,
    config: Optional[GenASMConfig] = None,
) -> List[Dict[str, object]]:
    """E2s: short-read batches through the multi-word vectorized engine.

    ``GenASMConfig.short_read`` workloads (window ≈ read length, so one
    window covers the whole read) need lanes wider than one machine word —
    a 150 bp window occupies three ``uint64`` words per lane.  Before the
    multi-word lane layout these batches silently fell back to the scalar
    per-pair aligner; this experiment measures the recovered lockstep
    speedup on a ``read_count``-lane Illumina-like batch and asserts the
    equivalence contract along the way.

    The paper has no corresponding number (its short-read runs use the
    same C++/CUDA kernels), so ``paper`` is NaN; the row carries an
    ``identical_results`` flag (byte-identical CIGARs/distances/spans vs
    the serial scalar loop) plus ``words_per_lane`` / ``vectorized``
    diagnostics proving no lane fell back.
    """
    config = config or GenASMConfig.short_read(read_length)
    pairs = _simulate_short_read_pairs(read_count, read_length, error_rate, seed)

    serial = BatchExecutor(backend="serial").run_alignments(pairs, config, name="serial")
    vectorized = BatchExecutor(backend="vectorized").run_alignments(
        pairs, config, name="vectorized"
    )

    identical = all(
        str(a.cigar) == str(b.cigar)
        and a.edit_distance == b.edit_distance
        and a.text_end == b.text_end
        for a, b in zip(serial.results, vectorized.results)
    )

    from repro.batch import BatchAlignmentEngine

    engine = BatchAlignmentEngine(config)
    return [
        {
            "id": "E2s_short_read_vectorized_vs_serial",
            "metric": (
                f"multi-word vectorized engine speedup over serial CPU loop "
                f"({read_length} bp short reads)"
            ),
            "paper": float("nan"),
            "measured": vectorized.speedup_over(serial),
            "identical_results": identical,
            "pairs": len(pairs),
            "read_length": read_length,
            "window_size": config.window_size,
            "words_per_lane": engine.words_per_lane,
            "all_lanes_vectorized": all(
                a.metadata.get("vectorized", False) for a in vectorized.results
            ),
            "serial_pairs_per_second": serial.items_per_second,
            "vectorized_pairs_per_second": vectorized.items_per_second,
            # Skip-ahead observability: walk iterations actually taken,
            # per-step iterations the match-run countdown skipped, and how
            # many runs fired (summed over every vectorized lane).
            "tb_walk_steps": sum(
                a.metadata.get("tb_walk_steps", 0) for a in vectorized.results
            ),
            "tb_walk_steps_saved": sum(
                a.metadata.get("tb_walk_steps_saved", 0) for a in vectorized.results
            ),
            "tb_match_runs": sum(
                a.metadata.get("tb_match_runs", 0) for a in vectorized.results
            ),
        }
    ]


# --------------------------------------------------------------------------- #
# E3s — alignment as a service: mixed multi-tenant workload vs per-client
#       offline runs
# --------------------------------------------------------------------------- #
def run_service_mixed_workload_experiment(
    *,
    clients: int = 4,
    pairs_per_client: int = 16,
    read_lengths: Sequence[int] = (120, 300, 500, 900),
    error_rate: float = 0.05,
    seed: int = 0,
    config: Optional[GenASMConfig] = None,
    wave_size: int = 32,
    max_inflight_per_tenant: int = 64,
    linger_seconds: Optional[float] = 0.005,
    workers: int = 1,
) -> List[Dict[str, object]]:
    """E3s: N concurrent simulated clients through the alignment service.

    Each client is a tenant with its own workload — ``pairs_per_client``
    simulated pairs at a client-specific read length (cycled from
    ``read_lengths``), so the mixed stream exercises the sorted wave
    scheduling across heterogeneous per-lane work.  The offline reference
    aligns each client's pairs independently with the vectorized backend
    (four separate ``run_alignments`` calls); the service run submits all
    clients concurrently from real threads and coalesces their pairs into
    shared waves.

    The paper has no corresponding number (its harness is single-tenant),
    so ``paper`` is NaN; the row carries ``identical_results`` (every
    client's service alignments byte-identical to its own offline run),
    per-tenant p50/p95/p99 request latency, and the wave/flush accounting
    of the shared stream.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import AlignmentService

    config = config or GenASMConfig()
    tenants = [f"tenant-{i}" for i in range(clients)]
    workloads = {
        tenant: _simulate_short_read_pairs(
            pairs_per_client,
            read_lengths[i % len(read_lengths)],
            error_rate,
            seed + i,
        )
        for i, tenant in enumerate(tenants)
    }

    offline = {}
    offline_seconds = 0.0
    for tenant in tenants:
        run = BatchExecutor(backend="vectorized").run_alignments(
            workloads[tenant], config, name=f"offline-{tenant}"
        )
        offline[tenant] = run.results
        offline_seconds += run.elapsed_seconds

    with AlignmentService(
        config,
        wave_size=wave_size,
        linger_seconds=linger_seconds,
        max_inflight_per_tenant=max_inflight_per_tenant,
        workers=workers,
    ) as service:
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            futures = {
                tenant: pool.submit(
                    lambda t: service.submit(workloads[t], tenant=t).result(), tenant
                )
                for tenant in tenants
            }
            served = {tenant: future.result() for tenant, future in futures.items()}
        service_seconds = time.perf_counter() - start
        stats = service.stats

    identical = all(
        len(served[tenant]) == len(offline[tenant])
        and all(
            str(a.cigar) == str(b.cigar)
            and a.edit_distance == b.edit_distance
            and a.text_end == b.text_end
            for a, b in zip(served[tenant], offline[tenant])
        )
        for tenant in tenants
    )

    total_pairs = sum(len(pairs) for pairs in workloads.values())
    service_pps = total_pairs / max(1e-9, service_seconds)
    offline_pps = total_pairs / max(1e-9, offline_seconds)
    return [
        {
            "id": "E3s_service_mixed_workload",
            "metric": (
                f"{clients}-client coalesced service throughput over "
                "per-client offline vectorized runs"
            ),
            "paper": float("nan"),
            "measured": service_pps / offline_pps,
            "identical_results": identical,
            "clients": clients,
            "pairs": total_pairs,
            "wave_size": wave_size,
            "service_pairs_per_second": service_pps,
            "offline_pairs_per_second": offline_pps,
            "latency": stats.latency.as_dict(),
            "flushes": dict(stats.pipeline.flushes),
            "wave_fill_efficiency": stats.pipeline.wave_fill_efficiency,
            "max_inflight": dict(stats.max_inflight),
            "service_stats": stats.as_dict(),
        }
    ]


# --------------------------------------------------------------------------- #
# E2 — GPU speedups (execution model, composed with E1 where the paper
#      compares the GPU against CPU baselines)
# --------------------------------------------------------------------------- #
def run_gpu_speed_experiment(
    workload: Optional[AlignmentWorkload] = None,
    *,
    config: Optional[GenASMConfig] = None,
    cpu_rows: Optional[List[Dict[str, object]]] = None,
) -> List[Dict[str, object]]:
    """E2: GPU speedups over the CPU implementation, KSW2, Edlib, baseline GPU.

    GPU-vs-GPU and GPU-vs-CPU(GenASM) ratios come from the execution model
    (identical functional results, roofline timing on the paper's A6000 and
    Xeon specs).  GPU-vs-KSW2 and GPU-vs-Edlib compose the modelled
    GPU-vs-CPU(GenASM) ratio with the *measured* CPU ratios from E1, since
    mixing modelled seconds with measured Python seconds directly would be
    meaningless.
    """
    workload = workload or default_workload()
    config = config or GenASMConfig()
    pairs = workload.pairs
    multiplier = workload.scale_to_paper

    improved_kernel = GenASMKernelSpec(config, name="genasm-gpu-improved")
    baseline_kernel = GenASMKernelSpec(GenASMConfig.baseline(), name="genasm-gpu-baseline")

    improved_profiles = improved_kernel.profile_batch(pairs)
    baseline_profiles = baseline_kernel.profile_batch(pairs)

    gpu = GpuSimulator(A6000)
    cpu = CpuModel(XEON_GOLD_5118)
    gpu_improved = gpu.simulate(
        pairs, improved_kernel, profiles=improved_profiles, workload_multiplier=multiplier
    )
    gpu_baseline = gpu.simulate(
        pairs, baseline_kernel, profiles=baseline_profiles, workload_multiplier=multiplier
    )
    cpu_improved = cpu.simulate(
        pairs, improved_kernel, profiles=improved_profiles, workload_multiplier=multiplier
    )

    gpu_vs_cpu = gpu_improved.speedup_over(cpu_improved)
    gpu_vs_baseline_gpu = gpu_improved.speedup_over(gpu_baseline)

    cpu_rows = cpu_rows or run_cpu_speed_experiment(workload, config=config)
    cpu_lookup = {row["id"]: float(row["measured"]) for row in cpu_rows}

    rows = [
        {
            "id": "E2a_gpu_vs_cpu",
            "metric": "improved GenASM (GPU) speedup over improved GenASM (CPU)",
            "paper": PAPER_CLAIMS["E2a_gpu_vs_cpu"],
            "measured": gpu_vs_cpu,
        },
        {
            "id": "E2b_gpu_vs_ksw2",
            "metric": "improved GenASM (GPU) speedup over KSW2 (CPU)",
            "paper": PAPER_CLAIMS["E2b_gpu_vs_ksw2"],
            "measured": gpu_vs_cpu * cpu_lookup["E1a_cpu_vs_ksw2"],
        },
        {
            "id": "E2c_gpu_vs_edlib",
            "metric": "improved GenASM (GPU) speedup over Edlib (CPU)",
            "paper": PAPER_CLAIMS["E2c_gpu_vs_edlib"],
            "measured": gpu_vs_cpu * cpu_lookup["E1b_cpu_vs_edlib"],
        },
        {
            "id": "E2d_gpu_vs_baseline_gpu",
            "metric": "improved GenASM (GPU) speedup over baseline GenASM (GPU)",
            "paper": PAPER_CLAIMS["E2d_gpu_vs_baseline_gpu"],
            "measured": gpu_vs_baseline_gpu,
        },
    ]
    details = {
        "gpu_improved": gpu_improved.summary(),
        "gpu_baseline": gpu_baseline.summary(),
        "cpu_improved": cpu_improved.summary(),
        "baseline_dp_in_shared": gpu_baseline.dp_in_shared,
        "improved_dp_in_shared": gpu_improved.dp_in_shared,
    }
    for row in rows:
        row["pairs"] = len(pairs)
        row["details"] = details
    return rows


# --------------------------------------------------------------------------- #
# E3 — memory footprint reduction
# --------------------------------------------------------------------------- #
def run_memory_footprint_experiment(
    workload: Optional[AlignmentWorkload] = None,
    *,
    config: Optional[GenASMConfig] = None,
) -> List[Dict[str, object]]:
    """E3: per-window DP footprint of baseline vs. improved GenASM.

    Reports both the analytic model (with the average number of DP rows the
    improved algorithm actually evaluated on the workload) and the measured
    peak per-window stored bytes of the two implementations.
    """
    workload = workload or default_workload(max_pairs=8)
    config = config or GenASMConfig()
    pairs = workload.pairs

    improved = GenASMAligner(config, name="genasm-improved")
    baseline = GenASMAligner(GenASMConfig.baseline(), name="genasm-baseline")

    improved_peaks: List[float] = []
    baseline_peaks: List[float] = []
    rows_used: List[float] = []
    for pattern, text in pairs:
        a_imp = improved.align(pattern, text)
        a_base = baseline.align(pattern, text)
        improved_peaks.append(a_imp.metadata["peak_window_bytes"])
        baseline_peaks.append(a_base.metadata["peak_window_bytes"])
        rows_used.append(a_imp.metadata["rows_computed"] / max(1, a_imp.metadata["windows"]))

    avg_rows = sum(rows_used) / max(1, len(rows_used))
    model = MemoryFootprint.from_config(config, rows_used=int(round(avg_rows)))
    measured_reduction = (sum(baseline_peaks) / len(baseline_peaks)) / max(
        1.0, sum(improved_peaks) / len(improved_peaks)
    )

    return [
        {
            "id": "E3_footprint_reduction",
            "metric": "DP-table memory-footprint reduction (baseline / improved)",
            "paper": PAPER_CLAIMS["E3_footprint_reduction"],
            "measured": measured_reduction,
            "model_reduction": model.reduction_factor,
            "baseline_bytes_per_window": model.baseline_bytes,
            "improved_bytes_per_window": model.improved_bytes,
            "avg_rows_used": avg_rows,
            "pairs": len(pairs),
        }
    ]


# --------------------------------------------------------------------------- #
# E4 — memory access reduction
# --------------------------------------------------------------------------- #
def run_memory_access_experiment(
    workload: Optional[AlignmentWorkload] = None,
    *,
    config: Optional[GenASMConfig] = None,
) -> List[Dict[str, object]]:
    """E4: DP-table accesses (and bytes) of baseline vs. improved GenASM."""
    workload = workload or default_workload(max_pairs=8)
    config = config or GenASMConfig()
    pairs = workload.pairs

    improved = GenASMAligner(config, name="genasm-improved")
    baseline = GenASMAligner(GenASMConfig.baseline(), name="genasm-baseline")

    improved_counter = AccessCounter()
    baseline_counter = AccessCounter()
    for pattern, text in pairs:
        improved.align(pattern, text, counter=improved_counter)
        baseline.align(pattern, text, counter=baseline_counter)

    access_reduction = baseline_counter.total_accesses / max(1, improved_counter.total_accesses)
    byte_reduction = baseline_counter.total_bytes / max(1, improved_counter.total_bytes)
    return [
        {
            "id": "E4_access_reduction",
            "metric": "DP-table memory-access reduction (baseline / improved)",
            "paper": PAPER_CLAIMS["E4_access_reduction"],
            "measured": byte_reduction,
            "access_count_reduction": access_reduction,
            "baseline_accesses": baseline_counter.total_accesses,
            "improved_accesses": improved_counter.total_accesses,
            "baseline_bytes": baseline_counter.total_bytes,
            "improved_bytes": improved_counter.total_bytes,
            "pairs": len(pairs),
        }
    ]


# --------------------------------------------------------------------------- #
# E5 — accuracy / equivalence
# --------------------------------------------------------------------------- #
def run_accuracy_experiment(
    workload: Optional[AlignmentWorkload] = None,
    *,
    config: Optional[GenASMConfig] = None,
    oracle_limit: int = 2_000,
) -> List[Dict[str, object]]:
    """E5: improved GenASM ≡ baseline GenASM, and both match the DP optimum.

    Pairs whose pattern is short enough (``oracle_limit``) are also checked
    against the full Needleman–Wunsch optimum; the fraction of pairs where
    the windowed heuristic attains the optimum is reported.
    """
    workload = workload or default_workload(max_pairs=8)
    config = config or GenASMConfig()
    pairs = workload.pairs

    improved = GenASMAligner(config, name="genasm-improved")
    baseline = GenASMAligner(GenASMConfig.baseline(), name="genasm-baseline")
    edlib = EdlibLikeAligner("prefix")

    identical = 0
    optimal = 0
    oracle_checked = 0
    for pattern, text in pairs:
        a_imp = improved.align(pattern, text)
        a_base = baseline.align(pattern, text)
        a_imp.validate()
        a_base.validate()
        if a_imp.edit_distance == a_base.edit_distance:
            identical += 1
        if len(pattern) <= oracle_limit:
            oracle_checked += 1
            optimum = edlib.align(pattern, text).edit_distance
            if a_imp.edit_distance == optimum:
                optimal += 1

    return [
        {
            "id": "E5_accuracy",
            "metric": "fraction of pairs where improved ≡ baseline GenASM",
            "paper": PAPER_CLAIMS["E5_accuracy"],
            "measured": identical / max(1, len(pairs)),
            "optimal_fraction": optimal / max(1, oracle_checked),
            "oracle_checked": oracle_checked,
            "pairs": len(pairs),
        }
    ]


# --------------------------------------------------------------------------- #
# A1 — per-improvement ablation
# --------------------------------------------------------------------------- #
def run_ablation_experiment(
    workload: Optional[AlignmentWorkload] = None,
    *,
    config: Optional[GenASMConfig] = None,
) -> List[Dict[str, object]]:
    """A1: contribution of each of the three improvements in isolation."""
    workload = workload or default_workload(max_pairs=6)
    base_config = config or GenASMConfig()
    pairs = workload.pairs

    variants = {
        "baseline": GenASMConfig.baseline(),
        "entry_compression_only": GenASMConfig.baseline().with_improvements(entry_compression=True),
        "early_termination_only": GenASMConfig.baseline().with_improvements(early_termination=True),
        "traceback_band_only": GenASMConfig.baseline().with_improvements(traceback_band=True),
        "all_improvements": base_config,
    }

    baseline_counter = AccessCounter()
    baseline_aligner = GenASMAligner(variants["baseline"])
    baseline_peak = 0.0
    baseline_seconds = _time_batch(
        lambda p, t: baseline_aligner.align(p, t, counter=baseline_counter), pairs
    )
    for pattern, text in pairs[:2]:
        baseline_peak = max(
            baseline_peak, baseline_aligner.align(pattern, text).metadata["peak_window_bytes"]
        )

    rows: List[Dict[str, object]] = []
    for name, variant in variants.items():
        counter = AccessCounter()
        aligner = GenASMAligner(variant, name=name)
        seconds = _time_batch(lambda p, t: aligner.align(p, t, counter=counter), pairs)
        peak = max(
            aligner.align(pattern, text).metadata["peak_window_bytes"]
            for pattern, text in pairs[:2]
        )
        rows.append(
            {
                "id": f"A1_{name}",
                "metric": f"ablation: {name}",
                "paper": float("nan"),
                "measured": baseline_counter.total_bytes / max(1, counter.total_bytes),
                "access_reduction": baseline_counter.total_accesses / max(1, counter.total_accesses),
                "footprint_reduction": baseline_peak / max(1.0, peak),
                "speedup_vs_baseline": baseline_seconds / max(1e-9, seconds),
                "pairs": len(pairs),
            }
        )
    return rows
