"""Construction of the paper's evaluation workload (scaled).

The paper's pipeline (§II): simulate 500 × 10 kb PacBio reads from the
human genome with PBSIM2, map them with minimap2 ``-P`` to obtain 138,929
candidate locations, and align every candidate (read, reference) pair with
every aligner.  :func:`build_paper_dataset` reproduces that pipeline with
the synthetic substrates at a configurable scale: pure-Python aligners
cannot chew through 1.4 billion aligned bases in a benchmark run, so the
default scale uses fewer/shorter reads while keeping every pipeline stage
(repeat-bearing genome → error-modelled long reads → all-chains mapping →
candidate regions) intact.  Speedup ratios are per-pair and therefore
insensitive to this scaling; the workload object records the scale so
reports can state it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.genomics.errors import ErrorModel
from repro.genomics.genome import SyntheticGenome
from repro.genomics.read_simulator import PacBioSimulator, SimulatedRead
from repro.mapping.mapper import CandidateMapping, Mapper

__all__ = ["AlignmentWorkload", "build_paper_dataset"]

#: Number of candidate pairs in the paper's full-scale dataset.
PAPER_CANDIDATE_PAIRS = 138_929
#: Number and length of reads in the paper's full-scale dataset.
PAPER_READ_COUNT = 500
PAPER_READ_LENGTH = 10_000


@dataclass
class AlignmentWorkload:
    """A set of candidate (pattern, text) pairs plus their provenance."""

    genome: SyntheticGenome
    reads: List[SimulatedRead]
    candidates: List[CandidateMapping]
    pairs: List[Tuple[str, str]]
    read_by_name: Dict[str, SimulatedRead] = field(default_factory=dict)

    @property
    def pair_count(self) -> int:
        return len(self.pairs)

    @property
    def total_pattern_bases(self) -> int:
        return sum(len(p) for p, _ in self.pairs)

    @property
    def scale_to_paper(self) -> float:
        """Multiplier from this workload to the paper's 138,929-pair dataset.

        Scales by aligned pattern bases (the per-pair cost driver), so the
        execution-model experiments can extrapolate honestly.
        """
        full = PAPER_CANDIDATE_PAIRS * PAPER_READ_LENGTH
        here = max(1, self.total_pattern_bases)
        return full / here

    def summary(self) -> Dict[str, float]:
        return {
            "reads": len(self.reads),
            "candidates": len(self.candidates),
            "pairs": self.pair_count,
            "pattern_bases": self.total_pattern_bases,
            "scale_to_paper": self.scale_to_paper,
        }


def build_paper_dataset(
    *,
    read_count: int = 24,
    read_length: int = 1_500,
    genome_length: int = 150_000,
    seed: int = 0,
    error_model: Optional[ErrorModel] = None,
    repeat_fraction: float = 0.08,
    max_pairs: Optional[int] = None,
) -> AlignmentWorkload:
    """Run the full §II pipeline at the requested scale.

    Parameters mirror the paper's setup scaled down: PacBio-error long
    reads simulated from a repeat-bearing genome, mapped with the
    all-chains minimizer mapper, each chain yielding one candidate pair.
    """
    genome = SyntheticGenome.random(
        {"chr1": genome_length, "chr2": max(20_000, genome_length // 2)},
        seed=seed,
        repeat_fraction=repeat_fraction,
        repeat_length=max(500, read_length),
    )
    simulator = PacBioSimulator(
        mean_length=read_length,
        std_length=max(50, read_length // 5),
        error_model=error_model or ErrorModel.pacbio_clr(),
        seed=seed + 1,
    )
    reads = simulator.simulate(genome, read_count)
    mapper = Mapper(genome, all_chains=True)

    candidates: List[CandidateMapping] = []
    pairs: List[Tuple[str, str]] = []
    read_by_name = {read.name: read for read in reads}
    for read in reads:
        for candidate in mapper.map_read(read):
            pattern, text = mapper.candidate_region_sequence(candidate, read.sequence)
            if not pattern or not text:
                continue
            candidates.append(candidate)
            pairs.append((pattern, text))
            if max_pairs is not None and len(pairs) >= max_pairs:
                return AlignmentWorkload(genome, reads, candidates, pairs, read_by_name)
    return AlignmentWorkload(genome, reads, candidates, pairs, read_by_name)
