"""Report generation: tables and EXPERIMENTS.md.

``python -m repro.harness.report`` regenerates the paper-vs-measured table
for every experiment at a configurable workload scale and writes it to
``EXPERIMENTS.md`` (or prints it).
"""

from __future__ import annotations

import argparse
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.harness.dataset import build_paper_dataset
from repro.harness.experiments import (
    run_ablation_experiment,
    run_accuracy_experiment,
    run_cpu_speed_experiment,
    run_gpu_speed_experiment,
    run_memory_access_experiment,
    run_memory_footprint_experiment,
)

__all__ = ["format_table", "generate_experiments_markdown", "main"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "—"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    header = "| " + " | ".join(columns) + " |"
    divider = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, divider]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(row.get(col, "")) for col in columns) + " |")
    return "\n".join(lines)


def generate_experiments_markdown(
    *,
    read_count: int = 12,
    read_length: int = 1_200,
    max_pairs: int = 14,
    seed: int = 0,
) -> str:
    """Run every experiment and return the EXPERIMENTS.md content."""
    workload = build_paper_dataset(
        read_count=read_count, read_length=read_length, seed=seed, max_pairs=max_pairs
    )
    summary = workload.summary()

    cpu_rows = run_cpu_speed_experiment(workload)
    gpu_rows = run_gpu_speed_experiment(workload, cpu_rows=cpu_rows)
    footprint_rows = run_memory_footprint_experiment(workload)
    access_rows = run_memory_access_experiment(workload)
    accuracy_rows = run_accuracy_experiment(workload)
    ablation_rows = run_ablation_experiment(workload)

    main_rows = cpu_rows + gpu_rows + footprint_rows + access_rows + accuracy_rows
    for row in main_rows:
        paper = float(row["paper"])
        measured = float(row["measured"])
        row["measured/paper"] = measured / paper if paper else float("nan")

    parts: List[str] = []
    parts.append("# EXPERIMENTS — paper vs. measured\n")
    parts.append(
        "Regenerate with `python -m repro.harness.report --write` "
        "(see DESIGN.md §4 for the experiment index).\n"
    )
    parts.append("## Workload\n")
    parts.append(
        format_table(
            [
                {"property": key, "value": value}
                for key, value in summary.items()
            ],
            ["property", "value"],
        )
    )
    parts.append(
        "\nThe paper's full-scale dataset is 500 × 10 kb PacBio reads / 138,929 "
        "candidate pairs; the workload above is the scaled-down equivalent "
        "produced by the same pipeline (see `repro.harness.dataset`). Speedup "
        "and reduction factors are per-pair ratios and therefore comparable; "
        "absolute runtimes are not (pure Python vs. the paper's C++/CUDA).\n"
    )
    parts.append("## Headline results (E1–E5)\n")
    parts.append(
        format_table(main_rows, ["id", "metric", "paper", "measured", "measured/paper"])
    )
    parts.append("\n### Notes\n")
    parts.append(
        "- E1 values are measured relative throughput of the pure-Python "
        "aligners on the same candidate pairs.\n"
        "- E2 values come from the execution model (A6000 / Xeon Gold 5118 "
        "roofline, functional results identical to the CPU library); "
        "GPU-vs-KSW2 and GPU-vs-Edlib compose the modelled GPU-vs-CPU ratio "
        "with the measured E1 ratios.\n"
        "- E3/E4 are algorithmic properties measured exactly (bytes touched "
        "and DP-table accesses); their magnitude depends on the window "
        "configuration and the per-window error rate, as discussed in "
        "DESIGN.md.\n"
        "- E5 checks that the improved algorithm returns the same distances "
        "as the baseline and how often the windowed heuristic attains the "
        "full-DP optimum.\n"
    )
    parts.append("### Known reproduction limitations\n")
    parts.append(
        "- **E1b (GenASM vs. Edlib wall-clock) does not reproduce in pure "
        "Python.** CPython charges per-loop-iteration overhead; Edlib's "
        "inner loop advances a whole DP column with one big-integer "
        "expression, whereas GenASM iterates per (error level × text "
        "position) and pays that overhead ~d* times per character even "
        "though it performs several times fewer 64-bit word operations. A "
        "compiled or NumPy-batched (multiple alignments per vector lane) "
        "implementation recovers the paper's relation, as the E2 execution "
        "model — which counts word operations — shows.\n"
        "- **E3's absolute factor depends on the error budget k relative to "
        "the realised per-window distance.** The paper's 24x corresponds to "
        "a generous k with low realised error; the default configuration "
        "here uses k = ceil(0.15 * W) = 10, giving a smaller (but still "
        "order-of-magnitude) factor. "
        "`benchmarks/test_bench_memory_footprint.py` sweeps k and shows the "
        "factor growing toward the paper's value for larger budgets.\n"
        "- **E2 timings are model-derived**, not measured on a GPU; the "
        "mechanism (baseline spills its DP state to global memory and is "
        "bandwidth-bound, improved fits in shared memory and is "
        "compute-bound) is what the model reproduces.\n"
    )
    parts.append("## Ablation (A1): contribution of each improvement\n")
    parts.append(
        format_table(
            ablation_rows,
            [
                "id",
                "measured",
                "access_reduction",
                "footprint_reduction",
                "speedup_vs_baseline",
            ],
        )
    )
    parts.append(
        "\n(`measured` = DP-byte-traffic reduction vs. baseline; window "
        "parameter sensitivity is covered by `benchmarks/test_bench_window_params.py`.)\n"
    )
    return "\n".join(parts) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point for regenerating EXPERIMENTS.md."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true", help="write EXPERIMENTS.md")
    parser.add_argument("--output", default="EXPERIMENTS.md", help="output path")
    parser.add_argument("--reads", type=int, default=12, help="number of simulated reads")
    parser.add_argument("--read-length", type=int, default=1200, help="mean read length")
    parser.add_argument("--max-pairs", type=int, default=14, help="candidate pair cap")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    args = parser.parse_args(argv)

    content = generate_experiments_markdown(
        read_count=args.reads,
        read_length=args.read_length,
        max_pairs=args.max_pairs,
        seed=args.seed,
    )
    if args.write:
        Path(args.output).write_text(content, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(content)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
