"""Declarative experiment-grid runner with a persistent perf trajectory.

The E-series experiments were, until this module, hand-rolled one-off
scripts: each smoke picked its own workload, backend and wave size, timed
one configuration and printed numbers.  ``repro.harness.grid`` turns that
into *declared* sweeps (py_experimenter-style: the experiment is a config,
not a script):

* :class:`ExperimentGrid` — the declarative spec: named workloads
  (:func:`~repro.harness.dataset.build_paper_dataset` parameters) crossed
  with execution backends, GenASM window sizes and wave sizes.  Build one
  in code or from a plain dict/JSON via :meth:`ExperimentGrid.from_dict`.
* :class:`GridRunner` — executes every cell of the grid, checks each
  cell's alignments against the vectorized reference path (the registry's
  equivalence contract — a fast cell that returns different CIGARs is a
  bug, not a win), and appends one provenance-stamped row per cell
  (date, git SHA, config fingerprint) to a ``BENCH_*.json`` trajectory
  through :class:`repro.telemetry.bench.BenchRecorder`.
* the **gate** — a grid may declare a throughput ratio between two of its
  cells (e.g. streaming vs serial on the same workload); :meth:`GridRunner.check`
  evaluates it against the ``grid`` section's regression floor in the
  bench file (:meth:`BenchRecorder.check_ratio` with ``section=``), which
  is what the ``e4_grid`` CI smoke fails on.

Example::

    grid = ExperimentGrid.from_dict({
        "name": "e4_smoke",
        "workloads": {"long_read": {"read_count": 12, "read_length": 600}},
        "backends": ["serial", "vectorized", "streaming"],
        "window_sizes": [64],
        "wave_sizes": [128],
        "gate": {
            "metric": "pairs_per_second",
            "cell": {"backend": "vectorized"},
            "reference_cell": {"backend": "serial"},
        },
    })
    rows = GridRunner(grid, "BENCH_pipeline.json").run()
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig
from repro.harness.dataset import AlignmentWorkload, build_paper_dataset
from repro.telemetry.bench import BenchRecorder

__all__ = ["ExperimentGrid", "GridRunner", "GridCell"]

#: Axis names, in the (deterministic) order cells are enumerated.
GRID_AXES = ("workload", "backend", "window_size", "wave_size")

_SPEC_KEYS = {
    "name",
    "workloads",
    "backends",
    "window_sizes",
    "wave_sizes",
    "history_key",
    "section",
    "gate",
}


@dataclass(frozen=True)
class GridCell:
    """One point of the sweep: workload × backend × window × wave size."""

    workload: str
    backend: str
    window_size: int
    wave_size: int

    def matches(self, selector: Mapping[str, object]) -> bool:
        """Whether this cell matches a (partial) axis-value selector."""
        return all(getattr(self, axis) == value for axis, value in selector.items())


@dataclass
class ExperimentGrid:
    """A declared experiment sweep (the config half of the runner).

    Attributes
    ----------
    name:
        Grid identifier, recorded in every row.
    workloads:
        ``{workload_name: build_paper_dataset kwargs}`` — each named
        workload is built once and shared by all its cells.
    backends:
        Execution backends to sweep (``serial``/``vectorized``/
        ``streaming``/... — any :mod:`repro.execution` registry name).
        ``wave_size`` reaches the vectorized engine as ``max_lanes`` and
        the streaming pipeline as its accumulator wave size; backends
        without a wave concept (``serial``, ``process``) record the axis
        value but execute identically across it.
    window_sizes:
        GenASM ``window_size`` values; each derives a config via
        :meth:`config_for` (overlap clamped below the window).
    wave_sizes:
        Lanes per dispatched wave.
    history_key:
        Bench-file history the rows append to (must end in ``history``).
    section:
        Bench-file section holding this grid's gate config
        (``regression_threshold`` + ``baseline.ratio``).
    gate:
        Optional declared regression gate:
        ``{"metric": <row field>, "cell": <selector>, "reference_cell":
        <selector>}``.  The gate ratio is ``metric(cell) /
        metric(reference_cell)``; selectors are partial axis dicts that
        must match exactly one cell each.
    """

    name: str
    workloads: Dict[str, Dict[str, object]]
    backends: Sequence[str] = ("vectorized",)
    window_sizes: Sequence[int] = (64,)
    wave_sizes: Sequence[int] = (128,)
    history_key: str = "grid_history"
    section: str = "grid"
    gate: Optional[Dict[str, object]] = None
    base_config: GenASMConfig = field(default_factory=GenASMConfig)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("grid needs at least one workload")
        if not self.history_key.endswith("history"):
            raise ValueError(
                f"history_key must end in 'history', got {self.history_key!r}"
            )
        if self.gate is not None:
            missing = {"metric", "cell", "reference_cell"} - set(self.gate)
            if missing:
                raise ValueError(f"gate spec is missing {sorted(missing)}")

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "ExperimentGrid":
        """Build a grid from a plain (JSON-friendly) mapping."""
        unknown = set(spec) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown grid spec keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_SPEC_KEYS)}"
            )
        if "name" not in spec or "workloads" not in spec:
            raise ValueError("grid spec needs 'name' and 'workloads'")
        kwargs = dict(spec)
        kwargs["workloads"] = {
            str(name): dict(params) for name, params in dict(spec["workloads"]).items()
        }
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    def cells(self) -> List[GridCell]:
        """Every cell of the sweep, in deterministic axis order."""
        return [
            GridCell(workload, backend, int(window), int(wave))
            for workload, backend, window, wave in product(
                self.workloads, self.backends, self.window_sizes, self.wave_sizes
            )
        ]

    def config_for(self, window_size: int) -> GenASMConfig:
        """The GenASM config of one window-size axis value."""
        from dataclasses import replace

        overlap = min(self.base_config.window_overlap, max(0, window_size - 1))
        return replace(self.base_config, window_size=window_size, window_overlap=overlap)

    def select_cell(self, selector: Mapping[str, object]) -> GridCell:
        """The unique cell matching a partial selector (gate resolution)."""
        bad_axes = set(selector) - set(GRID_AXES)
        if bad_axes:
            raise ValueError(f"unknown grid axes in selector: {sorted(bad_axes)}")
        matches = [cell for cell in self.cells() if cell.matches(selector)]
        if len(matches) != 1:
            raise ValueError(
                f"selector {dict(selector)!r} matches {len(matches)} cells; "
                "gate selectors must match exactly one"
            )
        return matches[0]


def _same_alignments(got: Sequence[Alignment], want: Sequence[Alignment]) -> bool:
    """The registry's equivalence contract, as the smokes check it."""
    if len(got) != len(want):
        return False
    return all(
        str(a.cigar) == str(b.cigar)
        and a.edit_distance == b.edit_distance
        and a.text_end == b.text_end
        for a, b in zip(got, want)
    )


class GridRunner:
    """Execute an :class:`ExperimentGrid` and persist its trajectory.

    ``recorder`` may be a :class:`~repro.telemetry.bench.BenchRecorder`
    or a bench-file path.  Workloads and per-(workload, window) reference
    alignments are cached across cells, so the sweep pays mapping and the
    reference run once per combination, not once per cell.
    """

    def __init__(
        self,
        grid: ExperimentGrid,
        recorder: Union[BenchRecorder, str, Path],
    ) -> None:
        self.grid = grid
        self.recorder = (
            recorder
            if isinstance(recorder, BenchRecorder)
            else BenchRecorder(recorder)
        )
        self._workloads: Dict[str, AlignmentWorkload] = {}
        self._references: Dict[Tuple[str, int], List[Alignment]] = {}

    # ------------------------------------------------------------------ #
    def _workload(self, name: str) -> AlignmentWorkload:
        if name not in self._workloads:
            self._workloads[name] = build_paper_dataset(**self.grid.workloads[name])
        return self._workloads[name]

    def _reference(self, cell: GridCell, config: GenASMConfig) -> List[Alignment]:
        """Vectorized-path alignments for equivalence checking."""
        key = (cell.workload, cell.window_size)
        if key not in self._references:
            from repro.batch.engine import BatchAlignmentEngine

            engine = BatchAlignmentEngine(config, name=f"{self.grid.name}-reference")
            self._references[key] = engine.align_pairs(self._workload(cell.workload).pairs)
        return self._references[key]

    def _run_cell(
        self, cell: GridCell, config: GenASMConfig
    ) -> Tuple[List[Alignment], float]:
        """Align the cell's workload through its backend; returns (alignments, seconds)."""
        pairs = self._workload(cell.workload).pairs
        if cell.backend == "streaming":
            from repro.pipeline import StreamingPipeline

            pipeline = StreamingPipeline(
                config=config, wave_size=cell.wave_size, name=f"{self.grid.name}-grid"
            )
            start = time.perf_counter()
            alignments = pipeline.align_pairs(pairs)
            return alignments, time.perf_counter() - start
        if cell.backend == "vectorized":
            from repro.batch.engine import BatchAlignmentEngine

            engine = BatchAlignmentEngine(
                config, max_lanes=cell.wave_size, name=f"{self.grid.name}-grid"
            )
            start = time.perf_counter()
            alignments = engine.align_pairs(pairs)
            return alignments, time.perf_counter() - start
        from repro.execution import get_backend

        impl = get_backend(cell.backend)
        start = time.perf_counter()
        alignments = impl.align_pairs(pairs, config)
        return alignments, time.perf_counter() - start

    # ------------------------------------------------------------------ #
    def run(self, *, append: bool = True, save: bool = True) -> List[Dict[str, object]]:
        """Run every cell; returns one row dict per cell (axis order).

        Each row carries the cell's axis values, pair count, wall seconds,
        ``pairs_per_second``, mean alignment identity and the
        ``identical`` equivalence flag against the vectorized reference.
        With ``append`` (default) rows are also written to the grid's
        history through the recorder, provenance-stamped; ``save``
        persists the bench file afterwards.
        """
        rows: List[Dict[str, object]] = []
        for cell in self.grid.cells():
            config = self.grid.config_for(cell.window_size)
            alignments, seconds = self._run_cell(cell, config)
            reference = self._reference(cell, config)
            pairs = len(alignments)
            identity = (
                sum(a.identity for a in alignments) / pairs if pairs else 1.0
            )
            row: Dict[str, object] = {
                "grid": self.grid.name,
                "workload": cell.workload,
                "backend": cell.backend,
                "window_size": cell.window_size,
                "wave_size": cell.wave_size,
                "pairs": pairs,
                "seconds": round(seconds, 4),
                "pairs_per_second": round(pairs / max(1e-9, seconds), 2),
                "mean_identity": round(identity, 4),
                "identical": _same_alignments(alignments, reference),
            }
            if append:
                self.recorder.append(self.grid.history_key, row, config=config)
            rows.append(row)
        if save and append:
            self.recorder.save()
        return rows

    def check(self, rows: Sequence[Mapping[str, object]]) -> Dict[str, object]:
        """Evaluate the grid's declared gate over a :meth:`run` result.

        Returns the :meth:`BenchRecorder.check_ratio` verdict augmented
        with the gate's cells and metric values; ``{"ok": True}`` -shaped
        when the grid declares no gate.  Also fails (``ok=False``) when
        any cell's alignments were not identical to the reference —
        equivalence is part of the gate, not just a row field.
        """
        broken = [row for row in rows if not row.get("identical", False)]
        if self.grid.gate is None:
            return {"ok": not broken, "gate": None, "non_identical": len(broken)}
        metric = str(self.grid.gate["metric"])
        cell = self.grid.select_cell(self.grid.gate["cell"])
        reference = self.grid.select_cell(self.grid.gate["reference_cell"])

        def metric_of(target: GridCell) -> float:
            for row in rows:
                if all(row.get(axis) == getattr(target, axis) for axis in GRID_AXES):
                    value = row.get(metric)
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        raise ValueError(
                            f"gate metric {metric!r} is not numeric in row for {target}"
                        )
                    return float(value)
            raise ValueError(f"no row for gate cell {target}")

        numerator = metric_of(cell)
        denominator = metric_of(reference)
        ratio = numerator / max(1e-9, denominator)
        verdict = self.recorder.check_ratio(ratio, section=self.grid.section)
        verdict.update(
            {
                "ok": bool(verdict["ok"]) and not broken,
                "gate": {
                    "metric": metric,
                    "cell": dict(self.grid.gate["cell"]),
                    "reference_cell": dict(self.grid.gate["reference_cell"]),
                    "value": numerator,
                    "reference_value": denominator,
                },
                "non_identical": len(broken),
            }
        )
        return verdict
