"""Experiment harness: dataset construction, experiments E1–E5, reporting."""

from repro.harness.dataset import AlignmentWorkload, build_paper_dataset
from repro.harness.experiments import (
    PAPER_CLAIMS,
    run_accuracy_experiment,
    run_ablation_experiment,
    run_batched_throughput_experiment,
    run_cpu_speed_experiment,
    run_gpu_speed_experiment,
    run_memory_access_experiment,
    run_memory_footprint_experiment,
    run_service_mixed_workload_experiment,
    run_short_read_throughput_experiment,
    run_streaming_throughput_experiment,
)
from repro.harness.grid import ExperimentGrid, GridCell, GridRunner
from repro.harness.report import format_table, generate_experiments_markdown

__all__ = [
    "AlignmentWorkload",
    "build_paper_dataset",
    "ExperimentGrid",
    "GridCell",
    "GridRunner",
    "PAPER_CLAIMS",
    "run_cpu_speed_experiment",
    "run_batched_throughput_experiment",
    "run_streaming_throughput_experiment",
    "run_short_read_throughput_experiment",
    "run_service_mixed_workload_experiment",
    "run_gpu_speed_experiment",
    "run_memory_footprint_experiment",
    "run_memory_access_experiment",
    "run_accuracy_experiment",
    "run_ablation_experiment",
    "format_table",
    "generate_experiments_markdown",
]
