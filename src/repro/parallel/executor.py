"""Chunked batch execution of alignment workloads.

The paper's CPU evaluation runs every aligner over the full candidate-pair
set with 48 threads.  :class:`BatchExecutor` provides the equivalent batch
layer for this library.  It supports three backends:

``serial``
    A plain Python loop (the default, and the mode used by the automated
    benchmarks to keep them deterministic).
``process``
    A spawn-context :mod:`multiprocessing` pool over ``workers`` processes.
    Everything shipped to the pool is a module-level callable (or a
    :func:`functools.partial` over one), so it pickles under the spawn
    start method — the historical lambda-based implementation crashed with
    ``workers > 1``.
``vectorized``
    The NumPy structure-of-arrays engine from :mod:`repro.batch`, which
    evaluates many window pairs in lockstep and produces byte-identical
    alignments to the serial path.  Only :meth:`BatchExecutor.run_alignments`
    uses it (arbitrary callables cannot be vectorized).

``run``/``run_pairs`` execute arbitrary callables (serially or with the
pool); :meth:`run_alignments` is the GenASM-specific entry point, and it
dispatches through the :mod:`repro.execution` backend registry — so the
``shared`` (zero-copy shared-memory pool) and ``streaming`` (wave
pipeline) backends, and anything registered later (``gpu``), are reachable
from here without this module knowing about them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig

__all__ = [
    "Stopwatch",
    "BatchResult",
    "BatchExecutor",
    "chunk_items",
    "BACKENDS",
]

T = TypeVar("T")
R = TypeVar("R")

#: Backends accepted by :class:`BatchExecutor` (the execution registry's
#: built-ins; see :func:`repro.execution.available_backends` for the live
#: set including late registrations).
BACKENDS = ("serial", "process", "vectorized", "shared", "streaming")


class Stopwatch:
    """Minimal wall-clock stopwatch with split support.

    ``elapsed`` accumulates across start/stop cycles, so one instance can
    time several non-contiguous phases of a run.
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Forget any accumulated time (and any running split)."""
        self._start = None
        self.elapsed = 0.0


def chunk_items(items: Sequence[T], chunk_size: int) -> List[Sequence[T]]:
    """Split ``items`` into chunks of at most ``chunk_size`` elements."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


@dataclass
class BatchResult(Generic[R]):
    """Results plus timing of one batch run."""

    results: List[R]
    elapsed_seconds: float
    items: int
    workers: int = 1
    name: str = "batch"
    backend: str = "serial"
    metadata: dict = field(default_factory=dict)

    @property
    def items_per_second(self) -> float:
        """Throughput of the run."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.items / self.elapsed_seconds

    def speedup_over(self, other: "BatchResult") -> float:
        """Throughput ratio of this run over ``other`` (same item count assumed).

        Degenerate runs map to documented values instead of the ``nan`` /
        ``ZeroDivisionError`` the naive throughput ratio would produce.
        The ratio is defined over :attr:`items_per_second` (which reports
        ``inf`` for instantaneous runs, ``0.0`` for zero-item timed runs):
        equal throughputs — including two instantaneous runs
        (``inf / inf``) and two zero-item timed runs (``0 / 0``) — are
        indistinguishable and the speedup is defined as ``1.0``; when only
        ``other`` has zero throughput the ratio is ``inf``, and when only
        this run does it is ``0.0``.
        """
        mine = self.items_per_second
        theirs = other.items_per_second
        if mine == theirs:
            return 1.0
        if theirs == 0:
            return float("inf")
        return mine / theirs


def _invoke_pair(align: Callable[[str, str], R], pair: Tuple[str, str]) -> R:
    """Apply a two-argument aligner to a (pattern, text) tuple.

    Module-level (rather than a lambda inside :meth:`BatchExecutor.run_pairs`)
    so that ``functools.partial(_invoke_pair, align)`` pickles under the
    multiprocessing spawn context.
    """
    return align(pair[0], pair[1])


def _align_pair_with_config(config: GenASMConfig, pair: Tuple[str, str]) -> Alignment:
    """Align one (pattern, text) pair with a fresh GenASM aligner.

    Module-level worker for the process backend: only the (picklable)
    config crosses the process boundary, and each worker builds its own
    aligner.
    """
    from repro.core.aligner import GenASMAligner

    return GenASMAligner(config).align(pair[0], pair[1])


class BatchExecutor:
    """Run a callable over a batch of items, serially or in parallel.

    Parameters
    ----------
    workers:
        Process count for the ``process`` backend (and for ``run``/
        ``run_pairs`` when > 1).
    chunk_size:
        Items per pool task in process mode.
    backend:
        Default backend for :meth:`run_alignments` — one of
        :data:`BACKENDS`.  ``run``/``run_pairs`` derive their mode from
        ``workers`` alone (they cannot be vectorized).
    """

    def __init__(
        self, workers: int = 1, chunk_size: int = 32, backend: str = "serial"
    ) -> None:
        from repro.execution import get_backend

        if workers < 1:
            raise ValueError("workers must be at least 1")
        get_backend(backend)  # raises ValueError for unregistered names
        self.workers = workers
        self.chunk_size = chunk_size
        self.backend = backend

    # ------------------------------------------------------------------ #
    def _pool_map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        # Imported lazily so the serial path has no multiprocessing cost.
        from multiprocessing import get_context

        ctx = get_context("spawn")
        with ctx.Pool(self.workers) as pool:
            return pool.map(func, items, chunksize=max(1, self.chunk_size))

    def run(
        self,
        func: Callable[[T], R],
        items: Sequence[T],
        *,
        name: str = "batch",
    ) -> BatchResult[R]:
        """Apply ``func`` to every item and time the whole batch.

        With ``workers > 1`` the callable is shipped to a spawn-context
        pool, so it must be picklable (a module-level function, a partial
        over one, or a bound method of a picklable object).
        """
        watch = Stopwatch()
        watch.start()
        if self.workers == 1:
            results = [func(item) for item in items]
        else:
            results = self._pool_map(func, items)
        elapsed = watch.stop()
        return BatchResult(
            results=list(results),
            elapsed_seconds=elapsed,
            items=len(items),
            workers=self.workers,
            name=name,
            backend="serial" if self.workers == 1 else "process",
        )

    def run_pairs(
        self,
        align: Callable[[str, str], R],
        pairs: Sequence[Tuple[str, str]],
        *,
        name: str = "align-batch",
    ) -> BatchResult[R]:
        """Convenience wrapper for (pattern, text) alignment callables."""
        return self.run(partial(_invoke_pair, align), pairs, name=name)

    # ------------------------------------------------------------------ #
    def run_alignments(
        self,
        pairs: Sequence[Tuple[str, str]],
        config: Optional[GenASMConfig] = None,
        *,
        name: str = "genasm-batch",
        backend: Optional[str] = None,
        executor=None,
    ) -> BatchResult[Alignment]:
        """Align a batch of (pattern, text) pairs with GenASM.

        ``backend`` (defaulting to the executor's) names any entry in the
        :mod:`repro.execution` registry — ``serial``, ``process``,
        ``vectorized``, ``shared``, ``streaming``, plus whatever has been
        registered since.  Every backend produces identical alignments
        (CIGAR, edit distance, consumed text span) for the same pairs and
        config; they differ only in how the work moves (see
        :func:`repro.execution.capability_matrix`).  ``executor`` threads a
        reusable :class:`repro.parallel.shm.SharedMemoryExecutor` into the
        backends that can use one (``shared``, ``streaming``).
        """
        from repro.execution import get_backend

        backend_name = backend if backend is not None else self.backend
        impl = get_backend(backend_name)
        config = config if config is not None else GenASMConfig()

        if backend_name == "process" and self.workers == 1:
            # Be honest about what actually runs: a 1-worker "pool" is the
            # serial loop, and reporting it as "process" would misattribute
            # throughput numbers.
            backend_name = "serial"
            impl = get_backend(backend_name)

        watch = Stopwatch()
        watch.start()
        results = impl.align_pairs(
            pairs,
            config,
            workers=self.workers,
            chunk_size=self.chunk_size,
            executor=executor,
        )
        elapsed = watch.stop()
        from repro.batch.kernels import resolve_kernel_backend

        return BatchResult(
            results=list(results),
            elapsed_seconds=elapsed,
            items=len(pairs),
            workers=impl.effective_workers(self.workers),
            name=name,
            backend=backend_name,
            metadata={
                "config": config,
                # which hot-loop kernels the config resolves to here (the
                # graceful-degradation answer when "numba" was requested)
                "kernel_backend": resolve_kernel_backend(
                    config.kernel_backend, warn=False
                ),
            },
        )
