"""Chunked batch execution of alignment workloads.

The paper's CPU evaluation runs every aligner over the full candidate-pair
set with 48 threads.  :class:`BatchExecutor` provides the equivalent batch
loop for this library: it partitions the pairs into chunks, runs an aligner
callable over each chunk either serially or with a multiprocessing pool,
and reports wall-clock throughput.  The speedup ratios in experiment E1 are
per-pair ratios, so the serial mode (the default, and the only mode used by
the automated benchmarks to keep them deterministic) is sufficient; the
multiprocessing mode exists for users who want absolute throughput on their
own machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["Stopwatch", "BatchResult", "BatchExecutor", "chunk_items"]

T = TypeVar("T")
R = TypeVar("R")


class Stopwatch:
    """Minimal wall-clock stopwatch with split support."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed


def chunk_items(items: Sequence[T], chunk_size: int) -> List[Sequence[T]]:
    """Split ``items`` into chunks of at most ``chunk_size`` elements."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


@dataclass
class BatchResult(Generic[R]):
    """Results plus timing of one batch run."""

    results: List[R]
    elapsed_seconds: float
    items: int
    workers: int = 1
    name: str = "batch"
    metadata: dict = field(default_factory=dict)

    @property
    def items_per_second(self) -> float:
        """Throughput of the run."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.items / self.elapsed_seconds

    def speedup_over(self, other: "BatchResult") -> float:
        """Throughput ratio of this run over ``other`` (same item count assumed)."""
        return self.items_per_second / other.items_per_second


class BatchExecutor:
    """Run a callable over a batch of items, serially or with processes."""

    def __init__(self, workers: int = 1, chunk_size: int = 32) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.chunk_size = chunk_size

    def run(
        self,
        func: Callable[[T], R],
        items: Sequence[T],
        *,
        name: str = "batch",
    ) -> BatchResult[R]:
        """Apply ``func`` to every item and time the whole batch."""
        watch = Stopwatch()
        watch.start()
        if self.workers == 1:
            results = [func(item) for item in items]
        else:
            # Imported lazily so the serial path has no multiprocessing cost.
            from multiprocessing import get_context

            ctx = get_context("spawn")
            with ctx.Pool(self.workers) as pool:
                results = pool.map(func, items, chunksize=max(1, self.chunk_size))
        elapsed = watch.stop()
        return BatchResult(
            results=list(results),
            elapsed_seconds=elapsed,
            items=len(items),
            workers=self.workers,
            name=name,
        )

    def run_pairs(
        self,
        align: Callable[[str, str], R],
        pairs: Sequence[Tuple[str, str]],
        *,
        name: str = "align-batch",
    ) -> BatchResult[R]:
        """Convenience wrapper for (pattern, text) alignment callables."""
        return self.run(lambda pair: align(pair[0], pair[1]), pairs, name=name)
