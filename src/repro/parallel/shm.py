"""Shared-memory execution: ship descriptors between processes, not arrays.

The historical ``process`` backend and the PR-3 align-stage pool pickle
their entire payload into every spawn worker — sequence pairs per task,
and (for mapping) nothing at all, because the reference genome and
:class:`~repro.mapping.index.MinimizerIndex` were too expensive to ship,
which is why mapping stayed on GIL-bound threads.  This module inverts
that, the way the paper's GPU design keeps wave state resident and moves
*work*:

* **Segments** (:class:`SharedSegment`) own one
  :mod:`multiprocessing.shared_memory` block with a deterministic
  close-and-unlink lifecycle (the creator unlinks; attachments never do —
  see :func:`repro.batch.soa._unregister_attachment`).
* **Layouts** (:class:`SegmentLayout`) describe named arrays packed into a
  segment — dtype/shape/offset metadata only, tiny and picklable.  What
  crosses a process boundary is the layout; the bytes stay put.
* **Hosted resources**: :func:`host_genome` / :func:`host_index` pack a
  reference genome and a minimizer index into segments *once*;
  :class:`SharedGenome` / :class:`SharedMinimizerIndex` are drop-in
  read-side adapters that workers attach in their initializer, so every
  worker maps and fetches against the same physical pages.
* **The executor** (:class:`SharedMemoryExecutor`): one spawn pool whose
  workers hold an attached genome + index + a warm
  :class:`~repro.batch.engine.BatchAlignmentEngine`.  Waves are submitted
  as pair-block layouts (:func:`pack_pairs`), mapping tasks as bare read
  records; both the streaming pipeline's map and align stages and the
  ``shared`` batch backend (:mod:`repro.execution`) dispatch through it.

Alignments still return by pickle — results are small and owned by the
caller — and both sides of every handoff stay byte-identical to the
in-process paths, which the shared-memory tests and the differential
pipeline harness assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.soa import _unregister_attachment

__all__ = [
    "SharedSegment",
    "SegmentLayout",
    "pack_arrays",
    "pack_pairs",
    "unpack_pairs",
    "SharedGenome",
    "host_genome",
    "SharedMinimizerIndex",
    "host_index",
    "SharedMemoryExecutor",
]

#: Byte alignment of every array offset inside a segment.
_ALIGN = 8


class SharedSegment:
    """One owned shared-memory block with deterministic unlink.

    The process that constructs a :class:`SharedSegment` owns the
    underlying segment: it must eventually call :meth:`unlink` (idempotent,
    also the context-manager exit) or the segment outlives the process.
    Other processes attach by name via :meth:`attach`, which never takes
    ownership.
    """

    def __init__(self, size: int) -> None:
        from multiprocessing import shared_memory

        self.shm = shared_memory.SharedMemory(create=True, size=max(1, int(size)))
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self):
        return self.shm.buf

    @staticmethod
    def attach(name: str):
        """Attach to an existing segment by name (no ownership taken)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        _unregister_attachment(shm)
        return shm

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # live views; the mapping unmaps at exit
            pass

    def unlink(self) -> None:
        """Close and remove the segment (idempotent, crash-tolerant)."""
        if self._unlinked:
            return
        self._unlinked = True
        self.close()
        try:
            # Re-register first: if this process also *attached* the segment,
            # the attach-side tracker workaround unregistered the name, and
            # unlink()'s own unregister would otherwise log a KeyError in the
            # resource-tracker process.
            from multiprocessing import resource_tracker

            resource_tracker.register(self.shm._name, "shared_memory")
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


@dataclass(frozen=True)
class SegmentLayout:
    """Named arrays packed back-to-back in one (shared) buffer.

    ``arrays`` maps each field to ``(dtype string, shape, byte offset)``;
    ``meta`` carries small picklable extras (name lists, parameters).  A
    layout plus its segment name is the complete cross-process handoff.
    """

    nbytes: int
    arrays: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    segment: Optional[str] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def views(self, buffer) -> Dict[str, np.ndarray]:
        """Materialise every array as a zero-copy view over ``buffer``."""
        out: Dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in self.arrays:
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            out[name] = np.frombuffer(
                buffer, dtype=np.dtype(dtype), count=count, offset=offset
            ).reshape(shape)
        return out

    def attach(self):
        """Attach the named segment; returns ``(shm, views)``.

        The caller closes ``shm`` when the views are no longer needed.
        """
        if self.segment is None:
            raise ValueError("layout does not name a shared-memory segment")
        shm = SharedSegment.attach(self.segment)
        return shm, self.views(shm.buf)


def pack_arrays(
    arrays: Dict[str, np.ndarray], *, meta: Optional[Dict[str, object]] = None
) -> Tuple[SharedSegment, SegmentLayout]:
    """Copy ``arrays`` into a fresh shared segment; returns (owner, layout)."""
    entries = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = -(-offset // _ALIGN) * _ALIGN
        entries.append((name, array.dtype.str, tuple(array.shape), offset))
        offset += array.nbytes
    segment = SharedSegment(offset)
    layout = SegmentLayout(
        nbytes=max(1, offset),
        arrays=tuple(entries),
        segment=segment.name,
        meta=dict(meta or {}),
    )
    for name, view in layout.views(segment.buf).items():
        view[...] = arrays[name]
    return segment, layout


# --------------------------------------------------------------------------- #
# String/pair blocks — the wave handoff payload
# --------------------------------------------------------------------------- #
def _string_block(strings: Sequence[str], prefix: str) -> Dict[str, np.ndarray]:
    data = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(data) + 1, dtype=np.int64)
    if data:
        np.cumsum([len(b) for b in data], out=offsets[1:])
    return {
        f"{prefix}_off": offsets,
        f"{prefix}_data": np.frombuffer(b"".join(data), dtype=np.uint8),
    }


def _string_block_decode(views: Dict[str, np.ndarray], prefix: str) -> List[str]:
    offsets = views[f"{prefix}_off"]
    blob = views[f"{prefix}_data"].tobytes()
    return [
        blob[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]


def pack_pairs(
    pairs: Sequence[Tuple[str, str]],
    *,
    meta: Optional[Dict[str, object]] = None,
) -> Tuple[SharedSegment, SegmentLayout]:
    """Pack (pattern, text) pairs into one segment; ship only the layout.

    ``meta`` rides along in the layout (small picklable extras — e.g. the
    ``wave_id`` worker-side trace spans tag themselves with).
    """
    arrays = {
        **_string_block([p for p, _ in pairs], "pattern"),
        **_string_block([t for _, t in pairs], "text"),
    }
    return pack_arrays(arrays, meta={**(meta or {}), "count": len(pairs)})


def unpack_pairs(layout: SegmentLayout) -> List[Tuple[str, str]]:
    """Rebuild the pair list from a shared pair block (attach, decode, close)."""
    shm, views = layout.attach()
    try:
        patterns = _string_block_decode(views, "pattern")
        texts = _string_block_decode(views, "text")
    finally:
        del views
        shm.close()
    return list(zip(patterns, texts))


# --------------------------------------------------------------------------- #
# Shared reference genome
# --------------------------------------------------------------------------- #
class SharedGenome:
    """Read-side adapter over a genome hosted in a shared segment.

    Duck-compatible with the :class:`~repro.genomics.genome.SyntheticGenome`
    surface the mapper uses — :meth:`sequence`, :meth:`fetch`,
    :meth:`chromosome_length`, :meth:`names` — but every fetch decodes only
    the requested slice out of the shared pages; nothing per-worker is
    materialised beyond the region strings actually handed to lanes.
    """

    def __init__(self, layout: SegmentLayout) -> None:
        self._layout = layout
        self._shm, views = layout.attach()
        self._data = views["data"]
        offsets = views["offsets"]
        names = list(layout.meta["names"])
        self._bounds = {
            name: (int(offsets[i]), int(offsets[i + 1]))
            for i, name in enumerate(names)
        }
        self._names = names

    @classmethod
    def attach(cls, layout: SegmentLayout) -> "SharedGenome":
        return cls(layout)

    def names(self) -> List[str]:
        return list(self._names)

    def chromosome_length(self, chrom: str) -> int:
        start, end = self._bounds[chrom]
        return end - start

    def sequence(self, chrom: str) -> str:
        start, end = self._bounds[chrom]
        return self._data[start:end].tobytes().decode("ascii")

    def fetch(self, chrom: str, start: int, end: int) -> str:
        base, bound = self._bounds[chrom]
        length = bound - base
        start = max(0, start)
        end = min(length, end)
        if start >= end:
            return ""
        return self._data[base + start : base + end].tobytes().decode("ascii")

    def close(self) -> None:
        self._data = None
        if self._shm is not None:
            shm, self._shm = self._shm, None
            try:
                shm.close()
            except BufferError:
                pass


def host_genome(genome) -> Tuple[SharedSegment, SegmentLayout]:
    """Pack a genome's chromosomes into one shared segment, built once.

    ``genome`` is anything exposing an ordered ``chromosomes``
    name→sequence mapping (ASCII sequences).
    """
    names = list(genome.chromosomes)
    blobs = [genome.chromosomes[name].encode("ascii") for name in names]
    offsets = np.zeros(len(blobs) + 1, dtype=np.int64)
    if blobs:
        np.cumsum([len(b) for b in blobs], out=offsets[1:])
    data = np.frombuffer(b"".join(blobs), dtype=np.uint8)
    return pack_arrays(
        {"offsets": offsets, "data": data}, meta={"names": names}
    )


# --------------------------------------------------------------------------- #
# Shared minimizer index
# --------------------------------------------------------------------------- #
class SharedMinimizerIndex:
    """Read-side adapter over a minimizer index hosted in shared segments.

    The hash table is flattened to three parallel arrays — sorted hashes,
    per-hash hit ranges, and the hit records (chromosome id, position,
    strand) in the exact insertion order of the dict-based index — so
    :meth:`lookup` is a binary search plus a slice, and the per-hash hit
    order (hence every anchor list, chain, and candidate) is identical to
    :class:`~repro.mapping.index.MinimizerIndex`.
    """

    def __init__(self, layout: SegmentLayout) -> None:
        self._layout = layout
        self._shm, views = layout.attach()
        self._hashes = views["hashes"]
        self._starts = views["starts"]
        self._hit_chrom = views["hit_chrom"]
        self._hit_pos = views["hit_pos"]
        self._hit_strand = views["hit_strand"]
        self._chrom_names = list(layout.meta["chrom_names"])
        self.k = int(layout.meta["k"])
        self.w = int(layout.meta["w"])
        self.max_occurrences = int(layout.meta["max_occurrences"])
        self.indexed_minimizers = int(layout.meta["indexed_minimizers"])
        self.dropped_minimizers = int(layout.meta["dropped_minimizers"])

    @classmethod
    def attach(cls, layout: SegmentLayout) -> "SharedMinimizerIndex":
        return cls(layout)

    def lookup(self, minimizer_hash: int) -> List:
        """All reference occurrences of a hash, in index insertion order."""
        from repro.mapping.index import IndexHit

        hashes = self._hashes
        position = int(np.searchsorted(hashes, np.uint64(minimizer_hash)))
        if position >= hashes.shape[0] or int(hashes[position]) != minimizer_hash:
            return []
        start = int(self._starts[position])
        end = int(self._starts[position + 1])
        names = self._chrom_names
        chroms = self._hit_chrom
        positions = self._hit_pos
        strands = self._hit_strand
        return [
            IndexHit(
                chrom=names[chroms[i]],
                position=int(positions[i]),
                strand=int(strands[i]),
            )
            for i in range(start, end)
        ]

    def lookup_many(self, minimizers: Iterable) -> List[Tuple[object, object]]:
        out: List[Tuple[object, object]] = []
        for minimizer in minimizers:
            for hit in self.lookup(minimizer.hash):
                out.append((minimizer, hit))
        return out

    def __len__(self) -> int:
        return int(self._hashes.shape[0])

    def __contains__(self, minimizer_hash: int) -> bool:
        hashes = self._hashes
        position = int(np.searchsorted(hashes, np.uint64(minimizer_hash)))
        return position < hashes.shape[0] and int(hashes[position]) == minimizer_hash

    def close(self) -> None:
        self._hashes = self._starts = None
        self._hit_chrom = self._hit_pos = self._hit_strand = None
        if self._shm is not None:
            shm, self._shm = self._shm, None
            try:
                shm.close()
            except BufferError:
                pass


def host_index(index) -> Tuple[SharedSegment, SegmentLayout]:
    """Flatten a built :class:`MinimizerIndex` into one shared segment."""
    table = index._table  # insertion order per hash is the contract
    hashes = np.fromiter(table.keys(), dtype=np.uint64, count=len(table))
    order = np.argsort(hashes, kind="stable")
    hashes = hashes[order]
    keys = list(table.keys())
    chrom_names: List[str] = []
    chrom_ids: Dict[str, int] = {}
    starts = np.zeros(len(table) + 1, dtype=np.int64)
    hit_chrom: List[int] = []
    hit_pos: List[int] = []
    hit_strand: List[int] = []
    for slot, key_index in enumerate(order):
        hits = table[keys[int(key_index)]]
        starts[slot + 1] = starts[slot] + len(hits)
        for hit in hits:
            chrom_id = chrom_ids.get(hit.chrom)
            if chrom_id is None:
                chrom_id = chrom_ids[hit.chrom] = len(chrom_names)
                chrom_names.append(hit.chrom)
            hit_chrom.append(chrom_id)
            hit_pos.append(hit.position)
            hit_strand.append(hit.strand)
    return pack_arrays(
        {
            "hashes": hashes,
            "starts": starts,
            "hit_chrom": np.array(hit_chrom, dtype=np.int32),
            "hit_pos": np.array(hit_pos, dtype=np.int64),
            "hit_strand": np.array(hit_strand, dtype=np.int8),
        },
        meta={
            "chrom_names": chrom_names,
            "k": index.k,
            "w": index.w,
            "max_occurrences": index.max_occurrences,
            "indexed_minimizers": index.indexed_minimizers,
            "dropped_minimizers": index.dropped_minimizers,
        },
    )


# --------------------------------------------------------------------------- #
# Worker side of the executor (module-level so it pickles under spawn)
# --------------------------------------------------------------------------- #
_WORKER: Optional["_WorkerState"] = None


class _WorkerState:
    """Per-worker-process state: attached resources + a warm engine."""

    def __init__(self, bundle: Dict[str, object]) -> None:
        import os

        from repro.batch.engine import BatchAlignmentEngine
        from repro.telemetry.trace import NULL_TRACER, Tracer

        self.config = bundle["config"]
        self.engine = BatchAlignmentEngine(self.config, **bundle["engine_kwargs"])
        # Worker-side tracer: spans recorded here are drained and shipped
        # back with each wave's alignments, so the driver-side tracer can
        # absorb them onto one timeline (separate pid tracks).
        if bundle.get("trace"):
            self.tracer = Tracer(process_name=f"shm-worker-{os.getpid()}")
        else:
            self.tracer = NULL_TRACER
        self.genome = None
        self.mapper = None
        genome_layout = bundle.get("genome")
        index_layout = bundle.get("index")
        mapper_params = bundle.get("mapper_params")
        if genome_layout is not None:
            self.genome = SharedGenome.attach(genome_layout)
        if index_layout is not None and mapper_params is not None:
            from repro.mapping.mapper import Mapper

            self.mapper = Mapper(
                self.genome,
                index=SharedMinimizerIndex.attach(index_layout),
                **mapper_params,
            )


def _init_worker(bundle: Dict[str, object]) -> None:
    global _WORKER
    _WORKER = _WorkerState(bundle)


def _worker_ping(delay: float = 0.0) -> int:
    """Warm-up task: forces spawn + imports + resource attachment.

    Also runs a one-lane alignment so the engine's first-call costs
    (numpy ufunc setup, lazy allocations) are paid here rather than by the
    first real wave.  The ``delay`` keeps the task resident long enough
    that a pool-wide warm() round touches *every* worker instead of one
    fast worker absorbing all the pings.
    """
    _WORKER.engine.align_pairs([("ACGT", "ACGT")])
    if delay:
        import time

        time.sleep(delay)
    import os

    return os.getpid()


def _worker_align(layout: SegmentLayout) -> List:
    """Align one wave shipped as a shared pair block."""
    return _WORKER.engine.align_pairs(unpack_pairs(layout))


def _worker_align_traced(layout: SegmentLayout) -> Tuple[List, List, str]:
    """Traced :func:`_worker_align`: also ship this wave's spans back.

    Returns ``(alignments, span records, process name)``; the driver-side
    executor absorbs the records so cross-process waves land on the same
    exported timeline as the driver's stages.
    """
    tracer = _WORKER.tracer
    wave_id = layout.meta.get("wave_id")
    with tracer.span(
        "worker.align.wave", wave_id=wave_id, lanes=layout.meta.get("count")
    ):
        alignments = _WORKER.engine.align_pairs(unpack_pairs(layout))
    return alignments, tracer.drain(), tracer.process_name


def _worker_map(name: str, sequence: str) -> List[Tuple[object, str, str]]:
    """Map one read against the shared index + genome.

    Returns (candidate, pattern, text) triples in mapper order — the same
    payload :meth:`repro.pipeline.mapstage.MapStage.map_record` produces.
    """
    mapper = _WORKER.mapper
    candidates = mapper.map_sequence(name, sequence)
    return [
        (candidate,) + mapper.candidate_region_sequence(candidate, sequence)
        for candidate in candidates
    ]


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #
class SharedMemoryExecutor:
    """Spawn pool whose workers share genome/index segments built once.

    Parameters
    ----------
    workers:
        Worker process count.
    config:
        Aligner configuration shipped once at pool start (defaults to the
        paper's improved GenASM).
    engine_kwargs:
        Forwarded to each worker's :class:`BatchAlignmentEngine`.
    mapper:
        Optional :class:`~repro.mapping.mapper.Mapper`; when given, its
        genome and minimizer index are hosted in shared segments and every
        worker rebuilds an identical mapper over them, enabling
        :meth:`submit_map`.
    shared_layouts:
        Optional ``(genome_layout, index_layout)`` pair of already-hosted
        segments (e.g. from a
        :class:`~repro.service.registry.ReferenceRegistry`).  Workers
        attach these instead of this executor hosting its own copies, so
        many executors — and the requests they serve — share one physical
        genome/index.  Requires ``mapper`` (for the mapper parameters);
        the segments stay owned by whoever hosted them: :meth:`close`
        does **not** unlink them.
    tracer:
        Optional driver-side :class:`~repro.telemetry.trace.Tracer`.  When
        given (and enabled), each worker builds its own tracer, records a
        ``worker.align.wave`` span per wave, and ships the span records
        back with the wave's alignments; this executor absorbs them so one
        exported timeline covers driver stages and worker waves.
    eager:
        Start the pool at construction (default starts lazily on first
        submit).

    The executor is reusable across pipeline runs — keeping it alive keeps
    the pool warm and the resource segments hosted, which is the intended
    mode for service-style callers; :meth:`close` (or the context-manager
    exit) tears everything down and unlinks every segment this executor
    ever created.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        config=None,
        engine_kwargs: Optional[Dict[str, object]] = None,
        mapper=None,
        shared_layouts: Optional[Tuple[SegmentLayout, SegmentLayout]] = None,
        tracer=None,
        eager: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if shared_layouts is not None and mapper is None:
            raise ValueError(
                "shared_layouts requires a mapper (its parameters are "
                "shipped alongside the pre-hosted segments)"
            )
        from repro.core.config import GenASMConfig
        from repro.telemetry.trace import get_tracer

        self.workers = workers
        self.config = config if config is not None else GenASMConfig()
        self.tracer = get_tracer(tracer)
        self.engine_kwargs = dict(engine_kwargs or {})
        self.mapper = mapper
        self.shared_layouts = shared_layouts
        self._pool = None
        self._resources: List[SharedSegment] = []
        self._wave_segments: Dict[object, SharedSegment] = {}
        self._segment_names: List[str] = []
        self._closed = False
        if eager:
            self.start()

    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._pool is not None

    def start(self) -> None:
        """Host the shared resources and start the worker pool (idempotent)."""
        if self._pool is not None:
            return
        if self._closed:
            raise RuntimeError("executor already closed")
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        bundle: Dict[str, object] = {
            "config": self.config,
            "engine_kwargs": self.engine_kwargs,
            "trace": self.tracer.enabled,
        }
        if self.mapper is not None:
            if self.shared_layouts is not None:
                # Pre-hosted by the caller (reference registry): attach,
                # don't copy, don't own — close() leaves them linked.
                genome_layout, index_layout = self.shared_layouts
            else:
                genome_segment, genome_layout = host_genome(self.mapper.genome)
                index_segment, index_layout = host_index(self.mapper.index)
                self._resources += [genome_segment, index_segment]
                self._segment_names += [genome_segment.name, index_segment.name]
            bundle["genome"] = genome_layout
            bundle["index"] = index_layout
            bundle["mapper_params"] = {
                "k": self.mapper.k,
                "w": self.mapper.w,
                "min_chain_score": self.mapper.min_chain_score,
                "min_chain_anchors": self.mapper.min_chain_anchors,
                "region_padding": self.mapper.region_padding,
                "all_chains": self.mapper.all_chains,
            }
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=get_context("spawn"),
            initializer=_init_worker,
            initargs=(bundle,),
        )

    def warm(self, *, delay: float = 0.2, timeout: Optional[float] = 60.0) -> List[int]:
        """Spawn and initialise every worker now; returns their pids.

        Each worker pays interpreter start-up, imports and segment
        attachment exactly once; warming moves that cost out of the first
        submitted wave (service-style callers warm at deploy time).
        """
        self.start()
        from concurrent.futures import wait

        futures = [
            self._pool.submit(_worker_ping, delay) for _ in range(self.workers)
        ]
        wait(futures, timeout=timeout)
        return sorted({f.result() for f in futures if f.done() and not f.cancelled()})

    # ------------------------------------------------------------------ #
    def submit_wave(self, pairs: Sequence[Tuple[str, str]], *, wave_id=None):
        """Dispatch one wave of (pattern, text) pairs; returns its future.

        The pairs are packed into a per-wave shared segment and only the
        :class:`SegmentLayout` crosses the process boundary.  The segment
        is unlinked automatically when the wave completes (or fails, or is
        cancelled) — :meth:`close` sweeps any still outstanding.
        ``wave_id`` labels the wave in worker-side trace spans.
        """
        self.start()
        traced = self.tracer.enabled
        meta = {"wave_id": wave_id} if wave_id is not None else None
        segment, layout = pack_pairs(pairs, meta=meta)
        self._segment_names.append(segment.name)
        task = _worker_align_traced if traced else _worker_align
        try:
            future = self._pool.submit(task, layout)
        except BaseException:
            # Submission can fail after the segment exists (pool already
            # broken by a worker crash, or shutting down) — the segment
            # must not outlive the failed handoff.
            segment.unlink()
            raise
        self._wave_segments[future] = segment
        future.add_done_callback(self._release_wave_segment)
        if not traced:
            return future
        # Traced waves resolve to (alignments, spans, worker name); callers
        # must still see a future of bare alignments, so wrap: absorb the
        # worker spans here and resolve the outer future with the payload.
        from concurrent.futures import Future

        outer: Future = Future()
        outer.set_running_or_notify_cancel()

        def _absorb(done) -> None:
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
                return
            alignments, records, worker_name = done.result()
            self.tracer.absorb(records, process_name=worker_name)
            outer.set_result(alignments)

        future.add_done_callback(_absorb)
        return outer

    def submit_map(self, name: str, sequence: str):
        """Dispatch one read-mapping task against the shared index."""
        if self.mapper is None:
            raise RuntimeError("executor was built without a mapper")
        self.start()
        return self._pool.submit(_worker_map, name, sequence)

    def run_alignments(self, pairs: Sequence[Tuple[str, str]]) -> List:
        """Align ``pairs`` across the pool; results in input order.

        The batch is split into ``workers`` contiguous chunks, each
        dispatched as one wave, and the per-chunk results concatenated —
        order in, order out, byte-identical to the in-process engine.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        self.start()
        chunk_count = min(self.workers, len(pairs))
        size = math.ceil(len(pairs) / chunk_count)
        futures = [
            self.submit_wave(pairs[start : start + size])
            for start in range(0, len(pairs), size)
        ]
        out: List = []
        for future in futures:
            out.extend(future.result())
        return out

    # ------------------------------------------------------------------ #
    def _release_wave_segment(self, future) -> None:
        segment = self._wave_segments.pop(future, None)
        if segment is not None:
            segment.unlink()

    def outstanding_waves(self) -> int:
        """Waves whose segments are still owned (in flight)."""
        return len(self._wave_segments)

    def segment_names(self) -> List[str]:
        """Every segment name this executor ever created (test hook)."""
        return list(self._segment_names)

    def close(self, *, cancel: bool = False) -> None:
        """Shut the pool down and unlink every owned segment (idempotent).

        ``cancel=True`` drops queued waves instead of draining them (the
        mid-stream cancellation path); their segments are unlinked either
        way.
        """
        self._closed = True
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True, cancel_futures=cancel)
        for segment in list(self._wave_segments.values()):
            segment.unlink()
        self._wave_segments.clear()
        for segment in self._resources:
            segment.unlink()
        self._resources.clear()

    def __enter__(self) -> "SharedMemoryExecutor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-exit safety net
        try:
            self.close()
        except Exception:
            pass
