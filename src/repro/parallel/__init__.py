"""Batch execution utilities for the CPU evaluation.

:class:`BatchExecutor` runs alignment batches through the
:mod:`repro.execution` backend registry — ``serial`` (Python loop),
``process`` (pickle-per-pair spawn pool), ``vectorized`` (the lockstep SoA
engine from :mod:`repro.batch`), ``shared`` (zero-copy shared-memory pool,
:mod:`repro.parallel.shm`) and ``streaming`` (the wave pipeline) — all of
which produce identical alignments for the same pairs and config.
:class:`SharedMemoryExecutor` is the warm pool behind ``shared``: it hosts
the reference genome and minimizer index in shared segments built once and
ships waves as descriptors, not arrays.
"""

from repro.parallel.executor import (
    BACKENDS,
    BatchExecutor,
    BatchResult,
    Stopwatch,
    chunk_items,
)
from repro.parallel.shm import (
    SegmentLayout,
    SharedGenome,
    SharedMemoryExecutor,
    SharedMinimizerIndex,
    SharedSegment,
)

__all__ = [
    "BACKENDS",
    "BatchExecutor",
    "BatchResult",
    "SegmentLayout",
    "SharedGenome",
    "SharedMemoryExecutor",
    "SharedMinimizerIndex",
    "SharedSegment",
    "Stopwatch",
    "chunk_items",
]
