"""Batch execution utilities for the CPU evaluation."""

from repro.parallel.executor import BatchExecutor, BatchResult, Stopwatch, chunk_items

__all__ = ["BatchExecutor", "BatchResult", "Stopwatch", "chunk_items"]
