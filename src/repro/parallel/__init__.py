"""Batch execution utilities for the CPU evaluation.

:class:`BatchExecutor` runs alignment batches with one of three backends —
``serial`` (Python loop), ``process`` (spawn-context multiprocessing pool),
or ``vectorized`` (the lockstep SoA engine from :mod:`repro.batch`) — all
of which produce identical alignments for the same pairs and config.
"""

from repro.parallel.executor import (
    BACKENDS,
    BatchExecutor,
    BatchResult,
    Stopwatch,
    chunk_items,
)

__all__ = ["BACKENDS", "BatchExecutor", "BatchResult", "Stopwatch", "chunk_items"]
