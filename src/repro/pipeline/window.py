"""Shared bounded in-flight window for the pipeline's worker stages.

:class:`MapStage` and :class:`AlignStage` both expose the same
submit/collect/drain contract: work is queued with its result (computed
inline) or a pool future, and collection pops the *completed prefix* in
submission order, waiting only when more than ``bound`` items are in
flight.  :class:`InflightWindow` is that queue discipline in one place, so
the two stages cannot drift on the ordering or blocking semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

__all__ = ["InflightWindow"]


class InflightWindow:
    """Submission-ordered queue of (key, result-or-future) pairs.

    ``pending`` values are either plain results (inline execution) or
    future-like objects exposing ``done()`` / ``result()``; the window
    treats anything without a ``result`` attribute as already complete.

    Parameters
    ----------
    bound:
        In-flight limit: :meth:`collect` blocks on the oldest entry only
        while more than this many items are queued (the stage's
        backpressure bound).
    """

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ValueError("bound must be at least 1")
        self.bound = bound
        self._queue: Deque[Tuple[object, object]] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def append(self, key: object, pending: object) -> None:
        """Queue one submission (its result, or the future computing it)."""
        self._queue.append((key, pending))

    def collect(self, *, block: bool = False) -> List[Tuple[object, object]]:
        """Pop completed (key, result) pairs from the front, in order.

        Non-blocking by default: returns the finished prefix, waiting only
        while the queue exceeds :attr:`bound`.  ``block=True`` waits for
        everything (the end-of-stream drain).
        """
        out: List[Tuple[object, object]] = []
        while self._queue:
            key, pending = self._queue[0]
            done = not hasattr(pending, "result") or pending.done()
            if not (block or done or len(self._queue) > self.bound):
                break
            self._queue.popleft()
            result = pending.result() if hasattr(pending, "result") else pending
            out.append((key, result))
        return out
