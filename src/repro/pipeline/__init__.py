"""Streaming alignment pipeline: overlap ingest, mapping and wave execution.

The offline harness runs the paper's pipeline in strict phases — simulate
or load every read, map every read to its candidate list, then push one
materialised pair list through
:meth:`repro.parallel.executor.BatchExecutor.run_alignments`.  Nothing
aligns until everything has mapped, and the ``process`` backend re-builds
a scalar aligner per worker.  This package is the streaming counterpart:

* :mod:`~repro.pipeline.ingest` — lazy read records from simulators,
  iterables or FASTA/FASTQ files (:func:`stream_reads`);
* :mod:`~repro.pipeline.mapstage` — candidate generation behind a
  submit/collect window, optionally on mapping threads
  (:class:`MapStage`);
* :mod:`~repro.pipeline.batcher` — the wave accumulator: sorted
  expected-work grouping with a ``max_pending`` backpressure bound and
  flush-on-size / flush-on-timeout (:class:`WaveAccumulator`);
* :mod:`~repro.pipeline.alignstage` — wave-granular dispatch to
  :class:`repro.batch.BatchAlignmentEngine`, optionally sharded across
  spawn processes that receive pre-built wave inputs
  (:class:`AlignStage`);
* :mod:`~repro.pipeline.stats` — per-stage wall time, queue occupancy and
  wave fill efficiency (:class:`PipelineStats`);
* :mod:`~repro.pipeline.pipeline` — the driver
  (:class:`StreamingPipeline`), emitting :class:`MappedAlignment` results
  in candidate input order, byte-identical to the offline path.

Quickstart::

    from repro.mapping.mapper import Mapper
    from repro.pipeline import StreamingPipeline

    pipeline = StreamingPipeline(Mapper(genome))
    for result in pipeline.run(reads):          # results stream in order
        print(result.read_name, result.alignment.cigar)
    print(pipeline.stats.summary())
"""

from repro.pipeline.alignstage import AlignStage
from repro.pipeline.batcher import WaveAccumulator
from repro.pipeline.ingest import ReadRecord, stream_reads
from repro.pipeline.mapstage import MapStage
from repro.pipeline.pipeline import CandidateWork, MappedAlignment, StreamingPipeline
from repro.pipeline.stats import FLUSH_CAUSES, PIPELINE_STAGES, PipelineStats

__all__ = [
    "AlignStage",
    "CandidateWork",
    "FLUSH_CAUSES",
    "MapStage",
    "MappedAlignment",
    "PIPELINE_STAGES",
    "PipelineStats",
    "ReadRecord",
    "StreamingPipeline",
    "WaveAccumulator",
    "stream_reads",
]
