"""Batch stage: accumulate candidate windows into dispatchable waves.

The vectorized engine amortises interpreter overhead across wave width, so
the pipeline wants waves as full — and as uniform in per-lane work — as
possible, without stalling forever waiting for lanes.  The accumulator
implements the PR-2 sorted-scheduling policy incrementally:

* items buffer up to ``max_pending`` (the backpressure bound);
* when the buffer hits the bound, complete ``wave_size`` waves are cut
  from the pending pool *in expected-work order* (stable sort by the
  ``work_key``, the same windows × words/lane quantity
  (:meth:`repro.batch.BatchAlignmentEngine.expected_work`) the engine's
  own :meth:`~repro.batch.BatchAlignmentEngine.schedule` sorts by), so
  each dispatched wave runs lanes of similar lifetime in lockstep;
* a ``linger_seconds`` timeout flushes everything pending (including a
  partial trailing wave) once the oldest buffered item has waited too
  long — the latency escape hatch for sparse streams;
* :meth:`flush` drains the remainder at end of stream;
* when a drain would end in a *sub-threshold* trailing wave (fewer than
  ``merge_below`` lanes), the tail is merged into the preceding wave
  instead of paying full per-wave dispatch overhead for a handful of
  lanes — the ROADMAP's adaptive wave sizing.  Merged waves exceed
  ``wave_size``; the engine runs them as one chunk (the align stage
  leaves ``max_lanes`` unset), and :attr:`scheduling_stats` counts them.

Wave grouping never changes any alignment (each pair's result is
independent of which wave carries it — the engine is byte-identical to the
scalar path per pair); the policy only moves lockstep efficiency and
latency, which :class:`~repro.pipeline.stats.PipelineStats` records.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from repro.batch.engine import SCHEDULING_POLICIES
from repro.pipeline.stats import PipelineStats
from repro.telemetry.trace import get_tracer

__all__ = ["WaveAccumulator"]


class WaveAccumulator:
    """Group streamed items into waves by size, backpressure and timeout.

    Parameters
    ----------
    wave_size:
        Target lanes per dispatched wave.
    max_pending:
        Backpressure bound: a push that fills the buffer to this size
        flushes waves.  Larger values give the sorted policy a deeper pool
        to cut uniform waves from (at the cost of latency and memory).
    linger_seconds:
        Flush everything pending once the oldest buffered item is this old
        (checked at push time).  ``None`` disables the timeout.
    scheduling:
        ``"sorted"`` (work-ordered waves) or ``"fifo"`` (arrival order) —
        the same policies :class:`repro.batch.BatchAlignmentEngine` accepts.
    merge_below:
        Partial-drain tail merging: when a drain cuts several waves and
        the trailing one has fewer than this many lanes, it is folded into
        the preceding wave.  Defaults to ``wave_size // 2``; ``0``
        disables merging.
    work_key:
        Expected-work estimate per item used by the sorted policy.
    clock:
        Monotonic time source (injectable for deterministic timeout tests).
    stats:
        Optional :class:`PipelineStats` receiving occupancy samples and
        flush causes.
    tracer:
        Optional :class:`~repro.telemetry.trace.Tracer`; every flush emits
        a ``wave.flush`` instant event (cause, waves, lanes) on it.
    """

    def __init__(
        self,
        *,
        wave_size: int = 64,
        max_pending: int = 256,
        linger_seconds: Optional[float] = None,
        scheduling: str = "sorted",
        merge_below: Optional[int] = None,
        work_key: Optional[Callable[[object], float]] = None,
        clock: Callable[[], float] = time.monotonic,
        stats: Optional[PipelineStats] = None,
        tracer=None,
    ) -> None:
        if wave_size < 1:
            raise ValueError("wave_size must be at least 1")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if linger_seconds is not None and linger_seconds < 0:
            raise ValueError("linger_seconds must be non-negative")
        if scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                f"scheduling must be one of {SCHEDULING_POLICIES}, got {scheduling!r}"
            )
        if merge_below is not None and merge_below < 0:
            raise ValueError("merge_below must be non-negative")
        self.wave_size = wave_size
        self.max_pending = max_pending
        self.linger_seconds = linger_seconds
        self.scheduling = scheduling
        self.merge_below = merge_below if merge_below is not None else wave_size // 2
        self.work_key = work_key if work_key is not None else (lambda item: 0.0)
        self.clock = clock
        self.stats = stats
        self.tracer = get_tracer(tracer)
        #: Wave-shaping diagnostics, mirroring the engine's scheduling
        #: vocabulary: how many trailing partial waves were folded into
        #: their predecessor, and how many lanes rode along.
        self.scheduling_stats = {"merged_waves": 0, "merged_lanes": 0}
        self._pending: List[object] = []  # arrival order
        #: per-item arrival timestamps, parallel to ``_pending`` — kept
        #: per item (not just the oldest) so a cut that dispatches the
        #: oldest item leaves the true age of whatever remains
        self._arrivals: List[float] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> Sequence[object]:
        """The buffered items, in arrival order (read-only view)."""
        return tuple(self._pending)

    @property
    def _oldest(self) -> Optional[float]:
        """Arrival time of the oldest buffered item (``None`` when empty)."""
        return self._arrivals[0] if self._arrivals else None

    # ------------------------------------------------------------------ #
    def push(self, item: object) -> List[List[object]]:
        """Buffer one item; returns the waves this push flushed (often [])."""
        self._arrivals.append(self.clock())
        self._pending.append(item)
        if self.stats is not None:
            self.stats.sample_pending(len(self._pending))

        if (
            self.linger_seconds is not None
            and self.clock() - self._oldest >= self.linger_seconds
        ):
            return self._cut(partial=True, reason="timeout")
        if len(self._pending) >= self.max_pending:
            # Backpressure: cut every complete wave; when the bound is
            # tighter than one wave, drain everything (a partial wave)
            # rather than exceeding it.
            return self._cut(partial=len(self._pending) < self.wave_size, reason="size")
        return []

    def poll(self) -> List[List[object]]:
        """Timeout check without a push; returns the flushed waves (often []).

        :meth:`push` only checks the linger bound when an item arrives, so
        on a sparse stream a partial wave can strand until the next
        arrival.  Long-lived callers — the service front-end's dispatch
        loop — call this between arrivals so linger expiry flushes even
        while the stream is quiet.
        """
        if (
            self._pending
            and self.linger_seconds is not None
            and self._oldest is not None
            and self.clock() - self._oldest >= self.linger_seconds
        ):
            return self._cut(partial=True, reason="timeout")
        return []

    def oldest_age(self) -> Optional[float]:
        """Seconds the oldest buffered item has waited (``None`` when empty).

        The service dispatch loop sizes its idle sleep from this: wake just
        as the linger bound expires rather than polling on a fixed tick.
        """
        if self._oldest is None:
            return None
        return self.clock() - self._oldest

    def flush(self, *, reason: str = "final") -> List[List[object]]:
        """Drain everything pending, partial wave included.

        ``reason`` labels the flush in the stats — ``"final"`` at end of
        stream (the default), ``"reorder"`` when the pipeline force-drains
        to keep its bounded reorder buffer progressing, ``"idle"`` when
        the service front-end drains a wave no admissible work can fill.
        """
        return self._cut(partial=True, reason=reason)

    # ------------------------------------------------------------------ #
    def _order(self) -> List[int]:
        if self.scheduling == "fifo":
            return list(range(len(self._pending)))
        return sorted(
            range(len(self._pending)),
            key=lambda index: (self.work_key(self._pending[index]), index),
        )

    def _cut(self, *, partial: bool, reason: str) -> List[List[object]]:
        if not self._pending:
            return []
        order = self._order()
        take = len(order) if partial else (len(order) // self.wave_size) * self.wave_size
        if take == 0:
            return []
        waves = [
            [self._pending[index] for index in order[start : start + self.wave_size]]
            for start in range(0, take, self.wave_size)
        ]
        remainder = sorted(order[take:])  # keep arrival order for determinism
        self._pending = [self._pending[index] for index in remainder]
        self._arrivals = [self._arrivals[index] for index in remainder]
        if len(waves) >= 2 and 0 < len(waves[-1]) < self.merge_below:
            tail = waves.pop()
            waves[-1].extend(tail)
            self.scheduling_stats["merged_waves"] += 1
            self.scheduling_stats["merged_lanes"] += len(tail)
            if self.stats is not None:
                self.stats.record_merge(len(tail))
        if self.stats is not None:
            for wave in waves:
                self.stats.record_wave(len(wave), reason)
        if self.tracer.enabled and waves:
            self.tracer.instant(
                "wave.flush",
                cause=reason,
                waves=len(waves),
                lanes=sum(len(wave) for wave in waves),
            )
        return waves
