"""Per-stage accounting of a streaming pipeline run.

:class:`PipelineStats` is the observability half of :mod:`repro.pipeline`:
it records how long the driver spent waiting on each stage, how full the
wave accumulator ran (queue occupancy, backpressure and timeout flushes),
and how well-packed the dispatched waves were (fill efficiency).  The E1s
experiment and ``examples/e1s_smoke.py`` report it; the differential tests
use the counts to assert the pipeline saw every read and candidate.

Stage times are *driver wait times*: with worker pools attached to the map
or align stage, a stage's seconds measure how long the pipeline loop
blocked on that stage (submission plus waiting for results), so overlapped
work shows up as ``wall_seconds`` smaller than the sum of the equivalent
offline phases rather than as inflated per-stage numbers.

Beyond the flat :meth:`PipelineStats.as_dict` view, every counter here
publishes into the unified metrics registry via
:meth:`PipelineStats.publish` (see :mod:`repro.telemetry.metrics` for the
naming scheme and :mod:`repro.telemetry.exporters` for the Prometheus
text exposition); per-event timelines are the trace layer's job
(:class:`repro.telemetry.trace.Tracer`), which the pipeline threads
alongside these aggregates.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List

__all__ = ["FLUSH_CAUSES", "PIPELINE_STAGES", "PipelineStats"]

#: The stages every run is accounted under, in dataflow order.
PIPELINE_STAGES = ("ingest", "map", "batch", "align", "emit")

#: Every wave-flush cause a pipeline or service run can record, and the
#: keys :attr:`PipelineStats.flushes` is seeded with.  Consumers may read
#: ``stats.flushes[cause]`` for any cause listed here without guarding
#: against ``KeyError`` — including causes the run never triggered.  The
#: attribute docs on :class:`PipelineStats` must list exactly these causes
#: (``tests/test_service.py`` asserts the two stay in sync).
FLUSH_CAUSES = ("size", "timeout", "final", "reorder", "idle")


@dataclass
class PipelineStats:
    """Counters and timings of one :class:`~repro.pipeline.StreamingPipeline` run.

    Attributes
    ----------
    wave_size:
        Configured lanes per wave (the denominator of fill efficiency).
    reads, candidates, waves, aligned:
        Items that crossed each boundary: reads ingested, candidate pairs
        produced by mapping, waves dispatched, pairs aligned.
    stage_seconds:
        Wall seconds the driver spent waiting on each stage, keyed by
        :data:`PIPELINE_STAGES`.
    wall_seconds:
        End-to-end wall time of the run.
    wave_lane_counts:
        Lane counts of the most recent dispatched waves, in dispatch
        order, bounded to the last :attr:`wave_window` entries — a
        long-lived service stream dispatches waves forever, so the full
        history cannot be retained.  :attr:`full_waves` and
        :attr:`wave_fill_efficiency` are computed from running aggregates
        (:attr:`lanes_total`, :attr:`capacity_total`,
        :attr:`full_wave_count`) and stay exact over the whole run
        regardless of the window.
    wave_window:
        Capacity of the :attr:`wave_lane_counts` window.
    max_pending, pending_samples, pending_total:
        Accumulator queue occupancy: high-water mark plus the running
        sum/count of per-push samples (see :attr:`mean_pending`).
    max_reorder_buffer:
        High-water mark of the in-order emission buffer.
    reorder_bound:
        Configured ``max_reorder`` cap on that buffer (``0`` = unbounded).
    wave_merges, merged_lanes:
        Trailing partial waves the accumulator folded into their
        predecessor, and how many lanes rode along (see
        :class:`~repro.pipeline.batcher.WaveAccumulator`).
    flushes:
        Wave-flush causes: ``size`` (backpressure / full wave), ``timeout``
        (linger expired), ``final`` (end of stream), ``reorder`` (forced
        drain to keep the bounded reorder buffer progressing), ``idle``
        (service drain: no admissible work left to fill the wave).  Seeded
        with every cause in :data:`FLUSH_CAUSES`, so any documented cause
        is readable even on runs that never triggered it.
    tb_walk_steps, tb_walk_steps_saved, tb_match_runs, tb_match_run_ops:
        Traceback-walk observability folded in from alignment metadata
        (:meth:`record_traceback`): lockstep walk iterations performed,
        the ops match-run skip-ahead saved over them, and the match runs
        it consumed whole (plus their op total).
    """

    wave_size: int = 0
    reads: int = 0
    candidates: int = 0
    waves: int = 0
    aligned: int = 0
    stage_seconds: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in PIPELINE_STAGES}
    )
    wall_seconds: float = 0.0
    wave_window: int = 1024
    wave_lane_counts: Deque[int] = field(default_factory=deque)
    lanes_total: int = 0
    capacity_total: int = 0
    full_wave_count: int = 0
    max_pending: int = 0
    pending_samples: int = 0
    pending_total: int = 0
    max_reorder_buffer: int = 0
    reorder_bound: int = 0
    wave_merges: int = 0
    merged_lanes: int = 0
    flushes: Dict[str, int] = field(
        default_factory=lambda: {cause: 0 for cause in FLUSH_CAUSES}
    )
    tb_walk_steps: int = 0
    tb_walk_steps_saved: int = 0
    tb_match_runs: int = 0
    tb_match_run_ops: int = 0

    def __post_init__(self) -> None:
        if self.wave_window < 1:
            raise ValueError("wave_window must be at least 1")
        seed = list(self.wave_lane_counts)
        self.wave_lane_counts = deque(seed, maxlen=self.wave_window)
        for lanes in seed:
            self._aggregate_wave(lanes)

    def _aggregate_wave(self, lanes: int) -> None:
        self.lanes_total += lanes
        self.capacity_total += max(self.wave_size, lanes)
        # Tail-merged waves legitimately exceed wave_size and count as
        # full (see wave_fill_efficiency); an unset wave_size counts none.
        if 0 < self.wave_size <= lanes:
            self.full_wave_count += 1

    # ------------------------------------------------------------------ #
    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Accumulate the wall time of the enclosed block onto ``stage``.

        ``stage`` must be one of :data:`PIPELINE_STAGES` — the same
        validate-before-mutate contract :meth:`record_wave` applies to
        flush causes, so a typo'd stage name fails with a clear
        :class:`ValueError` instead of a bare ``KeyError`` from the
        accumulation dict (and instead of silently growing an
        undocumented stage key).
        """
        if stage not in PIPELINE_STAGES:
            raise ValueError(
                f"unknown pipeline stage {stage!r}; must be one of {PIPELINE_STAGES}"
            )
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stage_seconds[stage] += time.perf_counter() - start

    def sample_pending(self, pending: int) -> None:
        """Record one accumulator occupancy observation."""
        self.max_pending = max(self.max_pending, pending)
        self.pending_samples += 1
        self.pending_total += pending

    def sample_reorder(self, buffered: int) -> None:
        """Record one emission-buffer occupancy observation."""
        self.max_reorder_buffer = max(self.max_reorder_buffer, buffered)

    def record_wave(self, lanes: int, reason: str) -> None:
        """Record one dispatched wave and why it was flushed.

        ``reason`` must be one of :data:`FLUSH_CAUSES` — the seeded-dict
        guarantee (every documented cause readable, nothing undocumented)
        only holds if unknown causes are rejected rather than silently
        creating new keys.
        """
        if reason not in FLUSH_CAUSES:
            raise ValueError(
                f"unknown flush cause {reason!r}; must be one of {FLUSH_CAUSES}"
            )
        self.waves += 1
        self.wave_lane_counts.append(lanes)  # bounded; aggregates stay exact
        self._aggregate_wave(lanes)
        self.flushes[reason] += 1

    def record_merge(self, lanes: int) -> None:
        """Record one trailing partial wave folded into its predecessor."""
        self.wave_merges += 1
        self.merged_lanes += lanes

    def record_traceback(self, metadata: Dict[str, object]) -> None:
        """Fold one alignment's traceback walk observability into the run.

        Reads the ``tb_*`` keys the batch engine attaches to alignment
        metadata (absent on scalar-fallback alignments — they contribute
        nothing): lockstep walk iterations, the ops match-run skip-ahead
        saved over them, and the match runs consumed whole.
        """
        self.tb_walk_steps += int(metadata.get("tb_walk_steps", 0))
        self.tb_walk_steps_saved += int(metadata.get("tb_walk_steps_saved", 0))
        self.tb_match_runs += int(metadata.get("tb_match_runs", 0))
        self.tb_match_run_ops += int(metadata.get("tb_match_run_ops", 0))

    # ------------------------------------------------------------------ #
    @property
    def mean_pending(self) -> float:
        """Average accumulator occupancy over all push samples."""
        if self.pending_samples == 0:
            return 0.0
        return self.pending_total / self.pending_samples

    @property
    def full_waves(self) -> int:
        """Waves dispatched with every lane occupied (exact over the run)."""
        return self.full_wave_count

    @property
    def wave_fill_efficiency(self) -> float:
        """Occupied lane fraction over all dispatched waves (1.0 = all full).

        Each wave's capacity is ``max(wave_size, lanes)``: tail-merged
        waves legitimately exceed ``wave_size`` and count as full rather
        than pushing the ratio past 1.0.  Computed from the running
        aggregates, so the bounded :attr:`wave_lane_counts` window never
        skews it.
        """
        if self.capacity_total <= 0 or self.wave_size <= 0:
            return 1.0
        return self.lanes_total / self.capacity_total

    @property
    def reads_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf") if self.reads else 0.0
        return self.reads / self.wall_seconds

    @property
    def pairs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf") if self.aligned else 0.0
        return self.aligned / self.wall_seconds

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """Flat report-friendly view (what the E1s experiment rows embed)."""
        return {
            "reads": self.reads,
            "candidates": self.candidates,
            "waves": self.waves,
            "aligned": self.aligned,
            "wave_size": self.wave_size,
            "full_waves": self.full_waves,
            "wave_fill_efficiency": self.wave_fill_efficiency,
            "wall_seconds": self.wall_seconds,
            "stage_seconds": dict(self.stage_seconds),
            "max_pending": self.max_pending,
            "mean_pending": self.mean_pending,
            "max_reorder_buffer": self.max_reorder_buffer,
            "reorder_bound": self.reorder_bound,
            "wave_merges": self.wave_merges,
            "merged_lanes": self.merged_lanes,
            "flushes": dict(self.flushes),
            "reads_per_second": self.reads_per_second,
            "pairs_per_second": self.pairs_per_second,
            "tb_walk_steps": self.tb_walk_steps,
            "tb_walk_steps_saved": self.tb_walk_steps_saved,
            "tb_match_runs": self.tb_match_runs,
            "tb_match_run_ops": self.tb_match_run_ops,
        }

    def publish(self, registry) -> None:
        """Publish every metric of this run into a telemetry registry.

        The registry-side twin of :meth:`as_dict` — same quantities, under
        the ``pipeline_*`` metric names of the unified naming scheme
        (counters carry exact running totals via
        :meth:`~repro.telemetry.metrics.Counter.set_total`, so publishing
        is idempotent; gauges hold the derived/point-in-time values; the
        bounded recent-wave window loads a lane-count histogram).  The
        telemetry tests assert ``as_dict()`` and the registry snapshot
        agree for every published metric.
        """
        counters = {
            "pipeline_reads_total": (self.reads, "reads ingested"),
            "pipeline_candidates_total": (self.candidates, "candidate pairs mapped"),
            "pipeline_waves_total": (self.waves, "waves dispatched"),
            "pipeline_aligned_total": (self.aligned, "pairs aligned"),
            "pipeline_full_waves_total": (self.full_waves, "waves dispatched full"),
            "pipeline_wave_merges_total": (self.wave_merges, "trailing waves merged"),
            "pipeline_merged_lanes_total": (self.merged_lanes, "lanes riding merges"),
            "pipeline_tb_walk_steps_total": (self.tb_walk_steps, "traceback walk steps"),
            "pipeline_tb_walk_steps_saved_total": (
                self.tb_walk_steps_saved,
                "walk steps skip-ahead saved",
            ),
            "pipeline_tb_match_runs_total": (
                self.tb_match_runs,
                "match runs consumed whole",
            ),
            "pipeline_tb_match_run_ops_total": (
                self.tb_match_run_ops,
                "ops inside consumed match runs",
            ),
        }
        for name, (value, help_text) in counters.items():
            registry.counter(name, help_text).set_total(value)
        for stage in PIPELINE_STAGES:
            registry.counter(
                "pipeline_stage_seconds_total", "driver wait seconds per stage",
                stage=stage,
            ).set_total(self.stage_seconds[stage])
        for cause in FLUSH_CAUSES:
            registry.counter(
                "pipeline_flushes_total", "wave flushes by cause", cause=cause
            ).set_total(self.flushes[cause])
        gauges = {
            "pipeline_wave_size": (self.wave_size, "configured lanes per wave"),
            "pipeline_wave_fill_efficiency": (
                self.wave_fill_efficiency,
                "occupied lane fraction",
            ),
            "pipeline_wall_seconds": (self.wall_seconds, "end-to-end wall time"),
            "pipeline_max_pending": (self.max_pending, "accumulator high-water mark"),
            "pipeline_mean_pending": (self.mean_pending, "mean accumulator occupancy"),
            "pipeline_max_reorder_buffer": (
                self.max_reorder_buffer,
                "reorder-buffer high-water mark",
            ),
            "pipeline_reorder_bound": (self.reorder_bound, "configured reorder bound"),
            "pipeline_reads_per_second": (self.reads_per_second, "read throughput"),
            "pipeline_pairs_per_second": (self.pairs_per_second, "pair throughput"),
        }
        for name, (value, help_text) in gauges.items():
            registry.gauge(name, help_text).set(value)
        registry.histogram(
            "pipeline_wave_lanes",
            "lane counts of recent dispatched waves",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        ).load(self.wave_lane_counts)

    def summary(self) -> str:
        """Human-readable multi-line summary (used by the smoke examples)."""
        stages = "  ".join(
            f"{stage}={self.stage_seconds[stage]:.3f}s" for stage in PIPELINE_STAGES
        )
        return (
            f"reads={self.reads} candidates={self.candidates} "
            f"waves={self.waves} aligned={self.aligned}\n"
            f"stage wait: {stages}\n"
            f"wall={self.wall_seconds:.3f}s "
            f"({self.reads_per_second:.1f} reads/s, "
            f"{self.pairs_per_second:.1f} pairs/s)\n"
            f"waves: fill={self.wave_fill_efficiency:.3f} "
            f"full={self.full_waves}/{self.waves} merges={self.wave_merges} "
            f"flushes={self.flushes}\n"
            f"queues: max_pending={self.max_pending} "
            f"mean_pending={self.mean_pending:.1f} "
            f"max_reorder={self.max_reorder_buffer}"
            + (f"/{self.reorder_bound}" if self.reorder_bound else "")
            + f"\ntraceback: walk_steps={self.tb_walk_steps} "
            f"saved={self.tb_walk_steps_saved} "
            f"match_runs={self.tb_match_runs} "
            f"run_ops={self.tb_match_run_ops}"
        )
