"""The streaming pipeline driver: ingest → map → batch → align → emit.

:class:`StreamingPipeline` joins the stages of :mod:`repro.pipeline` into
one overlapped dataflow.  Reads are pulled lazily from the source, mapped
to candidate pairs (optionally on mapping threads), accumulated into
sorted waves with bounded backpressure, aligned wave-at-a-time by the
vectorized engine (optionally sharded across processes), and emitted as
:class:`MappedAlignment` results **in candidate input order** — the exact
order, CIGARs and metadata of the offline path
(:meth:`Mapper.map_reads` → :meth:`BatchExecutor.run_alignments`), which
the differential tests pin byte for byte.

The offline harness instead materialises every candidate pair before the
first wave runs; here the first wave can be aligning while ingest is still
reading and mapping is still chaining, and independent waves shard across
worker processes that receive pre-built wave inputs (no per-worker
re-alignment from scratch).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig
from repro.mapping.mapper import CandidateMapping, Mapper
from repro.pipeline.alignstage import AlignStage
from repro.pipeline.batcher import WaveAccumulator
from repro.pipeline.ingest import ReadRecord, stream_reads
from repro.pipeline.mapstage import MapStage
from repro.pipeline.stats import PipelineStats
from repro.telemetry.trace import get_tracer

__all__ = ["CandidateWork", "MappedAlignment", "StreamingPipeline"]


@dataclass(frozen=True)
class CandidateWork:
    """One candidate (pattern, text) pair flowing through the pipeline.

    ``order`` is the global candidate ordinal (reads in input order,
    candidates in mapper order within a read) — the key the emit stage
    reorders by.  ``read``/``candidate`` are ``None`` when the work came
    from a bare pair list (:meth:`StreamingPipeline.align_pairs`).
    """

    order: int
    read: Optional[ReadRecord]
    candidate: Optional[CandidateMapping]
    pattern: str
    text: str


@dataclass(frozen=True)
class MappedAlignment:
    """One emitted result: the alignment plus its mapping provenance."""

    order: int
    read: Optional[ReadRecord]
    candidate: Optional[CandidateMapping]
    alignment: Alignment

    @property
    def read_name(self) -> str:
        if self.read is not None:
            return self.read.name
        if self.candidate is not None:
            return self.candidate.read_name
        return ""


class StreamingPipeline:
    """Staged streaming read-mapping + alignment pipeline.

    Parameters
    ----------
    mapper:
        Candidate generator for :meth:`run`.  Optional —
        :meth:`align_pairs` streams pre-built pairs without one.
    config:
        Aligner configuration (defaults to the paper's improved GenASM).
    wave_size:
        Lanes per dispatched wave (also the engine's ``max_lanes``).
    max_pending:
        Wave-accumulator backpressure bound (see
        :class:`~repro.pipeline.batcher.WaveAccumulator`).
    linger_seconds:
        Accumulator flush timeout; ``None`` disables it.
    scheduling:
        Wave grouping policy, ``"sorted"`` or ``"fifo"``.
    map_workers / align_workers:
        Thread count of the map stage / process count of the align stage
        (1 = inline, deterministic, dependency-free).
    align_inflight:
        Bound on waves in flight in the align stage.
    executor:
        Optional :class:`repro.parallel.shm.SharedMemoryExecutor`.  Waves
        are dispatched to it as shared-memory descriptors, and — when it
        was built over this pipeline's mapper and ``map_workers > 1`` —
        reads are mapped on its worker processes against the shared index
        too.  Caller-owned and reusable across runs; keep it warm
        (:meth:`~SharedMemoryExecutor.warm`) to pay worker spawn once, not
        per run.
    max_reorder:
        Bound on the in-order emission buffer.  Emission can lag alignment
        by at most this many results: when a completed-but-unemittable
        backlog exceeds the bound, the pipeline force-drains the
        accumulator and align stage (flush reason ``"reorder"``) so the
        blocking candidate completes — guaranteed progress, at the cost of
        cutting waves early.  ``None`` (default) leaves the buffer
        unbounded, whose worst case is the whole stream (one slow first
        candidate).  Irrelevant with ``ordered=False``.
    ordered:
        ``True`` (default) emits results in candidate input order through
        the reorder buffer.  ``False`` emits each wave's results the
        moment the wave completes — out-of-order across waves, no reorder
        buffer at all; every result still carries its input ordinal in
        :attr:`MappedAlignment.order` for callers that reorder downstream.
        (:meth:`align_pairs` always returns input order; out-of-order mode
        only changes *when* results become visible to :meth:`run`.)
    scalar_traceback_threshold:
        Forwarded to :class:`repro.batch.BatchAlignmentEngine`.
    tracer:
        Optional :class:`~repro.telemetry.trace.Tracer`.  When given, each
        stage block records a ``stage.{ingest,map,batch,align,emit}`` span,
        the accumulator emits ``wave.flush`` instants, the align stage
        records per-wave spans (and worker-side ``worker.align.wave``
        spans arrive through a traced
        :class:`~repro.parallel.shm.SharedMemoryExecutor`), and the whole
        run closes with one ``pipeline.run`` span — export with
        :func:`repro.telemetry.exporters.write_chrome_trace`.  Defaults to
        the no-op :data:`~repro.telemetry.trace.NULL_TRACER`.

    After a run, :attr:`stats` holds the :class:`PipelineStats` of the most
    recent :meth:`run` / :meth:`align_pairs` call.
    """

    def __init__(
        self,
        mapper: Optional[Mapper] = None,
        config: Optional[GenASMConfig] = None,
        *,
        wave_size: int = 128,
        max_pending: int = 512,
        linger_seconds: Optional[float] = None,
        scheduling: str = "sorted",
        map_workers: int = 1,
        align_workers: int = 1,
        align_inflight: Optional[int] = None,
        executor=None,
        max_reorder: Optional[int] = None,
        ordered: bool = True,
        scalar_traceback_threshold: Optional[int] = None,
        tracer=None,
        name: str = "genasm-streaming",
    ) -> None:
        self.mapper = mapper
        self.config = config if config is not None else GenASMConfig()
        if wave_size < 1:
            raise ValueError("wave_size must be at least 1")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if max_reorder is not None and max_reorder < 1:
            raise ValueError("max_reorder must be at least 1")
        self.wave_size = wave_size
        self.max_pending = max_pending
        self.linger_seconds = linger_seconds
        self.scheduling = scheduling
        self.map_workers = map_workers
        self.align_workers = align_workers
        self.align_inflight = align_inflight
        self.executor = executor
        self.max_reorder = max_reorder
        self.ordered = ordered
        self.scalar_traceback_threshold = scalar_traceback_threshold
        self.tracer = get_tracer(tracer)
        self.name = name
        #: Stats of the most recent run (populated even on partial
        #: consumption of the generator).
        self.stats: Optional[PipelineStats] = None

    # ------------------------------------------------------------------ #
    def _build_align_stage(self) -> AlignStage:
        # max_lanes stays None: waves are already bounded by the
        # accumulator, and a merged tail wave (wave_size + remainder lanes)
        # must run as one engine chunk, not get re-split back into the
        # partial dispatch the merge existed to avoid.
        kwargs = dict(
            workers=self.align_workers,
            inflight=self.align_inflight,
            executor=self.executor,
            max_lanes=None,
            scheduling=self.scheduling,
            name=self.name,
            tracer=self.tracer,
        )
        if self.scalar_traceback_threshold is not None:
            kwargs["scalar_traceback_threshold"] = self.scalar_traceback_threshold
        return AlignStage(self.config, **kwargs)

    def _build_accumulator(self, stats: PipelineStats, align: AlignStage) -> WaveAccumulator:
        # The sorted policy groups lanes by the same expected-work model the
        # engine's own scheduler sorts by — window count × words per lane,
        # so wide-window (short-read) configs group narrow fragments away
        # from full multi-word lanes; reuse the align stage's in-process
        # engine rather than building one just for the estimate.
        engine = align.engine
        return WaveAccumulator(
            wave_size=self.wave_size,
            max_pending=self.max_pending,
            linger_seconds=self.linger_seconds,
            scheduling=self.scheduling,
            work_key=lambda work: float(engine.expected_work(len(work.pattern))),
            stats=stats,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        reads: Union[str, Iterable],
        *,
        mapper: Optional[Mapper] = None,
        sink=None,
    ) -> Iterator[MappedAlignment]:
        """Stream reads end to end; yields results in candidate input order.

        ``reads`` is anything :func:`repro.pipeline.ingest.stream_reads`
        accepts (a FASTA/FASTQ path, simulated reads, name/sequence tuples,
        bare strings).  Results appear as soon as their wave completes and
        every earlier candidate has been emitted.

        ``sink`` is the emit-sink seam: an object with ``write(result)``
        and ``finish()`` — e.g. :class:`repro.io.SamSink` /
        :class:`repro.io.PafSink` — that receives every result as it is
        emitted (records stream to the output handle while alignment is
        still running) and is finished when the stream completes.  The
        emitted bytes are identical to writing the materialised results
        offline (:func:`repro.io.write_sam`), which the parity tests pin.
        With ``ordered=False`` pass a sink built with ``eager=False``.
        """
        mapper = mapper if mapper is not None else self.mapper
        if mapper is None:
            raise ValueError(
                "StreamingPipeline.run needs a mapper (pass one at "
                "construction or per call); use align_pairs() for "
                "pre-built pairs"
            )
        stats = PipelineStats(wave_size=self.wave_size)
        self.stats = stats
        results = self._execute(self._mapped_works(reads, mapper, stats), stats)
        if sink is None:
            return results
        return self._stream_to_sink(results, sink)

    @staticmethod
    def _stream_to_sink(
        results: Iterator[MappedAlignment], sink
    ) -> Iterator[MappedAlignment]:
        """Tee results into the sink; finish it when the stream completes.

        ``finish`` runs only on normal exhaustion — an abandoned generator
        must not flush half a read group into the output file.
        """
        for mapped in results:
            sink.write(mapped)
            yield mapped
        sink.finish()

    def run_all(
        self,
        reads: Union[str, Iterable],
        *,
        mapper: Optional[Mapper] = None,
        sink=None,
    ) -> List[MappedAlignment]:
        """:meth:`run`, materialised."""
        return list(self.run(reads, mapper=mapper, sink=sink))

    def align_pairs(self, pairs: Iterable[Tuple[str, str]]) -> List[Alignment]:
        """Stream pre-built (pattern, text) pairs through batch + align.

        The streaming counterpart of
        :meth:`repro.parallel.executor.BatchExecutor.run_alignments`:
        identical results in identical order, but pairs flow through the
        wave accumulator and (optionally sharded) align stage instead of
        one monolithic engine call.
        """
        stats = PipelineStats(wave_size=self.wave_size)
        self.stats = stats
        works = (
            CandidateWork(order, None, None, pattern, text)
            for order, (pattern, text) in enumerate(pairs)
        )
        mapped = list(self._execute(works, stats))
        if not self.ordered:
            # Out-of-order emission only changes *when* results surface;
            # this materialised view is always parallel to the input.
            mapped.sort(key=lambda m: m.order)
        return [m.alignment for m in mapped]

    # ------------------------------------------------------------------ #
    def _mapped_works(
        self, reads: Union[str, Iterable], mapper: Mapper, stats: PipelineStats
    ) -> Iterator[CandidateWork]:
        """Ingest + map: lazily turn a read source into CandidateWork items."""
        # The shared-memory executor maps on worker processes only when it
        # hosts this mapper's genome/index AND the caller asked for parallel
        # mapping (map_workers > 1) — per-read IPC round-trips only pay off
        # when mapping actually runs concurrently with itself; map_workers=1
        # keeps the inline, dependency-free path.
        map_executor = (
            self.executor
            if (
                self.executor is not None
                and self.executor.mapper is mapper
                and self.map_workers > 1
            )
            else None
        )
        map_stage = MapStage(mapper, workers=self.map_workers, executor=map_executor)
        tracer = self.tracer
        order = 0
        try:
            records = stream_reads(reads)
            while True:
                with stats.timer("ingest"), tracer.span("stage.ingest"):
                    record = next(records, None)
                if record is None:
                    break
                stats.reads += 1
                with stats.timer("map"), tracer.span("stage.map", read=record.name):
                    map_stage.submit(record)
                    completed = map_stage.collect()
                for mapped_record, items in completed:
                    for candidate, pattern, text in items:
                        yield CandidateWork(order, mapped_record, candidate, pattern, text)
                        order += 1
            with stats.timer("map"), tracer.span("stage.map", drain=True):
                completed = map_stage.drain()
            for mapped_record, items in completed:
                for candidate, pattern, text in items:
                    yield CandidateWork(order, mapped_record, candidate, pattern, text)
                    order += 1
        finally:
            map_stage.close()

    def _execute(
        self, works: Iterator[CandidateWork], stats: PipelineStats
    ) -> Iterator[MappedAlignment]:
        """Batch + align + emit over a work stream (in work order by default)."""
        start = time.perf_counter()
        tracer = self.tracer
        trace_start = tracer.now()
        align = self._build_align_stage()
        accumulator = self._build_accumulator(stats, align)
        stats.reorder_bound = self.max_reorder or 0
        buffer: Dict[int, MappedAlignment] = {}
        next_emit = 0

        def absorb(
            completed: List[Tuple[List[CandidateWork], List[Alignment]]]
        ) -> List[MappedAlignment]:
            nonlocal next_emit
            with stats.timer("emit"), tracer.span(
                "stage.emit", waves=len(completed)
            ):
                ready: List[MappedAlignment] = []
                for wave, alignments in completed:
                    for work, alignment in zip(wave, alignments):
                        stats.record_traceback(alignment.metadata)
                        mapped = MappedAlignment(
                            work.order, work.read, work.candidate, alignment
                        )
                        if self.ordered:
                            buffer[work.order] = mapped
                        else:
                            ready.append(mapped)
                    stats.aligned += len(wave)
                while next_emit in buffer:
                    ready.append(buffer.pop(next_emit))
                    next_emit += 1
                # Sampled after the drain: the high-water mark measures the
                # *retained* backlog (results stuck behind a missing earlier
                # ordinal) — the quantity max_reorder bounds — not the
                # transient pass-through of a completing wave.
                stats.sample_reorder(len(buffer))
                return ready

        try:
            for work in works:
                stats.candidates += 1
                with stats.timer("batch"), tracer.span("stage.batch"):
                    waves = accumulator.push(work)
                with stats.timer("align"), tracer.span(
                    "stage.align", waves=len(waves)
                ):
                    for wave in waves:
                        align.submit(wave)
                    completed = align.collect()
                yield from absorb(completed)
                if self.max_reorder is not None and len(buffer) > self.max_reorder:
                    # Bounded reorder: the blocking candidate may still sit
                    # in the accumulator, so draining alignment alone could
                    # deadlock — force-flush both.  Every candidate pushed
                    # so far then completes, which provably empties the
                    # buffer (all ordinals below the current one emit).
                    with stats.timer("batch"), tracer.span("stage.batch"):
                        waves = accumulator.flush(reason="reorder")
                    with stats.timer("align"), tracer.span(
                        "stage.align", waves=len(waves), drain=True
                    ):
                        for wave in waves:
                            align.submit(wave)
                        completed = align.drain()
                    yield from absorb(completed)
            with stats.timer("batch"), tracer.span("stage.batch", drain=True):
                waves = accumulator.flush()
            with stats.timer("align"), tracer.span(
                "stage.align", waves=len(waves), drain=True
            ):
                for wave in waves:
                    align.submit(wave)
                completed = align.drain()
            yield from absorb(completed)
            if buffer:
                raise AssertionError(
                    "pipeline finished with unemitted results (internal error)"
                )
        finally:
            align.close()
            stats.wall_seconds = time.perf_counter() - start
            if tracer.enabled:
                tracer.record_span(
                    "pipeline.run",
                    start=trace_start,
                    end=tracer.now(),
                    reads=stats.reads,
                    candidates=stats.candidates,
                    waves=stats.waves,
                )
