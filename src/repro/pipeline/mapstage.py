"""Map stage: candidate generation over a read stream.

Wraps a :class:`repro.mapping.mapper.Mapper` behind a submit/collect
interface so the pipeline driver can overlap mapping with ingest and wave
execution.  With ``workers == 1`` mapping is inline (deterministic and
dependency-free); with ``workers > 1`` reads are mapped on a thread pool
with a bounded in-flight window; with an ``executor``
(:class:`repro.parallel.shm.SharedMemoryExecutor` built over the same
mapper) reads are mapped on worker *processes* against the genome and
minimizer index hosted in shared memory — seed-and-chain is pure Python
and GIL-bound, so threads only overlap mapping with alignment, while
processes overlap mapping with itself.  Results are always collected in
read submission order, so the pipeline's output order never depends on
thread or process timing.

Every mapped read yields its candidates in :meth:`Mapper.map_sequence`
order — the exact order the offline path
(:meth:`Mapper.map_reads` → :meth:`Mapper.align_candidates`) produces,
which is what makes the streaming results byte-comparable to the offline
ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mapping.mapper import CandidateMapping, Mapper
from repro.pipeline.ingest import ReadRecord
from repro.pipeline.window import InflightWindow

__all__ = ["MapStage", "MappedRead"]

#: One mapped read: the record plus its candidate (mapping, pattern, text)
#: triples in mapper order.
MappedRead = Tuple[ReadRecord, List[Tuple[CandidateMapping, str, str]]]


class MapStage:
    """Bounded-window mapping stage over a :class:`Mapper`.

    Parameters
    ----------
    mapper:
        The minimizer mapper producing candidates.
    workers:
        Mapping threads.  ``1`` maps inline at submit time.
    prefetch:
        Maximum reads in flight before :meth:`submit` blocks on the oldest
        one (the stage's backpressure bound; defaults to ``4 * workers``).
    executor:
        Optional :class:`repro.parallel.shm.SharedMemoryExecutor` hosting
        this mapper's genome and index; when given, reads are mapped on
        its worker processes (``workers`` then only sizes the prefetch
        default).  Caller-owned: :meth:`close` leaves it running.
    """

    def __init__(
        self,
        mapper: Mapper,
        *,
        workers: int = 1,
        prefetch: Optional[int] = None,
        executor=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if prefetch is not None and prefetch < 1:
            raise ValueError("prefetch must be at least 1")
        if executor is not None and executor.mapper is None:
            raise ValueError(
                "shared-memory executor was built without a mapper; "
                "pass mapper= when constructing it"
            )
        if executor is not None and executor.mapper is not mapper:
            raise ValueError(
                "shared-memory executor hosts a different mapper than this "
                "stage was given"
            )
        self.mapper = mapper
        self.workers = max(workers, executor.workers) if executor is not None else workers
        self.executor = executor
        self.prefetch = prefetch if prefetch is not None else max(2, 4 * self.workers)
        self._pool = None
        self._window = InflightWindow(self.prefetch)

    # ------------------------------------------------------------------ #
    def map_record(self, record: ReadRecord) -> List[Tuple[CandidateMapping, str, str]]:
        """Map one read; returns (candidate, pattern, text) in mapper order."""
        candidates = self.mapper.map_sequence(record.name, record.sequence)
        return [
            (candidate,)
            + self.mapper.candidate_region_sequence(candidate, record.sequence)
            for candidate in candidates
        ]

    def submit(self, record: ReadRecord) -> None:
        """Queue one read for mapping (inline, threads, or processes)."""
        if self.executor is not None:
            self._window.append(
                record, self.executor.submit_map(record.name, record.sequence)
            )
            return
        if self.workers == 1:
            self._window.append(record, self.map_record(record))
            return
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-map"
            )
        self._window.append(record, self._pool.submit(self.map_record, record))

    def collect(self, *, block: bool = False) -> List[MappedRead]:
        """Pop completed reads from the front of the queue, in read order.

        Non-blocking by default: returns the finished prefix, waiting only
        when the in-flight window exceeds ``prefetch``.  With ``block=True``
        everything queued is waited for (the end-of-stream drain).
        """
        return self._window.collect(block=block)

    def drain(self) -> List[MappedRead]:
        """Wait for and return every read still in flight, in read order."""
        return self.collect(block=True)

    def close(self) -> None:
        """Shut down the stage's thread pool (if one was created).

        A caller-provided shared-memory executor is left running.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
