"""Align stage: dispatch pre-built waves to the vectorized engine.

With ``workers == 1`` each wave runs on an in-process
:class:`repro.batch.BatchAlignmentEngine`.  With ``workers > 1`` waves are
sharded across a spawn-context process pool: each worker receives the
(picklable) config plus the wave's pre-built (pattern, text) pairs and runs
the engine on exactly that wave — unlike the historical ``process`` backend
of :class:`repro.parallel.executor.BatchExecutor`, which shipped individual
pairs and rebuilt a scalar aligner per worker, workers here execute whole
lockstep waves, so the vectorized path and multiprocessing compose instead
of competing.  With an ``executor``
(:class:`repro.parallel.shm.SharedMemoryExecutor`) the pickling goes away
too: each wave is packed into a shared-memory segment and only its layout
descriptor crosses the process boundary, into workers holding warm,
already-constructed engines.  Short-read (``window_size > 64``)
configurations dispatch the same way: the engine's multi-word lanes mean
no per-wave scalar fallback, and the accumulator feeding this stage groups
lanes by the engine's windows × words/lane cost model
(:meth:`repro.batch.BatchAlignmentEngine.expected_work`).

Results are collected in wave submission order behind a bounded in-flight
window; the pipeline's reorder buffer (keyed by global candidate ordinal)
restores input order regardless.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.batch.engine import (
    DEFAULT_SCALAR_TRACEBACK_THRESHOLD,
    BatchAlignmentEngine,
)
from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig
from repro.pipeline.window import InflightWindow
from repro.telemetry.trace import get_tracer

__all__ = ["AlignStage"]


def _align_wave(
    config: GenASMConfig, engine_kwargs: dict, pairs: List[Tuple[str, str]]
) -> List[Alignment]:
    """Process-pool worker: align one pre-built wave with a fresh engine.

    Module-level so it pickles under the multiprocessing spawn context;
    only the config, the engine options and the wave's sequence pairs cross
    the process boundary.
    """
    return BatchAlignmentEngine(config, **engine_kwargs).align_pairs(pairs)


class AlignStage:
    """Submit/collect interface over wave-granular alignment execution.

    Parameters
    ----------
    config:
        Aligner configuration shared by every wave.
    workers:
        ``1`` aligns in-process; ``> 1`` shards waves across that many
        spawn processes.
    inflight:
        Maximum waves in flight before :meth:`submit` blocks on the oldest
        (defaults to ``2 * workers``).
    executor:
        Optional started-or-startable
        :class:`repro.parallel.shm.SharedMemoryExecutor`; when given,
        waves are dispatched to it as shared-memory descriptors instead of
        pickled pairs.  The executor stays caller-owned: :meth:`close`
        does not shut it down, so one warm pool can serve many runs.  Its
        config must equal this stage's.
    max_lanes, scheduling, scalar_traceback_threshold, name:
        Forwarded to :class:`BatchAlignmentEngine`.
    tracer:
        Optional :class:`~repro.telemetry.trace.Tracer`.  Each submitted
        wave gets a monotonically increasing ``wave_id`` and an
        ``align.wave`` span (in-process execution) or an
        ``align.dispatch`` span (the handoff to a pool or shared-memory
        executor; the executor's own tracer covers worker-side
        execution).
    """

    def __init__(
        self,
        config: Optional[GenASMConfig] = None,
        *,
        workers: int = 1,
        inflight: Optional[int] = None,
        executor=None,
        max_lanes: Optional[int] = None,
        scheduling: str = "sorted",
        scalar_traceback_threshold: int = DEFAULT_SCALAR_TRACEBACK_THRESHOLD,
        name: str = "genasm-streaming",
        tracer=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if inflight is not None and inflight < 1:
            raise ValueError("inflight must be at least 1")
        if executor is not None:
            workers = max(workers, executor.workers)
        self.workers = workers
        self.executor = executor
        self.inflight = inflight if inflight is not None else max(2, 2 * workers)
        self._engine_kwargs = {
            "max_lanes": max_lanes,
            "scheduling": scheduling,
            "scalar_traceback_threshold": scalar_traceback_threshold,
            "name": name,
        }
        # The in-process engine also validates config/options eagerly for
        # the sharded mode, so bad options fail at construction, not in a
        # worker traceback.
        self.engine = BatchAlignmentEngine(config, **self._engine_kwargs)
        if executor is not None and executor.config != self.engine.config:
            raise ValueError(
                "shared-memory executor was built with a different config "
                "than this align stage"
            )
        self._pool = None
        self._window = InflightWindow(self.inflight)
        self.tracer = get_tracer(tracer)
        #: Waves submitted so far; also the next wave's ``wave_id``.
        self.waves_submitted = 0

    @property
    def config(self) -> GenASMConfig:
        return self.engine.config

    @property
    def pending_waves(self) -> int:
        """Submitted waves not yet collected (the service's idle test)."""
        return len(self._window)

    # ------------------------------------------------------------------ #
    def submit(self, wave: Sequence) -> None:
        """Dispatch one wave (items must expose ``pattern`` and ``text``)."""
        pairs = [(item.pattern, item.text) for item in wave]
        wave_id = self.waves_submitted
        self.waves_submitted += 1
        if self.executor is not None:
            with self.tracer.span("align.dispatch", wave_id=wave_id, lanes=len(pairs)):
                future = self.executor.submit_wave(pairs, wave_id=wave_id)
            self._window.append(list(wave), future)
            return
        if self.workers == 1:
            with self.tracer.span("align.wave", wave_id=wave_id, lanes=len(pairs)):
                alignments = self.engine.align_pairs(pairs)
            self._window.append(list(wave), alignments)
            return
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor
            from multiprocessing import get_context

            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=get_context("spawn")
            )
        with self.tracer.span("align.dispatch", wave_id=wave_id, lanes=len(pairs)):
            future = self._pool.submit(
                _align_wave, self.config, self._engine_kwargs, pairs
            )
        self._window.append(list(wave), future)

    def collect(self, *, block: bool = False) -> List[Tuple[List, List[Alignment]]]:
        """Pop completed waves from the front of the queue, submission order.

        Non-blocking by default: returns the finished prefix, waiting only
        when more than ``inflight`` waves are queued.  ``block=True`` waits
        for everything (the end-of-stream drain).
        """
        out: List[Tuple[List, List[Alignment]]] = []
        for wave, alignments in self._window.collect(block=block):
            if len(alignments) != len(wave):
                raise AssertionError(
                    "align stage returned a wave of the wrong width "
                    f"({len(alignments)} != {len(wave)})"
                )
            out.append((wave, alignments))
        return out

    def drain(self) -> List[Tuple[List, List[Alignment]]]:
        """Wait for and return every wave still in flight."""
        return self.collect(block=True)

    def close(self) -> None:
        """Shut down the stage's own process pool (if one was created).

        A caller-provided shared-memory executor is deliberately left
        running — its pool and hosted segments outlive individual runs.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
