"""Ingest stage: normalise read sources into a lazy record stream.

The offline harness materialises a whole read list before anything else
runs; the streaming pipeline instead consumes reads one at a time, so the
mapper and the wave engine can start while ingest is still producing.
:func:`stream_reads` is the single adapter boundary — everything downstream
sees :class:`ReadRecord` values regardless of whether the source was a
:class:`~repro.genomics.read_simulator.SimulatedRead` generator, a list of
``(name, sequence)`` tuples, raw sequence strings, or a FASTA/FASTQ file on
disk (streamed record by record via
:func:`repro.genomics.fasta.iter_fasta` / ``iter_fastq``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Union

__all__ = ["ReadRecord", "stream_reads"]

#: File suffixes routed to the FASTQ reader (everything else parses as FASTA).
_FASTQ_SUFFIXES = {".fastq", ".fq"}


@dataclass(frozen=True)
class ReadRecord:
    """One read as seen by the pipeline: arrival index, name, sequence."""

    index: int
    name: str
    sequence: str

    @property
    def length(self) -> int:
        return len(self.sequence)


def _stream_path(path: Path) -> Iterator[tuple]:
    if path.suffix.lower() in _FASTQ_SUFFIXES:
        from repro.genomics.fasta import iter_fastq

        return iter_fastq(path)
    from repro.genomics.fasta import iter_fasta

    return iter_fasta(path)


def stream_reads(
    source: Union[str, Path, Iterable], *, name_prefix: str = "read"
) -> Iterator[ReadRecord]:
    """Yield :class:`ReadRecord` values lazily from any supported source.

    Accepted sources (detected per item, so mixed iterables work):

    * a FASTA/FASTQ path (``str`` / ``Path``) — streamed from disk;
    * an iterable of objects with ``name`` and ``sequence`` attributes
      (e.g. :class:`~repro.genomics.read_simulator.SimulatedRead` or
      :class:`ReadRecord` itself);
    * an iterable of ``(name, sequence)`` or ``(name, sequence, quality)``
      tuples (the FASTA/FASTQ record shapes);
    * an iterable of bare sequence strings, named ``{name_prefix}_NNNNNN``.

    Records are indexed by arrival order; that index is the pipeline's
    global read ordinal and drives in-order result emission.
    """
    if isinstance(source, (str, Path)):
        source = _stream_path(Path(source))

    for index, item in enumerate(source):
        if isinstance(item, str):
            yield ReadRecord(index, f"{name_prefix}_{index:06d}", item)
        elif isinstance(item, tuple) and 2 <= len(item) <= 3:
            yield ReadRecord(index, str(item[0]), str(item[1]))
        elif hasattr(item, "name") and hasattr(item, "sequence"):
            yield ReadRecord(index, item.name, item.sequence)
        else:
            raise TypeError(
                "unsupported read item: expected a sequence string, a "
                "(name, sequence[, quality]) tuple, or an object with "
                f".name/.sequence attributes, got {type(item).__name__}"
            )
