"""(w, k) minimizer extraction.

A *minimizer* is the k-mer with the smallest hash value inside each window
of ``w`` consecutive k-mers (Roberts et al. 2004); indexing only minimizers
shrinks the index by roughly ``2/(w+1)`` while guaranteeing that any two
sequences sharing a sufficiently long exact stretch share a minimizer.
Canonical (strand-independent) minimizers are used, as in minimap2: each
k-mer is hashed together with its reverse complement and the smaller of the
two decides the stored strand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.genomics.sequences import encode_sequence

__all__ = ["Minimizer", "extract_minimizers", "kmer_hashes"]

_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)
_HASH_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class Minimizer:
    """One selected minimizer occurrence."""

    hash: int
    position: int
    strand: int  # +1 forward, -1 reverse-complement canonical


def _mix(values: np.ndarray) -> np.ndarray:
    """Invertible 64-bit finaliser (splitmix-style) to decorrelate k-mer codes."""
    v = values.astype(np.uint64)
    v = (v * _HASH_MULTIPLIER) & _HASH_MASK
    v ^= v >> np.uint64(31)
    v = (v * np.uint64(0xBF58476D1CE4E5B9)) & _HASH_MASK
    v ^= v >> np.uint64(27)
    v = (v * np.uint64(0x94D049BB133111EB)) & _HASH_MASK
    v ^= v >> np.uint64(31)
    return v


def kmer_hashes(sequence: str, k: int) -> np.ndarray:
    """Canonical hashes of every k-mer of ``sequence`` (vectorised).

    Returns an array of length ``len(sequence) - k + 1``; the sign of the
    canonical choice is returned separately by :func:`extract_minimizers`.
    """
    if k <= 0 or k > 31:
        raise ValueError("k must be in 1..31")
    codes = encode_sequence(sequence).astype(np.uint64)
    n = len(sequence) - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.uint64)
    # Packed 2-bit forward codes via a rolling polynomial evaluation.
    forward = np.zeros(n, dtype=np.uint64)
    reverse = np.zeros(n, dtype=np.uint64)
    for offset in range(k):
        forward = (forward << np.uint64(2)) | codes[offset : offset + n]
        comp = np.uint64(3) - codes[k - 1 - offset : k - 1 - offset + n]
        reverse = (reverse << np.uint64(2)) | comp
    fwd_hash = _mix(forward)
    rev_hash = _mix(reverse)
    return np.minimum(fwd_hash, rev_hash)


def extract_minimizers(sequence: str, k: int = 15, w: int = 10) -> List[Minimizer]:
    """Extract (w, k) canonical minimizers of ``sequence``.

    Consecutive duplicate selections are collapsed, so each returned
    occurrence is unique by position.
    """
    if k <= 0 or k > 31:
        raise ValueError("k must be in 1..31")
    if w <= 0:
        raise ValueError("w must be positive")
    n_kmers = len(sequence) - k + 1
    if n_kmers <= 0:
        return []
    codes = encode_sequence(sequence).astype(np.uint64)
    forward = np.zeros(n_kmers, dtype=np.uint64)
    reverse = np.zeros(n_kmers, dtype=np.uint64)
    for offset in range(k):
        forward = (forward << np.uint64(2)) | codes[offset : offset + n_kmers]
        comp = np.uint64(3) - codes[k - 1 - offset : k - 1 - offset + n_kmers]
        reverse = (reverse << np.uint64(2)) | comp
    fwd_hash = _mix(forward)
    rev_hash = _mix(reverse)
    canonical = np.minimum(fwd_hash, rev_hash)
    strands = np.where(fwd_hash <= rev_hash, 1, -1)

    window = min(w, n_kmers)
    # Vectorised sliding-window argmin: one row per window of `window` k-mers.
    views = np.lib.stride_tricks.sliding_window_view(canonical, window)
    positions = views.argmin(axis=1) + np.arange(views.shape[0])
    # Collapse consecutive windows that select the same k-mer occurrence.
    unique_positions = np.unique(positions)

    minimizers: List[Minimizer] = []
    for position in unique_positions:
        pos = int(position)
        minimizers.append(
            Minimizer(
                hash=int(canonical[pos]),
                position=pos,
                strand=int(strands[pos]),
            )
        )
    return minimizers
