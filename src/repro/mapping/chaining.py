"""Colinear chaining of minimizer anchors (minimap2-style, simplified).

An *anchor* is a (query position, reference position) pair where the read
and the reference share a minimizer.  Chaining finds subsets of anchors
that are colinear (increasing in both coordinates, same strand, bounded
diagonal drift) and scores them; each good chain corresponds to one
candidate mapping location.  The dynamic program follows minimap2's
formulation with a simplified gap cost and a bounded predecessor window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Anchor", "Chain", "chain_anchors"]


@dataclass(frozen=True)
class Anchor:
    """A shared minimizer occurrence between the read and the reference."""

    query_pos: int
    ref_pos: int
    strand: int  # +1 if read and reference minimizers are on the same strand
    length: int = 15


@dataclass
class Chain:
    """One colinear chain of anchors (a candidate mapping)."""

    anchors: List[Anchor] = field(default_factory=list)
    score: float = 0.0
    strand: int = 1

    def _require_anchors(self) -> List[Anchor]:
        # A bare ``min() arg is an empty sequence`` from the properties
        # below told callers nothing about *what* was empty.
        if not self.anchors:
            raise ValueError(
                "empty chain has no coordinates (no anchors); "
                "chain_anchors never emits such chains"
            )
        return self.anchors

    @property
    def query_start(self) -> int:
        return min(a.query_pos for a in self._require_anchors())

    @property
    def query_end(self) -> int:
        return max(a.query_pos + a.length for a in self._require_anchors())

    @property
    def ref_start(self) -> int:
        return min(a.ref_pos for a in self._require_anchors())

    @property
    def ref_end(self) -> int:
        return max(a.ref_pos + a.length for a in self._require_anchors())

    def __len__(self) -> int:
        return len(self.anchors)


def chain_anchors(
    anchors: Sequence[Anchor],
    *,
    max_gap: int = 2_000,
    max_diagonal_drift: int = 500,
    max_predecessors: int = 50,
    min_chain_score: float = 40.0,
    min_chain_anchors: int = 3,
) -> List[Chain]:
    """Chain anchors of one (read, chromosome, strand) group.

    Returns chains sorted by decreasing score.  Anchors may appear in at
    most one returned chain (best-first assignment), mirroring how minimap2
    extracts primary and secondary chains.
    """
    if not anchors:
        return []
    order = sorted(range(len(anchors)), key=lambda i: (anchors[i].ref_pos, anchors[i].query_pos))
    sorted_anchors = [anchors[i] for i in order]
    n = len(sorted_anchors)

    score = np.zeros(n, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    for i, anchor in enumerate(sorted_anchors):
        score[i] = anchor.length
        start = max(0, i - max_predecessors)
        for j in range(start, i):
            prev = sorted_anchors[j]
            dq = anchor.query_pos - prev.query_pos
            dr = anchor.ref_pos - prev.ref_pos
            if dq <= 0 or dr <= 0:
                continue
            if dq > max_gap or dr > max_gap:
                continue
            drift = abs(dq - dr)
            if drift > max_diagonal_drift:
                continue
            gain = min(dq, dr, anchor.length) - 0.01 * drift - 0.05 * np.log1p(max(dq, dr))
            candidate = score[j] + gain
            if candidate > score[i]:
                score[i] = candidate
                parent[i] = j

    used = np.zeros(n, dtype=bool)
    chains: List[Chain] = []
    for i in np.argsort(-score):
        if used[i] or score[i] < min_chain_score:
            continue
        members: List[int] = []
        node = int(i)
        while node != -1 and not used[node]:
            members.append(node)
            node = int(parent[node])
        if len(members) < min_chain_anchors:
            for node in members:
                used[node] = True
            continue
        members.reverse()
        for node in members:
            used[node] = True
        chain_anchors_list = [sorted_anchors[node] for node in members]
        assert chain_anchors_list, "chain_anchors must never emit an empty chain"
        chains.append(
            Chain(
                anchors=chain_anchors_list,
                score=float(score[i]),
                strand=chain_anchors_list[0].strand,
            )
        )
    chains.sort(key=lambda c: -c.score)
    return chains
