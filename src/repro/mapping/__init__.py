"""Minimizer-based read mapping (the minimap2 role in the paper's pipeline).

The paper obtains candidate (read, reference) pairs by running minimap2
with ``-P`` (report all chains) and aligning every candidate location with
every aligner under test.  This package provides the same artefact:

* :mod:`repro.mapping.minimizers` — (w, k) minimizer extraction;
* :mod:`repro.mapping.index` — a hash index of reference minimizers;
* :mod:`repro.mapping.chaining` — colinear anchor chaining;
* :mod:`repro.mapping.mapper` — the end-to-end mapper producing
  :class:`~repro.mapping.mapper.CandidateMapping` objects (all chains, not
  just the best one).
"""

from repro.mapping.minimizers import Minimizer, extract_minimizers
from repro.mapping.index import MinimizerIndex
from repro.mapping.chaining import Anchor, Chain, chain_anchors
from repro.mapping.mapper import CandidateMapping, Mapper

__all__ = [
    "Minimizer",
    "extract_minimizers",
    "MinimizerIndex",
    "Anchor",
    "Chain",
    "chain_anchors",
    "CandidateMapping",
    "Mapper",
]
