"""End-to-end minimizer mapper producing candidate (read, reference) pairs.

This plays minimap2's role in the paper's pipeline: for every read it
reports *all* chains above a score threshold (the paper runs minimap2 with
``-P`` precisely to obtain every candidate location, 138,929 of them for
500 reads), and each candidate carries the reference span that the
downstream aligners (GenASM, Edlib, KSW2) then align against the read.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig
from repro.genomics.genome import SyntheticGenome
from repro.genomics.read_simulator import SimulatedRead
from repro.genomics.sequences import reverse_complement
from repro.mapping.chaining import Anchor, Chain, chain_anchors
from repro.mapping.index import MinimizerIndex
from repro.mapping.minimizers import extract_minimizers

__all__ = ["CandidateMapping", "Mapper", "mapping_confidence"]


def mapping_confidence(
    candidates: List[CandidateMapping],
) -> Tuple[int, float, float]:
    """Elect the primary among one read's candidates (the MAPQ inputs).

    Returns ``(primary_index, primary_score, best_secondary_score)``.
    The primary is the candidate the mapper flagged ``is_primary`` (ties
    broken by chain score) or, when no flag is set — e.g. a hand-built
    group — simply the best-scoring candidate.  ``best_secondary_score``
    is the strongest *other* chain's score, ``0.0`` when the mapping is
    unique; the gap between the two is what
    :func:`repro.io.compute_mapq` turns into a mapping quality.
    """
    if not candidates:
        raise ValueError("mapping_confidence needs at least one candidate")
    primary_index = max(
        range(len(candidates)),
        key=lambda i: (candidates[i].is_primary, candidates[i].chain_score),
    )
    primary_score = float(candidates[primary_index].chain_score)
    secondary_score = max(
        (
            float(c.chain_score)
            for i, c in enumerate(candidates)
            if i != primary_index
        ),
        default=0.0,
    )
    return primary_index, primary_score, secondary_score


@dataclass
class CandidateMapping:
    """One candidate location of a read on the reference."""

    read_name: str
    chrom: str
    ref_start: int
    ref_end: int
    strand: str
    chain_score: float
    anchors: int
    is_primary: bool

    @property
    def span(self) -> int:
        return self.ref_end - self.ref_start


class Mapper:
    """Minimizer seed-and-chain mapper.

    Parameters
    ----------
    genome:
        Reference to map against (indexed at construction time).
    k, w:
        Minimizer parameters (minimap2's long-read defaults are 15/10).
    region_padding:
        Extra reference bases added on each side of a chain's span when the
        candidate region is extracted, so that the aligner has slack for
        indels at the ends.
    all_chains:
        Report every chain above threshold (the ``-P`` behaviour the paper
        uses) rather than only the primary chain.
    index:
        Pre-built index to map against instead of building one here —
        e.g. a :class:`repro.parallel.shm.SharedMinimizerIndex` attached
        to segments hosted by another process.  Must match ``k``/``w``.
    """

    def __init__(
        self,
        genome: SyntheticGenome,
        *,
        k: int = 15,
        w: int = 10,
        max_occurrences: int = 64,
        min_chain_score: float = 40.0,
        min_chain_anchors: int = 3,
        region_padding: int = 64,
        all_chains: bool = True,
        index=None,
    ) -> None:
        self.genome = genome
        self.k = k
        self.w = w
        self.max_occurrences = max_occurrences
        self.min_chain_score = min_chain_score
        self.min_chain_anchors = min_chain_anchors
        self.region_padding = region_padding
        self.all_chains = all_chains
        if index is None:
            index = MinimizerIndex.build(genome, k, w, max_occurrences=max_occurrences)
        self.index = index

    # ------------------------------------------------------------------ #
    def map_sequence(self, name: str, sequence: str) -> List[CandidateMapping]:
        """Map one read sequence; returns candidates sorted by chain score."""
        read_minimizers = extract_minimizers(sequence, self.k, self.w)
        if not read_minimizers:
            return []

        # Group anchors by (chromosome, relative strand).
        grouped: Dict[Tuple[str, int], List[Anchor]] = defaultdict(list)
        for minimizer in read_minimizers:
            for hit in self.index.lookup(minimizer.hash):
                relative_strand = 1 if minimizer.strand == hit.strand else -1
                if relative_strand == 1:
                    query_pos = minimizer.position
                else:
                    # For reverse-strand candidates, chain in the coordinates
                    # of the reverse-complemented read so anchors stay colinear.
                    query_pos = len(sequence) - self.k - minimizer.position
                grouped[(hit.chrom, relative_strand)].append(
                    Anchor(
                        query_pos=query_pos,
                        ref_pos=hit.position,
                        strand=relative_strand,
                        length=self.k,
                    )
                )

        candidates: List[CandidateMapping] = []
        for (chrom, strand), anchors in grouped.items():
            chains = chain_anchors(
                anchors,
                min_chain_score=self.min_chain_score,
                min_chain_anchors=self.min_chain_anchors,
            )
            if not chains:
                continue
            if not self.all_chains:
                chains = chains[:1]
            for rank, chain in enumerate(chains):
                region_start, region_end = self._chain_region(chain, len(sequence), chrom)
                candidates.append(
                    CandidateMapping(
                        read_name=name,
                        chrom=chrom,
                        ref_start=region_start,
                        ref_end=region_end,
                        strand="+" if strand == 1 else "-",
                        chain_score=chain.score,
                        anchors=len(chain),
                        is_primary=False,
                    )
                )
        candidates.sort(key=lambda c: -c.chain_score)
        if candidates:
            candidates[0].is_primary = True
        return candidates

    def map_read(self, read: SimulatedRead) -> List[CandidateMapping]:
        """Map a :class:`SimulatedRead`."""
        return self.map_sequence(read.name, read.sequence)

    def map_reads(self, reads: List[SimulatedRead]) -> List[CandidateMapping]:
        """Map a batch of reads; returns the concatenated candidate list."""
        out: List[CandidateMapping] = []
        for read in reads:
            out.extend(self.map_read(read))
        return out

    # ------------------------------------------------------------------ #
    def _chain_region(
        self, chain: Chain, read_length: int, chrom: str
    ) -> Tuple[int, int]:
        """Reference span implied by a chain.

        The left edge is the chain's projection of the read start (no
        padding): downstream aligners use start-anchored semantics, so the
        expected alignment must begin at (or within a few indels of) the
        region start.  The right edge gets ``region_padding`` extra bases so
        insertions near the read end never run out of reference.
        """
        chrom_len = self.genome.chromosome_length(chrom)
        start = chain.ref_start - chain.query_start
        end = chain.ref_end + (read_length - chain.query_end) + self.region_padding
        return max(0, start), min(chrom_len, end)

    def candidate_region_sequence(
        self, candidate: CandidateMapping, read_sequence: str
    ) -> Tuple[str, str]:
        """Return the (pattern, text) pair an aligner should be given.

        The pattern is the read in the orientation of the candidate strand;
        the text is the padded reference region.
        """
        region = self.genome.fetch(candidate.chrom, candidate.ref_start, candidate.ref_end)
        pattern = (
            read_sequence if candidate.strand == "+" else reverse_complement(read_sequence)
        )
        return pattern, region

    # ------------------------------------------------------------------ #
    def align_candidates(
        self,
        candidates: List[CandidateMapping],
        read_sequences: Mapping[str, str],
        config: Optional[GenASMConfig] = None,
        *,
        backend: str = "vectorized",
        workers: int = 1,
        executor=None,
    ) -> List[Alignment]:
        """Batch-align every candidate region against its read with GenASM.

        This is the mapper half of the paper's pipeline joined to the
        aligner half: the candidate regions produced by seed-and-chain are
        gathered into one batch of (pattern, text) pairs and dispatched
        through the :mod:`repro.execution` backend registry.  ``backend``
        names any registered backend (``serial``/``process``/
        ``vectorized``/``shared``/``streaming`` today); all of them produce
        identical alignments.  ``workers`` only takes effect on the
        multiprocess backends, and ``executor`` threads a reusable
        :class:`repro.parallel.shm.SharedMemoryExecutor` into the backends
        that accept one.  For full ingest/map/align overlap, drive
        :meth:`repro.pipeline.StreamingPipeline.run` with the reads
        directly instead.  The returned list is parallel to ``candidates``.
        """
        from repro.execution import get_backend

        pairs = [
            self.candidate_region_sequence(c, read_sequences[c.read_name])
            for c in candidates
        ]
        impl = get_backend(backend)
        return impl.align_pairs(
            pairs,
            config if config is not None else GenASMConfig(),
            workers=workers,
            mapper=self,
            executor=executor,
        )
