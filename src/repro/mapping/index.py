"""Minimizer hash index over a reference genome."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.genomics.genome import SyntheticGenome
from repro.mapping.minimizers import Minimizer, extract_minimizers

__all__ = ["IndexHit", "MinimizerIndex"]


@dataclass(frozen=True)
class IndexHit:
    """One reference occurrence of a query minimizer."""

    chrom: str
    position: int
    strand: int


class MinimizerIndex:
    """Hash table from minimizer hash to reference occurrences.

    Highly repetitive minimizers (those occurring more than
    ``max_occurrences`` times) are dropped at build time, mirroring
    minimap2's ``-f`` frequency filter; without it, repeats blow up the
    anchor lists without adding mapping information.
    """

    def __init__(self, k: int = 15, w: int = 10, *, max_occurrences: int = 64) -> None:
        if max_occurrences <= 0:
            raise ValueError("max_occurrences must be positive")
        self.k = k
        self.w = w
        self.max_occurrences = max_occurrences
        self._table: Dict[int, List[IndexHit]] = {}
        self._built = False
        self.indexed_minimizers = 0
        self.dropped_minimizers = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        genome: SyntheticGenome,
        k: int = 15,
        w: int = 10,
        *,
        max_occurrences: int = 64,
    ) -> "MinimizerIndex":
        """Index every chromosome of ``genome``."""
        index = cls(k, w, max_occurrences=max_occurrences)
        index.add_genome(genome)
        index.finalise()
        return index

    def add_genome(self, genome: SyntheticGenome) -> None:
        """Add all chromosomes of a genome to the (unfinalised) index."""
        for name, sequence in genome.chromosomes.items():
            self.add_sequence(name, sequence)

    def add_sequence(self, name: str, sequence: str) -> None:
        """Add one named sequence to the (unfinalised) index."""
        if self._built:
            raise RuntimeError("index already finalised")
        table = self._table
        for minimizer in extract_minimizers(sequence, self.k, self.w):
            table.setdefault(minimizer.hash, []).append(
                IndexHit(chrom=name, position=minimizer.position, strand=minimizer.strand)
            )

    def finalise(self) -> None:
        """Apply the frequency filter and freeze the index."""
        filtered: Dict[int, List[IndexHit]] = {}
        kept = 0
        dropped = 0
        for key, hits in self._table.items():
            if len(hits) > self.max_occurrences:
                dropped += len(hits)
                continue
            filtered[key] = hits
            kept += len(hits)
        self._table = filtered
        self.indexed_minimizers = kept
        self.dropped_minimizers = dropped
        self._built = True

    # ------------------------------------------------------------------ #
    def lookup(self, minimizer_hash: int) -> List[IndexHit]:
        """All reference occurrences of a minimizer hash (possibly empty)."""
        return self._table.get(minimizer_hash, [])

    def lookup_many(self, minimizers: Iterable[Minimizer]) -> List[Tuple[Minimizer, IndexHit]]:
        """Join query minimizers against the index."""
        out: List[Tuple[Minimizer, IndexHit]] = []
        for minimizer in minimizers:
            for hit in self.lookup(minimizer.hash):
                out.append((minimizer, hit))
        return out

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, minimizer_hash: int) -> bool:
        return minimizer_hash in self._table
