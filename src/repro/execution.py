"""Unified execution backend seam for batch alignment.

Before this module, three call sites each re-implemented backend dispatch
with their own ``if backend == ...`` ladders:
:meth:`repro.parallel.executor.BatchExecutor.run_alignments`,
:meth:`repro.mapping.mapper.Mapper.align_candidates`, and
:class:`repro.pipeline.StreamingPipeline`.  They now all resolve names
through one registry of :class:`ExecutionBackend` implementations, so a
new execution context (the ROADMAP's ``gpu`` item, a remote service) plugs
in once via :func:`register_backend` and is immediately reachable from
every entry point.

Every backend honours the same contract: given the same (pattern, text)
pairs and config it returns byte-identical alignments in input order —
the differential harness pins this across the registry.  What differs is
*how* the work moves, captured per backend in
:class:`BackendCapabilities` (see the README's capability matrix):

========== ============================== =========================== =============================
backend    copy semantics                 ordering                    traceback path
========== ============================== =========================== =============================
serial     none (in-process loop)         input order                 scalar bitvector walk
process    pickle per pair                input order (pool map)      scalar bitvector walk
vectorized none (in-process SoA waves)    input order                 decision-word wave (scalar
                                                                      fallback below threshold)
shared     shared-memory descriptors      input order (chunk concat)  decision-word wave per worker
streaming  in-process waves, or shared-   bounded reorder buffer      heuristic scalar/vectorized
           memory descriptors with an     (in order; out-of-order     per wave
           executor                       emission opt-in)
service    in-process waves shared        per-request input order     heuristic scalar/vectorized
           across client requests         (futures resolve            per wave
           (shared-memory descriptors     independently)
           with an executor)
========== ============================== =========================== =============================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig

__all__ = [
    "BackendCapabilities",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "VectorizedBackend",
    "SharedBackend",
    "StreamingBackend",
    "ServiceBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "capability_matrix",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend promises about how work and results move."""

    name: str
    #: How pair data crosses into the execution context.
    copy_semantics: str
    #: Result ordering guarantee relative to the input pair order.
    ordering: str
    #: Which traceback implementation produces the CIGARs.
    traceback: str
    #: Whether the backend spans multiple OS processes.
    multiprocess: bool
    summary: str


@runtime_checkable
class ExecutionBackend(Protocol):
    """One way of running a batch of GenASM alignments.

    Implementations are stateless dispatchers: all per-run context arrives
    as arguments, so one registered instance serves every caller.
    ``align_pairs`` must return alignments byte-identical to the serial
    reference, parallel to ``pairs``.
    """

    name: str
    capabilities: BackendCapabilities

    def align_pairs(
        self,
        pairs: Sequence[Tuple[str, str]],
        config: GenASMConfig,
        *,
        workers: int = 1,
        chunk_size: int = 32,
        mapper=None,
        executor=None,
    ) -> List[Alignment]:
        ...

    def effective_workers(self, workers: int) -> int:
        """Process count the backend would actually use for ``workers``."""
        ...


# --------------------------------------------------------------------------- #
class SerialBackend:
    """Reference implementation: one scalar aligner in a Python loop."""

    name = "serial"
    capabilities = BackendCapabilities(
        name="serial",
        copy_semantics="none (in-process loop)",
        ordering="input order",
        traceback="scalar bitvector walk",
        multiprocess=False,
        summary="one GenASMAligner applied pair by pair; the ground truth",
    )

    def align_pairs(self, pairs, config, *, workers=1, chunk_size=32, mapper=None, executor=None):
        from repro.core.aligner import GenASMAligner

        aligner = GenASMAligner(config)
        return [aligner.align(pattern, text) for pattern, text in pairs]

    def effective_workers(self, workers: int) -> int:
        return 1


class ProcessBackend:
    """Spawn pool that pickles each pair to a private per-worker aligner."""

    name = "process"
    capabilities = BackendCapabilities(
        name="process",
        copy_semantics="pickle per pair (config + both sequences)",
        ordering="input order (pool map)",
        traceback="scalar bitvector walk",
        multiprocess=True,
        summary="the historical everything-by-value pool; superseded by 'shared'",
    )

    def align_pairs(self, pairs, config, *, workers=1, chunk_size=32, mapper=None, executor=None):
        from functools import partial
        from multiprocessing import get_context

        from repro.parallel.executor import _align_pair_with_config

        if workers == 1:
            return SerialBackend().align_pairs(pairs, config)
        ctx = get_context("spawn")
        with ctx.Pool(workers) as pool:
            return pool.map(
                partial(_align_pair_with_config, config),
                pairs,
                chunksize=max(1, chunk_size),
            )

    def effective_workers(self, workers: int) -> int:
        return workers


class VectorizedBackend:
    """In-process lockstep SoA engine (:mod:`repro.batch`)."""

    name = "vectorized"
    capabilities = BackendCapabilities(
        name="vectorized",
        copy_semantics="none (in-process SoA waves)",
        ordering="input order",
        traceback="decision-word wave traceback (scalar fallback below threshold)",
        multiprocess=False,
        summary="NumPy lockstep waves in one process; the offline mega-batch path",
    )

    def align_pairs(self, pairs, config, *, workers=1, chunk_size=32, mapper=None, executor=None):
        from repro.batch import BatchAlignmentEngine

        return BatchAlignmentEngine(config).align_pairs(pairs)

    def effective_workers(self, workers: int) -> int:
        return 1


class SharedBackend:
    """Shared-memory descriptor handoff to a warm spawn pool.

    Dispatches through :class:`repro.parallel.shm.SharedMemoryExecutor`:
    pairs are packed into per-wave shared segments and only layout
    metadata crosses the process boundary.  Pass an already-started
    ``executor`` to amortise pool spawn across calls (it is left running);
    otherwise a temporary one is created and torn down around the batch.
    """

    name = "shared"
    capabilities = BackendCapabilities(
        name="shared",
        copy_semantics="shared-memory descriptors (segments packed once per wave)",
        ordering="input order (contiguous chunks, concatenated)",
        traceback="decision-word wave traceback per worker",
        multiprocess=True,
        summary="zero-copy wave handoff to a reusable warm pool",
    )

    def align_pairs(self, pairs, config, *, workers=1, chunk_size=32, mapper=None, executor=None):
        from repro.parallel.shm import SharedMemoryExecutor

        if executor is not None:
            if executor.config != config:
                raise ValueError(
                    "provided SharedMemoryExecutor was built with a different config"
                )
            return executor.run_alignments(pairs)
        if workers == 1:
            return VectorizedBackend().align_pairs(pairs, config)
        with SharedMemoryExecutor(workers=workers, config=config) as owned:
            return owned.run_alignments(pairs)

    def effective_workers(self, workers: int) -> int:
        return workers


class StreamingBackend:
    """Wave-accumulated streaming execution (:class:`StreamingPipeline`)."""

    name = "streaming"
    capabilities = BackendCapabilities(
        name="streaming",
        copy_semantics=(
            "in-process waves; shared-memory descriptors when given an executor"
        ),
        ordering="bounded reorder buffer (in order; out-of-order emission opt-in)",
        traceback="heuristic scalar/vectorized per wave",
        multiprocess=True,
        summary="overlapped ingest/map/align dataflow; pairs flow through waves",
    )

    def align_pairs(self, pairs, config, *, workers=1, chunk_size=32, mapper=None, executor=None):
        from repro.pipeline import StreamingPipeline

        pipeline = StreamingPipeline(
            mapper, config, align_workers=workers, executor=executor
        )
        return pipeline.align_pairs(pairs)

    def effective_workers(self, workers: int) -> int:
        return workers


class ServiceBackend:
    """One-shot request through the alignment-as-a-service front-end.

    Routes the batch through :class:`repro.service.AlignmentService` as a
    single-tenant request — the same coalescing, routing and latency
    accounting a long-lived service applies, collapsed to one client.
    Real multi-client callers construct the service directly and keep it
    running; this backend exists so the unified seam (and its differential
    harness) covers the service path too.
    """

    name = "service"
    capabilities = BackendCapabilities(
        name="service",
        copy_semantics=(
            "in-process waves shared across client requests "
            "(shared-memory descriptors with an executor)"
        ),
        ordering="per-request input order (futures resolve independently)",
        traceback="heuristic scalar/vectorized per wave",
        multiprocess=True,
        summary="multi-tenant request coalescing over the streaming wave core",
    )

    def align_pairs(self, pairs, config, *, workers=1, chunk_size=32, mapper=None, executor=None):
        from repro.service import AlignmentService

        with AlignmentService(
            config, workers=workers, executor=executor, linger_seconds=None
        ) as service:
            return service.submit(pairs).result()

    def effective_workers(self, workers: int) -> int:
        return workers


# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend, *, replace: bool = False) -> None:
    """Add a backend to the registry under ``backend.name``.

    This is the seam future execution contexts (``gpu``, remote service)
    plug into: registering makes the name resolvable from
    ``BatchExecutor``, ``Mapper.align_candidates`` and the pipeline alike.
    """
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> ExecutionBackend:
    """Resolve a backend by name; raises ``ValueError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"backend must be one of {available_backends()}, got {name!r}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def capability_matrix() -> List[BackendCapabilities]:
    """Capability row for every registered backend (README's matrix)."""
    return [backend.capabilities for backend in _REGISTRY.values()]


for _backend in (
    SerialBackend(),
    ProcessBackend(),
    VectorizedBackend(),
    SharedBackend(),
    StreamingBackend(),
    ServiceBackend(),
):
    register_backend(_backend)
del _backend
