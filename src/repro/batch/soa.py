"""Structure-of-arrays (SoA) lane layout for batched GenASM windows.

The vectorized batch engine evaluates many window pairs *in lockstep*: at
DP step ``(d, j)`` every lane (one lane = one window pair) performs the same
bitvector operation on its own 64-bit word.  This module owns the lane
layout — the transposition from a list of per-window Python objects into
NumPy ``uint64`` arrays indexed ``[lane]`` or ``[lane, column]`` — so the
engine's hot loop touches only contiguous arrays.

The same layout is what a GPU implementation would use: one warp lane per
window pair, pattern masks staged in shared memory, per-lane band offsets
in registers.  :func:`lockstep_stats` quantifies the cost of that lockstep
execution (lanes in a group wait for the slowest member), which
:class:`repro.gpu.simulator.GpuSimulator` uses to model warp divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bitvector import pattern_bitmasks_zero_match
from repro.core.metrics import AccessCounter

__all__ = ["LaneJob", "SoAWave", "lockstep_stats"]

#: Widest pattern window a single uint64 lane can hold.
MAX_LANE_BITS = 64


def _all_ones_u64(width: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.bitvector.all_ones` for widths 1..64.

    ``(1 << (w - 1)) - 1) * 2 + 1`` avoids the ``1 << 64`` overflow at full
    width.  The differential tests pin this (and the other vectorized
    re-derivations below) to the scalar helpers in
    :mod:`repro.core.improvements`.
    """
    return (
        ((np.uint64(1) << (width - 1).astype(np.uint64)) - np.uint64(1)) * np.uint64(2)
    ) + np.uint64(1)


@dataclass
class LaneJob:
    """One window pair occupying one lane of a wave.

    ``pattern`` and ``text`` are the *reversed* window sequences (the same
    anchoring trick :mod:`repro.core.windowing` uses), ``max_errors`` the
    clamped per-lane error budget, and ``store_from`` the first text column
    whose entries are persisted (traceback-reachability pruning).
    """

    pattern: str
    text: str
    max_errors: int
    store_from: int = 0
    counter: AccessCounter = field(default_factory=AccessCounter)

    def __post_init__(self) -> None:
        if not (1 <= len(self.pattern) <= MAX_LANE_BITS):
            raise ValueError(
                f"lane pattern must be 1..{MAX_LANE_BITS} characters, "
                f"got {len(self.pattern)}"
            )
        if len(self.text) == 0:
            raise ValueError("lane text must be non-empty (empty windows are handled scalar-side)")


class SoAWave:
    """SoA arrays for one wave of lanes, ready for the lockstep DP.

    Attributes (``L`` lanes, ``n_max`` = longest lane text):

    ``m``, ``n``, ``k``
        int64 ``(L,)`` — pattern length, text length, error budget.
    ``ones``
        uint64 ``(L,)`` — per-lane all-ones bitvector (``2^m − 1``).
    ``masks``
        uint64 ``(L, n_max)`` — GenASM zero-match pattern mask for each
        lane's text character; columns beyond a lane's text are padded with
        that lane's ``ones`` (never consumed).
    ``band_lo``
        uint64 ``(L, n_max + 1)`` — band offset per column (all zeros when
        the band improvement is off).  Clamped to 63 for the padded columns
        so shifts stay defined; valid columns are never clamped.
    ``band_mask``
        uint64 ``(L,)`` — mask selecting the stored band bits.
    ``store_from``, ``entry_store``
        int64 ``(L,)`` — first persisted column and bytes per stored entry.
    """

    def __init__(
        self, jobs: Sequence[LaneJob], *, traceback_band: bool, word_bits: int = 64
    ) -> None:
        if not jobs:
            raise ValueError("a wave needs at least one lane")
        self.jobs = list(jobs)
        L = len(self.jobs)
        self.lanes = L
        self.traceback_band = traceback_band
        self.word_bits = word_bits

        self.m = np.array([len(j.pattern) for j in self.jobs], dtype=np.int64)
        self.n = np.array([len(j.text) for j in self.jobs], dtype=np.int64)
        self.k = np.array(
            [max(0, min(j.max_errors, len(j.pattern))) for j in self.jobs],
            dtype=np.int64,
        )
        self.n_max = int(self.n.max())
        self.k_max = int(self.k.max())
        self.ones = _all_ones_u64(self.m)  # m >= 1 per LaneJob
        self.masks = self._build_masks()

        if traceback_band:
            self.store_from = np.array(
                [max(0, min(j.store_from, len(j.text))) for j in self.jobs],
                dtype=np.int64,
            )
        else:
            self.store_from = np.zeros(L, dtype=np.int64)

        cols = np.arange(self.n_max + 1, dtype=np.int64)
        if traceback_band:
            lo = (self.m[:, None] - 1) - (self.n[:, None] - cols[None, :]) - self.k[:, None]
            lo = np.clip(lo, 0, MAX_LANE_BITS - 1)
            self.band_lo = lo.astype(np.uint64)
        else:
            self.band_lo = np.zeros((L, self.n_max + 1), dtype=np.uint64)
        # band_width(m, k), vectorized; never zero because m >= 1.
        width = np.minimum(self.m, 2 * self.k + 2)
        self.band_mask = _all_ones_u64(width)
        #: columns that are persisted per lane (inside the lane's text and
        #: at/after its store_from column)
        self.store_col = (cols[None, :] >= self.store_from[:, None]) & (
            cols[None, :] <= self.n[:, None]
        )
        # entry_bytes, vectorized: full words without the band improvement,
        # else the smallest power-of-two unit (8..word_bits bits) covering
        # the band width.
        if not traceback_band:
            words = np.maximum(1, -(-self.m // word_bits))
            self.entry_store = (words * (word_bits // 8)).astype(np.int64)
        else:
            target = np.minimum(width, word_bits)
            unit = np.full(L, 8, dtype=np.int64)
            while (unit < target).any():  # 8 -> 16 -> ... -> word_bits
                unit = np.where(unit < target, unit * 2, unit)
            unit = np.minimum(unit, word_bits)
            self.entry_store = ((unit // 8) * np.maximum(1, -(-width // unit))).astype(
                np.int64
            )

    # ------------------------------------------------------------------ #
    def _build_masks(self) -> np.ndarray:
        """GenASM zero-match text masks for every lane, built in bulk.

        Equivalent to ``pattern_bitmasks_zero_match`` per lane and text
        character, but computed as one boolean character-equality tensor
        packed into ``uint64`` words (``np.packbits``), so wave setup stays
        O(array ops) instead of O(lanes × window) Python-dict lookups.
        Falls back to the per-lane scalar path for non-Latin-1 sequences.
        """
        L = self.lanes
        try:
            pattern_buffer = b"".join(
                job.pattern.encode("latin-1").ljust(MAX_LANE_BITS, b"\x00")
                for job in self.jobs
            )
            text_buffer = b"".join(
                job.text.encode("latin-1").ljust(self.n_max, b"\x00")
                for job in self.jobs
            )
        except UnicodeEncodeError:
            masks = np.empty((L, self.n_max), dtype=np.uint64)
            for i, job in enumerate(self.jobs):
                pm = pattern_bitmasks_zero_match(job.pattern)
                lane_ones = int(self.ones[i])
                row = [pm.get(c, lane_ones) for c in job.text]
                row.extend([lane_ones] * (self.n_max - len(row)))
                masks[i, :] = row
            return masks

        patterns = np.frombuffer(pattern_buffer, dtype=np.uint8).reshape(
            L, MAX_LANE_BITS
        )
        texts = np.frombuffer(text_buffer, dtype=np.uint8).reshape(L, self.n_max)
        # match[lane, j, i]: does pattern bit i match text character j?
        # (NUL padding never equals a real sequence character, and bits at
        # or above a lane's pattern length are cleared by `ones` below.)
        match = patterns[:, None, :] == texts[:, :, None]
        # Explicit little-endian view: packbits(bitorder="little") fills
        # logical bits 8k..8k+7 into byte k, which only matches a native
        # uint64 view on little-endian hosts.
        match_words = (
            np.ascontiguousarray(np.packbits(match, axis=2, bitorder="little"))
            .view("<u8")[:, :, 0]
            .astype(np.uint64)
        )
        # Zero-active semantics: bit i is 0 iff the characters match;
        # padded columns read as "matches nowhere" (the lane's ones).
        return self.ones[:, None] & ~match_words


def lockstep_stats(work: Sequence[float], group_size: int) -> Dict[str, float]:
    """Efficiency of executing ``work`` units in lockstep groups.

    Lanes are packed into groups of ``group_size``; a group's lanes run in
    lockstep, so every lane occupies its slot for as long as the group's
    slowest member (this is exactly SIMT warp divergence, and also the
    wave-padding cost of the SoA batch engine).  Returns the useful work,
    the slot-time actually consumed, and their ratio (``efficiency``).
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    items = [float(w) for w in work]
    if not items:
        return {"groups": 0, "useful_work": 0.0, "lockstep_work": 0.0, "efficiency": 1.0}
    useful = sum(items)
    lockstep = 0.0
    groups = 0
    for start in range(0, len(items), group_size):
        group = items[start : start + group_size]
        lockstep += max(group) * len(group)
        groups += 1
    return {
        "groups": groups,
        "useful_work": useful,
        "lockstep_work": lockstep,
        "efficiency": useful / lockstep if lockstep > 0 else 1.0,
    }
