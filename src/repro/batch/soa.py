"""Structure-of-arrays (SoA) lane layout for batched GenASM windows.

The vectorized batch engine evaluates many window pairs *in lockstep*: at
DP step ``(d, j)`` every lane (one lane = one window pair) performs the same
bitvector operation on its own machine words.  This module owns the lane
layout — the transposition from a list of per-window Python objects into
NumPy ``uint64`` arrays indexed ``[word, lane]`` or ``[word, lane, column]``
— so the engine's hot loop touches only contiguous arrays.

A lane is **multi-word**: a window of ``m`` pattern characters occupies
``W = ceil(m / 64)`` ``uint64`` words, with word 0 holding logical bits
0..63 (the least-significant part of the pattern, matching
:mod:`repro.core.bitvector`'s word-array convention).  Every wave-wide
array therefore carries a leading word axis of length
:attr:`SoAWave.words` — the maximum word count over the wave's lanes —
and the DC recurrence propagates the shifted bit across words (see
:func:`repro.batch.engine.run_dc_wave_state`).  ``W == 1`` reproduces the
original single-word layout exactly.

The same layout is what a GPU implementation would use: one warp lane per
window pair (W words per lane in registers), pattern masks staged in shared
memory, per-lane band offsets in registers.  :func:`lockstep_stats`
quantifies the cost of that lockstep execution (lanes in a group wait for
the slowest member), which :class:`repro.gpu.simulator.GpuSimulator` uses
to model warp divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bitvector import pattern_bitmasks_zero_match
from repro.core.metrics import AccessCounter

__all__ = [
    "LaneJob",
    "SoAWave",
    "WaveDescriptor",
    "SharedWave",
    "lockstep_stats",
    "lane_words",
]

#: Bits per lane word (one ``uint64`` per word of a lane).
MAX_LANE_BITS = 64

#: ``_LOW_ONES[c]`` has the ``c`` low bits set (``c`` in 0..64); the
#: shift-free way to build width masks per word, since ``uint64 << 64`` is
#: undefined in NumPy.
_LOW_ONES = np.array([(1 << c) - 1 for c in range(MAX_LANE_BITS + 1)], dtype=np.uint64)
_U0 = np.uint64(0)


def lane_words(pattern_bits: int) -> int:
    """Number of ``uint64`` words a lane of ``pattern_bits`` bits occupies."""
    return max(1, -(-max(pattern_bits, 1) // MAX_LANE_BITS))


def _unregister_attachment(shm) -> None:
    """Stop the resource tracker from adopting an *attached* segment.

    On Python ≤ 3.12, ``SharedMemory(name=...)`` registers the segment with
    the attaching process's resource tracker, which then unlinks it when
    that process exits — destroying a segment the creating process still
    owns (bpo-39959).  Attachments therefore unregister immediately;
    unlinking stays the creator's sole responsibility.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout is CPython detail
        pass


def _per_word_ones(m: np.ndarray, words: int) -> np.ndarray:
    """All-ones words for per-lane bit widths ``m``: shape ``(words, L)``.

    Word ``w`` of lane ``i`` has its low ``clamp(m[i] - 64 w, 0, 64)`` bits
    set — the multi-word generalisation of
    :func:`repro.core.bitvector.all_ones`.  The differential tests pin this
    (and the other vectorized re-derivations below) to the scalar helpers
    in :mod:`repro.core.improvements`.
    """
    word_base = (np.arange(words, dtype=np.int64) * MAX_LANE_BITS)[:, None]
    width = np.clip(m[None, :] - word_base, 0, MAX_LANE_BITS)
    return _LOW_ONES[width]


@dataclass
class LaneJob:
    """One window pair occupying one (possibly multi-word) lane of a wave.

    ``pattern`` and ``text`` are the *reversed* window sequences (the same
    anchoring trick :mod:`repro.core.windowing` uses), ``max_errors`` the
    clamped per-lane error budget, and ``store_from`` the first text column
    whose entries are persisted (traceback-reachability pruning).  Patterns
    wider than 64 characters simply occupy more words per lane.
    """

    pattern: str
    text: str
    max_errors: int
    store_from: int = 0
    counter: AccessCounter = field(default_factory=AccessCounter)

    def __post_init__(self) -> None:
        if len(self.pattern) == 0:
            raise ValueError("lane pattern must be non-empty")
        if len(self.text) == 0:
            raise ValueError("lane text must be non-empty (empty windows are handled scalar-side)")


#: The array fields a wave descriptor lays out, in buffer order:
#: ``name -> (dtype, shape builder)``.  Widest dtypes first keeps every
#: offset naturally aligned without padding games; the two ``*_data``
#: blobs (latin-1/utf-8 encoded lane sequences) close the buffer because
#: their byte alignment is 1.
_WAVE_ARRAY_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("masks", np.uint64),
    ("ones", np.uint64),
    ("msb_shift", np.uint64),
    ("m", np.int64),
    ("n", np.int64),
    ("k", np.int64),
    ("msb_word", np.int64),
    ("store_from", np.int64),
    ("band_lo", np.int64),
    ("band_width", np.int64),
    ("entry_store", np.int64),
    ("pattern_off", np.int64),
    ("text_off", np.int64),
    ("store_col", np.bool_),
    ("pattern_data", np.uint8),
    ("text_data", np.uint8),
)

#: Buffer alignment of every non-blob field offset (bytes).
_ALIGN = 8


@dataclass(frozen=True)
class WaveDescriptor:
    """Plain-buffer layout of one :class:`SoAWave` — metadata, no arrays.

    A descriptor plus the buffer it describes is everything needed to
    materialise a wave: ``arrays`` maps each SoA field to its
    ``(dtype, shape, offset)`` inside a contiguous ``nbytes`` buffer, and
    the scalar fields carry the wave geometry.  Descriptors are tiny and
    picklable, which is what lets the shared-memory execution layer ship
    *descriptors* across process boundaries while the arrays stay put in a
    :mod:`multiprocessing.shared_memory` segment (``segment`` names it).

    Lane sequences travel inside the same buffer (``pattern_data`` /
    ``text_data`` blobs with ``pattern_off`` / ``text_off`` offset arrays,
    utf-8 encoded), so a rebuilt wave can run the scalar traceback and
    materialise per-lane :class:`~repro.core.genasm_dc.DCTable` objects
    without any side channel.  Rebuilt lanes get *fresh* access counters:
    DP accounting belongs to whichever process executes the wave.
    """

    lanes: int
    words: int
    n_max: int
    k_max: int
    traceback_band: bool
    word_bits: int
    nbytes: int
    #: ``(name, dtype string, shape, byte offset)`` per packed array.
    arrays: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    #: Shared-memory segment name holding the buffer (``None`` = caller
    #: supplies the buffer).
    segment: Optional[str] = None

    def with_segment(self, segment: Optional[str]) -> "WaveDescriptor":
        """Copy of this descriptor pointing at a named shared segment."""
        return WaveDescriptor(
            lanes=self.lanes,
            words=self.words,
            n_max=self.n_max,
            k_max=self.k_max,
            traceback_band=self.traceback_band,
            word_bits=self.word_bits,
            nbytes=self.nbytes,
            arrays=self.arrays,
            segment=segment,
        )

    def views(self, buffer) -> Dict[str, np.ndarray]:
        """Materialise every packed array as a view over ``buffer``.

        No bytes are copied: each returned array aliases ``buffer`` at its
        recorded offset (read-only if the buffer is).
        """
        out: Dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in self.arrays:
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            out[name] = np.frombuffer(
                buffer, dtype=np.dtype(dtype), count=count, offset=offset
            ).reshape(shape)
        return out


@dataclass
class SharedWave:
    """Owned handle of one wave exported to a shared-memory segment.

    The creating process keeps this handle and is responsible for the
    segment's end of life: :meth:`unlink` (or the context-manager exit)
    removes the segment from the system once every attached consumer is
    done with it.  Consumers attach with :meth:`SoAWave.from_shared` and
    only ever :meth:`~SoAWave.close` their attachment.
    """

    descriptor: WaveDescriptor
    shm: object  # multiprocessing.shared_memory.SharedMemory

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        """Detach the creator's mapping (the segment stays alive)."""
        try:
            self.shm.close()
        except BufferError:  # arrays still alias the mapping
            pass

    def unlink(self) -> None:
        """Detach and remove the segment (idempotent)."""
        self.close()
        try:
            # Re-register first: if this process also attached the segment,
            # the attach-side tracker workaround unregistered the name and
            # unlink()'s unregister would log a KeyError in the tracker.
            from multiprocessing import resource_tracker

            resource_tracker.register(self.shm._name, "shared_memory")
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedWave":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


class SoAWave:
    """SoA arrays for one wave of lanes, ready for the lockstep DP.

    Attributes (``L`` lanes, ``W`` words/lane, ``n_max`` = longest lane text):

    ``words``
        ``W = max(ceil(m / 64))`` over the wave's lanes — every lane's
        bitvectors are carried in this many ``uint64`` words.
    ``m``, ``n``, ``k``
        int64 ``(L,)`` — pattern length, text length, error budget.
    ``ones``
        uint64 ``(W, L)`` — per-lane all-ones bitvector, word-sliced.
    ``masks``
        uint64 ``(W, L, n_max)`` — GenASM zero-match pattern mask for each
        lane's text character; columns beyond a lane's text are padded with
        that lane's ``ones`` (never consumed).
    ``msb_word``, ``msb_shift``
        int64 / uint64 ``(L,)`` — word index and in-word shift of each
        lane's most significant pattern bit (``m - 1``), for the
        solution-found test.
    ``band_lo``
        int64 ``(L, n_max + 1)`` — *logical* band offset per column (all
        zeros when the band improvement is off), clamped to ``[0, m - 1]``.
        Unlike the stored-row layout of the scalar path, wave rows are kept
        full-width; banding is applied lazily via :meth:`zero_view_mask`
        and :meth:`repro.batch.engine.WaveDCState.table`.
    ``band_width``
        int64 ``(L,)`` — stored band width ``min(m, 2k + 2)`` per lane.
    ``store_from``, ``entry_store``
        int64 ``(L,)`` — first persisted column and bytes per stored entry
        (multi-word entries store ``ceil(width / unit)`` units).
    """

    def __init__(
        self, jobs: Sequence[LaneJob], *, traceback_band: bool, word_bits: int = 64
    ) -> None:
        if not jobs:
            raise ValueError("a wave needs at least one lane")
        self.jobs = list(jobs)
        L = len(self.jobs)
        self.lanes = L
        self.traceback_band = traceback_band
        self.word_bits = word_bits

        self.m = np.array([len(j.pattern) for j in self.jobs], dtype=np.int64)
        self.n = np.array([len(j.text) for j in self.jobs], dtype=np.int64)
        self.k = np.array(
            [max(0, min(j.max_errors, len(j.pattern))) for j in self.jobs],
            dtype=np.int64,
        )
        self.n_max = int(self.n.max())
        self.k_max = int(self.k.max())
        self.words = lane_words(int(self.m.max()))
        self.ones = _per_word_ones(self.m, self.words)  # m >= 1 per LaneJob
        self.msb_word = (self.m - 1) // MAX_LANE_BITS
        self.msb_shift = ((self.m - 1) % MAX_LANE_BITS).astype(np.uint64)
        self.masks = self._build_masks()
        self._zero_view_mask: Optional[np.ndarray] = None
        self._shm = None  # set when this wave is an attachment (from_shared)
        self._blobs: Optional[Tuple[np.ndarray, ...]] = None

        if traceback_band:
            self.store_from = np.array(
                [max(0, min(j.store_from, len(j.text))) for j in self.jobs],
                dtype=np.int64,
            )
        else:
            self.store_from = np.zeros(L, dtype=np.int64)

        cols = np.arange(self.n_max + 1, dtype=np.int64)
        if traceback_band:
            lo = (self.m[:, None] - 1) - (self.n[:, None] - cols[None, :]) - self.k[:, None]
            self.band_lo = np.clip(lo, 0, np.maximum(self.m - 1, 0)[:, None])
        else:
            self.band_lo = np.zeros((L, self.n_max + 1), dtype=np.int64)
        # band_width(m, k), vectorized; never zero because m >= 1.
        self.band_width = np.minimum(self.m, 2 * self.k + 2)
        #: columns that are persisted per lane (inside the lane's text and
        #: at/after its store_from column)
        self.store_col = (cols[None, :] >= self.store_from[:, None]) & (
            cols[None, :] <= self.n[:, None]
        )
        # entry_bytes, vectorized: full words without the band improvement,
        # else the smallest power-of-two unit (8..word_bits bits), taken
        # ceil(width / unit) times when the band is wider than a word.
        if not traceback_band:
            full_words = np.maximum(1, -(-self.m // word_bits))
            self.entry_store = (full_words * (word_bits // 8)).astype(np.int64)
        else:
            target = np.minimum(self.band_width, word_bits)
            unit = np.full(L, 8, dtype=np.int64)
            while (unit < target).any():  # 8 -> 16 -> ... -> word_bits
                unit = np.where(unit < target, unit * 2, unit)
            unit = np.minimum(unit, word_bits)
            self.entry_store = (
                (unit // 8) * np.maximum(1, -(-self.band_width // unit))
            ).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Descriptor / shared-memory lifecycle
    # ------------------------------------------------------------------ #
    def _sequence_blobs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Encode lane sequences as offset + data arrays (cached)."""
        if self._blobs is None:
            patterns = [job.pattern.encode("utf-8") for job in self.jobs]
            texts = [job.text.encode("utf-8") for job in self.jobs]
            pattern_off = np.zeros(self.lanes + 1, dtype=np.int64)
            text_off = np.zeros(self.lanes + 1, dtype=np.int64)
            np.cumsum([len(b) for b in patterns], out=pattern_off[1:])
            np.cumsum([len(b) for b in texts], out=text_off[1:])
            pattern_data = np.frombuffer(b"".join(patterns), dtype=np.uint8)
            text_data = np.frombuffer(b"".join(texts), dtype=np.uint8)
            self._blobs = (pattern_off, pattern_data, text_off, text_data)
        return self._blobs

    def _packable(self) -> Dict[str, np.ndarray]:
        """Every array the descriptor lays out, keyed by field name."""
        pattern_off, pattern_data, text_off, text_data = self._sequence_blobs()
        return {
            "masks": self.masks,
            "ones": self.ones,
            "msb_shift": self.msb_shift,
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "msb_word": self.msb_word,
            "store_from": self.store_from,
            "band_lo": self.band_lo,
            "band_width": self.band_width,
            "entry_store": self.entry_store,
            "pattern_off": pattern_off,
            "text_off": text_off,
            "store_col": self.store_col,
            "pattern_data": pattern_data,
            "text_data": text_data,
        }

    def descriptor(self) -> WaveDescriptor:
        """The plain-buffer layout of this wave (no arrays, picklable)."""
        arrays = self._packable()
        entries = []
        offset = 0
        for name, dtype in _WAVE_ARRAY_FIELDS:
            array = arrays[name]
            offset = -(-offset // _ALIGN) * _ALIGN
            entries.append((name, np.dtype(dtype).str, tuple(array.shape), offset))
            offset += array.nbytes
        return WaveDescriptor(
            lanes=self.lanes,
            words=self.words,
            n_max=self.n_max,
            k_max=self.k_max,
            traceback_band=self.traceback_band,
            word_bits=self.word_bits,
            nbytes=max(1, offset),
            arrays=tuple(entries),
        )

    def pack_into(self, buffer, descriptor: Optional[WaveDescriptor] = None) -> WaveDescriptor:
        """Copy every SoA array into ``buffer`` at the descriptor's offsets.

        ``buffer`` is any writable buffer of at least ``descriptor.nbytes``
        bytes (a bytearray, an mmap, a shared-memory segment's ``buf``).
        Returns the descriptor describing what was written.
        """
        descriptor = descriptor if descriptor is not None else self.descriptor()
        arrays = self._packable()
        for name, view in descriptor.views(buffer).items():
            view[...] = arrays[name]
        return descriptor

    def to_shared(self) -> SharedWave:
        """Export this wave into a fresh shared-memory segment (one copy).

        Returns the owning :class:`SharedWave` handle; the caller unlinks
        it when every consumer is done.  Consumers rebuild the wave with
        :meth:`from_shared` — array *views* over the segment, no copies.
        """
        from multiprocessing import shared_memory

        descriptor = self.descriptor()
        shm = shared_memory.SharedMemory(create=True, size=descriptor.nbytes)
        self.pack_into(shm.buf, descriptor)
        return SharedWave(descriptor=descriptor.with_segment(shm.name), shm=shm)

    @classmethod
    def from_buffer(cls, descriptor: WaveDescriptor, buffer) -> "SoAWave":
        """Materialise a wave over ``buffer`` without recomputing anything.

        The returned wave's arrays are views of ``buffer``; its lanes are
        rebuilt :class:`LaneJob` objects (same sequences and budgets, fresh
        counters).  Equivalent, state for state, to the wave that produced
        the descriptor — the shared-memory tests pin this.
        """
        views = descriptor.views(buffer)
        pattern_off = views["pattern_off"]
        text_off = views["text_off"]
        pattern_bytes = views["pattern_data"].tobytes()
        text_bytes = views["text_data"].tobytes()
        jobs = [
            LaneJob(
                pattern=pattern_bytes[pattern_off[i] : pattern_off[i + 1]].decode("utf-8"),
                text=text_bytes[text_off[i] : text_off[i + 1]].decode("utf-8"),
                max_errors=int(views["k"][i]),
                store_from=int(views["store_from"][i]),
            )
            for i in range(descriptor.lanes)
        ]

        wave = object.__new__(cls)
        wave.jobs = jobs
        wave.lanes = descriptor.lanes
        wave.traceback_band = descriptor.traceback_band
        wave.word_bits = descriptor.word_bits
        wave.n_max = descriptor.n_max
        wave.k_max = descriptor.k_max
        wave.words = descriptor.words
        for name in (
            "m",
            "n",
            "k",
            "ones",
            "masks",
            "msb_word",
            "msb_shift",
            "store_from",
            "band_lo",
            "band_width",
            "store_col",
            "entry_store",
        ):
            setattr(wave, name, views[name])
        wave._zero_view_mask = None
        wave._shm = None
        wave._blobs = None
        return wave

    @classmethod
    def from_shared(cls, descriptor: WaveDescriptor) -> "SoAWave":
        """Attach to a shared wave by descriptor (zero-copy views).

        The attachment is closed with :meth:`close`; removing the segment
        itself is the creator's job (:meth:`SharedWave.unlink`).
        """
        if descriptor.segment is None:
            raise ValueError("descriptor does not name a shared-memory segment")
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=descriptor.segment)
        _unregister_attachment(shm)
        wave = cls.from_buffer(descriptor, shm.buf)
        wave._shm = shm
        return wave

    def close(self) -> None:
        """Release an attachment created by :meth:`from_shared` (idempotent).

        Drops every array view so the mapping can unmap; a no-op for waves
        that own their arrays.
        """
        if self._shm is None:
            return
        for name in (
            "m",
            "n",
            "k",
            "ones",
            "masks",
            "msb_word",
            "msb_shift",
            "store_from",
            "band_lo",
            "band_width",
            "store_col",
            "entry_store",
        ):
            setattr(self, name, None)
        self._zero_view_mask = None
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # a caller still holds a view; unmapped at exit
            pass

    # ------------------------------------------------------------------ #
    def zero_view_mask(self) -> np.ndarray:
        """Word mask of bits that may read as *active* through the scalar accessors.

        Shape ``(W, L, n_max + 1)``.  Bit ``b`` of word ``w`` is set iff the
        scalar band-aware accessors (:meth:`repro.core.genasm_dc.DCTable.r_bit`
        / ``quad_bit``) could report logical bit ``64 w + b`` of that
        (lane, column) entry as zero-active: the bit lies inside the lane's
        pattern, the column is persisted (``store_col``), and — with the
        band improvement — the bit falls inside the stored band
        ``[band_lo, band_lo + band_width)``.  The decision-plane builder
        ANDs this into its zero views, which is what lets wave rows stay
        full-width (no store-time band packing) while remaining
        bit-identical to the scalar packed storage.
        """
        if self._zero_view_mask is None:
            mask = np.where(self.store_col[None, :, :], self.ones[:, :, None], _U0)
            if self.traceback_band:
                word_base = (np.arange(self.words, dtype=np.int64) * MAX_LANE_BITS)[
                    :, None, None
                ]
                lo = self.band_lo[None, :, :]
                hi = lo + self.band_width[:, None][None, :, :]
                window = _LOW_ONES[np.clip(hi - word_base, 0, MAX_LANE_BITS)] & ~_LOW_ONES[
                    np.clip(lo - word_base, 0, MAX_LANE_BITS)
                ]
                mask &= window
            self._zero_view_mask = mask
        return self._zero_view_mask

    # ------------------------------------------------------------------ #
    def _build_masks(self) -> np.ndarray:
        """GenASM zero-match text masks for every lane, built in bulk.

        Equivalent to ``pattern_bitmasks_zero_match`` per lane and text
        character, but computed as one boolean character-equality tensor
        packed into ``uint64`` words (``np.packbits``), so wave setup stays
        O(array ops) instead of O(lanes × window) Python-dict lookups.
        Returns ``(W, L, n_max)``; word ``w`` holds pattern bits
        ``64 w .. 64 w + 63``.  Falls back to the per-lane scalar path for
        non-Latin-1 sequences.
        """
        L = self.lanes
        W = self.words
        pad = W * MAX_LANE_BITS
        try:
            pattern_buffer = b"".join(
                job.pattern.encode("latin-1").ljust(pad, b"\x00")
                for job in self.jobs
            )
            text_buffer = b"".join(
                job.text.encode("latin-1").ljust(self.n_max, b"\x00")
                for job in self.jobs
            )
        except UnicodeEncodeError:
            masks = np.empty((W, L, self.n_max), dtype=np.uint64)
            word_mask = int(_LOW_ONES[MAX_LANE_BITS])
            for i, job in enumerate(self.jobs):
                pm = pattern_bitmasks_zero_match(job.pattern)
                lane_ones = sum(
                    int(self.ones[w, i]) << (MAX_LANE_BITS * w) for w in range(W)
                )
                row = [pm.get(c, lane_ones) for c in job.text]
                row.extend([lane_ones] * (self.n_max - len(row)))
                for w in range(W):
                    masks[w, i, :] = [
                        (value >> (MAX_LANE_BITS * w)) & word_mask for value in row
                    ]
            return masks

        patterns = np.frombuffer(pattern_buffer, dtype=np.uint8).reshape(L, pad)
        texts = np.frombuffer(text_buffer, dtype=np.uint8).reshape(L, self.n_max)
        # match[lane, j, i]: does pattern bit i match text character j?
        # (NUL padding never equals a real sequence character, and bits at
        # or above a lane's pattern length are cleared by `ones` below.)
        match = patterns[:, None, :] == texts[:, :, None]
        # Explicit little-endian view: packbits(bitorder="little") fills
        # logical bits 8k..8k+7 into byte k, which only matches a native
        # uint64 view on little-endian hosts.
        match_words = (
            np.ascontiguousarray(np.packbits(match, axis=2, bitorder="little"))
            .view("<u8")
            .astype(np.uint64)
        )
        match_words = np.moveaxis(match_words, 2, 0)  # (W, L, n_max)
        # Zero-active semantics: bit i is 0 iff the characters match;
        # padded columns read as "matches nowhere" (the lane's ones).
        return self.ones[:, :, None] & ~match_words


def lockstep_stats(work: Sequence[float], group_size: int) -> Dict[str, float]:
    """Efficiency of executing ``work`` units in lockstep groups.

    Lanes are packed into groups of ``group_size``; a group's lanes run in
    lockstep, so every lane occupies its slot for as long as the group's
    slowest member (this is exactly SIMT warp divergence, and also the
    wave-padding cost of the SoA batch engine).  Returns the useful work,
    the slot-time actually consumed, and their ratio (``efficiency``).
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    items = [float(w) for w in work]
    if not items:
        return {"groups": 0, "useful_work": 0.0, "lockstep_work": 0.0, "efficiency": 1.0}
    useful = sum(items)
    lockstep = 0.0
    groups = 0
    for start in range(0, len(items), group_size):
        group = items[start : start + group_size]
        lockstep += max(group) * len(group)
        groups += 1
    return {
        "groups": groups,
        "useful_work": useful,
        "lockstep_work": lockstep,
        "efficiency": useful / lockstep if lockstep > 0 else 1.0,
    }
