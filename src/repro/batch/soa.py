"""Structure-of-arrays (SoA) lane layout for batched GenASM windows.

The vectorized batch engine evaluates many window pairs *in lockstep*: at
DP step ``(d, j)`` every lane (one lane = one window pair) performs the same
bitvector operation on its own 64-bit word.  This module owns the lane
layout — the transposition from a list of per-window Python objects into
NumPy ``uint64`` arrays indexed ``[lane]`` or ``[lane, column]`` — so the
engine's hot loop touches only contiguous arrays.

The same layout is what a GPU implementation would use: one warp lane per
window pair, pattern masks staged in shared memory, per-lane band offsets
in registers.  :func:`lockstep_stats` quantifies the cost of that lockstep
execution (lanes in a group wait for the slowest member), which
:class:`repro.gpu.simulator.GpuSimulator` uses to model warp divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bitvector import all_ones, pattern_bitmasks_zero_match
from repro.core.improvements import band_width, entry_bytes
from repro.core.metrics import AccessCounter

__all__ = ["LaneJob", "SoAWave", "lockstep_stats"]

#: Widest pattern window a single uint64 lane can hold.
MAX_LANE_BITS = 64


@dataclass
class LaneJob:
    """One window pair occupying one lane of a wave.

    ``pattern`` and ``text`` are the *reversed* window sequences (the same
    anchoring trick :mod:`repro.core.windowing` uses), ``max_errors`` the
    clamped per-lane error budget, and ``store_from`` the first text column
    whose entries are persisted (traceback-reachability pruning).
    """

    pattern: str
    text: str
    max_errors: int
    store_from: int = 0
    counter: AccessCounter = field(default_factory=AccessCounter)

    def __post_init__(self) -> None:
        if not (1 <= len(self.pattern) <= MAX_LANE_BITS):
            raise ValueError(
                f"lane pattern must be 1..{MAX_LANE_BITS} characters, "
                f"got {len(self.pattern)}"
            )
        if len(self.text) == 0:
            raise ValueError("lane text must be non-empty (empty windows are handled scalar-side)")


class SoAWave:
    """SoA arrays for one wave of lanes, ready for the lockstep DP.

    Attributes (``L`` lanes, ``n_max`` = longest lane text):

    ``m``, ``n``, ``k``
        int64 ``(L,)`` — pattern length, text length, error budget.
    ``ones``
        uint64 ``(L,)`` — per-lane all-ones bitvector (``2^m − 1``).
    ``masks``
        uint64 ``(L, n_max)`` — GenASM zero-match pattern mask for each
        lane's text character; columns beyond a lane's text are padded with
        that lane's ``ones`` (never consumed).
    ``band_lo``
        uint64 ``(L, n_max + 1)`` — band offset per column (all zeros when
        the band improvement is off).  Clamped to 63 for the padded columns
        so shifts stay defined; valid columns are never clamped.
    ``band_mask``
        uint64 ``(L,)`` — mask selecting the stored band bits.
    ``store_from``, ``entry_store``
        int64 ``(L,)`` — first persisted column and bytes per stored entry.
    """

    def __init__(
        self, jobs: Sequence[LaneJob], *, traceback_band: bool, word_bits: int = 64
    ) -> None:
        if not jobs:
            raise ValueError("a wave needs at least one lane")
        self.jobs = list(jobs)
        L = len(self.jobs)
        self.lanes = L
        self.traceback_band = traceback_band
        self.word_bits = word_bits

        self.m = np.array([len(j.pattern) for j in self.jobs], dtype=np.int64)
        self.n = np.array([len(j.text) for j in self.jobs], dtype=np.int64)
        self.k = np.array(
            [max(0, min(j.max_errors, len(j.pattern))) for j in self.jobs],
            dtype=np.int64,
        )
        self.n_max = int(self.n.max())
        self.k_max = int(self.k.max())
        ones_py = [all_ones(len(j.pattern)) for j in self.jobs]
        self.ones = np.array(ones_py, dtype=np.uint64)

        masks = np.empty((L, self.n_max), dtype=np.uint64)
        for i, job in enumerate(self.jobs):
            pm = pattern_bitmasks_zero_match(job.pattern)
            lane_ones = ones_py[i]
            row = [pm.get(c, lane_ones) for c in job.text]
            row.extend([lane_ones] * (self.n_max - len(row)))
            masks[i, :] = row
        self.masks = masks

        if traceback_band:
            self.store_from = np.array(
                [max(0, min(j.store_from, len(j.text))) for j in self.jobs],
                dtype=np.int64,
            )
        else:
            self.store_from = np.zeros(L, dtype=np.int64)

        cols = np.arange(self.n_max + 1, dtype=np.int64)
        if traceback_band:
            lo = (self.m[:, None] - 1) - (self.n[:, None] - cols[None, :]) - self.k[:, None]
            lo = np.clip(lo, 0, MAX_LANE_BITS - 1)
            self.band_lo = lo.astype(np.uint64)
        else:
            self.band_lo = np.zeros((L, self.n_max + 1), dtype=np.uint64)
        self.band_mask = np.array(
            [all_ones(band_width(int(mi), int(ki))) for mi, ki in zip(self.m, self.k)],
            dtype=np.uint64,
        )
        #: columns that are persisted per lane (inside the lane's text and
        #: at/after its store_from column)
        self.store_col = (cols[None, :] >= self.store_from[:, None]) & (
            cols[None, :] <= self.n[:, None]
        )
        self.entry_store = np.array(
            [
                entry_bytes(max(1, int(mi)), int(ki), word_bits, traceback_band)
                for mi, ki in zip(self.m, self.k)
            ],
            dtype=np.int64,
        )


def lockstep_stats(work: Sequence[float], group_size: int) -> Dict[str, float]:
    """Efficiency of executing ``work`` units in lockstep groups.

    Lanes are packed into groups of ``group_size``; a group's lanes run in
    lockstep, so every lane occupies its slot for as long as the group's
    slowest member (this is exactly SIMT warp divergence, and also the
    wave-padding cost of the SoA batch engine).  Returns the useful work,
    the slot-time actually consumed, and their ratio (``efficiency``).
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    items = [float(w) for w in work]
    if not items:
        return {"groups": 0, "useful_work": 0.0, "lockstep_work": 0.0, "efficiency": 1.0}
    useful = sum(items)
    lockstep = 0.0
    groups = 0
    for start in range(0, len(items), group_size):
        group = items[start : start + group_size]
        lockstep += max(group) * len(group)
        groups += 1
    return {
        "groups": groups,
        "useful_work": useful,
        "lockstep_work": lockstep,
        "efficiency": useful / lockstep if lockstep > 0 else 1.0,
    }
