"""Vectorized batched alignment (lockstep structure-of-arrays GenASM).

``repro.batch`` evaluates many window pairs in lockstep using NumPy
structure-of-arrays bitvectors — one **multi-word** lane per pair
(``ceil(window_size / 64)`` ``uint64`` words, so short-read configurations
with windows wider than one machine word vectorize too) — replacing the
per-pair Python-int hot loop for batch workloads.  Results are
byte-identical to the scalar path in :mod:`repro.core`.

* :class:`BatchAlignmentEngine` / :func:`align_pairs_vectorized` — batch
  aligner producing :class:`repro.core.alignment.Alignment` objects.
* :func:`run_dc_wave` / :func:`run_dc_wave_state` / :class:`SoAWave` /
  :class:`LaneJob` — the lockstep GenASM-DC kernel and its lane layout.
* :func:`build_wave_decisions` / :func:`lockstep_traceback` — the lockstep
  GenASM-TB kernel (see below).
* :func:`lockstep_stats` — lockstep (SIMT warp divergence) efficiency
  model shared with :mod:`repro.gpu.simulator`.

Decision-word traceback layout
------------------------------
Both phases of a window run wave-wide.  The DC wave stores its rows as SoA
arrays (``stored[d]`` is the full-width ``R`` row ``(W, lanes, n_max + 1)``
with ``W`` words per lane, or a quad tuple without entry compression; the
scalar path's band packing and reachability placeholders are imposed
lazily via :meth:`SoAWave.zero_view_mask`).  Before traceback, those rows
are expanded into **decision words**: four ``uint64`` planes of shape
``(rows, W, lanes, n_max + 1)`` — one per CIGAR operation — in which bit
``i % 64`` of word ``i // 64`` of ``plane[d, ·, lane, j]`` says that
operation is a legal traceback step at text column ``j``, error level
``d``, pattern bit ``i``.  A match-plane word, for example, is
``char_eq[j] & ((zero(R[d][j-1]) << 1) | 1)`` — the character-equality
word ANDed with the shifted zero-bit view of the neighbouring stored
entry, the ``<< 1`` carrying bit 63 of each word into bit 0 of the next
(the cross-word stitch at ``i % 64 == 0``) — exactly the predicate
:func:`repro.core.genasm_tb.traceback_conditions` evaluates bit by bit.

The traceback then walks **all live lanes in lockstep**: per emitted CIGAR
column, one gather fetches word ``i // 64`` of each lane's five decision
words, a 16-entry lookup table resolves the first-true operation under
``match_priority``, and a second table replays the scalar loop's
short-circuit read accounting (``dp_reads`` / ``bytes_read``).  Lanes
whose committed pattern budget is exhausted drop out of the active mask —
the same warp model :func:`lockstep_stats` quantifies and
:meth:`repro.gpu.simulator.GpuSimulator.warp_divergence` applies to GPU
warps.  Scheduling lanes into waves by expected lockstep work — window
count × words per lane (:meth:`BatchAlignmentEngine.schedule`) — keeps
that mask dense on mixed-length batches.
"""

from repro.batch.engine import (
    SCHEDULING_POLICIES,
    BatchAlignmentEngine,
    WaveDCState,
    align_pairs_vectorized,
    run_dc_wave,
    run_dc_wave_state,
)
from repro.batch.soa import LaneJob, SoAWave, lane_words, lockstep_stats
from repro.batch.traceback import (
    LaneTraceback,
    WaveDecisions,
    build_wave_decisions,
    lockstep_traceback,
)

__all__ = [
    "BatchAlignmentEngine",
    "WaveDCState",
    "align_pairs_vectorized",
    "run_dc_wave",
    "run_dc_wave_state",
    "SCHEDULING_POLICIES",
    "LaneJob",
    "SoAWave",
    "lane_words",
    "lockstep_stats",
    "LaneTraceback",
    "WaveDecisions",
    "build_wave_decisions",
    "lockstep_traceback",
]
