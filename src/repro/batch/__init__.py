"""Vectorized batched alignment (lockstep structure-of-arrays GenASM).

``repro.batch`` evaluates many window pairs in lockstep using NumPy
structure-of-arrays bitvectors — one ``uint64`` lane per pair, band-packed
per the paper's improvements — replacing the per-pair Python-int hot loop
for batch workloads.  Results are byte-identical to the scalar path in
:mod:`repro.core`.

* :class:`BatchAlignmentEngine` / :func:`align_pairs_vectorized` — batch
  aligner producing :class:`repro.core.alignment.Alignment` objects.
* :func:`run_dc_wave` / :class:`SoAWave` / :class:`LaneJob` — the lockstep
  GenASM-DC kernel and its lane layout.
* :func:`lockstep_stats` — lockstep (SIMT warp divergence) efficiency
  model shared with :mod:`repro.gpu.simulator`.
"""

from repro.batch.engine import (
    BatchAlignmentEngine,
    align_pairs_vectorized,
    run_dc_wave,
)
from repro.batch.soa import LaneJob, SoAWave, lockstep_stats

__all__ = [
    "BatchAlignmentEngine",
    "align_pairs_vectorized",
    "run_dc_wave",
    "LaneJob",
    "SoAWave",
    "lockstep_stats",
]
