"""Vectorized batched-alignment engine (lockstep GenASM over NumPy lanes).

The scalar pipeline (:mod:`repro.core.windowing`) aligns one window at a
time with a Python-int hot loop.  For batch workloads the per-step work is
identical across pairs — the GenASM recurrence is the same five bitvector
operations regardless of the sequences — so this engine evaluates **many
window pairs in lockstep**: one multi-word lane per pair
(``W = ceil(window_size / 64)`` ``uint64`` words, see
:mod:`repro.batch.soa`), with the DP step ``(d, j)`` applied to all lanes
at once as NumPy array operations.  The Python interpreter then executes
``rows × n_max`` steps per *wave* instead of ``rows × n`` steps per
*pair*, amortising interpreter overhead across the wave width.

Equivalence contract
--------------------
The engine is not an approximation: it persists exactly the rows the
scalar :func:`repro.core.genasm_dc.genasm_dc` would store (kept full-width
in SoA layout; band packing and the traceback-reachability placeholders
are applied lazily, see :meth:`WaveDCState.table` and
:meth:`repro.batch.soa.SoAWave.zero_view_mask`) and traces every lane back
over that state with the lockstep decision-word traceback of
:mod:`repro.batch.traceback`, which replicates the scalar
:func:`repro.core.genasm_tb.genasm_traceback` bit for bit — decisions *and*
read accounting.  Alignments (CIGAR, edit distance, consumed text span) and
the E-series accounting (DP accesses, stored bytes, windows, rows) are
therefore identical to the scalar path — the differential test harness
(``tests/test_batch_traceback.py``) asserts this per field across every
improvement-toggle combination and over single- and multi-word window
widths (32..150).

Structure
---------
* :func:`run_dc_wave_state` — the lockstep GenASM-DC kernel over a
  :class:`repro.batch.soa.SoAWave`; returns a :class:`WaveDCState` keeping
  the stored rows in SoA layout (what the lockstep traceback consumes).
  The recurrence carries the shifted bit across lane words, so windows
  wider than 64 characters (short-read configs) vectorize too.
* :func:`run_dc_wave` — compatibility wrapper materialising one scalar
  :class:`~repro.core.genasm_dc.DCTable` per lane from the wave state.
* :class:`BatchAlignmentEngine` — the windowed aligner: all pairs advance
  their current window together (one wave per windowing step), lanes whose
  error budget fails are retried in doubling sub-waves, and finished pairs
  drop out of subsequent waves.  Mixed-length batches are scheduled into
  waves by expected lockstep work — window count × words per lane (see
  :meth:`BatchAlignmentEngine.schedule`) — so chunked lanes run in
  lockstep with similarly-sized neighbours.

Only configurations with ``word_bits != 64`` fall back to the scalar
aligner (the SoA layout is built from ``uint64`` words); the fallback is
recorded in each alignment's ``metadata["vectorized"]`` and warned about
once per process per reason (see :data:`_FALLBACK_WARNED` and
:attr:`BatchAlignmentEngine.vectorizable`).
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.kernels import (
    FALLBACK_WARNED as _FALLBACK_WARNED,
    KernelSet,
    get_kernels,
    resolve_kernel_backend,
)
from repro.batch.soa import MAX_LANE_BITS, LaneJob, SoAWave, lane_words, lockstep_stats
from repro.batch.traceback import (
    OPS_BY_CODE,
    build_wave_decisions,
    lockstep_traceback,
)
from repro.core.alignment import Alignment
from repro.core.cigar import Cigar, CigarOp
from repro.core.config import GenASMConfig
from repro.core.genasm_dc import DCTable
from repro.core.improvements import reachable_column_start
from repro.core.metrics import AccessCounter, MemoryFootprint

__all__ = [
    "BatchAlignmentEngine",
    "WaveDCState",
    "run_dc_wave",
    "run_dc_wave_state",
    "align_pairs_vectorized",
    "SCHEDULING_POLICIES",
    "DEFAULT_SCALAR_TRACEBACK_THRESHOLD",
]

#: Wave-scheduling policies accepted by :class:`BatchAlignmentEngine`.
SCHEDULING_POLICIES = ("sorted", "fifo")

_U1 = np.uint64(1)
_U0 = np.uint64(0)
_U63 = np.uint64(MAX_LANE_BITS - 1)

#: Packed op code per CigarOp (see repro.batch.traceback.OPS_BY_CODE).
_CODE_BY_OP = {op: code for code, op in enumerate(OPS_BY_CODE)}
_INSERTION_CODE = _CODE_BY_OP[CigarOp.INSERTION]

#: ``_CLEAR_LOW[c]`` clears the ``c`` low bits (``c`` in 0..64); used to
#: build row 0 (``(ones << d) & ones``) without undefined 64-bit shifts.
_CLEAR_LOW = np.array(
    [(~((1 << c) - 1)) & ((1 << 64) - 1) for c in range(MAX_LANE_BITS + 1)],
    dtype=np.uint64,
)

# _FALLBACK_WARNED (imported above) is the process-wide fallback-warning
# dedupe set, now owned by repro.batch.kernels so the kernel seam shares
# it; it is re-exported here under its historical name because tests and
# services clear it to re-arm warnings.

#: Default lane count below which the scalar per-lane traceback beats the
#: lockstep walk (see BatchAlignmentEngine.scalar_traceback_threshold).
#: Measured crossover sits between 16 and 32 lanes for 150-600 bp windows
#: (at 8-16 lanes the scalar walk is up to ~1.3x faster, at 32 the
#: lockstep walk is ~1.15-1.2x faster), so the default splits that range.
DEFAULT_SCALAR_TRACEBACK_THRESHOLD = 24


def _shl1(value: np.ndarray, ones: np.ndarray) -> np.ndarray:
    """Multi-word ``(value << 1) & ones`` with cross-word carry.

    ``value`` has the word axis first; bit 63 of word ``w`` shifts into bit
    0 of word ``w + 1``.  ``ones`` must broadcast against ``value``.
    """
    out = value << _U1
    if out.shape[0] > 1:
        out[1:] |= value[:-1] >> _U63
    out &= ones
    return out


@dataclass
class WaveDCState:
    """Raw SoA outcome of one lockstep GenASM-DC wave.

    Keeps the stored rows exactly as the wave computed them — full-width
    multi-word ``uint64`` arrays ``(W, L, n_max + 1)`` (or quad tuples of
    ``(W, L, n_max)`` without entry compression) — so the lockstep
    traceback can derive its decision words without ever materialising
    per-lane Python lists.  Band packing and traceback-reachability
    placeholders are applied lazily: :meth:`table` reproduces the scalar
    path's packed storage value for value, and
    :meth:`repro.batch.soa.SoAWave.zero_view_mask` imposes the same
    semantics on the decision planes.  Per-lane DP accounting has already
    been charged to each :class:`~repro.batch.soa.LaneJob` counter when
    this object exists; :meth:`tables` only reshapes state.
    """

    wave: SoAWave
    entry_compression: bool
    early_termination: bool
    #: per evaluated row: full-width R ``(W, L, n_max + 1)`` or 4-tuple of
    #: ``(W, L, n_max)`` intermediates, in SoA layout
    stored_rows: List[object]
    #: final-column value per evaluated row, ``(W, L)`` each
    final_cols: List[np.ndarray]
    rows_computed: np.ndarray
    #: minimum error level per lane, ``-1`` when the budget failed
    min_errors: np.ndarray

    def stored_bytes(self) -> np.ndarray:
        """Per-lane bytes of retained traceback state (E3 accounting)."""
        wave = self.wave
        per_entry = wave.entry_store * (1 if self.entry_compression else 4)
        columns = wave.n + 1 - wave.store_from
        if self.entry_compression:
            entries = self.rows_computed * np.maximum(0, columns)
        else:
            entries = self.rows_computed * np.maximum(0, np.minimum(columns, wave.n))
        return entries * per_entry

    @staticmethod
    def _lane_ints(words: np.ndarray) -> List[int]:
        """Combine a ``(W, cols)`` word slice into per-column Python ints."""
        if words.shape[0] == 1:
            return words[0].tolist()
        out = words[-1].tolist()
        for w in range(words.shape[0] - 2, -1, -1):
            low = words[w].tolist()
            out = [(high << MAX_LANE_BITS) | value for high, value in zip(out, low)]
        return out

    def table(self, lane: int) -> DCTable:
        """Materialise the scalar :class:`DCTable` of one lane.

        Used by the compat wrapper (:meth:`tables`) and by the engine's
        small-wave scalar-traceback path, which trades the lockstep walk's
        per-step NumPy dispatch overhead for a per-lane Python loop when
        few lanes need tracing.  The full-width wave rows are band-packed
        and placeholder-substituted here, reproducing the scalar storage
        exactly (``tests/test_batch_engine.py`` pins this state for state).
        """
        wave = self.wave
        job = wave.jobs[lane]
        rows_i = int(self.rows_computed[lane])
        n_i = int(wave.n[lane])
        m_i = int(wave.m[lane])
        found = int(self.min_errors[lane])
        store_from = int(wave.store_from[lane])
        band = wave.traceback_band
        ones_int = (1 << m_i) - 1
        band_lo = [int(x) for x in wave.band_lo[lane, : n_i + 1]]
        band_mask_int = (1 << int(wave.band_width[lane])) - 1

        table = DCTable(
            pattern=job.pattern,
            text=job.text,
            max_errors=int(wave.k[lane]),
            entry_compression=self.entry_compression,
            early_termination=self.early_termination,
            traceback_band=band,
            word_bits=wave.word_bits,
            store_from_column=store_from,
            counter=job.counter,
        )
        table.rows_computed = rows_i
        table.min_errors = found if found >= 0 else None
        table.final_column = [
            sum(
                int(self.final_cols[d][w, lane]) << (MAX_LANE_BITS * w)
                for w in range(wave.words)
            )
            for d in range(rows_i)
        ]
        if self.entry_compression:
            stored_r: List[List[int]] = []
            for d in range(rows_i):
                values = self._lane_ints(self.stored_rows[d][:, lane, : n_i + 1])
                if band:
                    values = [
                        ((value >> band_lo[j]) & band_mask_int)
                        if j >= store_from
                        else ones_int
                        for j, value in enumerate(values)
                    ]
                stored_r.append(values)
            table.stored_r = stored_r
        else:
            stored_quad: List[List[Tuple[int, int, int, int]]] = []
            for d in range(rows_i):
                quads = [
                    self._lane_ints(component[:, lane, :n_i])
                    for component in self.stored_rows[d]
                ]
                row = []
                for j in range(1, n_i + 1):
                    if j < store_from:
                        row.append((ones_int,) * 4)
                    elif band:
                        lo = band_lo[j]
                        row.append(
                            tuple(
                                (component[j - 1] >> lo) & band_mask_int
                                for component in quads
                            )
                        )
                    else:
                        row.append(tuple(component[j - 1] for component in quads))
                stored_quad.append(row)
            table.stored_quad = stored_quad
        table._band_lo = band_lo
        table._band_width = None  # lazily derived; identical to scalar
        return table

    def tables(self) -> List[DCTable]:
        """Materialise one scalar :class:`DCTable` per lane (compat path)."""
        return [self.table(lane) for lane in range(self.wave.lanes)]


def run_dc_wave(
    wave: SoAWave,
    *,
    entry_compression: bool = True,
    early_termination: bool = True,
) -> List[DCTable]:
    """Run GenASM-DC over every lane of ``wave`` in lockstep.

    Returns one :class:`DCTable` per lane with exactly the stored state,
    ``min_errors``, ``rows_computed`` and access accounting the scalar
    :func:`repro.core.genasm_dc.genasm_dc` produces for the same inputs.
    Lanes terminate independently (budget exhausted, or solution found when
    early termination is on); the wave stops once every lane is done.
    """
    return run_dc_wave_state(
        wave,
        entry_compression=entry_compression,
        early_termination=early_termination,
    ).tables()


def run_dc_wave_state(
    wave: SoAWave,
    *,
    entry_compression: bool = True,
    early_termination: bool = True,
    kernels: Optional[KernelSet] = None,
) -> WaveDCState:
    """Run GenASM-DC over every lane of ``wave``, keeping the SoA state.

    This is the batch engine's hot path: the returned
    :class:`WaveDCState` feeds the lockstep traceback directly (via
    :func:`repro.batch.traceback.build_wave_decisions`), avoiding the
    per-lane Python-list materialisation :func:`run_dc_wave` performs.
    Lanes are ``wave.words`` ``uint64`` words wide; every shift in the
    recurrence carries bit 63 of word ``w`` into bit 0 of word ``w + 1``
    (:func:`_shl1`), and the solution test probes each lane's
    ``(msb_word, msb_shift)``.  The per-row match-chain scan — the
    sequential column dependency NumPy cannot vectorize away — runs
    through ``kernels.dc_scan`` (:mod:`repro.batch.kernels`), so the
    compiled backend replaces exactly that loop; everything without the
    dependency stays hoisted NumPy.  Per-lane DP accounting (entries,
    rows, writes, skipped rows) is charged to each lane's counter before
    returning.
    """
    if kernels is None:
        kernels = get_kernels("auto", warn=False)
    L = wave.lanes
    W = wave.words
    n_max = wave.n_max
    m, n, k, ones, masks = wave.m, wave.n, wave.k, wave.ones, wave.masks
    lane_idx = np.arange(L)
    msb_word, msb_shift = wave.msb_word, wave.msb_shift
    ones_cols = ones[:, :, None]
    word_base = (np.arange(W, dtype=np.int64) * MAX_LANE_BITS)[:, None]

    R_prev = np.zeros((W, L, n_max + 1), dtype=np.uint64)
    R_cur = np.zeros((W, L, n_max + 1), dtype=np.uint64)

    rows_computed = np.zeros(L, dtype=np.int64)
    min_errors = np.full(L, -1, dtype=np.int64)
    done = np.zeros(L, dtype=bool)

    stored_rows: List[object] = []  # per row: R (W, L, n_max+1) or 4-tuple of (W, L, n_max)
    final_cols: List[np.ndarray] = []

    for d in range(wave.k_max + 1):
        computing = (~done) & (d <= k)
        if not computing.any():
            break

        # Column 0: pattern prefixes alignable against the empty text
        # suffix — (ones << d) & ones, i.e. ones with the d low bits
        # cleared; per word w that clears clamp(d - 64 w, 0, 64) bits
        # (rows at or past a lane's pattern length come out all zero).
        row0 = ones & _CLEAR_LOW[np.clip(d - word_base, 0, MAX_LANE_BITS)]
        R_cur[:, :, 0] = row0

        # Lockstep scan along the text.  The match chain is a sequential
        # dependency (value[j] needs value[j-1]), so j stays a loop —
        # delegated to the kernel seam (NumPy reference or compiled twin);
        # everything without that dependency is hoisted out and vectorized
        # over all columns at once.
        if d == 0:
            kernels.dc_scan(R_cur, ones, masks, None)
        else:
            subst_all = _shl1(R_prev[:, :, :-1], ones_cols)
            ins_all = _shl1(R_prev[:, :, 1:], ones_cols)
            partial = subst_all & ins_all & R_prev[:, :, :-1]
            kernels.dc_scan(R_cur, ones, masks, partial)

        # Persist the row full-width; the band packing and pruned-column
        # placeholders of the scalar storage are applied lazily (table(),
        # zero_view_mask), so the hot loop never pays per-column packing.
        if entry_compression:
            stored_rows.append(R_cur.copy())
        else:
            if d == 0:
                match_row = R_cur[:, :, 1:].copy()
                placeholder = np.broadcast_to(ones_cols, (W, L, n_max))
                subst_row = ins_row = del_row = placeholder
            else:
                match_row = _shl1(R_cur[:, :, :-1], ones_cols) | masks
                subst_row, ins_row = subst_all, ins_all
                del_row = R_prev[:, :, :-1].copy()
            stored_rows.append((match_row, subst_row, ins_row, del_row))

        final_val = R_cur[:, lane_idx, n]  # (W, L)
        final_cols.append(final_val)
        rows_computed[computing] += 1

        solution = ((final_val[msb_word, lane_idx] >> msb_shift) & _U1) == _U0
        newly = computing & solution & (min_errors < 0)
        min_errors[newly] = d
        if early_termination:
            done |= newly
        done |= computing & (d >= k)

        R_prev, R_cur = R_cur, R_prev

    # Bulk per-lane accounting, identical in total to the scalar per-row
    # updates (per-row quantities are constant per lane).
    stored_columns = n - np.maximum(0, wave.store_from - 1)
    if entry_compression:
        writes_per_row = stored_columns + (wave.store_from == 0)
    else:
        writes_per_row = 4 * stored_columns

    for i, job in enumerate(wave.jobs):
        rows_i = int(rows_computed[i])
        counter = job.counter
        counter.entries_computed += rows_i * int(n[i])
        counter.rows_computed += rows_i
        counter.record_write(rows_i * int(writes_per_row[i]), int(wave.entry_store[i]))
        found = int(min_errors[i])
        if early_termination and found >= 0:
            counter.rows_skipped += int(k[i]) - found

    return WaveDCState(
        wave=wave,
        entry_compression=entry_compression,
        early_termination=early_termination,
        stored_rows=stored_rows,
        final_cols=final_cols,
        rows_computed=rows_computed,
        min_errors=min_errors,
    )


class _PairState:
    """Mutable per-pair cursor of the lockstep windowing loop."""

    __slots__ = (
        "pattern",
        "text",
        "p",
        "t",
        "code_chunks",
        "windows",
        "peak_bytes",
        "total_bytes",
        "rows_total",
        "counter",
        "done",
        "tb_lockstep",
        "tb_scalar",
        "tb_walk_steps",
        "tb_steps_saved",
        "tb_match_runs",
        "tb_match_run_ops",
    )

    def __init__(self, pattern: str, text: str) -> None:
        self.pattern = pattern
        self.text = text
        self.p = 0
        self.t = 0
        #: per-window packed op codes (see repro.batch.traceback.OPS_BY_CODE)
        self.code_chunks: List[np.ndarray] = []
        self.windows = 0
        self.peak_bytes = 0
        self.total_bytes = 0
        self.rows_total = 0
        self.counter = AccessCounter()
        self.done = len(pattern) == 0
        #: windows traced by each traceback path (metadata diagnostics)
        self.tb_lockstep = 0
        self.tb_scalar = 0
        #: traceback walk iterations vs emitted ops (skip-ahead savings),
        #: and the match runs the skip-ahead consumed whole
        self.tb_walk_steps = 0
        self.tb_steps_saved = 0
        self.tb_match_runs = 0
        self.tb_match_run_ops = 0

    def traceback_path(self) -> str:
        """Which traceback implementation(s) this pair's windows used."""
        if self.tb_lockstep and self.tb_scalar:
            return "mixed"
        if self.tb_scalar:
            return "scalar"
        if self.tb_lockstep:
            return "lockstep"
        return "none"

    def cigar(self) -> Cigar:
        """Run-length encode the accumulated op codes into a CIGAR."""
        if not self.code_chunks:
            return Cigar.from_runs([])
        codes = (
            self.code_chunks[0]
            if len(self.code_chunks) == 1
            else np.concatenate(self.code_chunks)
        )
        boundaries = np.nonzero(np.diff(codes))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [codes.size]))
        return Cigar.from_runs(
            (int(end - start), OPS_BY_CODE[codes[start]])
            for start, end in zip(starts, ends)
        )


class BatchAlignmentEngine:
    """Vectorized windowed GenASM aligner for batches of pairs.

    All pairs advance through their windows together: each iteration of the
    outer loop assembles one :class:`SoAWave` from every unfinished pair's
    current window, runs the lockstep DC kernel (with per-lane
    budget-doubling retry sub-waves), traces the solved lanes back — with
    the lockstep decision-word walk, or the scalar per-lane traceback when
    few lanes need tracing (see ``scalar_traceback_threshold``) — and
    advances the per-pair cursors exactly as
    :func:`repro.core.windowing.align_windowed` would.

    Parameters
    ----------
    config:
        Aligner configuration.  Windows of any width vectorize — a window
        of ``W`` characters occupies ``ceil(W / 64)`` ``uint64`` words per
        lane (:attr:`words_per_lane`), so ``GenASMConfig.short_read``
        workloads take the lockstep path too.  Only ``word_bits != 64``
        falls back to the scalar aligner (the SoA layout is built from
        64-bit words); the fallback is observable via
        ``metadata["vectorized"]`` and a one-time :class:`RuntimeWarning`.
    name:
        Label attached to produced alignments.
    max_lanes:
        Optional cap on concurrent lanes; larger batches are processed in
        chunks of this many pairs (bounds wave memory).
    scheduling:
        Wave-scheduling policy: ``"sorted"`` (default) orders lanes by
        expected lockstep work — window count × words per lane
        (:meth:`expected_work`) — before chunking, so each
        ``max_lanes``-wide chunk runs lanes of similar lifetime in lockstep
        (returned alignments are always restored to input order);
        ``"fifo"`` chunks in input order.  The policy never changes any
        alignment — only the lockstep efficiency of mixed-length batches
        (see :meth:`scheduling_stats`).
    scalar_traceback_threshold:
        Small-wave dispatch heuristic: when fewer than this many lanes of a
        wave need tracing, the traceback runs the scalar per-lane walk
        (:func:`repro.core.genasm_tb.genasm_traceback` over the wave's
        stored state) instead of the lockstep decision-word walk, whose
        per-step NumPy dispatch overhead dominates at small lane counts
        (the small-batch regression noted in the ROADMAP; the measured
        crossover sits between 16 and 32 lanes, see
        :data:`DEFAULT_SCALAR_TRACEBACK_THRESHOLD`).  Both paths are
        byte-identical — alignments *and* access accounting — so the
        threshold only moves the crossover; every alignment records which
        path(s) traced it in ``metadata["traceback_path"]``.  ``0`` forces
        the lockstep walk always; a very large value forces the scalar walk.
    """

    def __init__(
        self,
        config: Optional[GenASMConfig] = None,
        *,
        name: str = "genasm-vectorized",
        max_lanes: Optional[int] = None,
        scheduling: str = "sorted",
        scalar_traceback_threshold: int = DEFAULT_SCALAR_TRACEBACK_THRESHOLD,
    ) -> None:
        self.config = config if config is not None else GenASMConfig()
        self.name = name
        if max_lanes is not None and max_lanes < 1:
            raise ValueError("max_lanes must be at least 1")
        if scheduling not in SCHEDULING_POLICIES:
            raise ValueError(
                f"scheduling must be one of {SCHEDULING_POLICIES}, got {scheduling!r}"
            )
        if scalar_traceback_threshold < 0:
            raise ValueError("scalar_traceback_threshold must be non-negative")
        self.max_lanes = max_lanes
        self.scheduling = scheduling
        self.scalar_traceback_threshold = scalar_traceback_threshold
        #: resolved hot-loop backend ("numpy" or "numba"); an explicit
        #: "numba" request without Numba warns once and degrades here
        self.kernel_backend = resolve_kernel_backend(self.config.kernel_backend)
        self._kernels = get_kernels(self.kernel_backend, warn=False)
        #: running traceback observability across every wave this engine
        #: ran: lockstep iterations, ops the skip-ahead saved over them,
        #: match runs consumed whole (and their op total), wall-clock
        #: seconds in the traceback phase
        self.traceback_stats: Dict[str, float] = {
            "walk_steps": 0,
            "steps_saved": 0,
            "match_runs": 0,
            "match_run_ops": 0,
            "seconds": 0.0,
        }

    @property
    def vectorizable(self) -> bool:
        """Whether this configuration fits the multi-word uint64 lane layout.

        Any ``window_size`` vectorizes (wide windows just use more words
        per lane); only a non-64 ``word_bits`` — which changes the scalar
        path's modelled entry sizes — forces the scalar fallback.
        """
        return self.config.word_bits == 64

    @property
    def words_per_lane(self) -> int:
        """``uint64`` words per full-width lane: ``ceil(window_size / 64)``."""
        return lane_words(self.config.window_size)

    # ------------------------------------------------------------------ #
    def expected_windows(self, pattern_length: int) -> int:
        """Number of windowing steps a pattern of this length will take.

        Exact for this engine and for :func:`repro.core.windowing.align_windowed`:
        each non-final window commits ``window_step`` pattern columns and the
        final window consumes the rest, so the count depends only on the
        pattern length.
        """
        if pattern_length <= 0:
            return 0
        window = self.config.window_size
        if pattern_length <= window:
            return 1
        return 1 + math.ceil((pattern_length - window) / self.config.window_step)

    def expected_work(self, pattern_length: int) -> int:
        """Expected lockstep work of one lane: window count × words/lane.

        This is the per-lane quantity the wave scheduler equalises within
        chunks.  A pattern shorter than the window occupies only
        ``ceil(len / 64)`` words, so with wide-window (short-read) configs
        a 40 bp fragment costs one word-step per window while a 150 bp
        read costs three — sorting by window count alone would let narrow
        lanes pad three-word waves.
        """
        if pattern_length <= 0:
            return 0
        return self.expected_windows(pattern_length) * lane_words(
            min(self.config.window_size, pattern_length)
        )

    def schedule(self, pairs: Sequence[Tuple[str, str]]) -> List[int]:
        """Lane order used when chunking ``pairs`` into waves.

        With ``"sorted"`` scheduling, indices are stably ordered by
        expected lockstep work (:meth:`expected_work`) so lanes of similar
        lifetime share a chunk — lanes of dissimilar window counts or word
        widths pad each other's waves (the SIMT warp-divergence cost
        :func:`repro.batch.soa.lockstep_stats` models).  ``"fifo"`` returns
        the identity order.
        """
        if self.scheduling == "fifo":
            return list(range(len(pairs)))
        return sorted(
            range(len(pairs)),
            key=lambda index: self.expected_work(len(pairs[index][0])),
        )

    def scheduling_stats(self, pairs: Sequence[Tuple[str, str]]) -> Dict[str, float]:
        """Lockstep efficiency of this engine's wave schedule over ``pairs``.

        Applies :func:`repro.batch.soa.lockstep_stats` to the scheduled
        per-lane expected work (window count × words/lane) with
        ``max_lanes``-wide groups — the same model
        :meth:`repro.gpu.simulator.GpuSimulator.warp_divergence` uses for
        warps.
        """
        group = self.max_lanes if self.max_lanes is not None else max(1, len(pairs))
        work = [
            float(self.expected_work(len(pairs[index][0])))
            for index in self.schedule(pairs)
        ]
        stats = lockstep_stats(work, group)
        # Fold in the engine's running traceback observability (zeros
        # until this engine has aligned something) so one call reports
        # both the schedule model and the realised walk savings.
        for key, value in self.traceback_stats.items():
            stats[f"tb_{key}"] = value
        return stats

    def publish_metrics(self, registry) -> None:
        """Publish this engine's counters into a telemetry ``MetricsRegistry``.

        Names live under ``engine_*`` (see :mod:`repro.telemetry.metrics`):
        the running :attr:`traceback_stats` become ``set_total``'d counters
        (idempotent — re-publishing never double-counts) and the resolved
        :attr:`kernel_backend` becomes a labelled info-style gauge.
        """
        stats = self.traceback_stats
        for field, name in (
            ("walk_steps", "engine_tb_walk_steps_total"),
            ("steps_saved", "engine_tb_steps_saved_total"),
            ("match_runs", "engine_tb_match_runs_total"),
            ("match_run_ops", "engine_tb_match_run_ops_total"),
        ):
            registry.counter(name).set_total(stats[field])
        registry.gauge("engine_tb_seconds").set(stats["seconds"])
        registry.gauge(
            "engine_kernel_backend_info", backend=self.kernel_backend
        ).set(1)

    # ------------------------------------------------------------------ #
    def align_pairs(
        self,
        pairs: Sequence[Tuple[str, str]],
        *,
        counter: Optional[AccessCounter] = None,
    ) -> List[Alignment]:
        """Align a batch of (pattern, text) pairs; results match the scalar path.

        A shared :class:`AccessCounter` may be supplied; it receives the
        whole batch's aggregate DP traffic, equal to what
        :meth:`repro.core.aligner.GenASMAligner.align_batch` accumulates.
        Each alignment's ``metadata`` always describes that pair alone
        (``align_batch`` instead snapshots the shared counter's running
        totals into per-alignment metadata, which this engine does not
        replicate), and always records ``vectorized`` / ``words_per_lane``
        so a scalar fallback is observable.
        """
        if not self.vectorizable:
            reason = f"word_bits={self.config.word_bits}"
            if reason not in _FALLBACK_WARNED:
                _FALLBACK_WARNED.add(reason)
                warnings.warn(
                    f"BatchAlignmentEngine({self.name!r}): config with "
                    f"{reason} does not fit the uint64 lane layout; "
                    "falling back to the scalar per-pair aligner for "
                    "every batch (warned once per process per reason)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            from repro.core.aligner import GenASMAligner

            aligner = GenASMAligner(self.config, name=self.name)
            alignments = [aligner.align(p, t, counter=counter) for p, t in pairs]
            for alignment in alignments:
                alignment.metadata["vectorized"] = False
                alignment.metadata["words_per_lane"] = self.words_per_lane
            return alignments

        pairs = list(pairs)
        out: List[Optional[Alignment]] = [None] * len(pairs)
        order = self.schedule(pairs)
        step = self.max_lanes if self.max_lanes is not None else max(1, len(pairs))
        for start in range(0, len(order), step):
            chunk_indices = order[start : start + step]
            chunk = [pairs[index] for index in chunk_indices]
            for index, alignment in zip(chunk_indices, self._align_chunk(chunk, counter)):
                out[index] = alignment
        if any(a is None for a in out):
            raise AssertionError("batch engine produced fewer alignments than pairs")
        return out

    # ------------------------------------------------------------------ #
    def _align_chunk(
        self, pairs: Sequence[Tuple[str, str]], shared: Optional[AccessCounter]
    ) -> List[Alignment]:
        config = self.config
        states = [_PairState(p, t) for p, t in pairs]

        while True:
            active = [s for s in states if not s.done]
            if not active:
                break
            wave_members: List[Tuple[_PairState, str, str, int, int]] = []
            for s in active:
                remaining = len(s.pattern) - s.p
                w = min(config.window_size, remaining)
                text_budget = min(len(s.text) - s.t, w + config.text_slack)
                window_pattern = s.pattern[s.p : s.p + w]
                window_text = s.text[s.t : s.t + max(0, text_budget)]
                last_window = w >= remaining
                commit = w if last_window else max(1, min(w, min(config.window_step, w)))

                if len(window_text) == 0:
                    # No DP to run: the committed pattern prefix is emitted
                    # as insertions (align_window's empty-text early return,
                    # inlined so _apply_window owns all window accounting).
                    self._apply_window(
                        s,
                        codes=np.full(commit, _INSERTION_CODE, dtype=np.int8),
                        pattern_consumed=commit,
                        text_consumed=0,
                        rows=0,
                        stored=0,
                    )
                    continue
                wave_members.append((s, window_pattern, window_text, commit, w))

            if wave_members:
                self._run_wave(wave_members)

            for s in states:
                if not s.done and s.p >= len(s.pattern):
                    s.done = True

        footprint = MemoryFootprint.from_config(config)
        model_bytes = footprint.bytes_for_config(config)
        alignments: List[Alignment] = []
        for s in states:
            cigar = s.cigar()
            metadata = {
                "windows": s.windows,
                "rows_computed": s.rows_total,
                "peak_window_bytes": s.peak_bytes,
                "total_stored_bytes": s.total_bytes,
                "dp_accesses": s.counter.total_accesses,
                "dp_bytes": s.counter.total_bytes,
                "model_window_bytes": model_bytes,
                "traceback_path": s.traceback_path(),
                "vectorized": True,
                "words_per_lane": self.words_per_lane,
                "kernel_backend": self.kernel_backend,
                "tb_walk_steps": s.tb_walk_steps,
                "tb_walk_steps_saved": s.tb_steps_saved,
                "tb_match_runs": s.tb_match_runs,
                "tb_match_run_ops": s.tb_match_run_ops,
            }
            alignments.append(
                Alignment(
                    pattern=s.pattern,
                    text=s.text,
                    cigar=cigar,
                    edit_distance=cigar.edit_distance,
                    text_start=0,
                    text_end=s.t,
                    aligner=self.name,
                    metadata=metadata,
                )
            )
            if shared is not None:
                shared.merge(s.counter)
        return alignments

    # ------------------------------------------------------------------ #
    def _run_wave(
        self, members: Sequence[Tuple[_PairState, str, str, int, int]]
    ) -> None:
        """Run one windowing step for every member, with retry sub-waves.

        Both phases of the window are lockstep over the whole wave: the DC
        kernel (:func:`run_dc_wave_state`) and the decision-word traceback
        (:func:`repro.batch.traceback.lockstep_traceback`).  Lanes whose
        error budget failed skip the traceback and retry with a doubled
        budget in the next sub-wave.
        """
        config = self.config
        # (state, rev_pattern, rev_text, commit, window_text_len, budget)
        pending = [
            (s, wp[::-1], wt[::-1], commit, len(wt), max(1, min(w, config.k)))
            for s, wp, wt, commit, w in members
        ]
        while pending:
            jobs = []
            for s, rev_p, rev_t, commit, _wt_len, budget in pending:
                store_from = 0
                if config.traceback_band:
                    store_from = reachable_column_start(len(rev_t), commit, budget)
                jobs.append(
                    LaneJob(
                        pattern=rev_p,
                        text=rev_t,
                        max_errors=budget,
                        store_from=store_from,
                        counter=s.counter,
                    )
                )
            wave = SoAWave(
                jobs, traceback_band=config.traceback_band, word_bits=config.word_bits
            )
            state = run_dc_wave_state(
                wave,
                entry_compression=config.entry_compression,
                early_termination=config.early_termination,
                kernels=self._kernels,
            )

            solved = state.min_errors >= 0
            retries = []
            for lane, (s, rev_p, rev_t, commit, wt_len, budget) in enumerate(pending):
                if not solved[lane]:
                    m = len(rev_p)
                    if budget >= m:
                        raise AssertionError(
                            "GenASM window failed with a full error budget (internal error)"
                        )
                    retries.append((s, rev_p, rev_t, commit, wt_len, min(m, budget * 2)))

            if solved.any():
                start = time.perf_counter()
                if int(solved.sum()) < self.effective_scalar_threshold():
                    self._traceback_scalar_lanes(state, pending, solved)
                else:
                    self._traceback_lockstep_lanes(state, wave, pending, solved)
                self.traceback_stats["seconds"] += time.perf_counter() - start
            pending = retries

    def effective_scalar_threshold(self) -> int:
        """Lane-count crossover of the scalar-vs-lockstep traceback dispatch.

        With match-run skip-ahead active (``traceback_skip_ahead`` and an
        M-first priority) each lockstep iteration covers a whole match run,
        so the walk amortises its per-step NumPy dispatch over fewer,
        fatter steps — the crossover roughly halves.
        """
        if self.config.traceback_skip_ahead and self.config.match_priority[0] == "M":
            return self.scalar_traceback_threshold // 2
        return self.scalar_traceback_threshold

    def _traceback_lockstep_lanes(
        self,
        state: WaveDCState,
        wave: SoAWave,
        pending: Sequence[Tuple["_PairState", str, str, int, int, int]],
        solved: np.ndarray,
    ) -> None:
        """Trace all solved lanes with the lockstep decision-word walk."""
        config = self.config
        # The walk only descends from solved lanes' min_errors, so rows
        # above that (computed for still-retrying lanes) need no decision
        # words.
        rows_needed = int(state.min_errors[solved].max()) + 1
        decisions = build_wave_decisions(
            wave,
            state.stored_rows[:rows_needed],
            entry_compression=config.entry_compression,
        )
        tracebacks = lockstep_traceback(
            wave,
            decisions,
            start_errors=state.min_errors,
            budgets=np.array([p[3] for p in pending], dtype=np.int64),
            priority=config.match_priority,
            active=solved,
            skip_ahead=config.traceback_skip_ahead,
            kernels=self._kernels,
        )
        stored = state.stored_bytes()
        for lane, (s, _rev_p, _rev_t, _commit, wt_len, _budget) in enumerate(pending):
            tb = tracebacks[lane]
            if tb is None:
                continue
            self._apply_window(
                s,
                codes=tb.codes,
                pattern_consumed=tb.pattern_consumed,
                text_consumed=wt_len - tb.text_stop,
                rows=int(state.rows_computed[lane]),
                stored=int(stored[lane]),
                path="lockstep",
                walk_steps=tb.walk_steps,
                match_runs=tb.match_runs,
                match_run_ops=tb.match_run_ops,
            )

    def _traceback_scalar_lanes(
        self,
        state: WaveDCState,
        pending: Sequence[Tuple["_PairState", str, str, int, int, int]],
        solved: np.ndarray,
    ) -> None:
        """Trace solved lanes one by one with the scalar traceback.

        The small-wave path of the dispatch heuristic: below
        :attr:`scalar_traceback_threshold` traced lanes, materialising each
        lane's :class:`DCTable` and walking it with
        :func:`repro.core.genasm_tb.genasm_traceback` beats the lockstep
        walk's per-step NumPy dispatch.  Decisions and read accounting are
        identical by construction — the scalar walk reads the same stored
        state through the same predicates the decision words encode.
        """
        from repro.core.genasm_tb import genasm_traceback

        priority = self.config.match_priority
        stored = state.stored_bytes()
        for lane, (s, _rev_p, _rev_t, commit, wt_len, _budget) in enumerate(pending):
            if not solved[lane]:
                continue
            table = state.table(lane)
            ops, text_stop = genasm_traceback(
                table, priority=priority, max_pattern_columns=commit
            )
            codes = np.fromiter(
                (_CODE_BY_OP[op] for op in ops), dtype=np.int8, count=len(ops)
            )
            self._apply_window(
                s,
                codes=codes,
                pattern_consumed=sum(1 for op in ops if op.consumes_pattern),
                text_consumed=wt_len - text_stop,
                rows=int(state.rows_computed[lane]),
                stored=int(stored[lane]),
                path="scalar",
            )

    def _apply_window(
        self,
        s: _PairState,
        *,
        codes: np.ndarray,
        pattern_consumed: int,
        text_consumed: int,
        rows: int,
        stored: int,
        path: Optional[str] = None,
        walk_steps: Optional[int] = None,
        match_runs: int = 0,
        match_run_ops: int = 0,
    ) -> None:
        # Single home of window accounting: the E-series counter and the
        # per-pair metadata tally advance together, once per committed
        # window (never per retry sub-wave).
        if path == "lockstep":
            s.tb_lockstep += 1
        elif path == "scalar":
            s.tb_scalar += 1
        # Walk observability: a path that emits one op per iteration (the
        # scalar walk, or untraced insert-only windows) saves nothing.
        if walk_steps is None:
            walk_steps = int(codes.size)
        saved = int(codes.size) - walk_steps
        s.tb_walk_steps += walk_steps
        s.tb_steps_saved += saved
        s.tb_match_runs += match_runs
        s.tb_match_run_ops += match_run_ops
        stats = self.traceback_stats
        stats["walk_steps"] += walk_steps
        stats["steps_saved"] += saved
        stats["match_runs"] += match_runs
        stats["match_run_ops"] += match_run_ops
        s.windows += 1
        s.counter.windows += 1
        s.peak_bytes = max(s.peak_bytes, stored)
        s.total_bytes += stored
        s.rows_total += rows
        s.code_chunks.append(codes)
        s.p += pattern_consumed
        s.t += text_consumed
        if pattern_consumed == 0:
            # Defensive: mirror align_windowed's forward-progress guard.
            s.done = True


def align_pairs_vectorized(
    pairs: Sequence[Tuple[str, str]],
    config: Optional[GenASMConfig] = None,
    *,
    counter: Optional[AccessCounter] = None,
) -> List[Alignment]:
    """One-shot convenience wrapper over :class:`BatchAlignmentEngine`."""
    return BatchAlignmentEngine(config).align_pairs(pairs, counter=counter)
