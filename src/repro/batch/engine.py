"""Vectorized batched-alignment engine (lockstep GenASM over NumPy lanes).

The scalar pipeline (:mod:`repro.core.windowing`) aligns one window at a
time with a Python-int hot loop.  For batch workloads the per-step work is
identical across pairs — the GenASM recurrence is the same five bitvector
operations regardless of the sequences — so this engine evaluates **many
window pairs in lockstep**: one ``uint64`` lane per pair, with the DP step
``(d, j)`` applied to all lanes at once as NumPy array operations.  The
Python interpreter then executes ``rows × n_max`` steps per *wave* instead
of ``rows × n`` steps per *pair*, amortising interpreter overhead across
the wave width.

Equivalence contract
--------------------
The engine is not an approximation: it persists exactly the band-packed
entries the scalar :func:`repro.core.genasm_dc.genasm_dc` would store
(including the traceback-reachability placeholders), reconstructs a
:class:`repro.core.genasm_dc.DCTable` per lane, and reuses the scalar
:func:`repro.core.genasm_tb.genasm_traceback`.  Alignments (CIGAR, edit
distance, consumed text span) and the E-series accounting (DP accesses,
stored bytes, windows, rows) are therefore identical to the scalar path —
the test suite asserts this pair-by-pair on the simulated-read corpus.

Structure
---------
* :func:`run_dc_wave` — the lockstep GenASM-DC kernel over a
  :class:`repro.batch.soa.SoAWave`; returns one ``DCTable`` per lane.
* :class:`BatchAlignmentEngine` — the windowed aligner: all pairs advance
  their current window together (one wave per windowing step), lanes whose
  error budget fails are retried in doubling sub-waves, and finished pairs
  drop out of subsequent waves.

Patterns wider than 64 characters per window do not fit a ``uint64`` lane;
such configurations transparently fall back to the scalar aligner (see
:attr:`BatchAlignmentEngine.vectorizable`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.soa import MAX_LANE_BITS, LaneJob, SoAWave
from repro.core.alignment import Alignment
from repro.core.cigar import Cigar, CigarOp
from repro.core.config import GenASMConfig
from repro.core.genasm_dc import DCTable
from repro.core.genasm_tb import genasm_traceback
from repro.core.improvements import reachable_column_start
from repro.core.metrics import AccessCounter, MemoryFootprint
from repro.core.windowing import align_window

__all__ = ["BatchAlignmentEngine", "run_dc_wave", "align_pairs_vectorized"]

_U1 = np.uint64(1)
_U0 = np.uint64(0)


def run_dc_wave(
    wave: SoAWave,
    *,
    entry_compression: bool = True,
    early_termination: bool = True,
) -> List[DCTable]:
    """Run GenASM-DC over every lane of ``wave`` in lockstep.

    Returns one :class:`DCTable` per lane with exactly the stored state,
    ``min_errors``, ``rows_computed`` and access accounting the scalar
    :func:`repro.core.genasm_dc.genasm_dc` produces for the same inputs.
    Lanes terminate independently (budget exhausted, or solution found when
    early termination is on); the wave stops once every lane is done.
    """
    L = wave.lanes
    n_max = wave.n_max
    traceback_band = wave.traceback_band
    m, n, k, ones, masks = wave.m, wave.n, wave.k, wave.ones, wave.masks
    lane_idx = np.arange(L)
    msb_shift = (m - 1).astype(np.uint64)
    ones_col = ones[:, None]

    R_prev = np.zeros((L, n_max + 1), dtype=np.uint64)
    R_cur = np.zeros((L, n_max + 1), dtype=np.uint64)

    rows_computed = np.zeros(L, dtype=np.int64)
    min_errors = np.full(L, -1, dtype=np.int64)
    done = np.zeros(L, dtype=bool)

    stored_rows: List[object] = []  # per row: packed R (L, n_max+1) or 4-tuple of (L, n_max)
    final_cols: List[np.ndarray] = []

    for d in range(wave.k_max + 1):
        computing = (~done) & (d <= k)
        if not computing.any():
            break

        # Column 0: pattern prefixes alignable against the empty text suffix.
        if d <= MAX_LANE_BITS - 1:
            row0 = np.where(d < m, (ones << np.uint64(d)) & ones, _U0)
        else:
            row0 = np.zeros(L, dtype=np.uint64)
        R_cur[:, 0] = row0

        # Lockstep scan along the text.  The match chain is a sequential
        # dependency (value[j] needs value[j-1]), so j stays a Python loop;
        # everything without that dependency is hoisted out and vectorized
        # over all columns at once.
        prev_value = row0
        if d == 0:
            for j in range(1, n_max + 1):
                value = ((prev_value << _U1) & ones) | masks[:, j - 1]
                R_cur[:, j] = value
                prev_value = value
        else:
            subst_all = (R_prev[:, :-1] << _U1) & ones_col
            ins_all = (R_prev[:, 1:] << _U1) & ones_col
            partial = subst_all & ins_all & R_prev[:, :-1]
            for j in range(1, n_max + 1):
                value = (((prev_value << _U1) & ones) | masks[:, j - 1]) & partial[:, j - 1]
                R_cur[:, j] = value
                prev_value = value

        # Persist the row, band-packed, with the scalar path's placeholder
        # (all-ones) for pruned / out-of-range columns.
        if entry_compression:
            if traceback_band:
                packed = (R_cur >> wave.band_lo) & wave.band_mask[:, None]
                stored_rows.append(np.where(wave.store_col, packed, ones_col))
            else:
                stored_rows.append(R_cur.copy())
        else:
            if d == 0:
                match_row = R_cur[:, 1:]
                subst_row = ins_row = del_row = np.broadcast_to(ones_col, (L, n_max))
            else:
                match_row = ((R_cur[:, :-1] << _U1) & ones_col) | masks
                subst_row, ins_row, del_row = subst_all, ins_all, R_prev[:, :-1]
            if traceback_band:
                lo_q = wave.band_lo[:, 1:]
                mask_q = wave.band_mask[:, None]
                keep = wave.store_col[:, 1:]
                stored_rows.append(
                    tuple(
                        np.where(keep, (x >> lo_q) & mask_q, ones_col)
                        for x in (match_row, subst_row, ins_row, del_row)
                    )
                )
            else:
                stored_rows.append(
                    tuple(np.array(x) for x in (match_row, subst_row, ins_row, del_row))
                )

        final_val = R_cur[lane_idx, n]
        final_cols.append(final_val)
        rows_computed[computing] += 1

        solution = ((final_val >> msb_shift) & _U1) == _U0
        newly = computing & solution & (min_errors < 0)
        min_errors[newly] = d
        if early_termination:
            done |= newly
        done |= computing & (d >= k)

        R_prev, R_cur = R_cur, R_prev

    # Bulk per-lane accounting, identical in total to the scalar per-row
    # updates (per-row quantities are constant per lane).
    stored_columns = n - np.maximum(0, wave.store_from - 1)
    if entry_compression:
        writes_per_row = stored_columns + (wave.store_from == 0)
    else:
        writes_per_row = 4 * stored_columns

    tables: List[DCTable] = []
    for i, job in enumerate(wave.jobs):
        rows_i = int(rows_computed[i])
        n_i = int(n[i])
        k_i = int(k[i])
        counter = job.counter
        counter.entries_computed += rows_i * n_i
        counter.rows_computed += rows_i
        counter.record_write(rows_i * int(writes_per_row[i]), int(wave.entry_store[i]))
        found = int(min_errors[i])
        if early_termination and found >= 0:
            counter.rows_skipped += k_i - found

        table = DCTable(
            pattern=job.pattern,
            text=job.text,
            max_errors=k_i,
            entry_compression=entry_compression,
            early_termination=early_termination,
            traceback_band=traceback_band,
            word_bits=wave.word_bits,
            store_from_column=int(wave.store_from[i]),
            counter=counter,
        )
        table.rows_computed = rows_i
        table.min_errors = found if found >= 0 else None
        table.final_column = [int(final_cols[d][i]) for d in range(rows_i)]
        if entry_compression:
            table.stored_r = [stored_rows[d][i, : n_i + 1].tolist() for d in range(rows_i)]
        else:
            table.stored_quad = [
                list(
                    zip(
                        stored_rows[d][0][i, :n_i].tolist(),
                        stored_rows[d][1][i, :n_i].tolist(),
                        stored_rows[d][2][i, :n_i].tolist(),
                        stored_rows[d][3][i, :n_i].tolist(),
                    )
                )
                for d in range(rows_i)
            ]
        table._band_lo = [int(x) for x in wave.band_lo[i, : n_i + 1]]
        table._band_width = None  # lazily derived; identical to scalar
        tables.append(table)
    return tables


class _PairState:
    """Mutable per-pair cursor of the lockstep windowing loop."""

    __slots__ = (
        "pattern",
        "text",
        "p",
        "t",
        "ops",
        "windows",
        "peak_bytes",
        "total_bytes",
        "rows_total",
        "counter",
        "done",
    )

    def __init__(self, pattern: str, text: str) -> None:
        self.pattern = pattern
        self.text = text
        self.p = 0
        self.t = 0
        self.ops: List[CigarOp] = []
        self.windows = 0
        self.peak_bytes = 0
        self.total_bytes = 0
        self.rows_total = 0
        self.counter = AccessCounter()
        self.done = len(pattern) == 0


class BatchAlignmentEngine:
    """Vectorized windowed GenASM aligner for batches of pairs.

    All pairs advance through their windows together: each iteration of the
    outer loop assembles one :class:`SoAWave` from every unfinished pair's
    current window, runs the lockstep DC kernel (with per-lane
    budget-doubling retry sub-waves), traces each lane back with the scalar
    traceback, and advances the per-pair cursors exactly as
    :func:`repro.core.windowing.align_windowed` would.

    Parameters
    ----------
    config:
        Aligner configuration; must use ``window_size <= 64`` for the
        vectorized path (one ``uint64`` lane per pair).  Wider windows fall
        back to the scalar aligner so the engine is total over configs.
    name:
        Label attached to produced alignments.
    max_lanes:
        Optional cap on concurrent lanes; larger batches are processed in
        chunks of this many pairs (bounds wave memory, keeps lanes of
        similar length together when the caller pre-sorts).
    """

    def __init__(
        self,
        config: Optional[GenASMConfig] = None,
        *,
        name: str = "genasm-vectorized",
        max_lanes: Optional[int] = None,
    ) -> None:
        self.config = config if config is not None else GenASMConfig()
        self.name = name
        if max_lanes is not None and max_lanes < 1:
            raise ValueError("max_lanes must be at least 1")
        self.max_lanes = max_lanes

    @property
    def vectorizable(self) -> bool:
        """Whether this configuration fits the uint64 lane layout."""
        return self.config.window_size <= MAX_LANE_BITS and self.config.word_bits == 64

    # ------------------------------------------------------------------ #
    def align_pairs(
        self,
        pairs: Sequence[Tuple[str, str]],
        *,
        counter: Optional[AccessCounter] = None,
    ) -> List[Alignment]:
        """Align a batch of (pattern, text) pairs; results match the scalar path.

        A shared :class:`AccessCounter` may be supplied; it receives the
        whole batch's aggregate DP traffic, equal to what
        :meth:`repro.core.aligner.GenASMAligner.align_batch` accumulates.
        Each alignment's ``metadata`` always describes that pair alone
        (``align_batch`` instead snapshots the shared counter's running
        totals into per-alignment metadata, which this engine does not
        replicate).
        """
        if not self.vectorizable:
            from repro.core.aligner import GenASMAligner

            aligner = GenASMAligner(self.config, name=self.name)
            return [aligner.align(p, t, counter=counter) for p, t in pairs]

        pairs = list(pairs)
        out: List[Optional[Alignment]] = [None] * len(pairs)
        step = self.max_lanes if self.max_lanes is not None else max(1, len(pairs))
        for start in range(0, len(pairs), step):
            chunk = pairs[start : start + step]
            for offset, alignment in enumerate(self._align_chunk(chunk, counter)):
                out[start + offset] = alignment
        if any(a is None for a in out):
            raise AssertionError("batch engine produced fewer alignments than pairs")
        return out

    # ------------------------------------------------------------------ #
    def _align_chunk(
        self, pairs: Sequence[Tuple[str, str]], shared: Optional[AccessCounter]
    ) -> List[Alignment]:
        config = self.config
        states = [_PairState(p, t) for p, t in pairs]

        while True:
            active = [s for s in states if not s.done]
            if not active:
                break
            wave_members: List[Tuple[_PairState, str, str, int, int]] = []
            for s in active:
                remaining = len(s.pattern) - s.p
                w = min(config.window_size, remaining)
                text_budget = min(len(s.text) - s.t, w + config.text_slack)
                window_pattern = s.pattern[s.p : s.p + w]
                window_text = s.text[s.t : s.t + max(0, text_budget)]
                last_window = w >= remaining
                commit = w if last_window else max(1, min(w, min(config.window_step, w)))

                if len(window_text) == 0:
                    # No DP to vectorize: delegate to the scalar early-return
                    # path so its semantics stay single-sourced.
                    result = align_window(
                        window_pattern,
                        window_text,
                        config,
                        counter=s.counter,
                        commit_columns=commit,
                    )
                    self._apply_window(
                        s,
                        ops=result.ops,
                        pattern_consumed=result.pattern_consumed,
                        text_consumed=result.text_consumed,
                        rows=result.rows_computed,
                        stored=result.stored_bytes,
                    )
                    continue
                wave_members.append((s, window_pattern, window_text, commit, w))

            if wave_members:
                self._run_wave(wave_members)

            for s in states:
                if not s.done and s.p >= len(s.pattern):
                    s.done = True

        footprint = MemoryFootprint.from_config(config)
        model_bytes = footprint.bytes_for_config(config)
        alignments: List[Alignment] = []
        for s in states:
            cigar = Cigar.from_ops(s.ops)
            metadata = {
                "windows": s.windows,
                "rows_computed": s.rows_total,
                "peak_window_bytes": s.peak_bytes,
                "total_stored_bytes": s.total_bytes,
                "dp_accesses": s.counter.total_accesses,
                "dp_bytes": s.counter.total_bytes,
                "model_window_bytes": model_bytes,
            }
            alignments.append(
                Alignment(
                    pattern=s.pattern,
                    text=s.text,
                    cigar=cigar,
                    edit_distance=cigar.edit_distance,
                    text_start=0,
                    text_end=s.t,
                    aligner=self.name,
                    metadata=metadata,
                )
            )
            if shared is not None:
                shared.merge(s.counter)
        return alignments

    # ------------------------------------------------------------------ #
    def _run_wave(
        self, members: Sequence[Tuple[_PairState, str, str, int, int]]
    ) -> None:
        """Run one windowing step for every member, with retry sub-waves."""
        config = self.config
        # (state, rev_pattern, rev_text, commit, window_text_len, budget)
        pending = [
            (s, wp[::-1], wt[::-1], commit, len(wt), max(1, min(w, config.k)))
            for s, wp, wt, commit, w in members
        ]
        while pending:
            jobs = []
            for s, rev_p, rev_t, commit, _wt_len, budget in pending:
                store_from = 0
                if config.traceback_band:
                    store_from = reachable_column_start(len(rev_t), commit, budget)
                jobs.append(
                    LaneJob(
                        pattern=rev_p,
                        text=rev_t,
                        max_errors=budget,
                        store_from=store_from,
                        counter=s.counter,
                    )
                )
            wave = SoAWave(
                jobs, traceback_band=config.traceback_band, word_bits=config.word_bits
            )
            tables = run_dc_wave(
                wave,
                entry_compression=config.entry_compression,
                early_termination=config.early_termination,
            )

            retries = []
            for (s, rev_p, rev_t, commit, wt_len, budget), table in zip(pending, tables):
                if table.min_errors is None:
                    m = len(rev_p)
                    if budget >= m:
                        raise AssertionError(
                            "GenASM window failed with a full error budget (internal error)"
                        )
                    retries.append((s, rev_p, rev_t, commit, wt_len, min(m, budget * 2)))
                    continue
                ops, text_stop = genasm_traceback(
                    table, priority=config.match_priority, max_pattern_columns=commit
                )
                s.counter.windows += 1
                self._apply_window(
                    s,
                    ops=ops,
                    pattern_consumed=sum(1 for op in ops if op.consumes_pattern),
                    text_consumed=wt_len - text_stop,
                    rows=table.rows_computed,
                    stored=table.stored_bytes(),
                )
            pending = retries

    @staticmethod
    def _apply_window(
        s: _PairState,
        *,
        ops: List[CigarOp],
        pattern_consumed: int,
        text_consumed: int,
        rows: int,
        stored: int,
    ) -> None:
        s.windows += 1
        s.peak_bytes = max(s.peak_bytes, stored)
        s.total_bytes += stored
        s.rows_total += rows
        s.ops.extend(ops)
        s.p += pattern_consumed
        s.t += text_consumed
        if pattern_consumed == 0:
            # Defensive: mirror align_windowed's forward-progress guard.
            s.done = True


def align_pairs_vectorized(
    pairs: Sequence[Tuple[str, str]],
    config: Optional[GenASMConfig] = None,
    *,
    counter: Optional[AccessCounter] = None,
) -> List[Alignment]:
    """One-shot convenience wrapper over :class:`BatchAlignmentEngine`."""
    return BatchAlignmentEngine(config).align_pairs(pairs, counter=counter)
