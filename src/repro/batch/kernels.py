"""Optional compiled kernels for the batch engine's two hottest loops.

The vectorized engine spends most of its time in two places: the DC
recurrence's per-column match-chain scan (:func:`run_dc_wave_state`'s
``j`` loop — a sequential dependency NumPy cannot vectorize away) and the
traceback walk's per-step gather (four plane words plus the character-
equality word per lane, combined into the priority key).  Both are
perfect ``@njit`` shapes: tight integer loops over contiguous ``uint64``
arrays with no allocation.

This module is the seam that selects between the NumPy reference
implementation and a Numba-compiled twin:

* :data:`HAVE_NUMBA` records whether ``numba`` imported; the container
  and the default CI legs run without it, one CI leg installs it and
  re-runs the equivalence suite.
* :func:`resolve_kernel_backend` maps the ``GenASMConfig.kernel_backend``
  request (``"auto"`` / ``"numpy"`` / ``"numba"``) to the backend that
  will actually run.  Requesting ``"numba"`` without Numba degrades to
  ``"numpy"`` with a one-time :class:`RuntimeWarning` through the same
  dedupe set the engine's scalar fallback uses (:data:`FALLBACK_WARNED`).
* :func:`get_kernels` returns the :class:`KernelSet` for a resolved
  backend.  Both sets compute bit-identical results — the differential
  sweep in ``tests/test_batch_traceback.py`` pins the contract whenever
  Numba is importable.

Keeping the warning dedupe here (rather than in ``repro.batch.engine``)
avoids a circular import; the engine re-exports it as
``_FALLBACK_WARNED`` for the tests that re-arm warnings.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "KERNEL_BACKENDS",
    "FALLBACK_WARNED",
    "KernelSet",
    "resolve_kernel_backend",
    "get_kernels",
    "warn_fallback",
]

#: Values accepted by ``GenASMConfig.kernel_backend``.
KERNEL_BACKENDS = ("auto", "numpy", "numba")

#: Fallback reasons already warned about in this process, keyed by the
#: reason string.  Module-level on purpose: services construct engines per
#: worker or per request, so a per-instance flag would re-emit the same
#: ``RuntimeWarning`` endlessly for one configuration problem.  Tests
#: clear this set to re-arm the warning (the engine re-exports it as
#: ``_FALLBACK_WARNED``).
FALLBACK_WARNED: set = set()

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # the container default; the seam degrades to NumPy
    numba = None
    HAVE_NUMBA = False

_U1 = np.uint64(1)
_U63 = np.uint64(63)


def warn_fallback(reason: str, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning once per process per ``reason``."""
    if reason in FALLBACK_WARNED:
        return
    FALLBACK_WARNED.add(reason)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def resolve_kernel_backend(requested: str = "auto", *, warn: bool = True) -> str:
    """Map a requested kernel backend to the one that will actually run.

    ``"auto"`` prefers Numba when importable (the compiled path is
    byte-identical, so opting in costs nothing but JIT warmup) and falls
    back to NumPy silently.  An explicit ``"numba"`` request without
    Numba degrades to ``"numpy"`` and warns once per process (suppressed
    with ``warn=False`` for pure introspection, e.g. result metadata).
    """
    if requested not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernel_backend must be one of {KERNEL_BACKENDS}, got {requested!r}"
        )
    if requested == "numpy":
        return "numpy"
    if HAVE_NUMBA:
        return "numba"
    if requested == "numba" and warn:
        warn_fallback(
            "kernel_backend=numba",
            "kernel_backend='numba' requested but numba is not importable; "
            "falling back to the NumPy kernels (warned once per process)",
        )
    return "numpy"


@dataclass(frozen=True)
class KernelSet:
    """The two hot-loop kernels of one backend.

    ``dc_scan(R_cur, ones, masks, partial)`` fills columns ``1..n`` of the
    current DC row in place: ``R_cur`` is ``(W, L, n_max + 1)`` with column
    0 already holding row 0's boundary value, ``masks`` is
    ``(W, L, n_max)``, ``ones`` ``(W, L)``, and ``partial`` is the
    pre-ANDed subst/ins/del term for rows ``d >= 1`` (``None`` on row 0).
    Cross-word carry moves bit 63 of word ``w`` into bit 0 of ``w + 1``.

    ``tb_gather(planes_flat, char_flat, flat, word_at, shift, weights)``
    is one traceback step's gather: for each lane it extracts bit
    ``shift`` of the four condition-plane words at ``flat`` and of the
    character-equality word at ``word_at``, returning the priority-packed
    ``key`` (uint64, condition bits weighted by ``weights``) and the
    character bit.
    """

    name: str
    dc_scan: Callable
    tb_gather: Callable


# --------------------------------------------------------------------------- #
# NumPy reference implementations (the seed engine's loops, verbatim).
# --------------------------------------------------------------------------- #
def _dc_scan_numpy(
    R_cur: np.ndarray,
    ones: np.ndarray,
    masks: np.ndarray,
    partial: Optional[np.ndarray],
) -> None:
    multi_word = R_cur.shape[0] > 1
    n_max = masks.shape[2]
    prev_value = R_cur[:, :, 0]
    if partial is None:
        for j in range(1, n_max + 1):
            shifted = prev_value << _U1
            if multi_word:
                shifted[1:] |= prev_value[:-1] >> _U63
            value = (shifted & ones) | masks[:, :, j - 1]
            R_cur[:, :, j] = value
            prev_value = value
    else:
        for j in range(1, n_max + 1):
            shifted = prev_value << _U1
            if multi_word:
                shifted[1:] |= prev_value[:-1] >> _U63
            value = ((shifted & ones) | masks[:, :, j - 1]) & partial[:, :, j - 1]
            R_cur[:, :, j] = value
            prev_value = value


def _tb_gather_numpy(
    planes_flat: np.ndarray,
    char_flat: np.ndarray,
    flat: np.ndarray,
    word_at: np.ndarray,
    shift: np.ndarray,
    weights: np.ndarray,
):
    words = planes_flat[:, flat]  # (4, L) condition words
    bits = (words >> shift) & _U1
    char_bit = (char_flat[word_at] >> shift) & _U1
    key = (bits * weights[:, None]).sum(axis=0)
    return key, char_bit


_NUMPY_KERNELS = KernelSet(
    name="numpy", dc_scan=_dc_scan_numpy, tb_gather=_tb_gather_numpy
)


# --------------------------------------------------------------------------- #
# Numba twins: same arithmetic as the NumPy loops, expressed as explicit
# per-lane/per-word integer loops (the shape @njit compiles best).
# --------------------------------------------------------------------------- #
_NUMBA_KERNELS: Optional[KernelSet] = None

if HAVE_NUMBA:  # pragma: no cover - exercised only in the Numba CI leg

    @numba.njit(cache=True)
    def _dc_scan_numba_impl(R_cur, ones, masks, partial, has_partial):
        W, L, cols = R_cur.shape
        one = np.uint64(1)
        s63 = np.uint64(63)
        for j in range(1, cols):
            for lane in range(L):
                carry = np.uint64(0)
                for w in range(W):
                    prev = R_cur[w, lane, j - 1]
                    shifted = (prev << one) | carry
                    carry = prev >> s63
                    value = (shifted & ones[w, lane]) | masks[w, lane, j - 1]
                    if has_partial:
                        value = value & partial[w, lane, j - 1]
                    R_cur[w, lane, j] = value

    @numba.njit(cache=True)
    def _tb_gather_numba_impl(
        planes_flat, char_flat, flat, word_at, shift, weights, key_out, char_out
    ):
        one = np.uint64(1)
        for lane in range(flat.size):
            s = shift[lane]
            key = np.uint64(0)
            for p in range(4):
                key += ((planes_flat[p, flat[lane]] >> s) & one) * weights[p]
            key_out[lane] = key
            char_out[lane] = (char_flat[word_at[lane]] >> s) & one

    _DUMMY_PARTIAL = np.zeros((1, 1, 1), dtype=np.uint64)

    def _dc_scan_numba(R_cur, ones, masks, partial):
        if partial is None:
            _dc_scan_numba_impl(R_cur, ones, masks, _DUMMY_PARTIAL, False)
        else:
            _dc_scan_numba_impl(R_cur, ones, masks, partial, True)

    def _tb_gather_numba(planes_flat, char_flat, flat, word_at, shift, weights):
        key = np.empty(flat.size, dtype=np.uint64)
        char_bit = np.empty(flat.size, dtype=np.uint64)
        _tb_gather_numba_impl(
            planes_flat, char_flat, flat, word_at, shift, weights, key, char_bit
        )
        return key, char_bit

    _NUMBA_KERNELS = KernelSet(
        name="numba", dc_scan=_dc_scan_numba, tb_gather=_tb_gather_numba
    )


def get_kernels(backend: str = "auto", *, warn: bool = True) -> KernelSet:
    """The :class:`KernelSet` for a (possibly unresolved) backend name."""
    resolved = resolve_kernel_backend(backend, warn=warn)
    if resolved == "numba":
        assert _NUMBA_KERNELS is not None
        return _NUMBA_KERNELS
    return _NUMPY_KERNELS
