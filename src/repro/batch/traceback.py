"""Lockstep GenASM-TB: vectorized traceback over a whole wave of lanes.

The scalar traceback (:func:`repro.core.genasm_tb.genasm_traceback`) walks
one window at a time, evaluating the four decision predicates
(:func:`repro.core.genasm_tb.traceback_conditions`) with Python-int bit
queries at every step.  For a wave that cost dominates the batch engine —
profiling puts 2-3× more time in per-lane traceback than in the lockstep
DC kernel.  This module removes that scalar hot path in two moves:

1. **Decision words** (:func:`build_wave_decisions`): for every lane, error
   level ``d`` and text column ``j``, the four predicates are evaluated for
   *all* pattern bits ``i`` at once and packed into ``W`` ``uint64`` words
   per (operation, d, j) — bit ``i % 64`` of word ``i // 64`` of
   ``cm[d, ·, lane, j]`` is set iff a match step is legal at ``(j, d, i)``.
   The words are derived from the full-width rows the DC wave stored,
   masked through :meth:`repro.batch.soa.SoAWave.zero_view_mask` so they
   encode exactly the decisions the scalar predicates would take over the
   scalar path's band-packed, reachability-pruned storage.  Each plane's
   ``<< 1`` is a multi-word shift: bit 63 of word ``w`` carries into bit 0
   of word ``w + 1``, which is precisely the cross-word predicate stitched
   at pattern bits ``i`` with ``i % 64 == 0``.
2. **Lockstep walk** (:func:`lockstep_traceback`): all live lanes advance
   their traceback cursor ``(j, d, i)`` together, one NumPy step per
   *emitted run* — each step gathers the word ``i // 64`` of each lane's
   planes — and a lane that exhausts its pattern budget drops out of the
   active mask, mirroring the warp model of
   :func:`repro.batch.soa.lockstep_stats`.
3. **Match-run skip-ahead**: when a lane's chosen op is ``M`` and ``M``
   leads the priority order, the walk consumes the *entire* run of
   consecutive matches in that one step.  A match step moves ``(j-1,
   i-1)`` at fixed ``d``, so the run lies on a diagonal of the ``(j, i)``
   grid; :func:`_diagonal_pack` shears the match plane so each diagonal
   becomes one column of packed words (``c = j - i + 64·W - 1``), and the
   run length is a multi-word countdown of consecutive set bits walking
   down from bit ``i`` — crossing the ``i % 64 == 0`` word boundary into
   bit 63 of the word below.  Cursor, emitted opcode run, ``tb_steps``,
   ``dp_reads`` and ``bytes_read`` all advance by the whole run at once,
   cutting walk steps ~4× at the 10-15 % error rates the paper evaluates.
   Runs are only taken when ``M`` is the *first* priority letter (the
   GenASM default): a legal match then is always the chosen op, so the
   diagonal bit run is exactly the scalar loop's op sequence; any other
   priority degrades to one column per step, byte-identically.

Equivalence contract
--------------------
The walk is byte-identical to the scalar traceback, including the E-series
accounting: ``tb_steps`` is charged per emitted operation, and ``dp_reads``
/ ``bytes_read`` replicate the short-circuit evaluation order of the scalar
priority loop (a condition evaluated but false still paid its read; a
``bit < 0`` probe or a ``d < 1`` guard never reached the stored table).
The differential test harness (``tests/test_batch_traceback.py``) asserts
this per-field across every improvement-toggle combination and across
window widths spanning 1-3 words per lane; the cross-word carry itself is
property-tested against the scalar predicates in ``tests/test_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.batch.kernels import KernelSet, get_kernels
from repro.batch.soa import MAX_LANE_BITS, SoAWave
from repro.core.cigar import CigarOp
from repro.core.genasm_tb import TracebackError

__all__ = [
    "OPS_BY_CODE",
    "WaveDecisions",
    "LaneTraceback",
    "build_wave_decisions",
    "lockstep_traceback",
]

_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U63 = np.uint64(MAX_LANE_BITS - 1)

#: ``_LOW_ONES[c]`` has the ``c`` low bits set (``c`` in 0..64).
_LOW_ONES = np.array(
    [(1 << c) - 1 for c in range(MAX_LANE_BITS + 1)], dtype=np.uint64
)

#: Shear stages of :func:`_diagonal_pack`: at stage ``s`` every bit whose
#: index has the ``s`` component set moves ``s`` columns left, so a bit at
#: index ``b`` moves ``b`` columns in total.
_SHEAR_STAGES = [
    (
        s,
        np.uint64(sum(1 << b for b in range(MAX_LANE_BITS) if b & s)),
        np.uint64(sum(1 << b for b in range(MAX_LANE_BITS) if not b & s)),
    )
    for s in (1, 2, 4, 8, 16, 32)
]

if hasattr(np, "bitwise_count"):

    def _popcount(values: np.ndarray) -> np.ndarray:
        return np.bitwise_count(values)

else:  # NumPy < 2.0: SWAR popcount over uint64

    def _popcount(values: np.ndarray) -> np.ndarray:
        v = values - ((values >> _U1) & np.uint64(0x5555555555555555))
        v = (v & np.uint64(0x3333333333333333)) + (
            (v >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        v = (v + (v >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return (v * np.uint64(0x0101010101010101)) >> np.uint64(56)


def _bit_length(values: np.ndarray) -> np.ndarray:
    """Per-element ``int.bit_length`` of a uint64 array (0 for 0)."""
    v = values.copy()
    for s in (1, 2, 4, 8, 16, 32):
        v |= v >> np.uint64(s)
    return _popcount(v).astype(np.int64)

#: Fixed op codes used in the packed opcode buffer (independent of priority).
_CODE_BY_LETTER = {"M": 0, "S": 1, "I": 2, "D": 3}
OPS_BY_CODE = np.array(
    [CigarOp.MATCH, CigarOp.MISMATCH, CigarOp.INSERTION, CigarOp.DELETION],
    dtype=object,
)


def _diagonal_pack(plane: np.ndarray) -> np.ndarray:
    """Shear a ``(rows, W, L, cols)`` plane into diagonal-packed words.

    In the output, bit ``b`` of word ``w`` at column ``c`` equals bit ``b``
    of word ``w`` at text column ``j = c - (64·W - 1) + 64·w + b`` of the
    input — i.e. column ``c = j - g + 64·W - 1`` collects, at bit position
    ``g``, the plane bit for cursor ``(j, i=g)``.  A match step moves the
    cursor ``(j-1, i-1)``, keeping ``c`` fixed, so a run of legal matches
    is a run of consecutive set bits walking *down* one diagonal column,
    crossing word boundaries at ``i % 64 == 0``.

    Built as a base placement (per-word constant column offset for the
    ``64·w`` part) plus six shear stages (bits whose index has the ``s``
    component move ``s`` columns), so the transform costs O(log₂ 64) full
    array passes rather than one pass per bit.
    """
    rows, W, L, cols = plane.shape
    total_bits = W * MAX_LANE_BITS
    diag_cols = cols + total_bits - 1
    out = np.zeros((rows, W, L, diag_cols), dtype=np.uint64)
    for w in range(W):
        off = total_bits - 1 - MAX_LANE_BITS * w
        out[:, w, :, off : off + cols] = plane[:, w]
    for s, mask, inv_mask in _SHEAR_STAGES:
        moved = out & mask
        out &= inv_mask
        out[..., :-s] |= moved[..., s:]
    return out


@dataclass
class WaveDecisions:
    """Packed decision words for every lane of one wave.

    ``cm``/``cs``/``ci``/``cd`` are ``uint64`` arrays of shape
    ``(rows, W, lanes, n_max + 1)`` (``W`` = words per lane); bit ``i % 64``
    of word ``i // 64`` of ``cX[d, ·, lane, j]`` says the corresponding
    operation (match / substitution / insertion / deletion) is a legal
    traceback step at ``(j, d, i)`` for that lane.  ``char_eq``
    (``(W, lanes, n_max + 1)``) has pattern bit ``i`` set iff
    ``pattern[i]`` equals ``text[j - 1]``; the walk uses it to replicate
    the scalar read accounting (the match predicate only touches the stored
    table when the characters actually match).  Column 0 of every plane is
    unused — the walk handles ``j == 0`` as the unconditional-insertion
    branch, exactly like the scalar loop.
    """

    #: one (rows, W, lanes, n_max + 1) uint64 plane per operation, stacked
    #: in the fixed M, S, I, D order of :data:`OPS_BY_CODE` — ``cm`` etc.
    #: are views into this single allocation
    planes: np.ndarray
    char_eq: np.ndarray
    compressed: bool
    #: lazily built diagonal-packed match plane (see :func:`_diagonal_pack`);
    #: built on the first skip-ahead walk and reused across retry walks of
    #: the same wave
    _match_diag: Optional[np.ndarray] = None

    @property
    def rows(self) -> int:
        return self.planes.shape[1]

    @property
    def words(self) -> int:
        return self.planes.shape[2]

    @property
    def cm(self) -> np.ndarray:
        return self.planes[0]

    @property
    def cs(self) -> np.ndarray:
        return self.planes[1]

    @property
    def ci(self) -> np.ndarray:
        return self.planes[2]

    @property
    def cd(self) -> np.ndarray:
        return self.planes[3]

    def plane(self, letter: str) -> np.ndarray:
        """The decision plane for one priority letter (M/S/I/D)."""
        return self.planes["MSID".index(letter)]

    def bit(self, letter: str, lane: int, d: int, j: int, i: int) -> bool:
        """Scalar probe of one decision bit (used by the differential tests)."""
        word = int(
            self.plane(letter)[d, i // MAX_LANE_BITS, lane, j]
        )
        return bool((word >> (i % MAX_LANE_BITS)) & 1)

    def match_diag(self) -> np.ndarray:
        """The diagonal-packed match plane, built lazily and cached."""
        if self._match_diag is None:
            self._match_diag = _diagonal_pack(self.cm)
        return self._match_diag

    def match_run_length(self, lane: int, d: int, j: int, i: int) -> int:
        """Scalar probe: legal-match run length starting at ``(j, d, i)``.

        Counts consecutive set bits of the diagonal-packed match plane
        walking down from bit ``i`` (crossing ``i % 64 == 0`` word
        boundaries), i.e. the number of match steps ``(j, i), (j-1, i-1),
        …`` that are all legal.  Reference implementation for the
        vectorized countdown inside :func:`lockstep_traceback`; the
        property tests compare the two.
        """
        diag = self.match_diag()
        total_bits = self.words * MAX_LANE_BITS
        c = j - i + total_bits - 1
        run = 0
        w, b = i // MAX_LANE_BITS, i % MAX_LANE_BITS
        while w >= 0:
            word = int(diag[d, w, lane, c])
            unset = (~word) & ((1 << (b + 1)) - 1)
            if unset:
                return run + (b - unset.bit_length() + 1)
            run += b + 1
            w -= 1
            b = MAX_LANE_BITS - 1
        return run


def _shl1_or1(zero: np.ndarray) -> np.ndarray:
    """Multi-word ``(zero << 1) | 1`` with cross-word carry.

    The "bit ``i - 1``, with bit ``-1`` always active" indexing of the
    compressed-storage predicates: logical bit 63 of word ``w`` carries
    into bit 0 of word ``w + 1`` (the ``i % 64 == 0`` stitch), and bit 0
    of word 0 is forced on (a ``bit < 0`` probe is always active).
    """
    out = zero << _U1
    if out.shape[0] > 1:
        out[1:] |= zero[:-1] >> _U63
    out[0] |= _U1
    return out


def build_wave_decisions(
    wave: SoAWave,
    stored_rows: Sequence[object],
    *,
    entry_compression: bool,
) -> WaveDecisions:
    """Precompute the lockstep decision words for one DC wave.

    ``stored_rows`` is the per-row storage exactly as the DC wave kept it:
    with entry compression one full-width ``(W, lanes, n_max + 1)`` array
    of ``R`` values per row, otherwise a 4-tuple of ``(W, lanes, n_max)``
    arrays holding the match/subst/ins/del intermediates for columns
    ``1..n``.  Callers whose walk only starts from error levels below
    ``len(stored_rows)`` may pass a row-sliced prefix.  Band packing and
    reachability pruning are imposed here via
    :meth:`~repro.batch.soa.SoAWave.zero_view_mask`, so the returned planes
    reproduce, for every ``(d, j, i)``, the verdicts of
    :func:`repro.core.genasm_tb.traceback_conditions` over the scalar
    path's stored state.
    """
    L = wave.lanes
    W = wave.words
    cols = wave.n_max + 1
    rows = len(stored_rows)
    planes = np.zeros((4, rows, W, L, cols), dtype=np.uint64)
    cm, cs, ci, cd = planes

    char_eq = np.zeros((W, L, cols), dtype=np.uint64)
    char_eq[:, :, 1:] = (~wave.masks) & wave.ones[:, :, None]

    # Bits the scalar accessors could ever report as active: inside the
    # lane's pattern, a persisted column, and (with banding) the stored
    # band window.
    active = wave.zero_view_mask()

    if entry_compression:
        # One stored R word per entry; the four conditions re-derive their
        # verdicts from neighbouring R entries, shifted so bit i of the
        # plane asks about bit i-1 of R (with bit -1 always active).
        zero = [(~stored_rows[d]) & active for d in range(rows)]
        for d in range(rows):
            z_d = zero[d]
            cm[d, :, :, 1:] = char_eq[:, :, 1:] & _shl1_or1(z_d[:, :, :-1])
            if d >= 1:
                z_prev = zero[d - 1]
                cs[d, :, :, 1:] = _shl1_or1(z_prev[:, :, :-1])
                ci[d, :, :, 1:] = _shl1_or1(z_prev[:, :, 1:])
                cd[d, :, :, 1:] = z_prev[:, :, :-1]
    else:
        # Quad storage keeps the four already-shifted intermediates of row
        # d at column j, so each plane is a direct zero-bit view of one
        # stored vector.  Row 0 has no subst/ins/del steps (d < 1).
        active_q = active[:, :, 1:]
        for d in range(rows):
            match_row, subst_row, ins_row, del_row = stored_rows[d]
            cm[d, :, :, 1:] = (~match_row) & active_q
            if d >= 1:
                cs[d, :, :, 1:] = (~subst_row) & active_q
                ci[d, :, :, 1:] = (~ins_row) & active_q
                cd[d, :, :, 1:] = (~del_row) & active_q

    return WaveDecisions(planes=planes, char_eq=char_eq, compressed=entry_compression)


@dataclass
class LaneTraceback:
    """Traceback of one lane: CIGAR op codes plus the consumed window spans.

    ``codes`` holds one entry of :data:`OPS_BY_CODE` indices per emitted
    operation, in traceback order; :meth:`ops` materialises
    :class:`~repro.core.cigar.CigarOp` objects when a caller needs them
    (the batch engine instead run-length encodes the raw codes).
    """

    codes: np.ndarray
    text_stop: int
    pattern_consumed: int
    #: lockstep iterations this lane stayed live for — equals the emitted
    #: op count without skip-ahead, fewer with it (``tb_steps`` minus
    #: ``walk_steps`` is the walk-steps-saved stat)
    walk_steps: int = 0
    #: match runs consumed whole by skip-ahead, and the ops they covered
    match_runs: int = 0
    match_run_ops: int = 0

    def ops(self) -> List[CigarOp]:
        """The emitted operations as ``CigarOp`` objects."""
        return OPS_BY_CODE[self.codes].tolist()


#: Cache of per-(priority, compressed) step lookup tables; the walk folds
#: the scalar priority loop (first true condition wins) and its
#: short-circuit read accounting into three tiny gathers per step.
_STEP_LUTS: dict = {}


def _step_luts(priority: str, compressed: bool):
    """(POS, CODE, READS) lookup tables for one priority/storage mode.

    ``key = b0*8 + b1*4 + b2*2 + b3`` packs the four condition bits in
    priority order; ``POS[key]`` is the first true position (4 if none) and
    ``CODE[key]`` the fixed op code of that letter.  ``READS[pos * 8 + g]``
    — with gate bits ``g = char*4 + (d>=1)*2 + (i>=1)`` — counts the DP
    reads the scalar loop performs evaluating positions ``0..pos``:
    a compressed match probe reads only when the characters match and
    ``i >= 1``; compressed subst/ins probes need ``d >= 1`` and ``i >= 1``;
    deletion (and every quad-mode probe) needs only ``d >= 1``; quad-mode
    match always reads.
    """
    cached = _STEP_LUTS.get((priority, compressed))
    if cached is not None:
        return cached

    pos_lut = np.full(16, 4, dtype=np.uint64)
    code_lut = np.full(16, _CODE_BY_LETTER["I"], dtype=np.int64)
    for key in range(16):
        for pos in range(4):
            if key & (8 >> pos):
                pos_lut[key] = pos
                code_lut[key] = _CODE_BY_LETTER[priority[pos]]
                break

    def gate(letter: str, char: bool, dge1: bool, ige1: bool) -> bool:
        if compressed:
            if letter == "M":
                return char and ige1
            if letter == "D":
                return dge1
            return dge1 and ige1
        return True if letter == "M" else dge1

    reads_lut = np.zeros(5 * 8, dtype=np.int64)
    for pos in range(5):
        for g in range(8):
            char, dge1, ige1 = bool(g & 4), bool(g & 2), bool(g & 1)
            evaluated = priority[: min(pos, 3) + 1]
            reads_lut[pos * 8 + g] = sum(
                gate(letter, char, dge1, ige1) for letter in evaluated
            )

    luts = (pos_lut, code_lut, reads_lut)
    _STEP_LUTS[(priority, compressed)] = luts
    return luts


#: Cursor deltas per op code (M, S, I, D): text column, error level,
#: pattern bit/consumed columns.
_DELTA_J = np.array([1, 1, 0, 1], dtype=np.int64)
_DELTA_D = np.array([0, 1, 1, 1], dtype=np.int64)
_DELTA_I = np.array([1, 1, 1, 0], dtype=np.int64)


def lockstep_traceback(
    wave: SoAWave,
    decisions: WaveDecisions,
    *,
    start_errors: np.ndarray,
    budgets: np.ndarray,
    priority: str = "MSDI",
    active: Optional[np.ndarray] = None,
    skip_ahead: bool = True,
    kernels: Optional[KernelSet] = None,
) -> List[Optional[LaneTraceback]]:
    """Walk every live lane's traceback in lockstep NumPy steps.

    Parameters
    ----------
    start_errors:
        Per-lane error level to start from (``min_errors`` of the DC wave);
        lanes excluded via ``active`` may hold any value.
    budgets:
        Per-lane ``max_pattern_columns`` (the committed window columns);
        clamped to the lane's pattern length, as the scalar traceback does.
    priority:
        Tie-break order over {M, S, D, I}, shared by the whole wave.
    active:
        Boolean lane mask; lanes outside it (e.g. retry candidates whose
        budget failed) are skipped and reported as ``None``.
    skip_ahead:
        Consume whole match runs per step (module docstring item 3).  Only
        takes effect when ``M`` leads ``priority`` — otherwise a legal
        match need not be the chosen op and the walk degrades to one
        column per step, byte-identically.
    kernels:
        The :class:`~repro.batch.kernels.KernelSet` supplying the per-step
        gather (``None`` resolves the best available backend).

    Each lane's :class:`~repro.core.metrics.AccessCounter` receives exactly
    the ``tb_steps`` / ``dp_reads`` / ``bytes_read`` the scalar traceback
    would have charged for the same window — skipped match steps included
    (each emitted run op is one ``tb_steps`` tick, and each skipped step
    re-charges the match probe's read under the same gate the scalar loop
    applies).
    """
    if kernels is None:
        kernels = get_kernels("auto", warn=False)
    L = wave.lanes
    m, n = wave.m, wave.n
    walk = np.ones(L, dtype=bool) if active is None else active.astype(bool).copy()

    j = np.where(walk, n, 0).astype(np.int64)
    i = np.where(walk, m - 1, -1).astype(np.int64)
    d = np.where(walk, start_errors, 0).astype(np.int64)
    budget = np.minimum(m, np.asarray(budgets, dtype=np.int64))
    consumed = np.zeros(L, dtype=np.int64)

    live = walk & (i >= 0) & (consumed < budget)
    # Any valid traceback is shorter than this (the scalar loop's guard).
    max_steps = int((2 * (m + n) + 4).max()) if L else 0
    # One opcode row per iteration (plain row writes beat per-lane
    # scatters) plus a parallel run-length row: with skip-ahead lanes
    # desynchronize (one lane's iteration may emit a 12-op match run while
    # another emits a single deletion), so a lane's traceback is its
    # opcode column expanded by its count column (zero counts — dead or
    # not-yet-started lanes — contribute nothing).  nsteps stays the
    # per-lane tb_steps tally: the scalar loop emits one op per count.
    opcodes = np.zeros((max_steps + 1, L), dtype=np.int8)
    opcounts = np.zeros((max_steps + 1, L), dtype=np.int64)
    nsteps = np.zeros(L, dtype=np.int64)
    niters = np.zeros(L, dtype=np.int64)
    reads = np.zeros(L, dtype=np.int64)
    runs_taken = np.zeros(L, dtype=np.int64)
    run_ops = np.zeros(L, dtype=np.int64)

    pos_lut, code_lut, reads_lut = _step_luts(priority, decisions.compressed)
    # Flat-index views of the planes (no copies).  Plane p (fixed M,S,I,D
    # storage order) contributes key weight 8 >> its-position-in-priority,
    # so `key` packs the condition bits in priority order for the LUTs.
    # A lane's cursor bit i selects word i // 64 of its plane entries (the
    # multi-word lane layout); for single-word waves the word index is
    # constant zero.
    cols = decisions.char_eq.shape[-1]
    planes_flat = decisions.planes.reshape(4, -1)
    char_flat = decisions.char_eq.reshape(-1)
    weights = np.array(
        [8 >> priority.index(letter) for letter in "MSID"], dtype=np.uint64
    )
    lanes = np.arange(L)
    lane_cols = lanes * cols
    word_stride = L * cols
    plane_stride = decisions.words * word_stride

    # Skip-ahead is sound only when M leads the priority: then a legal
    # match is always the chosen op, so the diagonal bit run is exactly
    # the op sequence the scalar first-true loop would emit.
    skip = skip_ahead and priority[0] == "M"
    if skip:
        diag = decisions.match_diag()
        diag_cols = diag.shape[-1]
        diag_flat = diag.reshape(-1)
        diag_hi = decisions.words * MAX_LANE_BITS - 1
        lane_dcols = lanes * diag_cols
        dword_stride = L * diag_cols
        dplane_stride = decisions.words * dword_stride
    step = 0

    while live.any():
        if step > max_steps:
            raise TracebackError("traceback did not terminate (internal error)")

        # Clamped plane coordinates: j == 0 lanes (whose verdict is
        # overridden below) and finished lanes read a harmless word.
        jq = np.maximum(j, 1)
        dq = np.maximum(d, 0)
        bit = np.maximum(i, 0)
        wq = bit >> 6
        shift = (bit & 63).astype(np.uint64)

        word_at = wq * word_stride + lane_cols + jq
        flat = dq * plane_stride + word_at
        key, char_bit = kernels.tb_gather(
            planes_flat, char_flat, flat, word_at, shift, weights
        )

        at0 = j == 0
        considered = live & ~at0
        bad = considered & (key == 0)
        if bad.any():
            lane = int(np.nonzero(bad)[0][0])
            raise TracebackError(
                f"no traceback step possible at text={int(j[lane])}, "
                f"errors={int(d[lane])}, bit={int(i[lane])}"
            )

        # Read accounting for the scalar priority loop, via the LUT over
        # (first-true position, gate bits).
        gates = char_bit * np.uint64(4) + (d >= 1) * np.uint64(2) + (i >= 1) * _U1
        step_reads = reads_lut[pos_lut[key] * np.uint64(8) + gates]
        reads += step_reads * considered

        # j == 0 lanes take the unconditional-insertion branch, which is
        # the same cursor update as a chosen "I" step.
        code = np.where(at0, _CODE_BY_LETTER["I"], code_lut[key])

        run = np.ones(L, dtype=np.int64)
        if skip:
            is_m = considered & (code == 0)
            if is_m.any():
                # Multi-word countdown of consecutive set diagonal bits
                # walking down from bit i: a word whose low rb+1 bits are
                # all set continues into bit 63 of the word below (the
                # i % 64 == 0 stitch); otherwise the highest unset bit
                # ends the run.  At most W probes per lane, all gathered.
                cq = jq - bit + diag_hi
                total = np.zeros(L, dtype=np.int64)
                counting = is_m.copy()
                rw = wq.copy()
                rb = bit & 63
                while True:
                    dflat = (
                        dq * dplane_stride
                        + np.maximum(rw, 0) * dword_stride
                        + lane_dcols
                        + cq
                    )
                    unset = (~diag_flat[dflat]) & _LOW_ONES[rb + 1]
                    full = unset == _U0
                    add = np.where(full, rb + 1, rb - _bit_length(unset) + 1)
                    total += np.where(counting, add, 0)
                    counting &= full & (rw > 0)
                    if not counting.any():
                        break
                    rw -= 1
                    rb = np.full(L, MAX_LANE_BITS - 1, dtype=np.int64)
                # The scalar loop stops mid-run when the pattern budget
                # runs out; clamping replicates its early exit.
                run = np.where(is_m, np.minimum(total, budget - consumed), run)
                # Each skipped step re-runs only the match probe (M is
                # first and true); it reads the stored table under the
                # same gate the LUT applies — compressed probes need the
                # step's own i >= 1 (run steps at i-1 .. i-run+1), quad
                # probes always read.
                extra = np.maximum(run - 1, 0)
                if decisions.compressed:
                    extra = np.minimum(extra, np.maximum(i - 1, 0))
                reads += np.where(is_m, extra, 0)
                runs_taken += is_m
                run_ops += np.where(is_m, run, 0)

        counts = run * live
        opcodes[step] = code
        opcounts[step] = counts
        nsteps += counts
        niters += live
        step += 1

        delta_i = _DELTA_I[code] * counts
        j -= _DELTA_J[code] * counts
        d -= _DELTA_D[code] * counts
        i -= delta_i
        consumed += delta_i
        live &= i >= 0
        live &= consumed < budget

    results: List[Optional[LaneTraceback]] = [None] * L
    for lane in np.nonzero(walk)[0]:
        lane = int(lane)
        counter = wave.jobs[lane].counter
        counter.tb_steps += int(nsteps[lane])
        lane_reads = int(reads[lane])
        counter.dp_reads += lane_reads
        counter.bytes_read += lane_reads * int(wave.entry_store[lane])
        results[lane] = LaneTraceback(
            codes=np.repeat(opcodes[:step, lane], opcounts[:step, lane]),
            text_stop=int(j[lane]),
            pattern_consumed=int(consumed[lane]),
            walk_steps=int(niters[lane]),
            match_runs=int(runs_taken[lane]),
            match_run_ops=int(run_ops[lane]),
        )
    return results
