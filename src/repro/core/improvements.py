"""Helpers for the three algorithmic improvements of the IPPS 2022 paper.

The improvements themselves are implemented inside :mod:`repro.core.genasm_dc`
and :mod:`repro.core.genasm_tb`; this module centralises the pieces they
share so the DC and TB kernels (CPU and GPU) agree bit-for-bit on what is
stored:

* **entry compression** — the decision of *what* is stored per DP entry
  (one ANDed bitvector vs. four intermediates) is expressed via
  :func:`vectors_per_entry`;
* **early termination** — :func:`solution_found` is the row-level stopping
  predicate;
* **traceback-reachability band** — :func:`band_bounds` computes, for a
  text position ``j``, the interval of bit positions the traceback can
  reach, and :func:`pack_band` / :func:`band_bit` convert between
  full-width bitvectors and their stored band representation.

The band derivation: a traceback starts at ``(j = n, bit = m - 1)``.  Every
step that consumes a text character decrements ``j``; every step that
consumes a pattern character decrements the bit index; at most ``k`` steps
are non-matches.  Hence at text position ``j`` the traceback's bit index
lies in ``[m - 1 - (n - j) - k,  m - 1 - (n - j) + k]`` (clamped to the
valid bit range).  Only those bits of ``R[j][d]`` can ever be read by the
traceback, so only those bits are stored.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.bitvector import all_ones, bit_is_zero

__all__ = [
    "band_bounds",
    "band_width",
    "pack_band",
    "band_bit",
    "vectors_per_entry",
    "solution_found",
    "entry_bytes",
    "reachable_column_start",
]


def reachable_column_start(n: int, committed_columns: int, k: int) -> int:
    """First text column the traceback of a committed window prefix can read.

    Windowed GenASM commits only the first ``committed_columns`` pattern
    columns of each non-final window (the remaining ``O`` columns overlap
    with the next window).  The traceback therefore consumes at most
    ``committed_columns`` pattern characters and at most ``k`` deletions,
    so it never moves more than ``committed_columns + k`` text columns away
    from the final column ``n``; entries at earlier columns can never be
    read and need not be stored.  One extra column of margin accounts for
    the look-behind reads (``R[j-1][·]``) of the last traceback step.
    """
    return max(0, n - committed_columns - k - 1)


def band_bounds(j: int, n: int, m: int, k: int) -> Tuple[int, int]:
    """Inclusive bit-index interval reachable by the traceback at column ``j``.

    ``n`` is the text-window length, ``m`` the pattern-window length and
    ``k`` the error budget.  The interval is clamped to ``[0, m - 1]`` and
    is never empty for columns the traceback can visit; for columns it
    cannot visit at all the function still returns a clamped (possibly
    inverted) interval which callers treat as "store nothing useful".
    """
    centre = (m - 1) - (n - j)
    lo = max(0, centre - k)
    hi = min(m - 1, centre + k)
    return lo, hi


def band_width(m: int, k: int) -> int:
    """Number of bits stored per entry when the band improvement is on."""
    return min(m, 2 * k + 2)


def pack_band(value: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``lo``.

    This is the *store* side of the band improvement: the DC kernel computes
    the full-width bitvector in registers but persists only the reachable
    window of it.
    """
    return (value >> lo) & all_ones(width)


def band_bit(stored: int, bit: int, lo: int, width: int) -> bool:
    """Read logical bit ``bit`` from a band-packed ``stored`` value.

    Bits outside the stored band are reported as **one** (inactive); the
    reachability argument above guarantees the traceback never depends on
    them, so this is purely defensive.
    """
    offset = bit - lo
    if offset < 0 or offset >= width:
        return False
    return bit_is_zero(stored, offset)


def vectors_per_entry(entry_compression: bool) -> int:
    """Stored bitvectors per DP entry: 4 in the baseline, 1 when compressed."""
    return 1 if entry_compression else 4


def solution_found(row_final_value: int, m: int) -> bool:
    """Early-termination predicate: the row's final column has a zero MSB.

    A zero most-significant bit of ``R[n][d]`` means the whole pattern
    window already aligns within ``d`` errors, so rows ``d + 1 …`` can be
    skipped entirely — they can neither lower the distance nor be visited
    by the traceback (which starts at the minimal such ``d``).
    """
    return bit_is_zero(row_final_value, m - 1)


def entry_bytes(m: int, k: int, word_bits: int, traceback_band: bool) -> int:
    """Bytes used to store one bitvector entry under the given band setting."""
    if not traceback_band:
        words = max(1, -(-m // word_bits))
        return words * (word_bits // 8)
    bits = band_width(m, k)
    unit = 8
    while unit < min(bits, word_bits):
        unit *= 2
    unit = min(unit, word_bits)
    return (unit // 8) * max(1, -(-bits // unit))
