"""Public GenASM aligner API.

:class:`GenASMAligner` is the user-facing entry point of the library: it
wraps the windowed GenASM-DC/TB pipeline, selects between the baseline
(MICRO 2020) behaviour and the improved (IPPS 2022) behaviour through
:class:`repro.core.config.GenASMConfig`, and attaches the bookkeeping the
experiments need (windows, DP rows evaluated, stored bytes, DP-table
accesses).

Typical use::

    from repro import GenASMAligner, GenASMConfig

    aligner = GenASMAligner()                       # improved algorithm
    baseline = GenASMAligner(GenASMConfig.baseline())

    alignment = aligner.align(read, reference_span)
    print(alignment.edit_distance, alignment.cigar)
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig
from repro.core.genasm_dc import genasm_distance_only
from repro.core.metrics import AccessCounter, MemoryFootprint
from repro.core.windowing import align_windowed

__all__ = ["GenASMAligner", "align_pair"]


class GenASMAligner:
    """Windowed GenASM aligner (baseline or improved, per configuration).

    Parameters
    ----------
    config:
        Algorithm parameters and improvement toggles.  Defaults to the
        improved IPPS-2022 configuration; use
        :meth:`GenASMConfig.baseline` for MICRO-2020 GenASM.
    name:
        Label attached to produced alignments (useful when several aligner
        instances are compared in one report).
    """

    def __init__(
        self, config: Optional[GenASMConfig] = None, *, name: Optional[str] = None
    ) -> None:
        self.config = config if config is not None else GenASMConfig()
        self.name = name or (
            "genasm-improved" if self.config.improved else "genasm-baseline"
        )

    # ------------------------------------------------------------------ #
    def align(
        self,
        pattern: str,
        text: str,
        *,
        counter: Optional[AccessCounter] = None,
    ) -> Alignment:
        """Align ``pattern`` (read) against a prefix of ``text`` (reference).

        Returns an :class:`Alignment` whose CIGAR consumes the whole
        pattern and a prefix of the text (semi-global, start-anchored).
        The alignment's ``metadata`` carries the per-pair measurements used
        by experiments E3/E4: stored DP bytes, DP accesses, rows computed
        and window count.
        """
        counter = counter if counter is not None else AccessCounter()
        result = align_windowed(pattern, text, self.config, counter=counter)
        footprint = MemoryFootprint.from_config(self.config)
        metadata = {
            "windows": result.windows,
            "rows_computed": result.rows_computed,
            "peak_window_bytes": result.peak_window_bytes,
            "total_stored_bytes": result.total_stored_bytes,
            "dp_accesses": counter.total_accesses,
            "dp_bytes": counter.total_bytes,
            "model_window_bytes": footprint.bytes_for_config(self.config),
        }
        return Alignment(
            pattern=pattern,
            text=text,
            cigar=result.cigar,
            edit_distance=result.cigar.edit_distance,
            text_start=0,
            text_end=result.text_consumed,
            aligner=self.name,
            metadata=metadata,
        )

    def align_batch(
        self,
        pairs: Iterable[Tuple[str, str]],
        *,
        counter: Optional[AccessCounter] = None,
    ) -> List[Alignment]:
        """Align a batch of (pattern, text) pairs sequentially.

        A shared :class:`AccessCounter` can be supplied to accumulate
        DP-table traffic over the whole batch (experiment E4 does this).
        """
        return [self.align(p, t, counter=counter) for p, t in pairs]

    def edit_distance(
        self, pattern: str, text: str, max_errors: Optional[int] = None
    ) -> Optional[int]:
        """Edit distance of ``pattern`` vs. the best-matching substring of ``text``.

        Runs GenASM-DC only (no traceback storage); returns ``None`` when
        the distance exceeds ``max_errors``.  Intended for filter-style use
        and for cheap distance queries on short sequences — long sequences
        should use :meth:`align`, whose windowing keeps the cost linear.
        """
        return genasm_distance_only(
            pattern,
            text,
            max_errors,
            early_termination=self.config.early_termination,
        )

    # ------------------------------------------------------------------ #
    def window_footprint(self) -> MemoryFootprint:
        """Analytic per-window memory-footprint model for this configuration."""
        return MemoryFootprint.from_config(self.config)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GenASMAligner(name={self.name!r}, config={self.config!r})"


def align_pair(
    pattern: str, text: str, config: Optional[GenASMConfig] = None
) -> Alignment:
    """One-shot convenience wrapper: align a single pair with GenASM."""
    return GenASMAligner(config).align(pattern, text)
