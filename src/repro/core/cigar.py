"""CIGAR strings and edit operations.

Every aligner in this repository (GenASM, the DP oracles, the Edlib-like
and KSW2-like baselines, and the GPU kernels) reports its alignment as a
:class:`Cigar`, so alignments can be compared, validated and re-scored with
one shared implementation.

Operation semantics follow SAM conventions with the *pattern* (the read)
playing the role of the query and the *text* (the reference span) the role
of the reference:

``M``  match or mismatch — consumes one pattern and one text character.
``=``  exact match       — consumes one pattern and one text character.
``X``  mismatch          — consumes one pattern and one text character.
``I``  insertion         — consumes one pattern character only
        (a character present in the read but absent from the reference).
``D``  deletion          — consumes one text character only.
``S``  soft clip         — consumes pattern characters that are not aligned.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["CigarOp", "Cigar", "cigar_from_ops", "edit_distance_of_cigar"]

_CIGAR_RE = re.compile(r"(\d+)([MIDNSHP=X])")


class CigarOp(str, Enum):
    """A single CIGAR operation code."""

    MATCH = "="
    MISMATCH = "X"
    ALIGN = "M"
    INSERTION = "I"
    DELETION = "D"
    SOFT_CLIP = "S"

    @property
    def consumes_pattern(self) -> bool:
        """Whether the operation advances the pattern (read/query)."""
        return self in (
            CigarOp.MATCH,
            CigarOp.MISMATCH,
            CigarOp.ALIGN,
            CigarOp.INSERTION,
            CigarOp.SOFT_CLIP,
        )

    @property
    def consumes_text(self) -> bool:
        """Whether the operation advances the text (reference)."""
        return self in (CigarOp.MATCH, CigarOp.MISMATCH, CigarOp.ALIGN, CigarOp.DELETION)

    @property
    def is_edit(self) -> bool:
        """Whether the operation counts toward unit-cost edit distance."""
        return self in (CigarOp.MISMATCH, CigarOp.INSERTION, CigarOp.DELETION)


@dataclass(frozen=True)
class Cigar:
    """An immutable run-length encoded sequence of CIGAR operations."""

    runs: Tuple[Tuple[int, CigarOp], ...] = ()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, text: str) -> "Cigar":
        """Parse a SAM-style CIGAR string such as ``"10=1X3I2D"``."""
        if text in ("", "*"):
            return cls(())
        runs: List[Tuple[int, CigarOp]] = []
        consumed = 0
        for match in _CIGAR_RE.finditer(text):
            length, op = int(match.group(1)), match.group(2)
            if op in ("N", "H", "P"):
                raise ValueError(f"unsupported CIGAR op {op!r} in {text!r}")
            runs.append((length, CigarOp(op)))
            consumed += len(match.group(0))
        if consumed != len(text):
            raise ValueError(f"malformed CIGAR string: {text!r}")
        return cls.from_runs(runs)

    @classmethod
    def from_runs(cls, runs: Iterable[Tuple[int, CigarOp]]) -> "Cigar":
        """Build a canonical (merged, zero-free) CIGAR from run tuples."""
        merged: List[Tuple[int, CigarOp]] = []
        for length, op in runs:
            if length < 0:
                raise ValueError(f"negative CIGAR run length: {length}")
            if length == 0:
                continue
            if merged and merged[-1][1] == op:
                merged[-1] = (merged[-1][0] + length, op)
            else:
                merged.append((length, op))
        return cls(tuple(merged))

    @classmethod
    def from_ops(cls, ops: Iterable[CigarOp]) -> "Cigar":
        """Build a CIGAR from a sequence of single operations."""
        return cls.from_runs((1, op) for op in ops)

    # ------------------------------------------------------------------ #
    # Presentation and iteration
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        if not self.runs:
            return "*"
        return "".join(f"{length}{op.value}" for length, op in self.runs)

    def __len__(self) -> int:
        return sum(length for length, _ in self.runs)

    def __iter__(self) -> Iterator[Tuple[int, CigarOp]]:
        return iter(self.runs)

    def __bool__(self) -> bool:
        return bool(self.runs)

    def ops(self) -> Iterator[CigarOp]:
        """Iterate over individual operations (run-length expanded)."""
        for length, op in self.runs:
            for _ in range(length):
                yield op

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def pattern_length(self) -> int:
        """Number of pattern (read) characters consumed."""
        return sum(length for length, op in self.runs if op.consumes_pattern)

    @property
    def text_length(self) -> int:
        """Number of text (reference) characters consumed."""
        return sum(length for length, op in self.runs if op.consumes_text)

    @property
    def aligned_pattern_length(self) -> int:
        """Pattern characters consumed excluding soft clips."""
        return sum(
            length
            for length, op in self.runs
            if op.consumes_pattern and op is not CigarOp.SOFT_CLIP
        )

    @property
    def edit_distance(self) -> int:
        """Unit-cost edit distance implied by the CIGAR.

        ``M`` runs are ambiguous (match or mismatch) and contribute zero;
        callers that need exact distances should produce ``=``/``X`` runs,
        as every aligner in this repository does.
        """
        return sum(length for length, op in self.runs if op.is_edit)

    @property
    def matches(self) -> int:
        """Number of exact-match (``=``) columns.

        ``M`` (ALIGN) columns are ambiguous and contribute zero here; use
        :meth:`resolve_align` against the sequences first when a CIGAR may
        carry ``M`` runs (baseline aligners emit them).
        """
        return sum(length for length, op in self.runs if op is CigarOp.MATCH)

    @property
    def has_align_ops(self) -> bool:
        """Whether any ambiguous ``M`` (ALIGN) run is present."""
        return any(op is CigarOp.ALIGN for _, op in self.runs)

    @property
    def leading_clip(self) -> int:
        """Length of the leading soft-clip run (0 when none)."""
        return self.runs[0][0] if self.runs and self.runs[0][1] is CigarOp.SOFT_CLIP else 0

    @property
    def trailing_clip(self) -> int:
        """Length of the trailing soft-clip run (0 when none)."""
        if len(self.runs) < 2 or self.runs[-1][1] is not CigarOp.SOFT_CLIP:
            return 0
        return self.runs[-1][0]

    def counts(self) -> dict:
        """Return a mapping from op value to total length, for reporting."""
        out: dict = {}
        for length, op in self.runs:
            out[op.value] = out.get(op.value, 0) + length
        return out

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Cigar") -> "Cigar":
        return Cigar.from_runs(list(self.runs) + list(other.runs))

    def reversed(self) -> "Cigar":
        """Return the CIGAR of the reversed alignment."""
        return Cigar(tuple(reversed(self.runs)))

    def collapse_to_M(self) -> "Cigar":
        """Collapse ``=``/``X`` runs into SAM-classic ``M`` runs."""
        return Cigar.from_runs(
            (length, CigarOp.ALIGN if op in (CigarOp.MATCH, CigarOp.MISMATCH) else op)
            for length, op in self.runs
        )

    def resolve_align(self, pattern: str, text: str) -> "Cigar":
        """Split ambiguous ``M`` (ALIGN) runs into ``=``/``X`` runs.

        The inverse of :meth:`collapse_to_M`: every ``M`` column is
        compared against the sequences it covers (``pattern`` from the
        read, ``text`` from the *consumed* reference span, i.e. starting
        at the alignment's ``text_start``) and re-labelled as an exact
        match or a mismatch.  CIGARs without ``M`` runs are returned
        unchanged, so the call is safe on every aligner's output.

        Raises ``ValueError`` when an ``M`` run overruns either sequence.
        """
        if not self.has_align_ops:
            return self
        runs: List[Tuple[int, CigarOp]] = []
        p = 0
        t = 0
        for length, op in self.runs:
            if op is CigarOp.ALIGN:
                if p + length > len(pattern) or t + length > len(text):
                    raise ValueError(
                        f"'M' run of {length} at pattern {p} / text {t} overruns "
                        f"the sequences ({len(pattern)} / {len(text)} chars)"
                    )
                for i in range(length):
                    same = pattern[p + i] == text[t + i]
                    runs.append((1, CigarOp.MATCH if same else CigarOp.MISMATCH))
            else:
                runs.append((length, op))
            if op.consumes_pattern:
                p += length
            if op.consumes_text:
                t += length
        return Cigar.from_runs(runs)

    # ------------------------------------------------------------------ #
    # Validation and scoring against sequences
    # ------------------------------------------------------------------ #
    def validate(self, pattern: str, text: str, *, partial_text: bool = True) -> None:
        """Check that the CIGAR is consistent with ``pattern`` and ``text``.

        Raises ``ValueError`` when lengths do not add up or when a run
        labelled ``=`` covers characters that differ (or ``X`` covers equal
        characters).  ``partial_text`` permits the alignment to consume only
        a suffix-anchored prefix of the text, which is the semi-global
        semantics GenASM uses for candidate-region alignment.
        """
        if self.pattern_length != len(pattern):
            raise ValueError(
                f"CIGAR consumes {self.pattern_length} pattern chars, "
                f"pattern has {len(pattern)}"
            )
        if self.text_length > len(text) or (
            not partial_text and self.text_length != len(text)
        ):
            raise ValueError(
                f"CIGAR consumes {self.text_length} text chars, text has {len(text)}"
            )
        p = 0
        t = 0
        for length, op in self.runs:
            if op in (CigarOp.MATCH, CigarOp.MISMATCH):
                for i in range(length):
                    same = pattern[p + i] == text[t + i]
                    if op is CigarOp.MATCH and not same:
                        raise ValueError(
                            f"'=' run covers mismatching chars at pattern {p + i}"
                        )
                    if op is CigarOp.MISMATCH and same:
                        raise ValueError(
                            f"'X' run covers matching chars at pattern {p + i}"
                        )
            if op.consumes_pattern:
                p += length
            if op.consumes_text:
                t += length

    def score(self, match: int = 0, mismatch: int = 1, gap: int = 1) -> int:
        """Linear-gap score/cost of the CIGAR (defaults give edit distance)."""
        total = 0
        for length, op in self.runs:
            if op is CigarOp.MATCH:
                total += match * length
            elif op in (CigarOp.MISMATCH,):
                total += mismatch * length
            elif op in (CigarOp.INSERTION, CigarOp.DELETION):
                total += gap * length
        return total

    def affine_score(
        self,
        match: int = 2,
        mismatch: int = -4,
        gap_open: int = -4,
        gap_extend: int = -2,
    ) -> int:
        """Affine-gap alignment score of the CIGAR (KSW2-style defaults)."""
        total = 0
        for length, op in self.runs:
            if op is CigarOp.MATCH:
                total += match * length
            elif op is CigarOp.MISMATCH:
                total += mismatch * length
            elif op in (CigarOp.INSERTION, CigarOp.DELETION):
                total += gap_open + gap_extend * (length - 1)
        return total


def cigar_from_ops(ops: Sequence[CigarOp]) -> Cigar:
    """Convenience wrapper around :meth:`Cigar.from_ops`."""
    return Cigar.from_ops(ops)


def edit_distance_of_cigar(cigar: Cigar) -> int:
    """Unit-cost edit distance implied by a CIGAR (module-level helper)."""
    return cigar.edit_distance
