"""Alignment results.

Every aligner in the repository returns an :class:`Alignment`, which bundles
the aligned pair, the CIGAR, the edit distance and bookkeeping about where
in the text (reference candidate region) the alignment starts, plus optional
performance metadata (DP-table accesses, bytes touched) used by the
memory-footprint and memory-access experiments (E3/E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.cigar import Cigar, CigarOp

__all__ = ["Alignment", "pretty_alignment"]


@dataclass
class Alignment:
    """Result of aligning ``pattern`` (read) against ``text`` (reference span).

    Attributes
    ----------
    pattern, text:
        The aligned sequences.  ``text`` is the full candidate region that
        was given to the aligner; the alignment may consume only part of it
        (semi-global semantics), described by ``text_start``/``text_end``.
    cigar:
        Run-length encoded alignment operations (``=``, ``X``, ``I``, ``D``).
    edit_distance:
        Unit-cost edit distance of the reported alignment.
    score:
        Optional affine-gap score (filled in by the KSW2-like aligner or by
        re-scoring a CIGAR).
    text_start, text_end:
        Half-open interval of the text consumed by the alignment.
    aligner:
        Name of the aligner that produced the result (for reports).
    metadata:
        Free-form counters (e.g. ``dp_bytes``, ``dp_accesses``,
        ``windows``, ``rows_computed``) used by the experiments.
    """

    pattern: str
    text: str
    cigar: Cigar
    edit_distance: int
    score: Optional[int] = None
    text_start: int = 0
    text_end: Optional[int] = None
    aligner: str = "unknown"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.text_end is None:
            self.text_end = self.text_start + self.cigar.text_length

    # ------------------------------------------------------------------ #
    @property
    def text_span(self) -> Tuple[int, int]:
        """Half-open text interval covered by the alignment."""
        return (self.text_start, int(self.text_end))

    def reference_coordinates(self, region_start: int = 0) -> Tuple[int, int]:
        """Absolute 0-based half-open reference interval of the alignment.

        ``region_start`` is where :attr:`text` begins on the reference
        (e.g. :attr:`~repro.mapping.mapper.CandidateMapping.ref_start`),
        so SAM/PAF emitters can place the alignment on the chromosome
        rather than on the candidate region.
        """
        return (region_start + self.text_start, region_start + int(self.text_end))

    @property
    def resolved_cigar(self) -> Cigar:
        """The CIGAR with ambiguous ``M`` runs resolved to ``=``/``X``.

        GenASM and the in-repo baselines emit ``=``/``X`` directly, in
        which case this is :attr:`cigar` itself; CIGARs carrying classic
        ``M`` (ALIGN) runs are resolved against the stored sequences so
        match counts and identity are exact either way.
        """
        return self.cigar.resolve_align(self.pattern, self.text[self.text_start :])

    @property
    def matches(self) -> int:
        """Number of exact-match columns (``M`` runs resolved first)."""
        return self.resolved_cigar.matches

    @property
    def identity(self) -> float:
        """Fraction of alignment columns that are exact matches.

        ``M`` (ALIGN) runs are resolved against the sequences before
        counting — a CIGAR like ``100M`` no longer reports near-zero
        identity just because none of its columns is literally ``=``.
        """
        total = len(self.cigar)
        return (self.matches / total) if total else 1.0

    def validate(self) -> None:
        """Re-check the CIGAR against the stored sequences.

        Raises ``ValueError`` if the CIGAR is inconsistent, which the test
        suite uses as a strong structural invariant for every aligner.
        """
        consumed_text = self.text[self.text_start : self.text_end]
        self.cigar.validate(self.pattern, consumed_text, partial_text=False)
        if self.cigar.edit_distance != self.edit_distance:
            raise ValueError(
                f"edit distance mismatch: cigar says {self.cigar.edit_distance}, "
                f"alignment says {self.edit_distance}"
            )

    def affine_score(
        self,
        match: int = 2,
        mismatch: int = -4,
        gap_open: int = -4,
        gap_extend: int = -2,
    ) -> int:
        """Affine-gap score of the reported CIGAR."""
        return self.cigar.affine_score(match, mismatch, gap_open, gap_extend)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view used by the report generator."""
        return {
            "aligner": self.aligner,
            "edit_distance": self.edit_distance,
            "cigar": str(self.cigar),
            "text_start": self.text_start,
            "text_end": self.text_end,
            "identity": round(self.identity, 4),
            **self.metadata,
        }


def pretty_alignment(alignment: Alignment, width: int = 60) -> str:
    """Render an alignment as three stacked rows (pattern / bars / text).

    Intended for the examples and for debugging; matches are drawn with
    ``|``, mismatches with ``.``, and gaps with spaces.
    """
    pat_row: list[str] = []
    bar_row: list[str] = []
    txt_row: list[str] = []
    p = 0
    t = alignment.text_start
    for length, op in alignment.cigar:
        for _ in range(length):
            if op in (CigarOp.MATCH, CigarOp.MISMATCH, CigarOp.ALIGN):
                pc, tc = alignment.pattern[p], alignment.text[t]
                pat_row.append(pc)
                txt_row.append(tc)
                bar_row.append("|" if pc == tc else ".")
                p += 1
                t += 1
            elif op is CigarOp.INSERTION:
                pat_row.append(alignment.pattern[p])
                txt_row.append("-")
                bar_row.append(" ")
                p += 1
            elif op is CigarOp.DELETION:
                pat_row.append("-")
                txt_row.append(alignment.text[t])
                bar_row.append(" ")
                t += 1
            elif op is CigarOp.SOFT_CLIP:
                pat_row.append(alignment.pattern[p].lower())
                txt_row.append(" ")
                bar_row.append(" ")
                p += 1
    lines = []
    for start in range(0, len(pat_row), width):
        end = start + width
        lines.append("P " + "".join(pat_row[start:end]))
        lines.append("  " + "".join(bar_row[start:end]))
        lines.append("T " + "".join(txt_row[start:end]))
        lines.append("")
    return "\n".join(lines).rstrip()
