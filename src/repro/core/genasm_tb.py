"""GenASM-TB: traceback over the stored GenASM-DC state.

The traceback starts at the final text column with the whole pattern
matched (``bit = m − 1``) at the minimum error level found by DC, and walks
backwards emitting one CIGAR operation per step:

======================  =======================  ==========================
operation               bit consulted            state update
======================  =======================  ==========================
match (``=``)           ``R[j-1][d]``, bit i-1   ``j -= 1; i -= 1``
                        and ``P[i] == T[j-1]``
substitution (``X``)    ``R[j-1][d-1]``, bit i-1 ``j -= 1; d -= 1; i -= 1``
insertion (``I``)       ``R[j][d-1]``, bit i-1   ``d -= 1; i -= 1``
deletion (``D``)        ``R[j-1][d-1]``, bit i   ``j -= 1; d -= 1``
======================  =======================  ==========================

With the baseline storage (four intermediate bitvectors per entry) the
conditions are read directly from the stored vectors; with the paper's
*entry compression* improvement only ``R`` is stored and the same four
conditions are re-derived from neighbouring ``R`` entries — the two modes
take identical decisions, which the test suite verifies.

The order in which the four operations are tried (``match_priority``)
affects only which of several optimal alignments is reported, never the
edit distance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.bitvector import all_ones, bit_is_zero, pattern_bitmasks_zero_match
from repro.core.cigar import CigarOp
from repro.core.genasm_dc import DCTable

__all__ = [
    "genasm_traceback",
    "genasm_traceback_compressed",
    "traceback_conditions",
    "TracebackError",
]


class TracebackError(RuntimeError):
    """Raised when the stored DC state admits no traceback step.

    This indicates a bug (or corrupted storage): whenever ``min_errors`` is
    not ``None`` a full traceback is guaranteed to exist.
    """


_PRIORITY_OPS = {
    "M": CigarOp.MATCH,
    "S": CigarOp.MISMATCH,
    "I": CigarOp.INSERTION,
    "D": CigarOp.DELETION,
}


def traceback_conditions(table: DCTable):
    """Build the four traceback decision predicates over ``table``.

    Returns a mapping ``{"M": p, "S": p, "I": p, "D": p}`` of predicates
    ``p(j, d, i) -> bool`` telling whether the corresponding operation is a
    legal traceback step at text column ``j``, error level ``d`` and pattern
    bit ``i``.  The predicates read the stored DC state through
    :meth:`DCTable.r_bit` / :meth:`DCTable.quad_bit` and therefore charge
    ``table.counter`` for every DP read they perform, exactly as the scalar
    traceback loop does.

    This factory is the single source of truth for the decision semantics:
    :func:`genasm_traceback` consumes it step by step, and the vectorized
    lockstep traceback (:mod:`repro.batch.traceback`) precomputes the same
    predicates as packed per-row decision words — the differential test
    harness asserts both formulations agree bit for bit.
    """
    pattern, text = table.pattern, table.text
    m = len(pattern)
    ones = all_ones(m)
    pm = pattern_bitmasks_zero_match(pattern)
    compressed = table.entry_compression

    def char_matches(i: int, j: int) -> bool:
        mask = pm.get(text[j - 1], ones)
        return bit_is_zero(mask, i)

    def cond_match(j: int, dd: int, i: int) -> bool:
        if compressed:
            return char_matches(i, j) and table.r_bit(dd, j - 1, i - 1)
        return table.quad_bit(dd, j, 0, i)

    def cond_subst(j: int, dd: int, i: int) -> bool:
        if dd < 1:
            return False
        if compressed:
            return table.r_bit(dd - 1, j - 1, i - 1)
        return table.quad_bit(dd, j, 1, i)

    def cond_ins(j: int, dd: int, i: int) -> bool:
        if dd < 1:
            return False
        if compressed:
            return table.r_bit(dd - 1, j, i - 1)
        return table.quad_bit(dd, j, 2, i)

    def cond_del(j: int, dd: int, i: int) -> bool:
        if dd < 1:
            return False
        if compressed:
            return table.r_bit(dd - 1, j - 1, i)
        return table.quad_bit(dd, j, 3, i)

    return {"M": cond_match, "S": cond_subst, "I": cond_ins, "D": cond_del}


def genasm_traceback(
    table: DCTable,
    *,
    priority: str = "MSDI",
    start_errors: Optional[int] = None,
    max_pattern_columns: Optional[int] = None,
) -> Tuple[List[CigarOp], int]:
    """Trace back one GenASM window.

    Parameters
    ----------
    table:
        The stored DC state.  ``table.min_errors`` must not be ``None``.
    priority:
        Tie-break order over {M, S, D, I}.
    start_errors:
        Error level to start from; defaults to ``table.min_errors``.
    max_pattern_columns:
        Stop once this many pattern characters have been consumed.  Windowed
        alignment uses this to trace back only the committed ``W − O``
        columns of a non-final window, which is what makes the
        traceback-reachability storage pruning of the DC phase sound.

    Returns
    -------
    (ops, text_stop)
        ``ops`` is the list of CIGAR operations **in traceback order**
        (from the last text column towards the first) and ``text_stop`` is
        the text column at which the traceback stopped; the emitted
        operations cover ``text[text_stop:]``.
    """
    if table.min_errors is None and start_errors is None:
        raise TracebackError(
            "GenASM-DC found no alignment within the error budget; "
            "increase max_errors before tracing back"
        )

    pattern, text = table.pattern, table.text
    m, n = len(pattern), len(text)
    d = table.min_errors if start_errors is None else start_errors
    if d is None or d >= table.rows_computed:
        raise TracebackError(f"start error level {d} was never computed")

    if m == 0:
        return [], n

    counter = table.counter
    conditions = traceback_conditions(table)

    ops: List[CigarOp] = []
    j, i = n, m - 1
    pattern_budget = m if max_pattern_columns is None else min(m, max_pattern_columns)
    consumed_pattern = 0
    guard = 2 * (m + n) + 4  # any valid traceback is shorter than this
    while i >= 0 and consumed_pattern < pattern_budget:
        guard -= 1
        if guard < 0:
            raise TracebackError("traceback did not terminate (internal error)")
        counter.tb_steps += 1
        if j == 0:
            # No text left: the remaining pattern prefix is all insertions.
            ops.append(CigarOp.INSERTION)
            d -= 1
            i -= 1
            consumed_pattern += 1
            continue
        for letter in priority:
            if conditions[letter](j, d, i):
                op = _PRIORITY_OPS[letter]
                ops.append(op)
                if letter == "M":
                    j, i = j - 1, i - 1
                    consumed_pattern += 1
                elif letter == "S":
                    j, d, i = j - 1, d - 1, i - 1
                    consumed_pattern += 1
                elif letter == "I":
                    d, i = d - 1, i - 1
                    consumed_pattern += 1
                else:  # "D"
                    j, d = j - 1, d - 1
                break
        else:
            raise TracebackError(
                f"no traceback step possible at text={j}, errors={d}, bit={i}"
            )
    return ops, j


def genasm_traceback_compressed(
    table: DCTable, *, priority: str = "MSDI"
) -> Tuple[List[CigarOp], int]:
    """Traceback requiring the entry-compressed storage (improvement 1).

    Provided for symmetry with the paper's description; it simply asserts
    that the table was built with entry compression before delegating to
    :func:`genasm_traceback`.
    """
    if not table.entry_compression:
        raise ValueError("table was not built with entry compression")
    return genasm_traceback(table, priority=priority)
