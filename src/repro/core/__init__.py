"""Core GenASM algorithm: bitvector DP (DC), traceback (TB), the three
algorithmic improvements from the IPPS 2022 paper, and the windowed
long-read aligner."""

from repro.core.aligner import GenASMAligner, align_pair
from repro.core.alignment import Alignment
from repro.core.cigar import Cigar, CigarOp
from repro.core.config import GenASMConfig
from repro.core.genasm_dc import genasm_dc, genasm_dc_rowmajor
from repro.core.genasm_tb import genasm_traceback, genasm_traceback_compressed
from repro.core.metrics import AccessCounter, MemoryFootprint

__all__ = [
    "GenASMAligner",
    "align_pair",
    "Alignment",
    "Cigar",
    "CigarOp",
    "GenASMConfig",
    "genasm_dc",
    "genasm_dc_rowmajor",
    "genasm_traceback",
    "genasm_traceback_compressed",
    "AccessCounter",
    "MemoryFootprint",
]
