"""GenASM-DC: the bitvector dynamic program (distance calculation).

GenASM is a Bitap / Wu–Manber style approximate string matcher.  The DP
state for error level ``d`` after consuming the text prefix ``T[0..j)`` is a
bitvector ``R[j][d]`` in which bit ``i`` is **zero** iff the pattern prefix
``P[0..i+1)`` can be aligned to *some* substring of ``T`` ending exactly at
position ``j`` with at most ``d`` edits (unit-cost substitutions,
insertions, deletions).  The whole pattern therefore matches with ``d``
errors ending at ``j`` iff bit ``m − 1`` of ``R[j][d]`` is zero.

Recurrence for text character ``c = T[j-1]`` (all bitvectors zero-active)::

    match  = (R[j-1][d]   << 1) | PM[c]
    subst  = (R[j-1][d-1] << 1)
    insert = (R[j]  [d-1] << 1)      # pattern char consumed, no text char
    delete =  R[j-1][d-1]            # text char consumed, no pattern char
    R[j][d] = match & subst & insert & delete          (d >= 1)
    R[j][0] = match

The recurrence only couples row ``d`` to row ``d−1``, so it can be evaluated
**row-major** (error level outermost).  That ordering is what enables the
paper's *early termination* improvement: once a row's final column already
contains the full solution, no further rows are computed.

Two of the paper's three improvements live here:

* *entry compression* — the table stores only ``R[j][d]`` (the AND) rather
  than the four intermediate vectors;
* *early termination* — row-major evaluation with the stopping predicate
  :func:`repro.core.improvements.solution_found`;
* the third improvement (*traceback-reachability band*) affects what part
  of each stored vector is persisted, via
  :func:`repro.core.improvements.pack_band`.

The module exposes:

* :func:`genasm_dc` — full DP with traceback storage, honouring the three
  improvement toggles (the baseline MICRO-2020 behaviour is all-off);
* :func:`genasm_dc_rowmajor` — alias of :func:`genasm_dc` kept for symmetry
  with the paper's description;
* :func:`genasm_distance_only` — distance without any traceback storage
  (used by filters, tests and the Edlib-style distance comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bitvector import all_ones, bit_is_zero, pattern_bitmasks_zero_match
from repro.core.improvements import (
    band_bounds,
    band_width,
    entry_bytes,
    pack_band,
    solution_found,
    vectors_per_entry,
)
from repro.core.metrics import AccessCounter

__all__ = ["DCTable", "genasm_dc", "genasm_dc_rowmajor", "genasm_distance_only"]


@dataclass
class DCTable:
    """Stored state of one GenASM-DC run, consumed by GenASM-TB.

    Depending on ``entry_compression`` either ``stored_r`` (one value per
    entry) or ``stored_quad`` (four values per entry) is populated.  Values
    are band-packed when ``traceback_band`` is set; the packing offsets are
    implied by :func:`repro.core.improvements.band_bounds`.
    """

    pattern: str
    text: str
    max_errors: int
    entry_compression: bool
    early_termination: bool
    traceback_band: bool
    word_bits: int = 64
    #: first text column whose entries are stored (traceback-reachability
    #: pruning; columns below this are computed but never persisted)
    store_from_column: int = 0

    #: rows actually evaluated (``<= max_errors + 1`` with early termination)
    rows_computed: int = 0
    #: minimum error level whose final column contains the full pattern, or None
    min_errors: Optional[int] = None
    #: final-column bitvectors per evaluated row (used by distance queries)
    final_column: List[int] = field(default_factory=list)
    #: entry_compression=True: stored_r[d][j] = (packed) R[j][d], j in 0..n
    stored_r: List[List[int]] = field(default_factory=list)
    #: entry_compression=False: stored_quad[d][j-1] = (match, subst, ins, del)
    stored_quad: List[List[Tuple[int, int, int, int]]] = field(default_factory=list)
    #: access accounting for experiment E4
    counter: AccessCounter = field(default_factory=AccessCounter)
    #: caches filled in by :func:`genasm_dc` (kept out of the hot loops)
    _entry_bytes: Optional[int] = None
    _band_lo: Optional[List[int]] = None
    _band_width: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    @property
    def text_length(self) -> int:
        return len(self.text)

    @property
    def entry_store_bytes(self) -> int:
        """Bytes per stored bitvector entry (band-aware)."""
        if self._entry_bytes is None:
            self._entry_bytes = entry_bytes(
                max(1, len(self.pattern)),
                self.max_errors,
                self.word_bits,
                self.traceback_band,
            )
        return self._entry_bytes

    def stored_bytes(self) -> int:
        """Bytes of traceback state actually retained by this run (E3)."""
        per_entry = self.entry_store_bytes * vectors_per_entry(self.entry_compression)
        columns = len(self.text) + 1 - self.store_from_column
        if self.entry_compression:
            entries = self.rows_computed * max(0, columns)
        else:
            entries = self.rows_computed * max(0, min(columns, len(self.text)))
        return entries * per_entry

    # -- band-aware accessors (used by the traceback) -------------------- #
    def band_lo(self, j: int) -> int:
        """Lowest logical bit stored for column ``j`` (0 without banding)."""
        if not self.traceback_band:
            return 0
        if self._band_lo is not None:
            return self._band_lo[j]
        lo, _hi = band_bounds(j, len(self.text), max(1, len(self.pattern)), self.max_errors)
        return lo

    def _stored_band_width(self) -> int:
        if self._band_width is None:
            self._band_width = band_width(max(1, len(self.pattern)), self.max_errors)
        return self._band_width

    def r_bit(self, d: int, j: int, bit: int) -> bool:
        """Is logical bit ``bit`` of stored ``R[j][d]`` zero (active)?

        Bits below zero count as active (they model the zero shifted into a
        left-shift); bits outside the stored band count as inactive.
        """
        if bit < 0:
            return True
        value = self.stored_r[d][j]
        counter = self.counter
        counter.dp_reads += 1
        counter.bytes_read += self.entry_store_bytes
        if not self.traceback_band:
            return not (value >> bit) & 1
        offset = bit - self.band_lo(j)
        if offset < 0 or offset >= self._stored_band_width():
            return False
        return not (value >> offset) & 1

    def quad_bit(self, d: int, j: int, which: int, bit: int) -> bool:
        """Is bit ``bit`` of stored intermediate ``which`` at (j, d) zero?

        ``which`` indexes (0=match, 1=substitution, 2=insertion, 3=deletion).
        Column indices ``j`` run from 1..n (column 0 stores nothing).
        """
        if bit < 0:
            return True
        value = self.stored_quad[d][j - 1][which]
        counter = self.counter
        counter.dp_reads += 1
        counter.bytes_read += self.entry_store_bytes
        if not self.traceback_band:
            return not (value >> bit) & 1
        offset = bit - self.band_lo(j)
        if offset < 0 or offset >= self._stored_band_width():
            return False
        return not (value >> offset) & 1


def genasm_dc(
    pattern: str,
    text: str,
    max_errors: int,
    *,
    entry_compression: bool = True,
    early_termination: bool = True,
    traceback_band: bool = True,
    counter: Optional[AccessCounter] = None,
    word_bits: int = 64,
    pattern_masks: Optional[Dict[str, int]] = None,
    store_from_column: int = 0,
) -> DCTable:
    """Run GenASM-DC and return the stored table for traceback.

    Parameters
    ----------
    pattern, text:
        The pattern (read window) and text (reference window).  The
        alignment semantics are Bitap-style: the pattern may start anywhere
        in the text but a full-pattern solution is only recognised at text
        positions where the MSB becomes zero; callers that need
        start-anchored windows feed reversed sequences (see
        :mod:`repro.core.windowing`).
    max_errors:
        ``k`` — the largest error level evaluated.
    entry_compression, early_termination, traceback_band:
        The three improvement toggles (all on = the IPPS 2022 algorithm,
        all off = baseline GenASM).
    counter:
        Optional shared :class:`AccessCounter`; a fresh one is created when
        omitted and is always available as ``table.counter``.
    store_from_column:
        Traceback-reachability pruning over text columns: entries at text
        positions below this column are computed (the recurrence needs
        them) but never persisted or counted as DP-table writes.  Windowed
        alignment sets this from
        :func:`repro.core.improvements.reachable_column_start` for windows
        whose traceback is known to stop after the committed columns.
    """
    m = len(pattern)
    n = len(text)
    k = max(0, min(max_errors, max(m, 1)))
    counter = counter if counter is not None else AccessCounter()
    store_from = max(0, min(store_from_column, n)) if traceback_band else 0

    table = DCTable(
        pattern=pattern,
        text=text,
        max_errors=k,
        entry_compression=entry_compression,
        early_termination=early_termination,
        traceback_band=traceback_band,
        word_bits=word_bits,
        store_from_column=store_from,
        counter=counter,
    )

    if m == 0:
        # Empty pattern: trivially matched with zero errors everywhere.  The
        # stored representation must match what the config asked for — the
        # quad traceback path reads ``stored_quad``, never ``stored_r``.
        table.rows_computed = 1
        table.min_errors = 0
        table.final_column = [0]
        if entry_compression:
            table.stored_r = [[0] * (n + 1)]
        else:
            table.stored_quad = [[(0, 0, 0, 0)] * n]
        return table

    ones = all_ones(m)
    pm = pattern_masks if pattern_masks is not None else pattern_bitmasks_zero_match(pattern)
    text_masks = [pm.get(c, ones) for c in text]

    entry_store = table.entry_store_bytes
    width = band_width(m, k)
    band_mask = all_ones(width)
    # Band offset per column, precomputed so the hot loop stays branch-light.
    if traceback_band:
        band_lo = [band_bounds(j, n, m, k)[0] for j in range(n + 1)]
    else:
        band_lo = [0] * (n + 1)
    table._band_lo = band_lo
    table._band_width = width

    previous_row: List[int] = []
    min_errors: Optional[int] = None

    for d in range(k + 1):
        row: List[int] = [0] * (n + 1)
        # Column 0: pattern prefixes alignable against the empty text suffix
        # (only by deleting pattern characters, hence d of them at most).
        row[0] = (ones << d) & ones if d < m else 0
        if entry_compression:
            if store_from == 0:
                first = ((row[0] >> band_lo[0]) & band_mask) if traceback_band else row[0]
                stored_row = [first]
            else:
                stored_row = [ones]
        else:
            stored_quad_row: List[Tuple[int, int, int, int]] = []

        # Hot loop: everything the recurrence needs is bound to locals.
        prev_value = row[0]
        prev_row = previous_row
        masks = text_masks
        if d == 0:
            for j in range(1, n + 1):
                value = ((prev_value << 1) & ones) | masks[j - 1]
                row[j] = value
                prev_value = value
                if entry_compression:
                    if j >= store_from:
                        stored_row.append(
                            ((value >> band_lo[j]) & band_mask) if traceback_band else value
                        )
                    else:
                        stored_row.append(ones)
                else:
                    if j >= store_from:
                        if traceback_band:
                            lo = band_lo[j]
                            stored_quad_row.append(
                                (
                                    (value >> lo) & band_mask,
                                    (ones >> lo) & band_mask,
                                    (ones >> lo) & band_mask,
                                    (ones >> lo) & band_mask,
                                )
                            )
                        else:
                            stored_quad_row.append((value, ones, ones, ones))
                    else:
                        stored_quad_row.append((ones, ones, ones, ones))
        else:
            for j in range(1, n + 1):
                prev_diag = prev_row[j - 1]
                match = ((prev_value << 1) & ones) | masks[j - 1]
                subst = (prev_diag << 1) & ones
                ins = (prev_row[j] << 1) & ones
                value = match & subst & ins & prev_diag
                row[j] = value
                prev_value = value
                if entry_compression:
                    if j >= store_from:
                        stored_row.append(
                            ((value >> band_lo[j]) & band_mask) if traceback_band else value
                        )
                    else:
                        stored_row.append(ones)
                else:
                    if j >= store_from:
                        if traceback_band:
                            lo = band_lo[j]
                            stored_quad_row.append(
                                (
                                    (match >> lo) & band_mask,
                                    (subst >> lo) & band_mask,
                                    (ins >> lo) & band_mask,
                                    (prev_diag >> lo) & band_mask,
                                )
                            )
                        else:
                            stored_quad_row.append((match, subst, ins, prev_diag))
                    else:
                        stored_quad_row.append((ones, ones, ones, ones))

        # Bulk accounting (one update per row instead of per entry).
        stored_columns = n - max(0, store_from - 1)
        counter.entries_computed += n
        if entry_compression:
            counter.record_write(stored_columns + (1 if store_from == 0 else 0), entry_store)
        else:
            counter.record_write(4 * stored_columns, entry_store)

        if entry_compression:
            table.stored_r.append(stored_row)
        else:
            table.stored_quad.append(stored_quad_row)

        table.final_column.append(row[n])
        table.rows_computed = d + 1
        counter.rows_computed += 1

        if min_errors is None and solution_found(row[n], m):
            min_errors = d
            if early_termination:
                counter.rows_skipped += k - d
                break
        previous_row = row

    table.min_errors = min_errors
    return table


def genasm_dc_rowmajor(
    pattern: str,
    text: str,
    max_errors: int,
    **kwargs,
) -> DCTable:
    """Alias of :func:`genasm_dc` (the implementation is always row-major)."""
    return genasm_dc(pattern, text, max_errors, **kwargs)


def genasm_distance_only(
    pattern: str,
    text: str,
    max_errors: Optional[int] = None,
    *,
    early_termination: bool = True,
) -> Optional[int]:
    """Semi-global (text-substring, end-reported) edit distance via GenASM-DC.

    Returns the minimum number of edits needed to align the whole pattern
    to some substring of ``text`` (ending anywhere), or ``None`` when it
    exceeds ``max_errors``.  No traceback state is stored, so this is the
    cheapest way to use GenASM as a pre-alignment filter.
    """
    m = len(pattern)
    n = len(text)
    if m == 0:
        return 0
    k = m if max_errors is None else max(0, min(max_errors, m))
    ones = all_ones(m)
    pm = pattern_bitmasks_zero_match(pattern)
    text_masks = [pm.get(c, ones) for c in text]

    previous_row: List[int] = []
    best: Optional[int] = None
    for d in range(k + 1):
        row = [0] * (n + 1)
        row[0] = (ones << d) & ones if d < m else 0
        found = bit_is_zero(row[0], m - 1)
        for j in range(1, n + 1):
            match = ((row[j - 1] << 1) & ones) | text_masks[j - 1]
            if d == 0:
                value = match
            else:
                value = (
                    match
                    & ((previous_row[j - 1] << 1) & ones)
                    & ((previous_row[j] << 1) & ones)
                    & previous_row[j - 1]
                )
            row[j] = value
            if bit_is_zero(value, m - 1):
                found = True
        if found and best is None:
            best = d
            if early_termination:
                return best
        previous_row = row
    return best
