"""Bitvector primitives used by the GenASM family of algorithms.

GenASM is a Bitap / Wu–Manber style algorithm: the state of the dynamic
program is a set of *bitvectors*, one per error level, where (in GenASM's
convention) a **zero** bit marks an "active" partial match.  This module
provides the two bitvector representations used throughout the library:

* **Python integers** — arbitrary-precision, branch-free, and surprisingly
  fast for the word sizes GenASM needs (windows of 64–256 characters).
  These are used by the CPU reference implementations.
* **word arrays** (``numpy.uint64``) — the representation the GPU kernels
  use.  The word layout mirrors what a CUDA thread block would hold in
  shared memory (word 0 holds bits 0..63, i.e. the least-significant part
  of the pattern), so per-word access counting maps directly onto shared /
  global memory transactions in the GPU model.

Bit ``i`` of a bitvector always refers to the pattern prefix
``pattern[0 : i + 1]`` (length ``i + 1``); the most significant useful bit
is therefore ``len(pattern) - 1`` and corresponds to the whole pattern.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "WORD_BITS",
    "all_ones",
    "bit_is_zero",
    "bit_is_one",
    "shift_left_one",
    "pattern_bitmasks",
    "pattern_bitmasks_zero_match",
    "count_zero_bits",
    "lowest_zero_bit",
    "highest_zero_bit",
    "to_words",
    "from_words",
    "words_needed",
    "popcount",
]

#: Machine word width assumed by the word-array representation and by the
#: GPU memory model (one CUDA thread owns one 64-bit word).
WORD_BITS = 64

#: Default DNA alphabet.  ``N`` never matches anything (its pattern mask is
#: all ones), mirroring how GenASM treats ambiguous bases.
DNA_ALPHABET = "ACGT"


def all_ones(length: int) -> int:
    """Return an integer with ``length`` low bits set to one.

    This is the GenASM "empty" bitvector: no active partial matches.
    """
    if length < 0:
        raise ValueError(f"bitvector length must be non-negative, got {length}")
    return (1 << length) - 1


def bit_is_zero(value: int, bit: int) -> bool:
    """Return ``True`` if ``bit`` of ``value`` is zero (GenASM: active)."""
    return (value >> bit) & 1 == 0


def bit_is_one(value: int, bit: int) -> bool:
    """Return ``True`` if ``bit`` of ``value`` is one (GenASM: inactive)."""
    return (value >> bit) & 1 == 1


def shift_left_one(value: int, length: int) -> int:
    """Shift ``value`` left by one, keeping only ``length`` bits.

    The vacated least-significant bit is zero, which in GenASM's
    zero-active convention means "an empty pattern prefix is always
    alignable"; this is what allows matches to begin at any text position
    (semi-global semantics over the text).
    """
    return ((value << 1) & all_ones(length)) | 0


def popcount(value: int) -> int:
    """Number of one bits in ``value``."""
    return bin(value).count("1")


def count_zero_bits(value: int, length: int) -> int:
    """Number of zero (active) bits among the low ``length`` bits."""
    return length - popcount(value & all_ones(length))


def lowest_zero_bit(value: int, length: int) -> int:
    """Index of the lowest zero bit among the low ``length`` bits, or -1."""
    masked = (~value) & all_ones(length)
    if masked == 0:
        return -1
    return (masked & -masked).bit_length() - 1


def highest_zero_bit(value: int, length: int) -> int:
    """Index of the highest zero bit among the low ``length`` bits, or -1."""
    masked = (~value) & all_ones(length)
    if masked == 0:
        return -1
    return masked.bit_length() - 1


def pattern_bitmasks(
    pattern: str, alphabet: Iterable[str] = DNA_ALPHABET
) -> Dict[str, int]:
    """Build one-active pattern masks: bit ``i`` is **1** iff ``pattern[i] == c``.

    This is the classic Shift-Or/Bitap "match mask" polarity.  GenASM uses
    the complementary polarity (see :func:`pattern_bitmasks_zero_match`),
    but the one-active masks are what the Edlib-like Myers implementation
    consumes, so both are provided by the same substrate.
    """
    masks = {c: 0 for c in alphabet}
    for i, ch in enumerate(pattern):
        if ch in masks:
            masks[ch] |= 1 << i
    return masks


def pattern_bitmasks_zero_match(
    pattern: str, alphabet: Iterable[str] = DNA_ALPHABET
) -> Dict[str, int]:
    """Build GenASM pattern masks: bit ``i`` is **0** iff ``pattern[i] == c``.

    Characters outside ``alphabet`` (e.g. ``N``) produce no zero anywhere,
    i.e. they never match.  A defensive all-ones entry is also returned for
    every alphabet character so lookups never fail.
    """
    m = len(pattern)
    ones = all_ones(m)
    one_active = pattern_bitmasks(pattern, alphabet)
    return {c: ones & ~mask for c, mask in one_active.items()}


def words_needed(length: int) -> int:
    """Number of 64-bit words needed to hold ``length`` bits (at least 1)."""
    return max(1, (length + WORD_BITS - 1) // WORD_BITS)


def to_words(value: int, length: int) -> np.ndarray:
    """Split an integer bitvector into little-endian 64-bit words.

    ``words[0]`` holds bits ``0..63``.  The result always has
    :func:`words_needed` entries so that word indices are stable for a
    given pattern length.
    """
    n_words = words_needed(length)
    out = np.zeros(n_words, dtype=np.uint64)
    mask = (1 << WORD_BITS) - 1
    v = value & all_ones(max(length, 1))
    for w in range(n_words):
        out[w] = v & mask
        v >>= WORD_BITS
    return out


def from_words(words: Sequence[int] | np.ndarray, length: int | None = None) -> int:
    """Recombine little-endian 64-bit words into an integer bitvector."""
    value = 0
    for w, word in enumerate(words):
        value |= int(word) << (w * WORD_BITS)
    if length is not None:
        value &= all_ones(length)
    return value


def shift_left_one_words(words: np.ndarray, length: int) -> np.ndarray:
    """Word-array equivalent of :func:`shift_left_one`.

    Implements the cross-word carry chain explicitly, which is exactly what
    the GPU kernel does across threads (each thread owns one word and reads
    its right neighbour's top bit).
    """
    n_words = len(words)
    out = np.zeros_like(words)
    carry = np.uint64(0)
    for w in range(n_words):
        word = words[w]
        out[w] = ((word << np.uint64(1)) & np.uint64(0xFFFFFFFFFFFFFFFF)) | carry
        carry = word >> np.uint64(WORD_BITS - 1)
    # Trim bits beyond `length` in the last word so equality checks against
    # the integer representation are exact.
    top_bits = length - (n_words - 1) * WORD_BITS
    if 0 < top_bits < WORD_BITS:
        out[-1] &= np.uint64((1 << top_bits) - 1)
    return out


def pattern_bitmask_words(
    pattern: str, alphabet: Iterable[str] = DNA_ALPHABET
) -> Mapping[str, np.ndarray]:
    """Word-array version of :func:`pattern_bitmasks_zero_match`."""
    m = len(pattern)
    return {
        c: to_words(v, m) for c, v in pattern_bitmasks_zero_match(pattern, alphabet).items()
    }
