"""Memory-footprint and memory-access accounting (experiments E3 and E4).

The IPPS 2022 paper's headline algorithmic results are a **24× reduction in
memory footprint** and a **12× reduction in the number of memory accesses**
to the GenASM DP table.  Both are *algorithmic* properties — they depend on
the window size ``W``, the error budget ``k`` and the number of DP rows
actually evaluated — so they can be reproduced exactly without the paper's
hardware.  This module provides:

* :class:`AccessCounter` — a counter threaded through the DC and TB kernels
  that tallies DP-table reads and writes (in units of stored entries) and
  the corresponding byte traffic.
* :class:`MemoryFootprint` — an analytic model of the bytes of DP-table
  state a single window requires, for the baseline and for any combination
  of the three improvements.

The "footprint" follows the paper's definition: the working set of the
traceback-relevant DP state for one alignment window, i.e. what a GPU
thread block has to keep resident (baseline: in global memory, improved:
in shared memory/registers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import GenASMConfig

__all__ = ["AccessCounter", "MemoryFootprint", "footprint_report"]


def _storage_unit_bits(bits: int, word_bits: int = 64) -> int:
    """Smallest power-of-two storage unit (8..word_bits bits) holding ``bits``."""
    unit = 8
    while unit < min(bits, word_bits):
        unit *= 2
    return min(unit, word_bits)


@dataclass
class AccessCounter:
    """Tallies of DP-table traffic produced while running GenASM.

    All counts are in *entry accesses* (one stored bitvector word read or
    written); ``bytes_read``/``bytes_written`` additionally weight each
    access by the width of the stored unit, which is what the traceback-band
    improvement shrinks.
    """

    dp_writes: int = 0
    dp_reads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    entries_computed: int = 0
    rows_computed: int = 0
    rows_skipped: int = 0
    tb_steps: int = 0
    windows: int = 0

    def record_write(self, count: int = 1, unit_bytes: int = 8) -> None:
        """Record ``count`` DP-table writes of ``unit_bytes`` each."""
        self.dp_writes += count
        self.bytes_written += count * unit_bytes

    def record_read(self, count: int = 1, unit_bytes: int = 8) -> None:
        """Record ``count`` DP-table reads of ``unit_bytes`` each."""
        self.dp_reads += count
        self.bytes_read += count * unit_bytes

    @property
    def total_accesses(self) -> int:
        """Total DP-table accesses (reads + writes)."""
        return self.dp_reads + self.dp_writes

    @property
    def total_bytes(self) -> int:
        """Total DP-table byte traffic (reads + writes)."""
        return self.bytes_read + self.bytes_written

    def merge(self, other: "AccessCounter") -> "AccessCounter":
        """Accumulate another counter into this one and return ``self``."""
        for name in (
            "dp_writes",
            "dp_reads",
            "bytes_written",
            "bytes_read",
            "entries_computed",
            "rows_computed",
            "rows_skipped",
            "tb_steps",
            "windows",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports."""
        return {
            "dp_writes": self.dp_writes,
            "dp_reads": self.dp_reads,
            "total_accesses": self.total_accesses,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "total_bytes": self.total_bytes,
            "entries_computed": self.entries_computed,
            "rows_computed": self.rows_computed,
            "rows_skipped": self.rows_skipped,
            "tb_steps": self.tb_steps,
            "windows": self.windows,
        }


@dataclass(frozen=True)
class MemoryFootprint:
    """Analytic per-window DP-table footprint model.

    Parameters mirror one GenASM window: pattern window of ``m`` characters,
    text window of ``n`` characters, error budget ``k``.  The model follows
    the storage layout of the implementations in :mod:`repro.core`:

    baseline (MICRO 2020)
        every text position × every error level stores **four** intermediate
        bitvectors (match, substitution, insertion, deletion), each
        ``ceil(m / word_bits)`` words wide;
    entry compression
        one stored bitvector instead of four;
    traceback band
        only ``min(m, 2k + 2)`` bits of each stored bitvector are reachable
        by the traceback, so entries shrink to the smallest power-of-two
        storage unit that holds the band;
    early termination
        only rows ``0 … d*`` are evaluated and therefore stored, where
        ``d*`` is the actual window edit distance (``rows_used``).
    """

    pattern_window: int
    text_window: int
    max_errors: int
    word_bits: int = 64
    rows_used: Optional[int] = None
    committed_columns: Optional[int] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls, config: GenASMConfig, rows_used: Optional[int] = None
    ) -> "MemoryFootprint":
        """Build the model for one (non-final) window of ``config``."""
        return cls(
            pattern_window=config.window_size,
            text_window=config.window_size + config.text_slack,
            max_errors=config.k,
            word_bits=config.word_bits,
            rows_used=rows_used,
            committed_columns=config.window_step,
        )

    # -- building blocks ------------------------------------------------ #
    @property
    def words_per_bitvector(self) -> int:
        """Words needed for a full-width bitvector."""
        return max(1, math.ceil(self.pattern_window / self.word_bits))

    @property
    def band_bits(self) -> int:
        """Bits per entry reachable by the traceback (improvement 3)."""
        return min(self.pattern_window, 2 * self.max_errors + 2)

    @property
    def band_entry_bytes(self) -> int:
        """Bytes per stored entry when only the traceback band is kept."""
        unit = _storage_unit_bits(self.band_bits, self.word_bits)
        return (unit // 8) * max(1, math.ceil(self.band_bits / unit))

    @property
    def full_entry_bytes(self) -> int:
        """Bytes per stored bitvector at full width."""
        return self.words_per_bitvector * (self.word_bits // 8)

    def rows(self, early_termination: bool) -> int:
        """Number of DP rows stored (error levels), honouring early termination."""
        total = self.max_errors + 1
        if early_termination and self.rows_used is not None:
            return max(1, min(self.rows_used, total))
        return total

    def columns(self, traceback_band: bool) -> int:
        """Number of text columns whose entries are stored.

        The traceback of a non-final window stops after the committed
        ``W − O`` pattern columns, so (improvement 3) only the last
        ``committed + k + 1`` text columns can ever be read back.
        """
        if not traceback_band or self.committed_columns is None:
            return self.text_window
        reachable = self.committed_columns + self.max_errors + 2
        return min(self.text_window, reachable)

    # -- footprints ------------------------------------------------------ #
    def bytes_for(
        self,
        *,
        entry_compression: bool,
        early_termination: bool,
        traceback_band: bool,
    ) -> int:
        """DP-table bytes for one window under the given improvement set."""
        vectors_per_entry = 1 if entry_compression else 4
        entry_bytes = self.band_entry_bytes if traceback_band else self.full_entry_bytes
        rows = self.rows(early_termination)
        columns = self.columns(traceback_band)
        return columns * rows * vectors_per_entry * entry_bytes

    def bytes_for_config(self, config: GenASMConfig) -> int:
        """DP-table bytes for one window of the given configuration."""
        return self.bytes_for(
            entry_compression=config.entry_compression,
            early_termination=config.early_termination,
            traceback_band=config.traceback_band,
        )

    @property
    def baseline_bytes(self) -> int:
        """Footprint of baseline GenASM-TB storage."""
        return self.bytes_for(
            entry_compression=False, early_termination=False, traceback_band=False
        )

    @property
    def improved_bytes(self) -> int:
        """Footprint with all three improvements enabled."""
        return self.bytes_for(
            entry_compression=True, early_termination=True, traceback_band=True
        )

    @property
    def reduction_factor(self) -> float:
        """Baseline / improved footprint ratio (the paper reports 24×)."""
        return self.baseline_bytes / max(1, self.improved_bytes)

    def breakdown(self) -> Dict[str, float]:
        """Per-improvement footprint contributions, for the ablation bench."""
        base = self.baseline_bytes
        out: Dict[str, float] = {"baseline_bytes": base}
        for name, kwargs in (
            ("entry_compression", dict(entry_compression=True, early_termination=False, traceback_band=False)),
            ("early_termination", dict(entry_compression=False, early_termination=True, traceback_band=False)),
            ("traceback_band", dict(entry_compression=False, early_termination=False, traceback_band=True)),
            ("all", dict(entry_compression=True, early_termination=True, traceback_band=True)),
        ):
            b = self.bytes_for(**kwargs)
            out[f"{name}_bytes"] = b
            out[f"{name}_reduction"] = base / max(1, b)
        return out


def footprint_report(
    config: GenASMConfig, rows_used: Optional[int] = None
) -> Dict[str, float]:
    """One-call footprint summary used by benchmarks and EXPERIMENTS.md."""
    model = MemoryFootprint.from_config(config, rows_used=rows_used)
    report = model.breakdown()
    report["reduction_factor"] = model.reduction_factor
    report["baseline_kib"] = model.baseline_bytes / 1024.0
    report["improved_kib"] = model.improved_bytes / 1024.0
    return report
