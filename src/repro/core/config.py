"""Configuration of the GenASM aligner and its algorithmic improvements.

The defaults mirror the GenASM / IPPS-2022 setup for long reads: windows of
``W = 64`` characters with an overlap of ``O = 24`` characters between
consecutive windows, and a per-window error budget ``k`` derived from the
expected error rate.  All three improvements introduced by the paper are
enabled by default; the baseline (MICRO 2020) behaviour is obtained with
:meth:`GenASMConfig.baseline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["GenASMConfig"]


@dataclass(frozen=True)
class GenASMConfig:
    """Parameters of the (windowed) GenASM aligner.

    Attributes
    ----------
    window_size:
        ``W`` — number of pattern characters aligned per window.  GenASM
        uses 64 so that one window's bitvector fits a machine word.
    window_overlap:
        ``O`` — number of trailing window columns whose traceback is
        discarded and re-aligned by the next window.  Overlap absorbs the
        error of cutting the alignment at an arbitrary column.
    error_rate:
        Expected per-window error rate used to derive the error budget
        ``k`` when :attr:`max_errors` is not given explicitly.
    max_errors:
        ``k`` — per-window error budget (number of bitvector rows minus
        one).  ``None`` derives it as ``ceil(window_size * error_rate)``
        clamped to at least 1 and at most ``window_size``.
    text_slack:
        Extra text characters given to each window beyond the pattern
        window length, so that deletions/insertions do not starve the text.
    entry_compression:
        Improvement 1 — store only the ANDed bitvector ``R[j][d]`` instead
        of the four intermediate vectors, re-deriving traceback operations
        on the fly.
    early_termination:
        Improvement 2 — evaluate rows (error levels) outermost and stop as
        soon as a row already contains the full-window solution.
    traceback_band:
        Improvement 3 — store only the diagonal band of bits that the
        traceback can reach, instead of full-width bitvectors.
    word_bits:
        Machine word width used by the memory model and the GPU kernels.
    match_priority:
        Traceback tie-break order.  GenASM prefers matches, then
        substitutions, then deletions, then insertions; keeping the order
        configurable lets tests demonstrate that the edit distance is
        invariant to it.
    kernel_backend:
        Which hot-loop kernels the batch engine runs: ``"numpy"`` (the
        reference loops), ``"numba"`` (the compiled twins, degrading to
        NumPy with a one-time warning when Numba is not importable) or
        ``"auto"`` (Numba when available).  See
        :mod:`repro.batch.kernels`; the resolved backend is recorded in
        batch-result metadata.
    traceback_skip_ahead:
        Consume whole match runs per lockstep traceback step (only
        effective when ``M`` leads :attr:`match_priority`; byte-identical
        either way).  Exists as a toggle so the differential harness can
        sweep it; leave on.
    """

    window_size: int = 64
    window_overlap: int = 24
    error_rate: float = 0.15
    max_errors: Optional[int] = None
    text_slack: int = 8
    entry_compression: bool = True
    early_termination: bool = True
    traceback_band: bool = True
    word_bits: int = 64
    match_priority: str = "MSDI"
    kernel_backend: str = "auto"
    traceback_skip_ahead: bool = True

    def __post_init__(self) -> None:
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if not (0 <= self.window_overlap < self.window_size):
            raise ValueError("window_overlap must satisfy 0 <= O < W")
        if not (0.0 <= self.error_rate <= 1.0):
            raise ValueError("error_rate must be in [0, 1]")
        if self.max_errors is not None and self.max_errors < 0:
            raise ValueError("max_errors must be non-negative")
        if self.text_slack < 0:
            raise ValueError("text_slack must be non-negative")
        if sorted(self.match_priority) != sorted("MSDI"):
            raise ValueError("match_priority must be a permutation of 'MSDI'")
        if self.kernel_backend not in ("auto", "numpy", "numba"):
            raise ValueError(
                "kernel_backend must be one of ('auto', 'numpy', 'numba'), "
                f"got {self.kernel_backend!r}"
            )

    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Effective per-window error budget."""
        if self.max_errors is not None:
            return min(self.max_errors, self.window_size)
        derived = int(-(-self.window_size * self.error_rate // 1))  # ceil
        return max(1, min(derived, self.window_size))

    @property
    def window_step(self) -> int:
        """Number of committed pattern columns per window (``W − O``)."""
        return self.window_size - self.window_overlap

    @property
    def improved(self) -> bool:
        """Whether any of the paper's improvements is enabled."""
        return self.entry_compression or self.early_termination or self.traceback_band

    # ------------------------------------------------------------------ #
    @classmethod
    def baseline(cls, **overrides) -> "GenASMConfig":
        """GenASM as published at MICRO 2020, without the IPPS improvements."""
        cfg = cls(
            entry_compression=False,
            early_termination=False,
            traceback_band=False,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def improved_default(cls, **overrides) -> "GenASMConfig":
        """All three IPPS-2022 improvements enabled (the default)."""
        cfg = cls()
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def short_read(cls, read_length: int = 150, **overrides) -> "GenASMConfig":
        """A configuration suited to Illumina-length reads.

        Short reads are aligned in a single window covering the whole read,
        with a tighter error budget (short reads have ~1 % error rates).
        """
        cfg = cls(
            window_size=max(read_length, 1),
            window_overlap=0,
            error_rate=0.05,
            text_slack=max(4, read_length // 16),
        )
        return replace(cfg, **overrides) if overrides else cfg

    def with_improvements(
        self,
        *,
        entry_compression: Optional[bool] = None,
        early_termination: Optional[bool] = None,
        traceback_band: Optional[bool] = None,
    ) -> "GenASMConfig":
        """Return a copy with the given improvement toggles overridden."""
        return replace(
            self,
            entry_compression=self.entry_compression
            if entry_compression is None
            else entry_compression,
            early_termination=self.early_termination
            if early_termination is None
            else early_termination,
            traceback_band=self.traceback_band
            if traceback_band is None
            else traceback_band,
        )
