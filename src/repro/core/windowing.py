"""Windowed long-read alignment (the GenASM windowing heuristic).

GenASM keeps its bitvectors machine-word sized by aligning long sequences
in overlapping windows of ``W`` pattern characters.  Each window is aligned
independently with GenASM-DC + GenASM-TB; only the first ``W − O`` pattern
columns of the window alignment are *committed* before the window slides,
so that the error introduced by cutting an alignment at an arbitrary column
is absorbed by the ``O``-column overlap.

Anchoring
---------
The raw bitap recurrence lets a match *start* anywhere in the text and
reports where it *ends*.  A window, however, must be anchored at its start
(the globally committed position) and float at its end.  The implementation
therefore aligns the **reversed** window pair: a whole-pattern match ending
at the end of the reversed text corresponds to a start-anchored alignment
covering a prefix of the forward text window, and the traceback (which runs
end-to-start over the reversed window) emits operations directly in forward
order.  This mirrors how GenASM stores its pattern bitmasks reversed.

This module is the *scalar* path (one window at a time, Python-int
bitvectors).  Batch workloads should prefer
:class:`repro.batch.BatchAlignmentEngine`, which advances many pairs'
windows in lockstep over NumPy uint64 lanes and produces identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cigar import Cigar, CigarOp
from repro.core.config import GenASMConfig
from repro.core.genasm_dc import genasm_dc
from repro.core.genasm_tb import genasm_traceback
from repro.core.improvements import reachable_column_start
from repro.core.metrics import AccessCounter

__all__ = ["WindowResult", "align_window", "align_windowed", "WindowedResult"]


@dataclass
class WindowResult:
    """Alignment of one window before commit trimming."""

    ops: List[CigarOp]
    pattern_consumed: int
    text_consumed: int
    errors: int
    rows_computed: int
    stored_bytes: int
    error_budget: int
    retries: int = 0


@dataclass
class WindowedResult:
    """Full windowed alignment of a (pattern, text) pair."""

    cigar: Cigar
    text_consumed: int
    edit_distance: int
    windows: int
    counter: AccessCounter
    peak_window_bytes: int
    total_stored_bytes: int
    rows_computed: int
    stats: Dict[str, float] = field(default_factory=dict)


def align_window(
    pattern_window: str,
    text_window: str,
    config: GenASMConfig,
    *,
    counter: Optional[AccessCounter] = None,
    max_errors: Optional[int] = None,
    commit_columns: Optional[int] = None,
) -> WindowResult:
    """Align one start-anchored window pair with GenASM.

    ``commit_columns`` limits the traceback to the first that many pattern
    columns (the committed, non-overlap part of a sliding window); when it
    is set and the traceback-reachability improvement is enabled, DP
    entries the shortened traceback provably cannot reach are not stored.

    The error budget starts at ``max_errors`` (default ``config.k`` clamped
    to the window length) and is doubled until a solution is found; a
    budget equal to the window length always succeeds, so the retry loop is
    bounded.
    """
    counter = counter if counter is not None else AccessCounter()
    m = len(pattern_window)
    commit = m if commit_columns is None else max(1, min(m, commit_columns))
    if m == 0:
        counter.windows += 1
        return WindowResult([], 0, 0, 0, 0, 0, 0)
    if len(text_window) == 0:
        counter.windows += 1
        ops = [CigarOp.INSERTION] * commit
        return WindowResult(ops, commit, 0, commit, 0, 0, 0)

    rev_pattern = pattern_window[::-1]
    rev_text = text_window[::-1]
    n = len(rev_text)
    budget = max(1, min(m, config.k if max_errors is None else max_errors))
    retries = 0
    while True:
        store_from = 0
        if config.traceback_band:
            store_from = reachable_column_start(n, commit, budget)
        table = genasm_dc(
            rev_pattern,
            rev_text,
            budget,
            entry_compression=config.entry_compression,
            early_termination=config.early_termination,
            traceback_band=config.traceback_band,
            counter=counter,
            word_bits=config.word_bits,
            store_from_column=store_from,
        )
        if table.min_errors is not None:
            break
        if budget >= m:
            raise AssertionError(
                "GenASM window failed with a full error budget (internal error)"
            )
        budget = min(m, budget * 2)
        retries += 1

    ops, text_stop = genasm_traceback(
        table, priority=config.match_priority, max_pattern_columns=commit
    )
    text_consumed = len(text_window) - text_stop
    pattern_consumed = sum(1 for op in ops if op.consumes_pattern)
    errors = sum(1 for op in ops if op.is_edit)
    counter.windows += 1
    return WindowResult(
        ops=ops,
        pattern_consumed=pattern_consumed,
        text_consumed=text_consumed,
        errors=errors,
        rows_computed=table.rows_computed,
        stored_bytes=table.stored_bytes(),
        error_budget=budget,
        retries=retries,
    )


def align_windowed(
    pattern: str,
    text: str,
    config: Optional[GenASMConfig] = None,
    *,
    counter: Optional[AccessCounter] = None,
) -> WindowedResult:
    """Align ``pattern`` against a prefix of ``text`` with windowed GenASM.

    The result is the GenASM heuristic alignment: each window is optimal,
    the concatenation is near-optimal (exact when the alignment fits a
    single window).  The text is consumed starting at position 0; callers
    that align candidate regions position the region so that the expected
    alignment starts at its beginning (as the mapper in
    :mod:`repro.mapping` does).
    """
    config = config if config is not None else GenASMConfig()
    counter = counter if counter is not None else AccessCounter()

    all_ops: List[CigarOp] = []
    p = 0
    t = 0
    windows = 0
    peak_bytes = 0
    total_bytes = 0
    rows_total = 0
    edit_distance = 0

    total_p = len(pattern)
    while p < total_p:
        remaining = total_p - p
        w = min(config.window_size, remaining)
        text_budget = min(len(text) - t, w + config.text_slack)
        window_pattern = pattern[p : p + w]
        window_text = text[t : t + max(0, text_budget)]

        last_window = w >= remaining
        commit = None if last_window else min(config.window_step, w)
        result = align_window(
            window_pattern,
            window_text,
            config,
            counter=counter,
            commit_columns=commit,
        )
        windows += 1
        peak_bytes = max(peak_bytes, result.stored_bytes)
        total_bytes += result.stored_bytes
        rows_total += result.rows_computed

        all_ops.extend(result.ops)
        edit_distance += result.errors
        p += result.pattern_consumed
        t += result.text_consumed

        if result.pattern_consumed == 0:
            # Defensive: guarantee forward progress even with degenerate
            # configurations (cannot normally happen because step >= 1).
            break

    cigar = Cigar.from_ops(all_ops)
    return WindowedResult(
        cigar=cigar,
        text_consumed=t,
        edit_distance=edit_distance,
        windows=windows,
        counter=counter,
        peak_window_bytes=peak_bytes,
        total_stored_bytes=total_bytes,
        rows_computed=rows_total,
        stats={
            "windows": windows,
            "rows_computed": rows_total,
            "peak_window_bytes": peak_bytes,
            "total_stored_bytes": total_bytes,
        },
    )
