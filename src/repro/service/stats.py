"""Per-request latency accounting for the alignment service.

:class:`~repro.pipeline.stats.PipelineStats` is throughput-shaped: it
answers "how many pairs per second did the waves sustain".  A service has a
second axis — *how long did each client wait* — and tail latency per tenant
is what the paper's "millions of users" framing actually constrains, so
:class:`LatencyStats` records a completion-latency sample per request and
reports nearest-rank percentiles (p50/p95/p99) per tenant and overall.

Samples are kept in a bounded per-tenant window (a long-lived service
serves requests forever); the running count/sum/max stay exact over the
whole run, and the percentiles describe the recent window — the same
bounded-window-plus-exact-aggregates contract
:attr:`PipelineStats.wave_lane_counts <repro.pipeline.stats.PipelineStats.wave_lane_counts>`
follows.

:class:`ServiceStats` bundles both axes: the wave-level
:class:`PipelineStats` the accumulator feeds, the per-tenant
:class:`LatencyStats`, request/pair counters (overall and per submitting
tenant, so fairness analysis can compare submitted vs completed), per-
tenant in-flight high-water marks (the fairness-limit evidence), and a
bounded request-completion order trace that the starvation regression
test reads.

Like :class:`PipelineStats`, everything here also publishes into the
unified metrics registry via :meth:`ServiceStats.publish` (names under
``service_*``; see :mod:`repro.telemetry.metrics` for the scheme and
:mod:`repro.telemetry.exporters` for the text exposition).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.pipeline.stats import PipelineStats

__all__ = [
    "DEFAULT_LATENCY_WINDOW",
    "LatencyStats",
    "ServiceStats",
    "percentile",
]

#: Per-tenant latency samples retained for percentile estimation.
DEFAULT_LATENCY_WINDOW = 4096


def percentile(samples, q: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 on an empty input).

    Nearest-rank (the classic "smallest value with at least q% of the mass
    at or below it") rather than interpolation: every reported latency is
    one a request actually experienced, and small windows don't invent
    values between two real tails.
    """
    # Validate q unconditionally: an out-of-range quantile is a caller bug
    # regardless of whether samples happen to be empty right now.
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(max(1, math.ceil(q / 100.0 * len(ordered))), len(ordered))
    return float(ordered[rank - 1])


class LatencyStats:
    """Bounded per-tenant request-latency samples with exact aggregates.

    ``record(tenant, seconds)`` once per completed request;
    ``summary(tenant)`` (or ``as_dict()`` for every tenant plus the
    cross-tenant ``"*"`` view) reports request counts and p50/p95/p99 /
    mean / max latency in milliseconds.
    """

    def __init__(self, *, window: int = DEFAULT_LATENCY_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._samples: Dict[str, Deque[float]] = {}
        self._count: Dict[str, int] = {}
        self._sum: Dict[str, float] = {}
        self._max: Dict[str, float] = {}

    def record(self, tenant: str, seconds: float) -> None:
        """Record one request's submit-to-complete latency."""
        window = self._samples.get(tenant)
        if window is None:
            window = self._samples[tenant] = deque(maxlen=self.window)
            self._count[tenant] = 0
            self._sum[tenant] = 0.0
            self._max[tenant] = 0.0
        window.append(seconds)
        self._count[tenant] += 1
        self._sum[tenant] += seconds
        self._max[tenant] = max(self._max[tenant], seconds)

    def tenants(self) -> List[str]:
        return sorted(self._samples)

    def count(self, tenant: Optional[str] = None) -> int:
        """Requests recorded for ``tenant`` (every tenant when ``None``)."""
        if tenant is not None:
            return self._count.get(tenant, 0)
        return sum(self._count.values())

    def summary(self, tenant: Optional[str] = None) -> Dict[str, float]:
        """Latency summary for one tenant (or across all when ``None``).

        Percentiles come from the bounded recent window; ``requests`` /
        ``mean_ms`` / ``max_ms`` are exact over the whole run.
        """
        if tenant is not None:
            samples: List[float] = list(self._samples.get(tenant, ()))
            count = self._count.get(tenant, 0)
            total = self._sum.get(tenant, 0.0)
            peak = self._max.get(tenant, 0.0)
        else:
            samples = [s for window in self._samples.values() for s in window]
            count = sum(self._count.values())
            total = sum(self._sum.values())
            peak = max(self._max.values(), default=0.0)
        return {
            "requests": count,
            "p50_ms": percentile(samples, 50) * 1e3,
            "p95_ms": percentile(samples, 95) * 1e3,
            "p99_ms": percentile(samples, 99) * 1e3,
            "mean_ms": (total / count * 1e3) if count else 0.0,
            "max_ms": peak * 1e3,
        }

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant summaries plus the cross-tenant ``"*"`` aggregate."""
        out = {tenant: self.summary(tenant) for tenant in self.tenants()}
        out["*"] = self.summary()
        return out


#: Request completions retained in the :attr:`ServiceStats.completion_order`
#: trace (enough for fairness tests; bounded for long-lived services).
_COMPLETION_TRACE = 4096


@dataclass
class ServiceStats:
    """Both axes of one service run: wave throughput and request latency.

    Attributes
    ----------
    pipeline:
        The :class:`PipelineStats` the service's accumulator and align
        stage feed — waves, fill efficiency, flush causes.
    latency:
        Per-tenant request-latency percentiles (:class:`LatencyStats`).
    requests_submitted, requests_completed:
        Requests accepted by :meth:`~repro.service.AlignmentService.submit`
        and requests whose futures resolved.
    pairs_submitted, pairs_admitted, pairs_completed:
        Pair-granular progress: queued by clients, admitted into the
        accumulator by the round-robin sweep, and routed back.
    tenant_requests_submitted, tenant_pairs_submitted:
        The same submission counters broken out per tenant (requests and
        pairs accepted under each tenant label).  Paired with the
        per-tenant completion counts :attr:`latency` tracks, these are
        the submitted-vs-completed comparison fairness analysis needs.
    max_inflight:
        Per-tenant high-water mark of pairs admitted-but-unrouted — the
        evidence the per-tenant fairness limit actually bounds.
    completion_order:
        ``(tenant, request_id)`` in the order futures resolved, bounded to
        the most recent entries (the starvation regression reads this).
    """

    pipeline: PipelineStats = field(default_factory=PipelineStats)
    latency: LatencyStats = field(default_factory=LatencyStats)
    requests_submitted: int = 0
    requests_completed: int = 0
    pairs_submitted: int = 0
    pairs_admitted: int = 0
    pairs_completed: int = 0
    tenant_requests_submitted: Dict[str, int] = field(default_factory=dict)
    tenant_pairs_submitted: Dict[str, int] = field(default_factory=dict)
    max_inflight: Dict[str, int] = field(default_factory=dict)
    completion_order: Deque[Tuple[str, int]] = field(
        default_factory=lambda: deque(maxlen=_COMPLETION_TRACE)
    )

    def record_submit(self, tenant: str, pairs: int) -> None:
        """One request of ``pairs`` pairs accepted under ``tenant``."""
        self.requests_submitted += 1
        self.pairs_submitted += pairs
        self.tenant_requests_submitted[tenant] = (
            self.tenant_requests_submitted.get(tenant, 0) + 1
        )
        self.tenant_pairs_submitted[tenant] = (
            self.tenant_pairs_submitted.get(tenant, 0) + pairs
        )

    def record_admitted(self, tenant: str, inflight: int) -> None:
        """One pair entered the accumulator; ``inflight`` is the tenant's new depth."""
        self.pairs_admitted += 1
        if inflight > self.max_inflight.get(tenant, 0):
            self.max_inflight[tenant] = inflight

    def record_request_done(
        self, tenant: str, request_id: int, seconds: float, pairs: int
    ) -> None:
        self.requests_completed += 1
        self.pairs_completed += pairs
        self.latency.record(tenant, seconds)
        self.completion_order.append((tenant, request_id))

    # ------------------------------------------------------------------ #
    def publish(self, registry) -> None:
        """Publish service counters into a telemetry ``MetricsRegistry``.

        Names live under ``service_*`` (and the embedded wave-level stats
        under ``pipeline_*`` via :meth:`PipelineStats.publish
        <repro.pipeline.stats.PipelineStats.publish>`).  Publishing is a
        snapshot — counters are ``set_total``'d, so re-publishing the same
        stats never double-counts.  See :mod:`repro.telemetry.metrics`.
        """
        for name, value in (
            ("service_requests_submitted_total", self.requests_submitted),
            ("service_requests_completed_total", self.requests_completed),
            ("service_pairs_submitted_total", self.pairs_submitted),
            ("service_pairs_admitted_total", self.pairs_admitted),
            ("service_pairs_completed_total", self.pairs_completed),
        ):
            registry.counter(name).set_total(value)
        for tenant, count in sorted(self.tenant_requests_submitted.items()):
            registry.counter(
                "service_tenant_requests_submitted_total", tenant=tenant
            ).set_total(count)
        for tenant, pairs in sorted(self.tenant_pairs_submitted.items()):
            registry.counter(
                "service_tenant_pairs_submitted_total", tenant=tenant
            ).set_total(pairs)
        for tenant in self.latency.tenants():
            registry.counter(
                "service_tenant_requests_completed_total", tenant=tenant
            ).set_total(self.latency.count(tenant))
        for tenant, peak in sorted(self.max_inflight.items()):
            registry.gauge(
                "service_max_inflight_pairs", tenant=tenant
            ).set(peak)
        for tenant, latency in self.latency.as_dict().items():
            label = {"tenant": tenant}
            for quantile in ("p50", "p95", "p99"):
                registry.gauge(
                    "service_request_latency_ms", quantile=quantile, **label
                ).set(latency[f"{quantile}_ms"])
            registry.gauge(
                "service_request_latency_ms", quantile="mean", **label
            ).set(latency["mean_ms"])
            registry.gauge(
                "service_request_latency_ms", quantile="max", **label
            ).set(latency["max_ms"])
        self.pipeline.publish(registry)

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """Flat report-friendly view (what the E3 experiment rows embed)."""
        return {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "pairs_submitted": self.pairs_submitted,
            "pairs_admitted": self.pairs_admitted,
            "pairs_completed": self.pairs_completed,
            "tenant_submitted": {
                tenant: {
                    "requests": self.tenant_requests_submitted.get(tenant, 0),
                    "pairs": self.tenant_pairs_submitted.get(tenant, 0),
                }
                for tenant in sorted(self.tenant_requests_submitted)
            },
            "max_inflight": dict(self.max_inflight),
            "latency": self.latency.as_dict(),
            "pipeline": self.pipeline.as_dict(),
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (used by the service smoke)."""
        lines = [
            f"requests={self.requests_completed}/{self.requests_submitted} "
            f"pairs={self.pairs_completed}/{self.pairs_submitted} "
            f"waves={self.pipeline.waves} "
            f"fill={self.pipeline.wave_fill_efficiency:.3f} "
            f"flushes={self.pipeline.flushes}"
        ]
        for tenant, summary in sorted(self.latency.as_dict().items()):
            if tenant == "*":
                submitted_part = ""
            else:
                submitted = self.tenant_requests_submitted.get(tenant, 0)
                submitted_part = f"/{submitted}"
            lines.append(
                f"  tenant {tenant}: requests={summary['requests']}"
                f"{submitted_part} "
                f"p50={summary['p50_ms']:.2f}ms p95={summary['p95_ms']:.2f}ms "
                f"p99={summary['p99_ms']:.2f}ms max={summary['max_ms']:.2f}ms"
            )
        return "\n".join(lines)
