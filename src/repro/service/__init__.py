"""Alignment as a service: the multi-client front-end over shared waves.

The subpackage turns the repo's single-caller pipeline into the service
shape the paper's throughput claims assume — many independent clients,
one warm execution core:

* :class:`~repro.service.frontend.AlignmentService` — accept requests,
  coalesce pairs from different tenants into shared lockstep waves, route
  each lane's alignment back to the submitting future, enforce per-tenant
  fairness (round-robin admission, in-flight caps);
* :class:`~repro.service.registry.ReferenceRegistry` — build each
  genome's mapper/index once (keyed by genome *content*), host the shared
  segments once, and hand out executors that attach them;
* :class:`~repro.service.stats.ServiceStats` /
  :class:`~repro.service.stats.LatencyStats` — per-tenant p50/p95/p99
  request latency alongside the wave-level throughput accounting.

Results are byte-identical to offline runs over the same pairs; see
``examples/e3_service_smoke.py`` and ``tests/test_service.py``.
"""

from repro.service.frontend import AlignmentService, ServiceRequest, ServiceWork
from repro.service.registry import ReferenceRegistry, genome_key
from repro.service.stats import (
    DEFAULT_LATENCY_WINDOW,
    LatencyStats,
    ServiceStats,
    percentile,
)

__all__ = [
    "AlignmentService",
    "ServiceRequest",
    "ServiceWork",
    "ReferenceRegistry",
    "genome_key",
    "DEFAULT_LATENCY_WINDOW",
    "LatencyStats",
    "ServiceStats",
    "percentile",
]
