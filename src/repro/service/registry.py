"""Reference registry: build each genome's index once, share it everywhere.

Building a :class:`~repro.mapping.mapper.Mapper` (and hosting its genome +
:class:`~repro.mapping.index.MinimizerIndex` in shared memory) is the
expensive, per-reference part of serving alignment requests.  A service
front-end sees the *same* reference from many independent clients, so the
registry caches those builds keyed by **genome identity** — a digest of the
chromosome names and sequences, not object identity — plus the mapper
parameters that shape the index:

* :meth:`ReferenceRegistry.mapper` — one in-process mapper per
  (genome, parameters), shared by every request that maps reads;
* :meth:`ReferenceRegistry.hosted_layouts` — the genome/index shared
  segments, hosted once and **owned by the registry** (unlinked at
  :meth:`close`, never by borrowing executors);
* :meth:`ReferenceRegistry.executor` — a
  :class:`~repro.parallel.shm.SharedMemoryExecutor` built with
  ``shared_layouts`` pointing at the registry's segments, so multiple
  executors (different worker counts, different requests) attach the same
  physical pages.

``stats`` counts builds versus cache hits, which the registry tests and
the E3 experiment report.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

__all__ = ["ReferenceRegistry", "genome_key"]


def genome_key(genome) -> str:
    """Content digest identifying a reference genome.

    Two genome objects with the same ordered chromosome names and
    sequences share a key regardless of object identity; ``genome`` is
    anything exposing an ordered ``chromosomes`` name→sequence mapping
    (the same contract as :func:`repro.parallel.shm.host_genome`).
    """
    digest = hashlib.sha1()
    for name in genome.chromosomes:
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(genome.chromosomes[name].encode("ascii"))
        digest.update(b"\0")
    return digest.hexdigest()


def _params_key(mapper_params: Dict[str, object]) -> Tuple:
    return tuple(sorted(mapper_params.items()))


class ReferenceRegistry:
    """Cache of mappers, hosted segments and executors per reference.

    The registry owns everything it builds: :meth:`close` (or the
    context-manager exit) shuts down cached executors and unlinks hosted
    segments.  Executors handed out by :meth:`executor` must therefore not
    outlive the registry — the service front-end holds one registry for
    its whole lifetime, which is the intended shape.
    """

    def __init__(self) -> None:
        self._mappers: Dict[Tuple, object] = {}
        self._hosted: Dict[Tuple, Tuple] = {}
        self._executors: Dict[Tuple, object] = {}
        self._closed = False
        #: Build-versus-reuse evidence, per resource kind.
        self.stats = {
            "mapper_builds": 0,
            "mapper_hits": 0,
            "host_builds": 0,
            "host_hits": 0,
            "executor_builds": 0,
            "executor_hits": 0,
        }

    # ------------------------------------------------------------------ #
    def mapper(self, genome, **mapper_params):
        """The shared mapper for ``genome`` under ``mapper_params``.

        Built (and its minimizer index indexed) on first use per
        (genome identity, parameters); every later call with an
        identical-content genome returns the same instance.
        """
        self._check_open()
        key = (genome_key(genome), _params_key(mapper_params))
        mapper = self._mappers.get(key)
        if mapper is None:
            from repro.mapping.mapper import Mapper

            mapper = Mapper(genome, **mapper_params)
            self._mappers[key] = mapper
            self.stats["mapper_builds"] += 1
        else:
            self.stats["mapper_hits"] += 1
        return mapper

    def hosted_layouts(self, genome, **mapper_params):
        """The ``(genome_layout, index_layout)`` shared segments for ``genome``.

        Hosted once per (genome identity, parameters); the registry owns
        the segments and unlinks them at :meth:`close`.  Hand the layouts
        to ``SharedMemoryExecutor(shared_layouts=...)`` so the executor
        attaches instead of hosting its own copies.
        """
        self._check_open()
        key = (genome_key(genome), _params_key(mapper_params))
        hosted = self._hosted.get(key)
        if hosted is None:
            from repro.parallel.shm import host_genome, host_index

            mapper = self.mapper(genome, **mapper_params)
            genome_segment, genome_layout = host_genome(mapper.genome)
            index_segment, index_layout = host_index(mapper.index)
            hosted = (genome_segment, genome_layout, index_segment, index_layout)
            self._hosted[key] = hosted
            self.stats["host_builds"] += 1
        else:
            self.stats["host_hits"] += 1
        return hosted[1], hosted[3]

    def executor(
        self,
        genome,
        *,
        workers: int = 2,
        config=None,
        engine_kwargs: Optional[Dict[str, object]] = None,
        warm: bool = False,
        **mapper_params,
    ):
        """A shared-memory executor attached to the registry's segments.

        Cached per (genome identity, mapper parameters, config, workers,
        engine options); ``warm=True`` spawns and initialises every worker
        before returning.  The executor borrows the registry's hosted
        genome/index segments — closing it never unlinks them.
        """
        self._check_open()
        from repro.core.config import GenASMConfig

        config = config if config is not None else GenASMConfig()
        engine_kwargs = dict(engine_kwargs or {})
        key = (
            genome_key(genome),
            _params_key(mapper_params),
            config,
            workers,
            tuple(sorted(engine_kwargs.items())),
        )
        executor = self._executors.get(key)
        if executor is None:
            from repro.parallel.shm import SharedMemoryExecutor

            executor = SharedMemoryExecutor(
                workers,
                config=config,
                engine_kwargs=engine_kwargs,
                mapper=self.mapper(genome, **mapper_params),
                shared_layouts=self.hosted_layouts(genome, **mapper_params),
            )
            self._executors[key] = executor
            self.stats["executor_builds"] += 1
        else:
            self.stats["executor_hits"] += 1
        if warm:
            executor.warm()
        return executor

    # ------------------------------------------------------------------ #
    def hosted_segment_names(self):
        """Names of every segment the registry hosts (test hook)."""
        return [
            segment.name
            for hosted in self._hosted.values()
            for segment in (hosted[0], hosted[2])
        ]

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("reference registry already closed")

    def close(self) -> None:
        """Shut down cached executors and unlink hosted segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()
        for hosted in self._hosted.values():
            hosted[0].unlink()
            hosted[2].unlink()
        self._hosted.clear()
        self._mappers.clear()

    def __enter__(self) -> "ReferenceRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-exit safety net
        try:
            self.close()
        except Exception:
            pass
