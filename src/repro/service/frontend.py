"""Alignment as a service: many clients, shared waves, fair admission.

The paper's throughput story assumes *aggregate* demand — heavy traffic
from many independent users — yet every other entry point in this repo is
one caller with one read set.  :class:`AlignmentService` is the missing
front-end: clients :meth:`~AlignmentService.submit` batches of
``(pattern, text)`` pairs (or raw reads via
:meth:`~AlignmentService.submit_reads`) and get a
:class:`concurrent.futures.Future`; the service coalesces pairs from
*different* requests into shared lockstep waves, so wave fill — hence
engine efficiency — is driven by aggregate load, not by any single
client's batch size.

Design:

* **Per-request routing.**  Each admitted pair is wrapped in a
  :class:`ServiceWork` carrying its request and position; waves flow
  through the PR-3 :class:`~repro.pipeline.batcher.WaveAccumulator` and
  :class:`~repro.pipeline.alignstage.AlignStage` unchanged (the wrapper
  exposes ``pattern``/``text``), and completed lanes are routed back to
  the submitting request's future — a wave's lanes typically resolve
  several different clients' requests.
* **Per-tenant fairness.**  Admission is a round-robin sweep taking one
  pair per tenant per cycle, and each tenant is capped at
  ``max_inflight_per_tenant`` admitted-but-unrouted pairs, so one huge
  request cannot starve small ones — the starvation regression test
  submits a 32-pair tenant next to a 4-pair tenant and asserts the small
  one completes first.
* **Single consumer.**  One :meth:`pump` drains queues into the
  accumulator, flushes waves, and routes results.  With
  ``autostart=True`` a daemon dispatcher thread pumps continuously; with
  ``autostart=False`` tests (and synchronous callers) call :meth:`pump` /
  :meth:`drain` themselves and, with an injectable ``clock``, get
  deterministic linger-timeout behaviour.
* **Shared references.**  :meth:`submit_reads` maps reads through a
  :class:`~repro.service.registry.ReferenceRegistry`, so the
  minimizer-index build is paid once per genome identity across all
  clients; with a :class:`~repro.parallel.shm.SharedMemoryExecutor` from
  the same registry, workers attach one hosted genome/index.

Every alignment stays byte-identical to an offline
:meth:`~repro.parallel.executor.BatchExecutor.run_alignments` call over
the same pairs — coalescing moves scheduling, never results — which the
service tests and ``examples/e3_service_smoke.py`` assert.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.config import GenASMConfig
from repro.pipeline.alignstage import AlignStage
from repro.pipeline.batcher import WaveAccumulator
from repro.pipeline.stats import PipelineStats
from repro.service.registry import ReferenceRegistry
from repro.service.stats import ServiceStats
from repro.telemetry.trace import get_tracer

__all__ = ["AlignmentService", "ServiceRequest", "ServiceWork"]


class ServiceRequest:
    """One client submission: its pairs, its future, its progress."""

    __slots__ = (
        "id",
        "tenant",
        "pairs",
        "future",
        "submitted_at",
        "trace_start",
        "remaining",
        "results",
    )

    def __init__(
        self,
        request_id: int,
        tenant: str,
        pairs: List[Tuple[str, str]],
        submitted_at: float,
        trace_start: float = 0.0,
    ) -> None:
        self.id = request_id
        self.tenant = tenant
        self.pairs = pairs
        self.future: Future = Future()
        # Mark running so clients cannot cancel a request whose pairs may
        # already ride in a shared wave with other tenants' work.
        self.future.set_running_or_notify_cancel()
        self.submitted_at = submitted_at
        #: Submit time on the *tracer's* clock (``submitted_at`` is on the
        #: service clock) — the routing side closes the request span with it.
        self.trace_start = trace_start
        self.remaining = len(pairs)
        self.results: List[object] = [None] * len(pairs)


class ServiceWork:
    """One pair of one request, shaped like the pipeline's wave items.

    Exposes ``pattern``/``text`` so :class:`WaveAccumulator` (work key)
    and :class:`AlignStage` (dispatch) consume it unchanged, plus the
    back-pointer the service routes the lane's alignment home with.
    """

    __slots__ = ("request", "index", "pattern", "text")

    def __init__(self, request: ServiceRequest, index: int, pattern: str, text: str) -> None:
        self.request = request
        self.index = index
        self.pattern = pattern
        self.text = text


class AlignmentService:
    """Thread-pool alignment-as-a-service front-end over shared waves.

    Parameters
    ----------
    config:
        Aligner configuration shared by every request (defaults to the
        paper's improved GenASM).
    wave_size, max_pending, linger_seconds, scheduling:
        Wave-coalescing policy, forwarded to the
        :class:`WaveAccumulator`.  ``linger_seconds`` bounds how long the
        first pair of a partial wave waits for co-tenants before the wave
        flushes anyway; ``None`` disables the timeout (the service then
        flushes partial waves only when no admissible work remains).
    max_inflight_per_tenant:
        Fairness cap: pairs one tenant may have admitted-but-unrouted at
        once.  Defaults to ``2 * wave_size``; ``0`` disables the limit.
    workers, align_inflight, executor:
        Alignment execution, forwarded to :class:`AlignStage` — in-process
        (``workers=1``), a spawn pool, or a shared-memory executor (whose
        config must match).  A caller-provided executor stays caller-owned.
    registry:
        Optional :class:`ReferenceRegistry` for :meth:`submit_reads`; the
        service builds (and then owns) one on demand when not given.
    clock:
        Monotonic time source for linger expiry and request latency
        (injectable for deterministic tests).
    autostart:
        Start the daemon dispatcher thread at construction.  With
        ``False`` the caller pumps: :meth:`pump`, :meth:`drain`,
        :meth:`close` drive everything synchronously and deterministically.
    tracer:
        Optional :class:`~repro.telemetry.trace.Tracer`, shared with the
        accumulator and align stage.  Each submit records a
        ``service.submit`` instant; each completed request records one
        ``service.request`` span (tenant, request id, pairs) spanning
        submit to future resolution.
    name:
        Engine name (appears in alignment metadata).
    """

    def __init__(
        self,
        config: Optional[GenASMConfig] = None,
        *,
        wave_size: int = 64,
        max_pending: int = 256,
        linger_seconds: Optional[float] = 0.01,
        scheduling: str = "sorted",
        merge_below: Optional[int] = None,
        max_inflight_per_tenant: Optional[int] = None,
        workers: int = 1,
        align_inflight: Optional[int] = None,
        executor=None,
        registry: Optional[ReferenceRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        autostart: bool = True,
        tracer=None,
        name: str = "genasm-service",
    ) -> None:
        if max_inflight_per_tenant is not None and max_inflight_per_tenant < 0:
            raise ValueError("max_inflight_per_tenant must be non-negative")
        self.max_inflight_per_tenant = (
            2 * wave_size if max_inflight_per_tenant is None else max_inflight_per_tenant
        )
        self.linger_seconds = linger_seconds
        self.stats = ServiceStats(pipeline=PipelineStats(wave_size=wave_size))
        self.tracer = get_tracer(tracer)
        self._align = AlignStage(
            config,
            workers=workers,
            inflight=align_inflight,
            executor=executor,
            scheduling=scheduling,
            name=name,
            tracer=self.tracer,
        )
        engine = self._align.engine
        self._accumulator = WaveAccumulator(
            wave_size=wave_size,
            max_pending=max_pending,
            linger_seconds=linger_seconds,
            scheduling=scheduling,
            merge_below=merge_below,
            work_key=lambda work: float(engine.expected_work(len(work.pattern))),
            clock=clock,
            stats=self.stats.pipeline,
            tracer=self.tracer,
        )
        self._clock = clock
        self._registry = registry
        self._owns_registry = False
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queues: Dict[str, Deque[ServiceWork]] = {}
        self._ring: List[str] = []  # tenants with queued work, admission order
        self._inflight: Dict[str, int] = {}
        self._ids = itertools.count()
        self._open_requests = 0
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    @property
    def config(self) -> GenASMConfig:
        return self._align.config

    @property
    def registry(self) -> ReferenceRegistry:
        """The reference registry (built and owned on first use)."""
        if self._registry is None:
            self._registry = ReferenceRegistry()
            self._owns_registry = True
        return self._registry

    def start(self) -> None:
        """Start the daemon dispatcher thread (idempotent)."""
        if self._thread is not None:
            return
        if self._closed:
            raise RuntimeError("service already closed")
        self._thread = threading.Thread(
            target=self._loop, name="alignment-service-dispatch", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(
        self, pairs: Sequence[Tuple[str, str]], *, tenant: str = "default"
    ) -> Future:
        """Queue one request of (pattern, text) pairs; returns its future.

        The future resolves to the request's alignments in **input pair
        order** (each pair's result is independent of which shared wave
        carried it, so results are byte-identical to an offline run over
        the same pairs).  Thread-safe: any number of client threads may
        submit concurrently, under any tenant label.
        """
        pairs = [(pattern, text) for pattern, text in pairs]
        with self._wake:
            if self._closed:
                raise RuntimeError("service already closed")
            request = ServiceRequest(
                next(self._ids), tenant, pairs, self._clock(), self.tracer.now()
            )
            self.stats.record_submit(tenant, len(pairs))
            if self.tracer.enabled:
                self.tracer.instant(
                    "service.submit",
                    tenant=tenant,
                    request_id=request.id,
                    pairs=len(pairs),
                )
            if pairs:
                queue = self._queues.get(tenant)
                if queue is None:
                    queue = self._queues[tenant] = deque()
                for index, (pattern, text) in enumerate(pairs):
                    queue.append(ServiceWork(request, index, pattern, text))
                if tenant not in self._ring:
                    self._ring.append(tenant)
                self._open_requests += 1
                self._wake.notify_all()
        if not pairs:
            self.stats.record_request_done(tenant, request.id, 0.0, 0)
            request.future.set_result([])
        return request.future

    def submit_reads(
        self,
        reads: Sequence[Tuple[str, str]],
        *,
        genome,
        tenant: str = "default",
        mapper_params: Optional[Dict[str, object]] = None,
    ) -> Future:
        """Map ``(name, sequence)`` reads and queue their candidate pairs.

        Mapping runs in the calling thread against the registry's cached
        mapper for ``genome`` (built once per genome identity across all
        clients).  The future resolves to ``(candidate, alignment)`` pairs
        in mapper order.
        """
        mapper = self.registry.mapper(genome, **(mapper_params or {}))
        candidates: List[object] = []
        pairs: List[Tuple[str, str]] = []
        for name, sequence in reads:
            for candidate in mapper.map_sequence(name, sequence):
                pattern, text = mapper.candidate_region_sequence(candidate, sequence)
                candidates.append(candidate)
                pairs.append((pattern, text))
        inner = self.submit(pairs, tenant=tenant)
        outer: Future = Future()
        outer.set_running_or_notify_cancel()

        def _resolve(done: Future) -> None:
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
            else:
                outer.set_result(list(zip(candidates, done.result())))

        inner.add_done_callback(_resolve)
        return outer

    # ------------------------------------------------------------------ #
    # The single consumer
    # ------------------------------------------------------------------ #
    def pump(self, *, block: bool = False) -> bool:
        """One dispatch cycle: admit, flush, submit, collect, route.

        The single-consumer entry point — the dispatcher thread's loop
        body, or called directly in ``autostart=False`` mode.  Returns
        whether any progress was made (pairs admitted, waves dispatched,
        or results routed).  ``block=True`` waits for every in-flight
        wave before returning (the drain path).
        """
        with self._wake:
            admitted = self._admit_locked()
        waves: List[List[ServiceWork]] = []
        for work in admitted:
            waves.extend(self._accumulator.push(work))
        waves.extend(self._accumulator.poll())
        if not admitted and not waves and len(self._accumulator):
            # Nothing new joined and the linger policy didn't fire.  When
            # no admissible work could ever fill this partial wave (and the
            # align stage is idle, so nothing in flight will free tenant
            # capacity either), holding it any longer is a deadlock, not
            # patience: flush it.  With a linger timeout configured, leave
            # liveness to the timeout so late arrivals can still join.
            with self._wake:
                stuck = (
                    (self._closed or self.linger_seconds is None)
                    and self._align.pending_waves == 0
                    and not self._admissible_locked()
                )
                reason = "final" if self._closed else "idle"
            if stuck:
                waves.extend(self._accumulator.flush(reason=reason))
        for wave in waves:
            self._align.submit(wave)
        completed = self._align.collect(block=block)
        if completed:
            self._route(completed)
        return bool(admitted or waves or completed)

    def _admit_locked(self) -> List[ServiceWork]:
        """Round-robin sweep: one pair per tenant per cycle, capped.

        Tenants at their in-flight limit are skipped (their queued work
        stays put until routing frees capacity); tenants with emptied
        queues leave the ring until their next submit.  At most
        ``max_pending`` pairs are admitted per pump so one cycle never
        outruns the accumulator's own backpressure bound.
        """
        admitted: List[ServiceWork] = []
        budget = self._accumulator.max_pending
        limit = self.max_inflight_per_tenant
        while budget > 0 and self._ring:
            progress = False
            for tenant in list(self._ring):
                if budget <= 0:
                    break
                queue = self._queues.get(tenant)
                if not queue:
                    self._ring.remove(tenant)
                    continue
                inflight = self._inflight.get(tenant, 0)
                if limit and inflight >= limit:
                    continue
                work = queue.popleft()
                self._inflight[tenant] = inflight + 1
                self.stats.record_admitted(tenant, inflight + 1)
                admitted.append(work)
                budget -= 1
                progress = True
            if not progress:
                break
        return admitted

    def _admissible_locked(self) -> bool:
        """Whether any queued pair could be admitted right now."""
        limit = self.max_inflight_per_tenant
        return any(
            queue and not (limit and self._inflight.get(tenant, 0) >= limit)
            for tenant, queue in self._queues.items()
        )

    def _route(self, completed: List[Tuple[List[ServiceWork], List[object]]]) -> None:
        """Hand each finished lane back to its request; resolve futures."""
        now = self._clock()
        finished: List[ServiceRequest] = []
        with self._wake:
            for wave, alignments in completed:
                for work, alignment in zip(wave, alignments):
                    self.stats.pipeline.record_traceback(alignment.metadata)
                    request = work.request
                    request.results[work.index] = alignment
                    request.remaining -= 1
                    self._inflight[request.tenant] -= 1
                    if request.remaining == 0:
                        finished.append(request)
                        self._open_requests -= 1
            if finished:
                self._wake.notify_all()
        for request in finished:
            self.stats.record_request_done(
                request.tenant, request.id, now - request.submitted_at, len(request.pairs)
            )
            if self.tracer.enabled:
                self.tracer.record_span(
                    "service.request",
                    start=request.trace_start,
                    end=self.tracer.now(),
                    tenant=request.tenant,
                    request_id=request.id,
                    pairs=len(request.pairs),
                )
            request.future.set_result(request.results)

    # ------------------------------------------------------------------ #
    # Dispatcher thread
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while True:
            progress = self.pump()
            if progress:
                continue
            with self._wake:
                if self._closed and self._open_requests == 0:
                    return
                self._wake.wait(self._wait_timeout_locked())

    def _wait_timeout_locked(self) -> float:
        """Idle sleep sized to the nearest thing worth waking for."""
        if self._align.pending_waves:
            return 0.002  # results land soon; poll tightly
        age = self._accumulator.oldest_age()
        if age is not None and self.linger_seconds is not None:
            # Wake just as the partial wave's linger bound expires.
            return max(0.001, self.linger_seconds - age)
        return 0.05

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Block until every accepted request's future has resolved."""
        if self._thread is not None:
            with self._wake:
                self._wake.wait_for(lambda: self._open_requests == 0)
            return
        while True:
            with self._wake:
                if self._open_requests == 0:
                    return
            if not self.pump(block=True):
                # Idle with a lingering partial wave (real clock, timeout
                # not yet expired): a drain wants it now.
                waves = self._accumulator.flush(reason="idle")
                for wave in waves:
                    self._align.submit(wave)
                if not waves:
                    raise RuntimeError(
                        "service drain stalled with unresolved requests"
                    )

    def close(self) -> None:
        """Stop accepting, drain everything, shut execution down (idempotent).

        A caller-provided ``executor`` or ``registry`` stays caller-owned
        and running; resources the service built itself are torn down.
        """
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        while True:
            with self._wake:
                if self._open_requests == 0:
                    break
            if not self.pump(block=True):
                raise RuntimeError("service close stalled with unresolved requests")
        self._align.close()
        if self._owns_registry and self._registry is not None:
            self._registry.close()
            self._registry = None
            self._owns_registry = False

    def __enter__(self) -> "AlignmentService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
