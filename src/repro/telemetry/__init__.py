"""Unified telemetry: trace spans, a metrics registry, exporters, bench.

The paper's claims are *measured* claims — DP-work, memory-access and
wall-time deltas — and every remaining ROADMAP direction (GPU backend,
multi-core validation, numba-vs-numpy) needs trustworthy, comparable,
persisted measurements.  This package is the one seam they plug into:

* :mod:`~repro.telemetry.trace` — :class:`Tracer` spans and instant
  events with monotonic injectable clocks, a near-zero-overhead
  :data:`NULL_TRACER` when disabled, and cross-process absorption of
  worker-side spans (:mod:`repro.parallel.shm` ships them back with wave
  results, so one timeline covers driver stages and worker waves);
* :mod:`~repro.telemetry.metrics` — :class:`MetricsRegistry` of named,
  labelled counters/gauges/histograms that
  :meth:`PipelineStats.publish <repro.pipeline.stats.PipelineStats.publish>`,
  :meth:`ServiceStats.publish <repro.service.stats.ServiceStats.publish>`
  and :meth:`BatchAlignmentEngine.publish_metrics
  <repro.batch.engine.BatchAlignmentEngine.publish_metrics>` feed;
* :mod:`~repro.telemetry.exporters` — Chrome-trace JSON
  (``chrome://tracing`` / Perfetto), Prometheus text exposition, and a
  human :func:`~repro.telemetry.exporters.summary`;
* :mod:`~repro.telemetry.bench` — the perf-trajectory recorder over
  ``BENCH_*.json``: schema validation, provenance-stamped appends
  (git SHA + config fingerprint), trailing-window trend deltas, and the
  regression-floor check the smokes gate on.

Quickstart::

    from repro.telemetry import MetricsRegistry, Tracer, write_chrome_trace

    tracer = Tracer()
    pipeline = StreamingPipeline(mapper, tracer=tracer)
    results = pipeline.run_all(reads)
    write_chrome_trace("pipeline_trace.json", tracer)

    registry = MetricsRegistry()
    pipeline.stats.publish(registry)
    print(prometheus_text(registry))
"""

from repro.telemetry.bench import (
    BenchRecorder,
    BenchSchemaError,
    config_fingerprint,
    git_sha,
    validate_bench,
)
from repro.telemetry.exporters import (
    chrome_trace,
    prometheus_text,
    summary,
    write_chrome_trace,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)
from repro.telemetry.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
)

__all__ = [
    "BenchRecorder",
    "BenchSchemaError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "config_fingerprint",
    "get_tracer",
    "git_sha",
    "metric_key",
    "prometheus_text",
    "summary",
    "validate_bench",
    "write_chrome_trace",
]
