"""Trace layer: lightweight spans and instant events with injectable clocks.

The repro's performance story is built from *timelines* — which stage the
driver was blocked on, which wave a worker was aligning, how long a
tenant's request sat between submit and route — but until this module the
only timing surface was aggregate counters
(:class:`~repro.pipeline.stats.PipelineStats.stage_seconds`).  A
:class:`Tracer` records those timelines as **spans** (named intervals with
monotonic start/end timestamps and small attribute dicts) and **instant
events** (named points, e.g. a wave flush), buffered thread-safely and
exported through :mod:`repro.telemetry.exporters` as Chrome-trace JSON
that ``chrome://tracing`` / Perfetto load directly.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Every instrumented call site
   does ``with tracer.span("stage.align"):`` unconditionally; when the
   tracer is the module-level :data:`NULL_TRACER` (the default everywhere)
   that is one method call returning a shared no-op context manager — no
   allocation, no clock read, no branch at the call site.  The E1v smoke's
   <2 % disabled-overhead budget is met by keeping the hot engine loops
   untraced entirely (the engine publishes *metrics*, not spans) and the
   pipeline/service instrumentation behind this no-op path.
2. **Cross-process timelines.**  Worker processes build their own
   :class:`Tracer` (:mod:`repro.parallel.shm` enables it via the worker
   bundle), record wave spans, and :meth:`Tracer.drain` them into the
   picklable :class:`SpanRecord` list shipped back alongside the wave's
   alignments; the driver-side tracer :meth:`Tracer.absorb`\\ s them so one
   export shows driver stages and worker waves on one timeline (separate
   ``pid`` tracks).
3. **Injectable clock.**  Defaults to :func:`time.perf_counter`; tests
   inject a fake clock for deterministic span durations.  Spans recorded
   with explicit timestamps (:meth:`Tracer.record_span`) must use the same
   clock domain — :meth:`Tracer.now` exposes it.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
]

#: Buffered events retained per tracer before the oldest are dropped (a
#: long-lived service traces forever; the bound keeps memory flat, and
#: :attr:`Tracer.dropped` makes any truncation observable).
DEFAULT_BUFFER_LIMIT = 200_000


@dataclass(frozen=True)
class SpanRecord:
    """One finished span or instant event (picklable, clock-domain seconds).

    ``kind`` is ``"span"`` (an interval — ``end >= start``) or
    ``"instant"`` (a point — ``end == start``).  ``pid``/``tid`` identify
    the recording process and thread so multi-process timelines render as
    separate tracks; ``attrs`` carries small JSON-able attributes (wave
    ids, lane counts, tenants, flush causes).
    """

    name: str
    start: float
    end: float
    pid: int
    tid: int
    kind: str = "span"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _ActiveSpan:
    """Context manager for one in-flight span (append-on-exit)."""

    __slots__ = ("_tracer", "name", "attrs", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self.start = self._tracer.clock()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        tracer._append(
            SpanRecord(
                name=self.name,
                start=self.start,
                end=tracer.clock(),
                pid=tracer.pid,
                tid=threading.get_ident(),
                kind="span",
                attrs=self.attrs,
            )
        )


class Tracer:
    """Thread-safe buffering recorder of spans and instant events.

    Parameters
    ----------
    clock:
        Monotonic time source shared by every span this tracer records
        (injectable for deterministic tests).  Explicit-timestamp APIs
        (:meth:`record_span`) interpret their arguments in this clock's
        domain.
    buffer_limit:
        Events retained; once full, the *oldest* events are dropped and
        :attr:`dropped` counts them.
    process_name:
        Human label for this process's track in exported timelines.
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        process_name: Optional[str] = None,
    ) -> None:
        if buffer_limit < 1:
            raise ValueError("buffer_limit must be at least 1")
        self.clock = clock
        self.buffer_limit = buffer_limit
        self.pid = os.getpid()
        self.process_name = (
            process_name if process_name is not None else f"pid-{self.pid}"
        )
        #: process_name per pid, seeded with this tracer's own and extended
        #: by every absorb() — the exporter labels tracks from this.
        self.process_names: Dict[int, str] = {self.pid: self.process_name}
        #: events dropped to the buffer bound (0 in healthy runs)
        self.dropped = 0
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def now(self) -> float:
        """Current time on this tracer's clock (for explicit-span callers)."""
        return self.clock()

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        """Context manager recording one span around the enclosed block."""
        return _ActiveSpan(self, name, attrs)

    def instant(self, name: str, **attrs: object) -> None:
        """Record one point event at the current time."""
        now = self.clock()
        self._append(
            SpanRecord(
                name=name,
                start=now,
                end=now,
                pid=self.pid,
                tid=threading.get_ident(),
                kind="instant",
                attrs=attrs,
            )
        )

    def record_span(
        self, name: str, *, start: float, end: float, **attrs: object
    ) -> None:
        """Record a span with explicit timestamps (this tracer's clock).

        For intervals that cannot wrap a ``with`` block — a service
        request's submit-to-complete life crosses threads, so the routing
        side records it from the request's stamped start.
        """
        self._append(
            SpanRecord(
                name=name,
                start=start,
                end=end,
                pid=self.pid,
                tid=threading.get_ident(),
                kind="span",
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------ #
    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
            if len(self._records) > self.buffer_limit:
                overflow = len(self._records) - self.buffer_limit
                del self._records[:overflow]
                self.dropped += overflow

    def absorb(self, records: Iterable[SpanRecord], *, process_name: Optional[str] = None) -> None:
        """Merge records drained from another tracer (e.g. a worker process).

        Worker spans keep their own ``pid``/``tid``, so they render as
        separate tracks of the same timeline; ``process_name`` labels
        those tracks (one name per distinct pid is enough).
        """
        records = list(records)
        with self._lock:
            for record in records:
                if process_name is not None and record.pid not in self.process_names:
                    self.process_names[record.pid] = process_name
                self._records.append(record)
            if len(self._records) > self.buffer_limit:
                overflow = len(self._records) - self.buffer_limit
                del self._records[:overflow]
                self.dropped += overflow

    def records(self) -> List[SpanRecord]:
        """Snapshot of every buffered event (buffer retained)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[SpanRecord]:
        """Pop and return every buffered event (the worker-side handoff)."""
        with self._lock:
            records, self._records = self._records, []
            return records

    def clear(self) -> None:
        with self._lock:
            self._records = []
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class _NullSpan:
    """Shared no-op context manager (the disabled-tracing hot path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op :class:`Tracer` twin: every call is a constant-time no-op.

    Instrumented code never branches on "is tracing on" — it calls the
    same API on whichever tracer it was given, and this class makes the
    disabled path nearly free (``span()`` returns one shared object; no
    clock reads, no allocation, nothing buffered).
    """

    enabled = False
    pid = 0
    process_name = "null"
    dropped = 0

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs: object) -> None:
        return None

    def record_span(self, name: str, *, start: float, end: float, **attrs: object) -> None:
        return None

    def absorb(self, records, *, process_name: Optional[str] = None) -> None:
        return None

    def records(self) -> List[SpanRecord]:
        return []

    def drain(self) -> List[SpanRecord]:
        return []

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer every instrumented component defaults to.
NULL_TRACER = NullTracer()


def get_tracer(tracer: Optional[object]) -> object:
    """Normalise an optional tracer argument (``None`` → :data:`NULL_TRACER`)."""
    return tracer if tracer is not None else NULL_TRACER
