"""Exporters: Chrome-trace JSON, Prometheus text exposition, human summary.

Three read-side views over the telemetry layer:

* :func:`chrome_trace` / :func:`write_chrome_trace` — convert a tracer's
  :class:`~repro.telemetry.trace.SpanRecord` buffer into the Chrome Trace
  Event Format (the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly).  Spans
  become complete (``"ph": "X"``) events, instants become ``"ph": "i"``;
  multi-process runs render as separate ``pid`` tracks with
  process-name metadata rows.
* :func:`prometheus_text` — the text exposition format of a
  :class:`~repro.telemetry.metrics.MetricsRegistry` (``# HELP``/``# TYPE``
  headers, ``name{labels} value`` samples, cumulative histogram buckets),
  scrape-able or just diff-able in CI logs.
* :func:`summary` — a sorted human-readable dump of the same registry for
  smoke output.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import SpanRecord, Tracer

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "summary",
    "write_chrome_trace",
]


def _coerce_records(source: Union[Tracer, Iterable[SpanRecord]]):
    if hasattr(source, "records"):
        return source.records(), dict(getattr(source, "process_names", {}))
    return list(source), {}


def chrome_trace(
    source: Union[Tracer, Iterable[SpanRecord]],
    *,
    process_names: Optional[Dict[int, str]] = None,
) -> Dict[str, object]:
    """Build a Chrome Trace Event Format document from recorded events.

    ``source`` is a :class:`Tracer` (its buffer is snapshotted, and its
    ``process_names`` label the pid tracks) or a bare record iterable.
    Timestamps are rebased to the earliest event and expressed in
    microseconds, as the format expects; attribute dicts ride in ``args``.
    """
    records, names = _coerce_records(source)
    if process_names:
        names.update(process_names)
    events: List[Dict[str, object]] = []
    origin = min((record.start for record in records), default=0.0)
    for pid in sorted({record.pid for record in records}):
        label = names.get(pid, f"pid-{pid}")
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for record in records:
        event: Dict[str, object] = {
            "name": record.name,
            "cat": "repro",
            "pid": record.pid,
            "tid": record.tid,
            "ts": (record.start - origin) * 1e6,
            "args": dict(record.attrs),
        }
        if record.kind == "instant":
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = max(0.0, record.duration) * 1e6
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path],
    source: Union[Tracer, Iterable[SpanRecord]],
    *,
    process_names: Optional[Dict[int, str]] = None,
) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    document = chrome_trace(source, process_names=process_names)
    path.write_text(json.dumps(document, indent=None, separators=(",", ":")) + "\n")
    return path


# --------------------------------------------------------------------------- #
def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers bare, floats repr'd."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_text(labels: Dict[str, object], extra: Sequence = ()) -> str:
    items = [(k, labels[k]) for k in sorted(labels)] + list(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    families = registry.families()
    lines: List[str] = []
    seen_family = set()
    for metric in registry.metrics():
        if metric.name not in seen_family:
            seen_family.add(metric.name)
            metric_type, help_text = families[metric.name]
            if help_text:
                lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric_type}")
        if metric.metric_type == "histogram":
            value = metric.value()
            cumulative = 0
            for bound, running in value["buckets"]:
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_label_text(metric.labels, [('le', _format_value(bound))])}"
                    f" {running}"
                )
                cumulative = running
            lines.append(
                f"{metric.name}_bucket"
                f"{_label_text(metric.labels, [('le', '+Inf')])} {value['count']}"
            )
            lines.append(
                f"{metric.name}_sum{_label_text(metric.labels)} "
                f"{_format_value(value['sum'])}"
            )
            lines.append(
                f"{metric.name}_count{_label_text(metric.labels)} {value['count']}"
            )
        else:
            lines.append(
                f"{metric.name}{_label_text(metric.labels)} "
                f"{_format_value(metric.value())}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def summary(registry: MetricsRegistry) -> str:
    """Sorted human-readable one-metric-per-line dump of a registry."""
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.metric_type == "histogram":
            value = metric.value()
            count = value["count"]
            mean = (value["sum"] / count) if count else 0.0
            lines.append(f"{metric.key}  count={count} mean={mean:.3f}")
        else:
            lines.append(f"{metric.key}  {_format_value(metric.value())}")
    return "\n".join(lines)
