"""Perf-trajectory recorder: validate, append and trend ``BENCH_*.json``.

``BENCH_pipeline.json`` is the repo's checked-in performance memory: the
smokes append measurement rows so speed is tracked *over time*, not just
gated one-off per run.  Until this module every smoke hand-rolled the
same load / append / truncate / dump sequence and reimplemented the
regression floor check, and nothing validated the file's shape — a
malformed edit surfaced only as a smoke crash much later.

:class:`BenchRecorder` owns that loop:

* **Schema validation** (:func:`validate_bench`) — the file must be a
  JSON object whose ``*history`` keys hold lists of flat row objects,
  each with an ISO-ish ``date`` string and scalar fields only;
  ``regression_threshold`` and ``baseline.ratio`` are checked when
  present.  Validation is deliberately tolerant of *extra* keys so the
  trajectory can grow new sections without schema churn.
* **Provenance-stamped appends** (:meth:`BenchRecorder.append`) — every
  row gets a ``date``, the current ``git_sha`` and, when a config object
  is supplied, a short ``config_fingerprint``
  (:func:`config_fingerprint`), so any history row can be traced back to
  the exact code and configuration that produced it.  Histories stay
  bounded (``limit`` newest rows kept).
* **Trend deltas** (:meth:`BenchRecorder.trend`) — the latest row's
  numeric field compared against the trailing-window mean, the quantity
  ROADMAP's "persistent perf trajectory" item asks for.
* **The regression check** (:meth:`BenchRecorder.regression_floor` /
  :meth:`BenchRecorder.check_ratio`) — the
  ``ratio >= regression_threshold * baseline.ratio`` gate the
  shared-memory smoke previously reimplemented inline.

Run ``python -m repro.telemetry.bench [path]`` to validate a bench file
and print its trajectories (CI's ``bench-schema`` step; exits non-zero on
schema violations).
"""

from __future__ import annotations

import hashlib
import json
import re
import subprocess
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "BenchRecorder",
    "BenchSchemaError",
    "config_fingerprint",
    "git_sha",
    "validate_bench",
]

#: Rows retained per history by default (matches the smokes' historical cap).
DEFAULT_HISTORY_LIMIT = 50

#: ``date`` rows must at least lead with an ISO date (the smokes write
#: ``%Y-%m-%dT%H:%M:%S``; a bare date is accepted for baselines).
_DATE_PATTERN = re.compile(r"^\d{4}-\d{2}-\d{2}([T ].*)?$")

_SCALAR = (str, int, float, bool, type(None))


class BenchSchemaError(ValueError):
    """A bench file violated the trajectory schema; ``problems`` lists how."""

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__(
            "bench file failed schema validation:\n  - " + "\n  - ".join(problems)
        )


def _check_row(path: str, row: object, problems: List[str]) -> None:
    if not isinstance(row, dict):
        problems.append(f"{path}: history row must be an object, got {type(row).__name__}")
        return
    date = row.get("date")
    if not isinstance(date, str) or not _DATE_PATTERN.match(date):
        problems.append(f"{path}: row needs an ISO 'date' string, got {date!r}")
    for key, value in row.items():
        if not isinstance(value, _SCALAR):
            problems.append(
                f"{path}.{key}: history fields must be scalars, got {type(value).__name__}"
            )


def validate_bench(data: object) -> None:
    """Raise :class:`BenchSchemaError` unless ``data`` fits the bench schema.

    Checks, per section:

    * top level must be a JSON object;
    * every key ending in ``history`` must hold a list of flat row
      objects, each with an ISO-ish ``date`` and scalar-only fields;
    * ``regression_threshold`` (when present, anywhere an object carries
      it) must be a number in ``(0, 1]``;
    * any ``baseline`` object must carry a numeric ``ratio`` or other
      scalar fields only.

    Unknown keys are allowed everywhere — the trajectory grows new
    sections (service, traceback, future GPU/numba histories) without
    schema edits.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        raise BenchSchemaError(
            [f"top level must be an object, got {type(data).__name__}"]
        )

    def walk(path: str, node: object) -> None:
        if not isinstance(node, dict):
            return
        for key, value in node.items():
            here = f"{path}.{key}" if path else key
            if key.endswith("history"):
                if not isinstance(value, list):
                    problems.append(f"{here}: must be a list of rows")
                    continue
                for index, row in enumerate(value):
                    _check_row(f"{here}[{index}]", row, problems)
            elif key == "regression_threshold":
                if not isinstance(value, (int, float)) or isinstance(value, bool) or not (
                    0 < value <= 1
                ):
                    problems.append(
                        f"{here}: must be a number in (0, 1], got {value!r}"
                    )
            elif key == "baseline":
                if not isinstance(value, dict):
                    problems.append(f"{here}: must be an object")
                else:
                    ratio = value.get("ratio")
                    if ratio is not None and (
                        not isinstance(ratio, (int, float)) or isinstance(ratio, bool)
                    ):
                        problems.append(f"{here}.ratio: must be a number, got {ratio!r}")
            elif isinstance(value, dict):
                walk(here, value)

    walk("", data)
    if problems:
        raise BenchSchemaError(problems)


# --------------------------------------------------------------------------- #
def git_sha(root: Optional[Union[str, Path]] = None) -> str:
    """Short git SHA of ``root`` (``"unknown"`` outside a repo / without git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def config_fingerprint(config: object) -> str:
    """Short stable digest of a configuration object.

    Accepts dataclasses (e.g. :class:`~repro.core.config.GenASMConfig`),
    plain dicts, or anything with a ``__dict__``; the fingerprint is the
    first 12 hex chars of the SHA-1 of the sorted-key JSON rendering, so
    two rows fingerprint equal iff every config field matched.
    """
    if is_dataclass(config) and not isinstance(config, type):
        payload = asdict(config)
    elif isinstance(config, dict):
        payload = config
    elif hasattr(config, "__dict__"):
        payload = {k: v for k, v in vars(config).items() if not k.startswith("_")}
    else:
        payload = {"value": repr(config)}
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:12]


class BenchRecorder:
    """Load/validate/append/save loop over one ``BENCH_*.json`` trajectory.

    ``BenchRecorder(path)`` loads and validates immediately; mutate via
    :meth:`append` and persist with :meth:`save` (which re-validates, so
    a recorder can never write a file the CI ``bench-schema`` step would
    reject).  ``data`` is the live dict for read access (baselines,
    workload sections).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.data: Dict[str, object] = json.loads(self.path.read_text())
        validate_bench(self.data)

    # ------------------------------------------------------------------ #
    def append(
        self,
        history_key: str,
        row: Dict[str, object],
        *,
        config: Optional[object] = None,
        limit: int = DEFAULT_HISTORY_LIMIT,
    ) -> Dict[str, object]:
        """Append one provenance-stamped row to ``history_key``.

        The stored row is ``row`` plus ``date`` (now; kept if the caller
        already set one), ``git_sha``, and — when ``config`` is given —
        ``config_fingerprint``.  The history is truncated to the newest
        ``limit`` rows.  Returns the stored row.
        """
        if not history_key.endswith("history"):
            raise ValueError(
                f"history keys end in 'history' (schema contract), got {history_key!r}"
            )
        stored: Dict[str, object] = {
            "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "git_sha": git_sha(self.path.parent),
        }
        if config is not None:
            stored["config_fingerprint"] = config_fingerprint(config)
        stored.update(row)
        history = self.data.setdefault(history_key, [])
        if not isinstance(history, list):
            raise BenchSchemaError([f"{history_key}: must be a list of rows"])
        history.append(stored)
        self.data[history_key] = history[-limit:]
        _check_row(history_key, stored, problems := [])
        if problems:
            raise BenchSchemaError(problems)
        return stored

    def save(self) -> None:
        """Re-validate and write the trajectory back (2-space indent + \\n)."""
        validate_bench(self.data)
        self.path.write_text(json.dumps(self.data, indent=2) + "\n")

    # ------------------------------------------------------------------ #
    def history(self, history_key: str) -> List[Dict[str, object]]:
        value = self.data.get(history_key, [])
        return value if isinstance(value, list) else []

    def trend(
        self, history_key: str, field: str, *, window: int = 5
    ) -> Optional[Dict[str, float]]:
        """Latest value of ``field`` vs the trailing-window mean.

        Returns ``{"latest", "trailing_mean", "delta", "ratio", "rows"}``
        where ``delta = latest - trailing_mean`` and ``ratio`` is their
        quotient — or ``None`` when fewer than two rows carry the field
        (no trailing window to compare against).
        """
        values = [
            float(row[field])
            for row in self.history(history_key)
            if isinstance(row, dict)
            and isinstance(row.get(field), (int, float))
            and not isinstance(row.get(field), bool)
        ]
        if len(values) < 2:
            return None
        latest = values[-1]
        trailing = values[-(window + 1) : -1]
        mean = sum(trailing) / len(trailing)
        return {
            "latest": latest,
            "trailing_mean": mean,
            "delta": latest - mean,
            "ratio": (latest / mean) if mean else float("inf"),
            "rows": float(len(trailing)),
        }

    # ------------------------------------------------------------------ #
    def _gate_scope(self, section: Optional[str]) -> Dict[str, object]:
        """The dict holding the gate config: the file root, or a section.

        Multiple benchmarks share one trajectory file (the shared-memory
        smoke at the root, ``service``, ``grid``, ...); each can carry its
        own ``regression_threshold`` + ``baseline`` inside its section.
        """
        if section is None:
            return self.data
        scope = self.data.get(section)
        return scope if isinstance(scope, dict) else {}

    def regression_floor(self, *, section: Optional[str] = None) -> Optional[float]:
        """``regression_threshold * baseline.ratio`` (``None`` if unset)."""
        scope = self._gate_scope(section)
        threshold = scope.get("regression_threshold")
        baseline = scope.get("baseline")
        if not isinstance(threshold, (int, float)) or not isinstance(baseline, dict):
            return None
        ratio = baseline.get("ratio")
        if not isinstance(ratio, (int, float)):
            return None
        return float(threshold) * float(ratio)

    def check_ratio(
        self, ratio: float, *, section: Optional[str] = None
    ) -> Dict[str, object]:
        """The smokes' regression gate: is ``ratio`` above the floor?

        Returns ``{"ok", "ratio", "floor", "baseline", "threshold"}``;
        ``ok`` is ``True`` when no floor is configured (nothing to gate).
        ``section`` reads the gate config from a nested section of the
        bench file instead of the root (e.g. ``section="grid"``).
        """
        scope = self._gate_scope(section)
        floor = self.regression_floor(section=section)
        baseline = scope.get("baseline", {})
        return {
            "ok": floor is None or ratio >= floor,
            "ratio": float(ratio),
            "floor": floor,
            "baseline": baseline.get("ratio") if isinstance(baseline, dict) else None,
            "threshold": scope.get("regression_threshold"),
        }


# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    """CLI: validate a bench file and print its trajectories."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Validate a BENCH_*.json perf trajectory and print trends."
    )
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_pipeline.json",
        help="bench file to validate (default: BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)
    try:
        recorder = BenchRecorder(args.path)
    except FileNotFoundError:
        print(f"bench file not found: {args.path}")
        return 2
    except (json.JSONDecodeError, BenchSchemaError) as error:
        print(f"INVALID: {args.path}")
        print(str(error))
        return 1
    print(f"OK: {args.path} validates")
    for key in sorted(recorder.data):
        if not key.endswith("history"):
            continue
        rows = recorder.history(key)
        print(f"  {key}: {len(rows)} rows")
        if not rows:
            continue
        latest = rows[-1]
        numeric = [
            field
            for field, value in latest.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
            and field not in ("trials",)
        ]
        for field in numeric:
            trend = recorder.trend(key, field)
            if trend is None:
                print(f"    {field}: {latest[field]} (no trailing window yet)")
            else:
                print(
                    f"    {field}: {trend['latest']:g} "
                    f"(trailing mean {trend['trailing_mean']:g}, "
                    f"delta {trend['delta']:+g})"
                )
    floor = recorder.regression_floor()
    if floor is not None:
        print(f"  regression floor: {floor:g}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI step
    raise SystemExit(main())
