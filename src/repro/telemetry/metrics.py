"""Metrics registry: named counters, gauges and histograms, one snapshot.

Before this module every observability surface grew its own ``as_dict()``
— :class:`~repro.pipeline.stats.PipelineStats`,
:class:`~repro.service.stats.ServiceStats`, the engine's
``traceback_stats`` — and every consumer (smokes, experiments, benches)
re-plumbed those dicts by hand.  A :class:`MetricsRegistry` is the one
place they all publish into: metrics are identified by a **name plus a
small label set** (Prometheus-style, e.g.
``pipeline_flushes_total{cause="size"}``), and one
:meth:`MetricsRegistry.snapshot` (or the text exposition in
:mod:`repro.telemetry.exporters`) reads everything.

Metric types follow the Prometheus vocabulary:

* :class:`Counter` — monotonically increasing totals (``inc``).  Stats
  objects that already hold exact running totals publish them with
  :meth:`Counter.set_total` — documented as snapshot-publishing, which
  keeps re-publishing idempotent (the value *is* the running total, it
  never double-counts).
* :class:`Gauge` — point-in-time values (``set``): fill efficiency,
  high-water marks, latency percentiles.
* :class:`Histogram` — bucketed distributions (``observe``), with
  :meth:`Histogram.load` for idempotent snapshot publishing from a
  bounded sample window (e.g. recent wave lane counts).

Naming scheme (asserted by the consistency tests): ``<subsystem>_<what>``
with ``_total`` suffixing counters, ``_seconds``/``_ms``/``_bytes``
suffixing unit-carrying values, and labels for the enumerable dimensions
(``stage``, ``cause``, ``tenant``, ``backend``) rather than name-mangling
them in.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
]

#: Default histogram bucket upper bounds (generic positive-value spread;
#: pass explicit buckets for unit-specific metrics).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)

_TYPES = ("counter", "gauge", "histogram")


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical ``name{k="v",...}`` identity of one labelled metric."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared identity/value plumbing of the three metric types."""

    metric_type = "untyped"

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.key = metric_key(name, labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.key}={self.value()!r}>"


class Counter(_Metric):
    """Monotonically increasing total."""

    metric_type = "counter"

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge for ups and downs")
        self._value += amount

    def set_total(self, value: float) -> None:
        """Publish an externally-accumulated running total (idempotent).

        For stats objects that already keep exact totals
        (:class:`~repro.pipeline.stats.PipelineStats` counts,
        ``traceback_stats`` sums): re-publishing replaces rather than
        re-adds.  The monotonicity contract is the caller's — these totals
        only grow over a run.
        """
        self._value = float(value)

    def value(self) -> float:
        return self._value


class Gauge(_Metric):
    """Point-in-time value that may go up and down."""

    metric_type = "gauge"

    def __init__(self, name: str, labels: Dict[str, object]) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def value(self) -> float:
        return self._value


class Histogram(_Metric):
    """Cumulative-bucket distribution (Prometheus histogram semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists.  :meth:`value` reports ``{"count", "sum", "buckets"}`` with
    cumulative per-bound counts, which is what the text exposition emits.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        labels: Dict[str, object],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    def clear(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def load(self, samples: Iterable[float]) -> None:
        """Replace the distribution with ``samples`` (snapshot publishing).

        The idempotent twin of :meth:`observe` for stats that keep a
        bounded recent window (wave lane counts, latency samples):
        publishing the window twice must not double every bucket.
        """
        self.clear()
        for sample in samples:
            self.observe(sample)

    def value(self) -> Dict[str, object]:
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts[:-1]):
            running += count
            cumulative.append((bound, running))
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": cumulative,  # (+Inf cumulative == count)
        }


class MetricsRegistry:
    """Get-or-create home of every named metric; one snapshot reads all.

    ``counter(name, **labels)`` (and ``gauge``/``histogram``) returns the
    existing metric for that exact name+labels identity or creates it —
    so publishers need no registration phase, and two publishers naming
    the same metric share it.  Re-registering a name as a different type
    raises (one name, one type, any labels).  Thread-safe: the service
    publishes from its dispatcher thread while exporters snapshot.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._families: Dict[str, Tuple[str, str]] = {}  # name -> (type, help)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        return self._get_or_create("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return self._get_or_create("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create("histogram", name, help, labels, buckets=buckets)

    def _get_or_create(
        self,
        metric_type: str,
        name: str,
        help: str,
        labels: Dict[str, object],
        *,
        buckets: Optional[Sequence[float]] = None,
    ) -> _Metric:
        key = metric_key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if metric.metric_type != metric_type:
                    raise ValueError(
                        f"metric {key!r} already registered as "
                        f"{metric.metric_type}, not {metric_type}"
                    )
                return metric
            family = self._families.get(name)
            if family is not None and family[0] != metric_type:
                raise ValueError(
                    f"metric family {name!r} already registered as "
                    f"{family[0]}, not {metric_type}"
                )
            if family is None or (help and not family[1]):
                self._families[name] = (metric_type, help)
            if metric_type == "counter":
                metric = Counter(name, labels)
            elif metric_type == "gauge":
                metric = Gauge(name, labels)
            else:
                metric = Histogram(
                    name, labels, buckets if buckets is not None else DEFAULT_BUCKETS
                )
            self._metrics[key] = metric
            return metric

    # ------------------------------------------------------------------ #
    def get(self, name: str, **labels: object):
        """The current value of one metric (``None`` if never registered)."""
        with self._lock:
            metric = self._metrics.get(metric_key(name, labels))
        return None if metric is None else metric.value()

    def families(self) -> Dict[str, Tuple[str, str]]:
        """``name -> (type, help)`` for every registered metric family."""
        with self._lock:
            return dict(self._families)

    def metrics(self) -> List[_Metric]:
        """Every registered metric, sorted by canonical key."""
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.key)

    def snapshot(self) -> Dict[str, object]:
        """Flat ``canonical key -> value`` view of every metric.

        Counter/gauge values are floats; histogram values are their
        ``{"count", "sum", "buckets"}`` dicts.  This is the registry-side
        half of the ``as_dict()`` ↔ snapshot consistency contract the
        telemetry tests assert for every published metric.
        """
        with self._lock:
            return {key: metric.value() for key, metric in sorted(self._metrics.items())}
