"""Hardware descriptions used by the execution-model simulator.

The specifications mirror the paper's evaluation platform: an NVIDIA RTX
A6000 (GA102: 84 SMs, 128 CUDA cores per SM, 100 KiB usable shared memory
per SM, ~768 GB/s GDDR6 bandwidth) and a dual-socket Intel Xeon Gold 5118
(2 × 12 physical cores / 48 hardware threads, ~256 GB/s aggregate DRAM
bandwidth of the two sockets' six DDR4-2400 channels each).

Only the quantities the roofline model needs are captured; everything else
about the devices is irrelevant to the mechanism under study (whether the
GenASM DP working set fits on-chip, and the resulting compute/bandwidth
limits).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "CpuSpec", "A6000", "RTX_3090", "XEON_GOLD_5118"]


@dataclass(frozen=True)
class GpuSpec:
    """A CUDA-style GPU for the execution model.

    Attributes
    ----------
    sm_count, cores_per_sm:
        Streaming multiprocessors and scalar cores per SM.
    clock_hz:
        Sustained SM clock.
    shared_memory_per_sm:
        Usable shared memory (bytes) per SM.
    max_shared_per_block:
        Largest shared-memory allocation a single block may make.
    max_blocks_per_sm, max_threads_per_sm:
        Occupancy limits.
    warp_size, threads_per_block:
        Execution granularity; the GenASM kernel uses one warp per
        alignment problem (Scrooge's layout).
    global_bandwidth:
        Device-memory bandwidth in bytes/s.
    word_ops_per_cycle_per_core:
        64-bit bitwise/ALU operations retired per core per cycle (the
        GenASM inner loop is pure integer work).
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_hz: float
    shared_memory_per_sm: int
    max_shared_per_block: int
    max_blocks_per_sm: int
    max_threads_per_sm: int
    warp_size: int
    threads_per_block: int
    global_bandwidth: float
    word_ops_per_cycle_per_core: float = 0.5

    @property
    def peak_word_ops_per_second(self) -> float:
        """Peak 64-bit integer operation throughput of the whole device."""
        return (
            self.sm_count
            * self.cores_per_sm
            * self.clock_hz
            * self.word_ops_per_cycle_per_core
        )

    @property
    def concurrent_threads(self) -> int:
        """Maximum resident threads across the device."""
        return self.sm_count * self.max_threads_per_sm


@dataclass(frozen=True)
class CpuSpec:
    """A multicore CPU for the execution model (the paper's Xeon baseline).

    ``word_ops_per_cycle_per_core`` credits the CPU implementation with
    AVX-512 vectorisation (eight 64-bit lanes, roughly one such operation
    sustained per cycle), which is how the paper's CPU GenASM processes
    multiple windows per core in parallel.
    """

    name: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    clock_hz: float
    l2_cache_per_core: int
    dram_bandwidth: float
    word_ops_per_cycle_per_core: float = 8.0

    @property
    def hardware_threads(self) -> int:
        return self.sockets * self.cores_per_socket * self.threads_per_core

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def peak_word_ops_per_second(self) -> float:
        """Peak 64-bit integer operation throughput across all cores."""
        return self.physical_cores * self.clock_hz * self.word_ops_per_cycle_per_core


#: The GPU used in the paper's evaluation.
A6000 = GpuSpec(
    name="NVIDIA RTX A6000",
    sm_count=84,
    cores_per_sm=128,
    clock_hz=1.41e9,
    shared_memory_per_sm=100 * 1024,
    max_shared_per_block=99 * 1024,
    max_blocks_per_sm=16,
    max_threads_per_sm=1536,
    warp_size=32,
    threads_per_block=32,
    global_bandwidth=768e9,
)

#: A consumer GA102 part, provided for sensitivity studies.
RTX_3090 = GpuSpec(
    name="NVIDIA RTX 3090",
    sm_count=82,
    cores_per_sm=128,
    clock_hz=1.40e9,
    shared_memory_per_sm=100 * 1024,
    max_shared_per_block=99 * 1024,
    max_blocks_per_sm=16,
    max_threads_per_sm=1536,
    warp_size=32,
    threads_per_block=32,
    global_bandwidth=936e9,
)

#: The CPU used in the paper's evaluation (dual socket, 48 threads).
XEON_GOLD_5118 = CpuSpec(
    name="2x Intel Xeon Gold 5118",
    sockets=2,
    cores_per_socket=12,
    threads_per_core=2,
    clock_hz=3.2e9,
    l2_cache_per_core=1024 * 1024,
    dram_bandwidth=256e9,
)
