"""GPU execution-model simulator (stands in for the paper's NVIDIA A6000).

No GPU (and no CuPy/Numba) is available in this environment, so the GPU
evaluation is reproduced with an execution-model simulator:

* :mod:`repro.gpu.device` — hardware descriptions of the paper's devices
  (NVIDIA A6000 GPU, dual-socket Xeon Gold 5118 CPU) and a roofline-style
  performance model.
* :mod:`repro.gpu.kernel` — the cost model of the GenASM GPU kernel: how
  many bitvector operations, shared-memory bytes and global-memory bytes
  one (read, candidate) pair generates, derived from the *measured*
  counters of the functional CPU implementation (so the simulated kernel
  is always bit-exact with the CPU result).
* :mod:`repro.gpu.simulator` — occupancy calculation and batch execution:
  the baseline kernel's DP working set does not fit in shared memory and
  becomes global-bandwidth-bound, while the improved kernel's 10–30×
  smaller working set stays on-chip and becomes compute-bound — the
  mechanism behind the paper's GPU speedups.
"""

from repro.gpu.device import A6000, XEON_GOLD_5118, CpuSpec, GpuSpec
from repro.gpu.kernel import GenASMKernelSpec, KernelCost, PairProfile
from repro.gpu.simulator import GpuSimulator, CpuModel, SimulationResult

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "A6000",
    "XEON_GOLD_5118",
    "KernelCost",
    "PairProfile",
    "GenASMKernelSpec",
    "GpuSimulator",
    "CpuModel",
    "SimulationResult",
]
