"""Cost model of the GenASM GPU kernel.

The GPU implementation in the paper assigns one alignment problem (one
(read, candidate-region) pair) to one warp; the warp iterates over the
pair's windows, keeping the DP traceback state either in shared memory
(when it fits — the improved algorithm) or in global memory (the baseline,
whose working set is an order of magnitude larger).

Rather than hand-estimating operation counts, the kernel cost is *profiled*
from the functional CPU implementation: the same :class:`AccessCounter`
that experiment E4 uses records how many DP entries were computed, how many
DP-table bytes were read and written, and how many traceback steps were
taken for each pair.  The cost model converts those measured quantities
into device work:

* ``compute_ops`` — 64-bit bitvector operations (a DP entry costs a fixed
  number of AND/OR/shift operations, a traceback step a fixed number of bit
  probes);
* ``onchip_bytes`` / ``offchip_bytes`` — DP-table traffic, routed to shared
  or global memory depending on whether the per-problem working set fits
  the per-block shared-memory budget;
* ``io_bytes`` — unavoidable global traffic: the sequences in, the CIGAR
  out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.aligner import GenASMAligner
from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig
from repro.core.metrics import AccessCounter
from repro.gpu.device import GpuSpec

__all__ = ["KernelCost", "PairProfile", "GenASMKernelSpec"]

#: 64-bit ALU operations per DP entry of the GenASM-DC inner loop
#: (shift, OR with the pattern mask, three ANDs, plus loop/bookkeeping).
OPS_PER_DC_ENTRY = 8.0
#: Bit probes and branches per traceback step.
OPS_PER_TB_STEP = 12.0
#: Fixed per-window overhead (pattern-mask construction, window setup).
OPS_PER_WINDOW = 96.0


@dataclass
class KernelCost:
    """Device-work summary for one alignment problem."""

    compute_ops: float = 0.0
    dp_bytes: float = 0.0
    io_bytes: float = 0.0
    working_set_bytes: float = 0.0

    def merge(self, other: "KernelCost") -> "KernelCost":
        self.compute_ops += other.compute_ops
        self.dp_bytes += other.dp_bytes
        self.io_bytes += other.io_bytes
        self.working_set_bytes = max(self.working_set_bytes, other.working_set_bytes)
        return self


@dataclass
class PairProfile:
    """Functional result plus cost of one (pattern, text) pair."""

    alignment: Alignment
    cost: KernelCost


@dataclass
class GenASMKernelSpec:
    """The GenASM kernel in a given configuration (baseline or improved).

    ``profile_pair`` runs the functional implementation once, so the
    simulator's outputs (edit distances, CIGARs) are always identical to
    the CPU library's, and the cost numbers reflect exactly what that
    configuration stores and touches.
    """

    config: GenASMConfig = field(default_factory=GenASMConfig)
    name: str = "genasm-gpu"

    def aligner(self) -> GenASMAligner:
        """Functional aligner backing this kernel."""
        return GenASMAligner(self.config, name=self.name)

    # ------------------------------------------------------------------ #
    def profile_pair(
        self, pattern: str, text: str, aligner: Optional[GenASMAligner] = None
    ) -> PairProfile:
        """Align one pair and derive its kernel cost."""
        aligner = aligner or self.aligner()
        counter = AccessCounter()
        alignment = aligner.align(pattern, text, counter=counter)
        windows = max(1, counter.windows)
        compute = (
            counter.entries_computed * OPS_PER_DC_ENTRY
            + counter.tb_steps * OPS_PER_TB_STEP
            + windows * OPS_PER_WINDOW
        )
        io_bytes = float(len(pattern) + len(text) + 2 * len(alignment.cigar.runs) + 64)
        # The shared-memory requirement is the statically allocated per-problem
        # window buffer implied by the configuration (what a CUDA kernel would
        # reserve per block), not the occasional worst-case window that falls
        # back to a larger error budget.
        cost = KernelCost(
            compute_ops=float(compute),
            dp_bytes=float(counter.total_bytes),
            io_bytes=io_bytes,
            working_set_bytes=float(
                alignment.metadata.get(
                    "model_window_bytes", alignment.metadata.get("peak_window_bytes", 0.0)
                )
            ),
        )
        return PairProfile(alignment=alignment, cost=cost)

    def profile_batch(self, pairs: List[tuple]) -> List[PairProfile]:
        """Profile a batch of (pattern, text) pairs with one shared aligner."""
        aligner = self.aligner()
        return [self.profile_pair(p, t, aligner) for p, t in pairs]

    # ------------------------------------------------------------------ #
    def fits_in_shared(self, spec: GpuSpec, working_set_bytes: float) -> bool:
        """Does one problem's DP working set fit a block's shared-memory share?

        The kernel wants at least :attr:`GpuSpec.max_blocks_per_sm` resident
        blocks per SM for latency hiding; a problem "fits" when that many
        copies of its working set fit the SM's shared memory (and a single
        copy respects the per-block limit).
        """
        if working_set_bytes <= 0:
            return True
        if working_set_bytes > spec.max_shared_per_block:
            return False
        target_blocks = min(spec.max_blocks_per_sm, 8)
        return working_set_bytes * target_blocks <= spec.shared_memory_per_sm
