"""Roofline-style execution simulation of GenASM kernels on GPU and CPU.

The simulator answers one question: *given the measured per-pair work of a
GenASM configuration, how long would the paper's hardware take to run the
batch?*  It combines

* a compute roof — total 64-bit bitvector operations divided by the
  device's integer throughput, discounted by the achieved occupancy;
* a memory roof — total off-chip traffic divided by the device's DRAM
  bandwidth;

and reports the larger of the two (plus a fixed kernel-launch overhead for
GPUs).  The crucial modelling decision mirrors the paper's mechanism:
whether a configuration's per-problem DP working set fits on-chip decides
whether its DP traffic counts toward the memory roof at all.

The optional warp-lockstep refinement reuses the lane layout of the
vectorized CPU batch engine (:mod:`repro.batch`): one alignment problem per
warp lane, so a warp's lanes run in lockstep and the issued compute work is
the per-warp maximum.  :meth:`GpuSimulator.warp_divergence` exposes the
divergence statistics and ``simulate(..., warp_lockstep=True)`` folds them
into the compute roof.

The simulation is *functional*: every pair is actually aligned by the CPU
implementation while being profiled, so the simulated kernels return real
alignments (identical to the library's CPU results) alongside the timing
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.batch.soa import lockstep_stats
from repro.core.alignment import Alignment
from repro.core.config import GenASMConfig
from repro.gpu.device import A6000, XEON_GOLD_5118, CpuSpec, GpuSpec
from repro.gpu.kernel import GenASMKernelSpec, KernelCost, PairProfile

__all__ = ["SimulationResult", "GpuSimulator", "CpuModel"]

#: Fixed cost of launching the kernel and staging buffers (seconds).
KERNEL_LAUNCH_OVERHEAD_S = 1.0e-4
#: Fraction of peak integer throughput a well-tuned kernel sustains.
GPU_COMPUTE_EFFICIENCY = 0.55
#: Fraction of peak DRAM bandwidth sustained under the kernel's access pattern.
GPU_BANDWIDTH_EFFICIENCY = 0.70
#: Sustained fractions for the CPU model (vectorised, multi-threaded code).
CPU_COMPUTE_EFFICIENCY = 0.45
CPU_BANDWIDTH_EFFICIENCY = 0.60


@dataclass
class SimulationResult:
    """Outcome of simulating one batch on one device."""

    device: str
    kernel: str
    pairs: int
    estimated_seconds: float
    compute_seconds: float
    memory_seconds: float
    bound: str
    occupancy: float
    dp_in_shared: bool
    total_cost: KernelCost
    #: fraction of lockstep execution slots doing useful work (1.0 when the
    #: warp-divergence model is not applied)
    lane_efficiency: float = 1.0
    alignments: List[Alignment] = field(default_factory=list)

    @property
    def pairs_per_second(self) -> float:
        """Simulated alignment throughput."""
        if self.estimated_seconds <= 0:
            return float("inf")
        return self.pairs / self.estimated_seconds

    def speedup_over(self, other: "SimulationResult") -> float:
        """How much faster this result is than ``other``."""
        return other.estimated_seconds / self.estimated_seconds

    def summary(self) -> Dict[str, object]:
        """Plain-dict summary used by reports."""
        return {
            "device": self.device,
            "kernel": self.kernel,
            "pairs": self.pairs,
            "estimated_seconds": self.estimated_seconds,
            "pairs_per_second": self.pairs_per_second,
            "bound": self.bound,
            "occupancy": round(self.occupancy, 3),
            "dp_in_shared": self.dp_in_shared,
            "lane_efficiency": round(self.lane_efficiency, 3),
        }


class GpuSimulator:
    """Simulate a GenASM kernel batch on a GPU specification."""

    def __init__(self, spec: GpuSpec = A6000) -> None:
        self.spec = spec

    # ------------------------------------------------------------------ #
    def occupancy(self, kernel: GenASMKernelSpec, working_set_bytes: float) -> float:
        """Fraction of the device's thread slots the kernel can keep resident."""
        spec = self.spec
        blocks_by_limit = spec.max_blocks_per_sm
        if working_set_bytes > 0:
            in_shared = kernel.fits_in_shared(spec, working_set_bytes)
            if in_shared:
                blocks_by_shared = max(1, int(spec.shared_memory_per_sm // working_set_bytes))
                blocks_by_limit = min(blocks_by_limit, blocks_by_shared)
            # When the working set lives in global memory, shared memory does
            # not constrain occupancy (but the kernel becomes bandwidth bound).
        resident_threads = min(
            blocks_by_limit * spec.threads_per_block, spec.max_threads_per_sm
        )
        return resident_threads / spec.max_threads_per_sm

    def warp_divergence(
        self,
        profiles: Sequence[PairProfile],
        *,
        warp_size: Optional[int] = None,
        schedule: str = "fifo",
    ) -> Dict[str, float]:
        """Warp-level lockstep model over a profiled batch.

        The kernel assigns one alignment problem per warp lane (the same
        lane layout the vectorized CPU engine in :mod:`repro.batch` uses),
        so lanes of a warp execute in lockstep and every lane waits for the
        warp's most expensive problem.  Reuses
        :func:`repro.batch.soa.lockstep_stats` over the profiled per-pair
        compute work; ``efficiency`` is the fraction of issued lockstep
        slots doing useful work.

        ``schedule`` mirrors the CPU batch engine's wave scheduler:
        ``"fifo"`` fills warps in submission order, ``"sorted"`` orders
        problems by per-pair work first (the
        :meth:`repro.batch.BatchAlignmentEngine.schedule` policy), which
        packs similarly-sized problems into the same warp and raises
        lockstep efficiency on mixed-length batches.
        """
        if schedule not in ("fifo", "sorted"):
            raise ValueError(f"schedule must be 'fifo' or 'sorted', got {schedule!r}")
        warp = warp_size if warp_size is not None else self.spec.warp_size
        work = [p.cost.compute_ops for p in profiles]
        if schedule == "sorted":
            work = sorted(work)
        return lockstep_stats(work, warp)

    def simulate(
        self,
        pairs: Sequence[Tuple[str, str]],
        kernel: Optional[GenASMKernelSpec] = None,
        *,
        profiles: Optional[List[PairProfile]] = None,
        keep_alignments: bool = True,
        workload_multiplier: float = 1.0,
        warp_lockstep: bool = False,
        warp_schedule: str = "fifo",
    ) -> SimulationResult:
        """Profile (or reuse profiles of) a batch and estimate its GPU runtime.

        ``workload_multiplier`` scales the profiled batch to a larger
        workload of the same composition (the per-pair cost model is
        linear); the experiment harness uses it to extrapolate a profiled
        sample to the paper's 138,929-pair dataset.  ``warp_lockstep``
        additionally charges the compute roof for warp divergence: lanes of
        a warp (one problem per lane, the :mod:`repro.batch` layout) run in
        lockstep, so the issued work is the per-warp maximum, not the mean.
        ``warp_schedule`` selects how problems are packed into warps for
        that divergence charge (``"fifo"`` or ``"sorted"``, matching the
        CPU engine's wave-scheduling policies).
        """
        if warp_schedule not in ("fifo", "sorted"):
            raise ValueError(
                f"warp_schedule must be 'fifo' or 'sorted', got {warp_schedule!r}"
            )
        kernel = kernel or GenASMKernelSpec()
        if profiles is None:
            profiles = kernel.profile_batch(list(pairs))

        total = KernelCost()
        for profile in profiles:
            total.merge(profile.cost)
        total.compute_ops *= workload_multiplier
        total.dp_bytes *= workload_multiplier
        total.io_bytes *= workload_multiplier

        in_shared = kernel.fits_in_shared(self.spec, total.working_set_bytes)
        occupancy = self.occupancy(kernel, total.working_set_bytes)

        lane_efficiency = 1.0
        if warp_lockstep and profiles:
            stats = self.warp_divergence(profiles, schedule=warp_schedule)
            lane_efficiency = max(1e-3, stats["efficiency"])

        compute_rate = self.spec.peak_word_ops_per_second * GPU_COMPUTE_EFFICIENCY
        compute_seconds = total.compute_ops / (
            compute_rate * max(occupancy, 1e-3) * lane_efficiency
        )

        offchip_bytes = total.io_bytes + (0.0 if in_shared else total.dp_bytes)
        bandwidth = self.spec.global_bandwidth * GPU_BANDWIDTH_EFFICIENCY
        memory_seconds = offchip_bytes / bandwidth

        estimated = max(compute_seconds, memory_seconds) + KERNEL_LAUNCH_OVERHEAD_S
        return SimulationResult(
            device=self.spec.name,
            kernel=kernel.name,
            pairs=int(len(profiles) * workload_multiplier),
            estimated_seconds=estimated,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            bound="memory" if memory_seconds > compute_seconds else "compute",
            occupancy=occupancy,
            dp_in_shared=in_shared,
            lane_efficiency=lane_efficiency,
            total_cost=total,
            alignments=[p.alignment for p in profiles] if keep_alignments else [],
        )


class CpuModel:
    """The same roofline model applied to the paper's CPU platform.

    The CPU counterpart differs from the GPU in two ways: its integer
    throughput is far lower (48 threads vs. ~10k resident GPU threads), and
    per-problem DP working sets that are small enough live in the private
    caches, so only oversized working sets generate DRAM traffic.
    """

    def __init__(self, spec: CpuSpec = XEON_GOLD_5118, threads: Optional[int] = None) -> None:
        self.spec = spec
        self.threads = threads if threads is not None else spec.hardware_threads

    def simulate(
        self,
        pairs: Sequence[Tuple[str, str]],
        kernel: Optional[GenASMKernelSpec] = None,
        *,
        profiles: Optional[List[PairProfile]] = None,
        keep_alignments: bool = True,
        workload_multiplier: float = 1.0,
    ) -> SimulationResult:
        """Estimate the batch runtime on the CPU platform."""
        kernel = kernel or GenASMKernelSpec()
        if profiles is None:
            profiles = kernel.profile_batch(list(pairs))

        total = KernelCost()
        for profile in profiles:
            total.merge(profile.cost)
        total.compute_ops *= workload_multiplier
        total.dp_bytes *= workload_multiplier
        total.io_bytes *= workload_multiplier

        thread_fraction = min(1.0, self.threads / self.spec.hardware_threads)
        compute_rate = (
            self.spec.peak_word_ops_per_second * CPU_COMPUTE_EFFICIENCY * thread_fraction
        )
        compute_seconds = total.compute_ops / compute_rate

        fits_in_cache = total.working_set_bytes <= self.spec.l2_cache_per_core
        offchip_bytes = total.io_bytes + (0.0 if fits_in_cache else total.dp_bytes)
        bandwidth = self.spec.dram_bandwidth * CPU_BANDWIDTH_EFFICIENCY
        memory_seconds = offchip_bytes / bandwidth

        estimated = max(compute_seconds, memory_seconds)
        return SimulationResult(
            device=f"{self.spec.name} ({self.threads} threads)",
            kernel=kernel.name,
            pairs=int(len(profiles) * workload_multiplier),
            estimated_seconds=estimated,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            bound="memory" if memory_seconds > compute_seconds else "compute",
            occupancy=thread_fraction,
            dp_in_shared=fits_in_cache,
            total_cost=total,
            alignments=[p.alignment for p in profiles] if keep_alignments else [],
        )
