"""Basic DNA sequence utilities.

Sequences are plain Python strings over ``ACGT`` (plus ``N`` for ambiguous
bases).  A 2-bit NumPy encoding is provided for the minimizer index and for
anything that benefits from vectorised character comparisons.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "DNA_ALPHABET",
    "COMPLEMENT",
    "random_dna",
    "reverse_complement",
    "encode_sequence",
    "decode_sequence",
    "gc_content",
    "kmers",
    "hamming_distance",
]

DNA_ALPHABET = "ACGT"

COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A", "N": "N"}

_BASE_TO_CODE = {"A": 0, "C": 1, "G": 2, "T": 3}
_CODE_TO_BASE = np.array(list("ACGT"))


def random_dna(length: int, rng: Optional[np.random.Generator] = None) -> str:
    """Uniform random DNA string of ``length`` bases."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    codes = rng.integers(0, 4, size=length)
    return "".join(_CODE_TO_BASE[codes])


def reverse_complement(sequence: str) -> str:
    """Reverse complement (``N`` maps to ``N``)."""
    return "".join(COMPLEMENT.get(c, "N") for c in reversed(sequence))


def encode_sequence(sequence: str) -> np.ndarray:
    """2-bit encode a DNA string (``N`` and unknown characters become 0/A).

    The encoding is only used for hashing and vectorised comparisons, where
    treating ambiguous bases as ``A`` is acceptable; exact-alignment code
    paths always work on the original strings.
    """
    arr = np.frombuffer(sequence.encode("latin-1"), dtype=np.uint8)
    codes = np.zeros(arr.shape, dtype=np.uint8)
    codes[arr == ord("C")] = 1
    codes[arr == ord("G")] = 2
    codes[arr == ord("T")] = 3
    return codes


def decode_sequence(codes: np.ndarray) -> str:
    """Inverse of :func:`encode_sequence`."""
    return "".join(_CODE_TO_BASE[np.asarray(codes, dtype=np.int64)])


def gc_content(sequence: str) -> float:
    """Fraction of G/C bases (0 for the empty string)."""
    if not sequence:
        return 0.0
    gc = sum(1 for c in sequence if c in "GC")
    return gc / len(sequence)


def kmers(sequence: str, k: int) -> Iterator[Tuple[int, str]]:
    """Yield ``(position, k-mer)`` for every k-mer of ``sequence``."""
    if k <= 0:
        raise ValueError("k must be positive")
    for i in range(0, len(sequence) - k + 1):
        yield i, sequence[i : i + k]


def hamming_distance(a: str, b: str) -> int:
    """Hamming distance of two equal-length strings."""
    if len(a) != len(b):
        raise ValueError("hamming_distance requires equal-length strings")
    return sum(1 for x, y in zip(a, b) if x != y)
