"""Read simulators (the PBSIM2 role in the paper's pipeline).

:class:`PacBioSimulator` draws read lengths from a log-normal distribution
(PBSIM2's model), extracts the corresponding reference substring, pushes it
through a PacBio-like error channel and emits Phred quality strings whose
mean tracks the realised accuracy.  :class:`IlluminaSimulator` produces
fixed-length, low-error short reads.  Both record the true origin and the
true edit distance of every read, which the accuracy experiment (E5) and
the mapper tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.cigar import Cigar
from repro.genomics.errors import ErrorModel, mutate_sequence
from repro.genomics.genome import SyntheticGenome
from repro.genomics.sequences import reverse_complement

__all__ = ["SimulatedRead", "PacBioSimulator", "IlluminaSimulator"]


@dataclass
class SimulatedRead:
    """One simulated read with its ground truth."""

    name: str
    sequence: str
    quality: str
    chrom: str
    start: int
    end: int
    strand: str
    true_edits: int
    true_cigar: Cigar = field(repr=False, default_factory=Cigar)

    @property
    def length(self) -> int:
        return len(self.sequence)


def _phred_string(length: int, accuracy: float, rng: np.random.Generator) -> str:
    """Quality string whose mean Phred score reflects ``accuracy``."""
    if length == 0:
        return ""
    error = max(1e-4, 1.0 - accuracy)
    mean_q = -10.0 * np.log10(error)
    qs = np.clip(rng.normal(mean_q, 2.0, size=length), 2, 41).astype(int)
    return "".join(chr(33 + q) for q in qs)


class PacBioSimulator:
    """PBSIM2-like long-read simulator.

    Parameters
    ----------
    mean_length, std_length:
        Parameters of the log-normal read-length distribution (in bases).
        The paper's dataset uses 10 kb reads; the default mirrors that with
        a modest spread.
    error_model:
        Per-base error channel (defaults to PacBio CLR).
    min_length:
        Reads shorter than this are redrawn.
    """

    def __init__(
        self,
        mean_length: int = 10_000,
        std_length: int = 1_500,
        error_model: Optional[ErrorModel] = None,
        *,
        min_length: int = 100,
        seed: int = 0,
    ) -> None:
        if mean_length <= 0:
            raise ValueError("mean_length must be positive")
        self.mean_length = mean_length
        self.std_length = max(1, std_length)
        self.error_model = error_model or ErrorModel.pacbio_clr()
        self.min_length = min_length
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def _draw_length(self) -> int:
        mean, std = float(self.mean_length), float(self.std_length)
        sigma2 = np.log(1.0 + (std / mean) ** 2)
        mu = np.log(mean) - sigma2 / 2.0
        for _ in range(100):
            length = int(self.rng.lognormal(mu, np.sqrt(sigma2)))
            if length >= self.min_length:
                return length
        return self.min_length

    def simulate(self, genome: SyntheticGenome, count: int) -> List[SimulatedRead]:
        """Simulate ``count`` reads from ``genome``."""
        reads: List[SimulatedRead] = []
        max_chrom = max(len(s) for s in genome.chromosomes.values())
        for index in range(count):
            length = min(self._draw_length(), max_chrom)
            chrom, start = genome.random_location(length, self.rng)
            reference = genome.fetch(chrom, start, start + length)
            strand = "+" if self.rng.random() < 0.5 else "-"
            template = reference if strand == "+" else reverse_complement(reference)
            sequence, cigar = mutate_sequence(template, self.error_model, self.rng)
            accuracy = 1.0 - (cigar.edit_distance / max(1, len(sequence)))
            reads.append(
                SimulatedRead(
                    name=f"read_{index:05d}",
                    sequence=sequence,
                    quality=_phred_string(len(sequence), accuracy, self.rng),
                    chrom=chrom,
                    start=start,
                    end=start + length,
                    strand=strand,
                    true_edits=cigar.edit_distance,
                    true_cigar=cigar,
                )
            )
        return reads


class IlluminaSimulator:
    """Illumina-like short-read simulator (fixed length, low error)."""

    def __init__(
        self,
        read_length: int = 150,
        error_model: Optional[ErrorModel] = None,
        *,
        seed: int = 0,
    ) -> None:
        if read_length <= 0:
            raise ValueError("read_length must be positive")
        self.read_length = read_length
        self.error_model = error_model or ErrorModel.illumina()
        self.rng = np.random.default_rng(seed)

    def simulate(self, genome: SyntheticGenome, count: int) -> List[SimulatedRead]:
        """Simulate ``count`` single-end short reads."""
        reads: List[SimulatedRead] = []
        for index in range(count):
            length = self.read_length
            chrom, start = genome.random_location(length, self.rng)
            reference = genome.fetch(chrom, start, start + length)
            strand = "+" if self.rng.random() < 0.5 else "-"
            template = reference if strand == "+" else reverse_complement(reference)
            sequence, cigar = mutate_sequence(template, self.error_model, self.rng)
            accuracy = 1.0 - (cigar.edit_distance / max(1, len(sequence)))
            reads.append(
                SimulatedRead(
                    name=f"short_{index:05d}",
                    sequence=sequence,
                    quality=_phred_string(len(sequence), accuracy, self.rng),
                    chrom=chrom,
                    start=start,
                    end=start + length,
                    strand=strand,
                    true_edits=cigar.edit_distance,
                    true_cigar=cigar,
                )
            )
        return reads
