"""Genomics substrate: synthetic genomes, read simulation and sequence I/O.

The paper evaluates on 500 PBSIM2-simulated PacBio reads from the human
genome.  This package provides the equivalent synthetic pipeline: a
repeat-structured reference generator, a PBSIM2-like long-read simulator,
an Illumina-like short-read simulator and FASTA/FASTQ readers/writers.
"""

from repro.genomics.sequences import (
    DNA_ALPHABET,
    encode_sequence,
    decode_sequence,
    gc_content,
    kmers,
    random_dna,
    reverse_complement,
)
from repro.genomics.errors import ErrorModel, mutate_sequence
from repro.genomics.genome import SyntheticGenome
from repro.genomics.read_simulator import (
    IlluminaSimulator,
    PacBioSimulator,
    SimulatedRead,
)
from repro.genomics.fasta import (
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)

__all__ = [
    "DNA_ALPHABET",
    "random_dna",
    "reverse_complement",
    "encode_sequence",
    "decode_sequence",
    "gc_content",
    "kmers",
    "ErrorModel",
    "mutate_sequence",
    "SyntheticGenome",
    "PacBioSimulator",
    "IlluminaSimulator",
    "SimulatedRead",
    "read_fasta",
    "write_fasta",
    "read_fastq",
    "write_fastq",
]
