"""Synthetic reference genomes.

The paper maps simulated reads against the human genome.  Network access
and the 3-Gbp reference are unavailable here, so :class:`SyntheticGenome`
generates a reference with the properties that matter to the pipeline under
test:

* multiple named chromosomes of configurable length;
* *repeat structure* — segments copied to other locations with a small
  amount of divergence, so the minimizer mapper produces multiple candidate
  locations per read (the paper's ``-P`` all-chains setting exists exactly
  because of such repeats);
* deterministic generation from a seed, so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.genomics.errors import ErrorModel, mutate_sequence
from repro.genomics.sequences import random_dna, reverse_complement

__all__ = ["SyntheticGenome", "RepeatAnnotation"]


@dataclass(frozen=True)
class RepeatAnnotation:
    """Record of one synthetic repeat copy (for debugging / analysis)."""

    source_chrom: str
    source_start: int
    target_chrom: str
    target_start: int
    length: int
    divergence: float
    reverse: bool


@dataclass
class SyntheticGenome:
    """A set of named chromosomes with optional repeat structure."""

    chromosomes: Dict[str, str] = field(default_factory=dict)
    repeats: List[RepeatAnnotation] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        chromosome_lengths: Dict[str, int] | None = None,
        *,
        seed: int = 0,
        repeat_fraction: float = 0.1,
        repeat_length: int = 2_000,
        repeat_divergence: float = 0.02,
    ) -> "SyntheticGenome":
        """Generate a random genome.

        ``repeat_fraction`` of each chromosome is overwritten with copies of
        segments taken from elsewhere in the genome, each copy diverged by
        ``repeat_divergence`` substitutions/indels, half of them reverse
        complemented.
        """
        if chromosome_lengths is None:
            chromosome_lengths = {"chr1": 200_000, "chr2": 100_000}
        if not (0.0 <= repeat_fraction < 1.0):
            raise ValueError("repeat_fraction must be in [0, 1)")
        rng = np.random.default_rng(seed)
        chroms: Dict[str, str] = {
            name: random_dna(length, rng) for name, length in chromosome_lengths.items()
        }
        genome = cls(chromosomes=chroms)
        if repeat_fraction > 0 and repeat_length > 0:
            genome._plant_repeats(rng, repeat_fraction, repeat_length, repeat_divergence)
        return genome

    def _plant_repeats(
        self,
        rng: np.random.Generator,
        fraction: float,
        length: int,
        divergence: float,
    ) -> None:
        """Overwrite part of each chromosome with diverged copies of other parts."""
        model = ErrorModel(
            substitution_rate=divergence / 2,
            insertion_rate=divergence / 4,
            deletion_rate=divergence / 4,
        )
        names = list(self.chromosomes)
        for target_name in names:
            target = list(self.chromosomes[target_name])
            n_copies = int(len(target) * fraction / max(1, length))
            for _ in range(n_copies):
                source_name = names[rng.integers(0, len(names))]
                source = self.chromosomes[source_name]
                if len(source) <= length or len(target) <= length:
                    continue
                src_start = int(rng.integers(0, len(source) - length))
                dst_start = int(rng.integers(0, len(target) - length))
                segment = source[src_start : src_start + length]
                reverse = bool(rng.random() < 0.5)
                if reverse:
                    segment = reverse_complement(segment)
                mutated, _ = mutate_sequence(segment, model, rng)
                mutated = mutated[:length].ljust(length, "A")
                target[dst_start : dst_start + length] = list(mutated)
                self.repeats.append(
                    RepeatAnnotation(
                        source_chrom=source_name,
                        source_start=src_start,
                        target_chrom=target_name,
                        target_start=dst_start,
                        length=length,
                        divergence=divergence,
                        reverse=reverse,
                    )
                )
            self.chromosomes[target_name] = "".join(target)

    # ------------------------------------------------------------------ #
    @property
    def total_length(self) -> int:
        """Total number of bases across all chromosomes."""
        return sum(len(s) for s in self.chromosomes.values())

    def names(self) -> List[str]:
        """Chromosome names in insertion order."""
        return list(self.chromosomes)

    def sequence(self, chrom: str) -> str:
        """Full sequence of one chromosome."""
        return self.chromosomes[chrom]

    def chromosome_length(self, chrom: str) -> int:
        """Length of one chromosome in bases."""
        return len(self.chromosomes[chrom])

    def fetch(self, chrom: str, start: int, end: int) -> str:
        """Extract ``[start, end)`` of a chromosome (clamped to its bounds)."""
        seq = self.chromosomes[chrom]
        start = max(0, start)
        end = min(len(seq), end)
        if start >= end:
            return ""
        return seq[start:end]

    def random_location(
        self, length: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[str, int]:
        """Uniformly random (chromosome, start) able to hold ``length`` bases."""
        rng = rng if rng is not None else np.random.default_rng()
        eligible = [
            (name, len(seq))
            for name, seq in self.chromosomes.items()
            if len(seq) >= length
        ]
        if not eligible:
            raise ValueError(f"no chromosome is long enough for length {length}")
        weights = np.array([l - length + 1 for _, l in eligible], dtype=np.float64)
        weights /= weights.sum()
        idx = int(rng.choice(len(eligible), p=weights))
        name, chrom_len = eligible[idx]
        start = int(rng.integers(0, chrom_len - length + 1))
        return name, start

    def iter_windows(self, size: int, step: int) -> Iterator[Tuple[str, int, str]]:
        """Iterate ``(chrom, start, sequence)`` windows across the genome."""
        if size <= 0 or step <= 0:
            raise ValueError("size and step must be positive")
        for name, seq in self.chromosomes.items():
            for start in range(0, max(1, len(seq) - size + 1), step):
                yield name, start, seq[start : start + size]
