"""Minimal FASTA / FASTQ readers and writers.

Only the subset of the formats the examples and the experiment harness need
is supported: multi-record files, arbitrary line wrapping on read, optional
wrapping on write, and Phred+33 quality strings for FASTQ.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

__all__ = [
    "read_fasta",
    "write_fasta",
    "read_fastq",
    "write_fastq",
    "iter_fasta",
    "iter_fastq",
]

PathLike = Union[str, Path]


def iter_fasta(path: PathLike) -> Iterator[Tuple[str, str]]:
    """Yield ``(name, sequence)`` records from a FASTA file."""
    name = None
    chunks: List[str] = []
    with open(path, "r", encoding="ascii") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield name, "".join(chunks)
                name = line[1:].split()[0]
                chunks = []
            else:
                if name is None:
                    raise ValueError(f"FASTA file {path} does not start with '>'")
                chunks.append(line.upper())
        if name is not None:
            yield name, "".join(chunks)


def read_fasta(path: PathLike) -> Dict[str, str]:
    """Read a whole FASTA file into an ordered ``{name: sequence}`` dict.

    Raises ``ValueError`` on duplicate record names: silently collapsing
    them into one dict entry would drop all but the last sequence, which
    for a reference FASTA means losing whole chromosomes.
    """
    records: Dict[str, str] = {}
    for name, sequence in iter_fasta(path):
        if name in records:
            raise ValueError(
                f"duplicate sequence name {name!r} in FASTA file {path}; "
                "earlier record would be silently dropped"
            )
        records[name] = sequence
    return records


def write_fasta(
    path: PathLike, records: Union[Dict[str, str], Iterable[Tuple[str, str]]], *, width: int = 80
) -> None:
    """Write records to a FASTA file, wrapping sequences at ``width`` columns."""
    items = records.items() if isinstance(records, dict) else records
    with open(path, "w", encoding="ascii") as handle:
        for name, sequence in items:
            handle.write(f">{name}\n")
            if width <= 0:
                handle.write(sequence + "\n")
                continue
            for start in range(0, len(sequence), width):
                handle.write(sequence[start : start + width] + "\n")


def iter_fastq(path: PathLike) -> Iterator[Tuple[str, str, str]]:
    """Yield ``(name, sequence, quality)`` records from a FASTQ file.

    Streaming counterpart of :func:`read_fastq` (same record semantics,
    ignores a trailing partial record) used by the pipeline ingest stage
    so reads never have to be materialised at once.  Blank lines are only
    legal at end of file: a mid-file blank line followed by more content
    raises ``ValueError`` instead of silently truncating the stream.
    """
    with open(path, "r", encoding="ascii") as handle:
        line_number = 0
        while True:
            record = [handle.readline() for _ in range(4)]
            if not record[0]:
                return
            if not record[0].rstrip("\n"):
                # A blank line is EOF-equivalent only when nothing but
                # blank lines follows; otherwise reads after it would be
                # silently dropped from the stream.
                for rest in (*record[1:], *handle):
                    if rest.strip():
                        raise ValueError(
                            f"blank line at line {line_number + 1} of {path} "
                            "followed by more records; FASTQ streams must "
                            "not contain interior blank lines"
                        )
                return
            if not record[3]:
                return  # trailing partial record, matching read_fastq
            header, seq, plus, qual = (line.rstrip("\n") for line in record)
            if not header.startswith("@") or not plus.startswith("+"):
                raise ValueError(
                    f"malformed FASTQ record at line {line_number + 1} of {path}"
                )
            if len(seq) != len(qual):
                raise ValueError(
                    f"sequence/quality length mismatch at line {line_number + 1} of {path}"
                )
            yield header[1:].split()[0], seq.upper(), qual
            line_number += 4


def read_fastq(path: PathLike) -> List[Tuple[str, str, str]]:
    """Read a FASTQ file into a list of ``(name, sequence, quality)`` tuples."""
    return list(iter_fastq(path))


def write_fastq(path: PathLike, records: Iterable[Tuple[str, str, str]]) -> None:
    """Write ``(name, sequence, quality)`` records to a FASTQ file."""
    with open(path, "w", encoding="ascii") as handle:
        for name, sequence, quality in records:
            if len(sequence) != len(quality):
                raise ValueError(f"sequence/quality length mismatch for record {name}")
            handle.write(f"@{name}\n{sequence}\n+\n{quality}\n")
