"""Sequencing-error models.

A :class:`ErrorModel` describes per-base substitution/insertion/deletion
probabilities; :func:`mutate_sequence` applies it and returns both the
mutated sequence and the ground-truth edit operations, so read simulators
can report the *true* edit distance of every simulated read — the accuracy
experiments compare aligner output against this ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cigar import Cigar, CigarOp
from repro.genomics.sequences import DNA_ALPHABET

__all__ = ["ErrorModel", "mutate_sequence"]


@dataclass(frozen=True)
class ErrorModel:
    """Independent per-base error channel.

    Rates are probabilities per reference base consumed.  The defaults
    approximate PacBio CLR chemistry (~10 % total error dominated by
    insertions), which is what PBSIM2 produces for the paper's dataset.
    """

    substitution_rate: float = 0.02
    insertion_rate: float = 0.05
    deletion_rate: float = 0.03

    def __post_init__(self) -> None:
        for name in ("substitution_rate", "insertion_rate", "deletion_rate"):
            value = getattr(self, name)
            if not (0.0 <= value < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.total_rate >= 1.0:
            raise ValueError("total error rate must be below 1.0")

    @property
    def total_rate(self) -> float:
        """Total per-base error probability."""
        return self.substitution_rate + self.insertion_rate + self.deletion_rate

    @property
    def accuracy(self) -> float:
        """Expected per-base accuracy (1 − total error rate)."""
        return 1.0 - self.total_rate

    # Convenience presets -------------------------------------------------- #
    @classmethod
    def pacbio_clr(cls) -> "ErrorModel":
        """~10 % error, insertion-dominated (PacBio CLR / PBSIM2 default)."""
        return cls(substitution_rate=0.02, insertion_rate=0.05, deletion_rate=0.03)

    @classmethod
    def pacbio_hifi(cls) -> "ErrorModel":
        """~1 % error (PacBio HiFi)."""
        return cls(substitution_rate=0.004, insertion_rate=0.003, deletion_rate=0.003)

    @classmethod
    def illumina(cls) -> "ErrorModel":
        """~0.5 % error, substitution-dominated (Illumina short reads)."""
        return cls(substitution_rate=0.004, insertion_rate=0.0005, deletion_rate=0.0005)

    @classmethod
    def exact(cls) -> "ErrorModel":
        """No errors at all (useful in tests)."""
        return cls(0.0, 0.0, 0.0)


def mutate_sequence(
    sequence: str,
    model: ErrorModel,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[str, Cigar]:
    """Apply the error channel to ``sequence``.

    Returns the mutated sequence and the CIGAR describing the mutated
    sequence (as the pattern/read) against the original (as the text), so
    ``cigar.edit_distance`` is the true number of introduced edits.
    """
    rng = rng if rng is not None else np.random.default_rng()
    out: List[str] = []
    ops: List[CigarOp] = []
    bases = DNA_ALPHABET
    sub, ins, dele = model.substitution_rate, model.insertion_rate, model.deletion_rate

    for base in sequence:
        # Insertions before the base (geometric, at most a couple in practice).
        while rng.random() < ins:
            out.append(bases[rng.integers(0, 4)])
            ops.append(CigarOp.INSERTION)
        r = rng.random()
        if r < dele:
            ops.append(CigarOp.DELETION)
            continue
        if r < dele + sub:
            choices = [b for b in bases if b != base]
            out.append(choices[rng.integers(0, 3)])
            ops.append(CigarOp.MISMATCH)
        else:
            out.append(base)
            ops.append(CigarOp.MATCH)
    # Trailing insertions.
    while rng.random() < ins:
        out.append(bases[rng.integers(0, 4)])
        ops.append(CigarOp.INSERTION)

    return "".join(out), Cigar.from_ops(ops)
