"""repro — reproduction of *Algorithmic Improvement and GPU Acceleration of
the GenASM Algorithm* (Lindegger et al., IPPS 2022).

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.core``
    The GenASM bitvector alignment algorithm (DC + TB), the three
    algorithmic improvements introduced by the paper, and the windowed
    long-read aligner built on top of them.
``repro.baselines``
    The comparison aligners used in the paper's evaluation: a KSW2-like
    banded affine-gap aligner, an Edlib-like Myers bit-vector aligner, and
    full dynamic-programming oracles used for ground truth.
``repro.genomics``
    Synthetic genomes, a PBSIM2-like long-read simulator, an Illumina-like
    short-read simulator and FASTA/FASTQ I/O.
``repro.mapping``
    A minimizer-based seed-and-chain read mapper that produces the
    candidate (read, reference) pairs the paper aligns (the role minimap2
    plays in the paper).
``repro.gpu``
    A SIMT execution-model simulator standing in for the NVIDIA A6000 used
    in the paper, plus GenASM GPU kernels expressed against it.
``repro.parallel``
    Batch execution utilities for the CPU evaluation: serial, spawn-pool
    multiprocessing and vectorized backends behind one executor.
``repro.batch``
    The vectorized batched-alignment engine: many window pairs evaluated
    in lockstep as NumPy structure-of-arrays uint64 lanes, byte-identical
    to the scalar path.
``repro.pipeline``
    The streaming pipeline: ingest, mapping, wave accumulation and
    (optionally process-sharded) wave execution overlapped behind
    ``StreamingPipeline``, emitting results in input order.
``repro.io``
    Standard alignment output: SAM/PAF emitters with minimap2-style MAPQ,
    usable offline (``write_sam``/``write_paf``) or as streaming sinks on
    the pipeline's ``sink=`` seam.
``repro.harness``
    Dataset construction, the experiment registry (E1–E5 and ablations),
    the declarative experiment-grid runner (``repro.harness.grid``) and
    report generation.

Quickstart::

    from repro import GenASMAligner
    aln = GenASMAligner().align("ACGTACGTAC", "ACGAACGTTAC")
    print(aln.edit_distance, aln.cigar)
"""

from repro.batch import BatchAlignmentEngine, align_pairs_vectorized
from repro.core.aligner import GenASMAligner, align_pair
from repro.core.alignment import Alignment
from repro.core.cigar import Cigar, CigarOp
from repro.core.config import GenASMConfig
from repro.parallel import BatchExecutor
from repro.pipeline import MappedAlignment, PipelineStats, StreamingPipeline

__all__ = [
    "GenASMAligner",
    "GenASMConfig",
    "Alignment",
    "Cigar",
    "CigarOp",
    "align_pair",
    "BatchAlignmentEngine",
    "align_pairs_vectorized",
    "BatchExecutor",
    "StreamingPipeline",
    "MappedAlignment",
    "PipelineStats",
    "__version__",
]

__version__ = "1.0.0"
